//! Deadline-feasibility screening.
//!
//! Before allocating, each resource group (one server's streams, one AP's
//! devices) is screened: if the mandatory minimum shares
//! `Σ e_k/(D_k − a_k)` exceed capacity, the greedy screen rejects the
//! neediest streams until the rest fit. Rejected streams are not dropped by
//! the system — the joint optimizer responds by changing their surgery
//! plans (cheaper cuts, more aggressive exits) — but the screen quantifies
//! how overcommitted a configuration is.

use crate::convex::HyperbolicDemand;
use serde::{Deserialize, Serialize};

/// Outcome of screening one resource group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionResult {
    /// Ids admitted (their minimum shares fit in capacity).
    pub admitted: Vec<usize>,
    /// Ids rejected, neediest first.
    pub rejected: Vec<usize>,
    /// Total mandatory share of the admitted set (≤ 1).
    pub admitted_need: f64,
    /// Total mandatory share before screening (may exceed 1).
    pub total_need: f64,
}

impl AdmissionResult {
    /// Whether everyone fit.
    pub fn all_admitted(&self) -> bool {
        self.rejected.is_empty()
    }
}

/// Screen one group. `ids`, `demands` and `deadlines` are parallel.
/// Streams with zero scaled demand are always admitted if their fixed
/// latency meets the deadline, always rejected otherwise.
pub fn screen(ids: &[usize], demands: &[HyperbolicDemand], deadlines: &[f64]) -> AdmissionResult {
    assert_eq!(ids.len(), demands.len());
    assert_eq!(ids.len(), deadlines.len());
    #[derive(Clone, Copy)]
    struct Need {
        id: usize,
        need: f64, // mandatory minimum share; INFINITY = hopeless
    }
    let mut needs: Vec<Need> = Vec::with_capacity(ids.len());
    let mut rejected: Vec<usize> = Vec::new();
    let mut admitted: Vec<usize> = Vec::new();
    for ((&id, d), &dl) in ids.iter().zip(demands).zip(deadlines) {
        if d.scaled == 0.0 {
            if d.fixed <= dl {
                admitted.push(id);
            } else {
                rejected.push(id);
            }
            continue;
        }
        let slack = dl - d.fixed;
        if slack <= 0.0 {
            rejected.push(id);
            continue;
        }
        needs.push(Need {
            id,
            need: d.scaled / slack,
        });
    }
    let total_need: f64 = needs.iter().map(|n| n.need).sum();
    // Drop the neediest until the rest fit.
    needs.sort_by(|a, b| b.need.partial_cmp(&a.need).expect("finite needs"));
    let mut current: f64 = total_need;
    let mut cut_idx = 0usize;
    while current > 1.0 + 1e-12 && cut_idx < needs.len() {
        current -= needs[cut_idx].need;
        rejected.push(needs[cut_idx].id);
        cut_idx += 1;
    }
    admitted.extend(needs[cut_idx..].iter().map(|n| n.id));
    admitted.sort_unstable();
    AdmissionResult {
        admitted,
        rejected,
        admitted_need: current.max(0.0),
        total_need,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(fixed: f64, scaled: f64) -> HyperbolicDemand {
        HyperbolicDemand::new(fixed, scaled)
    }

    #[test]
    fn feasible_group_admits_everyone() {
        let r = screen(
            &[10, 11, 12],
            &[d(0.01, 0.1), d(0.02, 0.2), d(0.0, 0.3)],
            &[1.0, 1.0, 1.0],
        );
        assert!(r.all_admitted());
        assert_eq!(r.admitted, vec![10, 11, 12]);
        assert!(r.admitted_need <= 1.0);
    }

    #[test]
    fn neediest_rejected_first() {
        // needs: 0.9, 0.5, 0.2 -> reject the 0.9 one, rest fits (0.7)
        let r = screen(
            &[0, 1, 2],
            &[d(0.0, 0.9), d(0.0, 0.5), d(0.0, 0.2)],
            &[1.0, 1.0, 1.0],
        );
        assert_eq!(r.rejected, vec![0]);
        assert_eq!(r.admitted, vec![1, 2]);
        assert!((r.admitted_need - 0.7).abs() < 1e-12);
        assert!((r.total_need - 1.6).abs() < 1e-12);
    }

    #[test]
    fn hopeless_streams_always_rejected() {
        // fixed latency alone exceeds the deadline
        let r = screen(&[5], &[d(0.6, 0.1)], &[0.5]);
        assert_eq!(r.rejected, vec![5]);
        assert!(r.admitted.is_empty());
    }

    #[test]
    fn zero_demand_stream_judged_on_fixed_latency() {
        let r = screen(&[1, 2], &[d(0.1, 0.0), d(0.9, 0.0)], &[0.5, 0.5]);
        assert_eq!(r.admitted, vec![1]);
        assert_eq!(r.rejected, vec![2]);
    }

    #[test]
    fn empty_group() {
        let r = screen(&[], &[], &[]);
        assert!(r.all_admitted());
        assert_eq!(r.total_need, 0.0);
    }

    #[test]
    fn boundary_exactly_full_is_admitted() {
        let r = screen(&[0, 1], &[d(0.0, 0.5), d(0.0, 0.5)], &[1.0, 1.0]);
        assert!(r.all_admitted());
    }
}
