//! Deadline-feasibility screening.
//!
//! Before allocating, each resource group (one server's streams, one AP's
//! devices) is screened: if the mandatory minimum shares
//! `Σ e_k/(D_k − a_k)` exceed capacity, the greedy screen rejects the
//! neediest streams until the rest fit. Rejected streams are not dropped by
//! the system — the joint optimizer responds by changing their surgery
//! plans (cheaper cuts, more aggressive exits) — but the screen quantifies
//! how overcommitted a configuration is.

use crate::convex::HyperbolicDemand;
use serde::{Deserialize, Serialize};

/// Outcome of screening one resource group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionResult {
    /// Ids admitted (their minimum shares fit in capacity).
    pub admitted: Vec<usize>,
    /// Ids rejected, neediest first.
    pub rejected: Vec<usize>,
    /// Total mandatory share of the admitted set (≤ 1).
    pub admitted_need: f64,
    /// Total mandatory share before screening (may exceed 1).
    pub total_need: f64,
}

impl AdmissionResult {
    /// Whether everyone fit.
    pub fn all_admitted(&self) -> bool {
        self.rejected.is_empty()
    }
}

/// Screen one group. `ids`, `demands` and `deadlines` are parallel.
/// Streams with zero scaled demand are always admitted if their fixed
/// latency meets the deadline, always rejected otherwise.
pub fn screen(ids: &[usize], demands: &[HyperbolicDemand], deadlines: &[f64]) -> AdmissionResult {
    assert_eq!(ids.len(), demands.len());
    assert_eq!(ids.len(), deadlines.len());
    #[derive(Clone, Copy)]
    struct Need {
        id: usize,
        need: f64, // mandatory minimum share; INFINITY = hopeless
    }
    let mut needs: Vec<Need> = Vec::with_capacity(ids.len());
    let mut rejected: Vec<usize> = Vec::new();
    let mut admitted: Vec<usize> = Vec::new();
    for ((&id, d), &dl) in ids.iter().zip(demands).zip(deadlines) {
        if d.scaled == 0.0 {
            if d.fixed <= dl {
                admitted.push(id);
            } else {
                rejected.push(id);
            }
            continue;
        }
        let slack = dl - d.fixed;
        if slack <= 0.0 {
            rejected.push(id);
            continue;
        }
        needs.push(Need {
            id,
            need: d.scaled / slack,
        });
    }
    let total_need: f64 = needs.iter().map(|n| n.need).sum();
    // Drop the neediest until the rest fit.
    needs.sort_by(|a, b| b.need.total_cmp(&a.need));
    let mut current: f64 = total_need;
    let mut cut_idx = 0usize;
    while current > 1.0 + 1e-12 && cut_idx < needs.len() {
        current -= needs[cut_idx].need;
        rejected.push(needs[cut_idx].id);
        cut_idx += 1;
    }
    admitted.extend(needs[cut_idx..].iter().map(|n| n.id));
    admitted.sort_unstable();
    AdmissionResult {
        admitted,
        rejected,
        admitted_need: current.max(0.0),
        total_need,
    }
}

/// Breaker-aware screening: streams whose `tripped` flag is set — their
/// target's circuit breaker is open — are shed to `rejected` up front and
/// contribute nothing to the group's need; the survivors are screened by
/// [`screen`] as usual. `tripped` is parallel to `ids`. This is the
/// admission-control face of the recovery subsystem: while a breaker is
/// open its streams should not count against the capacity the healthy
/// ones are fighting over.
pub fn screen_with_breakers(
    ids: &[usize],
    demands: &[HyperbolicDemand],
    deadlines: &[f64],
    tripped: &[bool],
) -> AdmissionResult {
    assert_eq!(ids.len(), tripped.len());
    let mut shed: Vec<usize> = Vec::new();
    let mut keep_ids: Vec<usize> = Vec::new();
    let mut keep_demands: Vec<HyperbolicDemand> = Vec::new();
    let mut keep_deadlines: Vec<f64> = Vec::new();
    for i in 0..ids.len() {
        if tripped[i] {
            shed.push(ids[i]);
        } else {
            keep_ids.push(ids[i]);
            keep_demands.push(demands[i]);
            keep_deadlines.push(deadlines[i]);
        }
    }
    let mut r = screen(&keep_ids, &keep_demands, &keep_deadlines);
    // Shed ids lead the rejection list: they were refused before any
    // need-based comparison happened.
    shed.extend(r.rejected);
    r.rejected = shed;
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(fixed: f64, scaled: f64) -> HyperbolicDemand {
        HyperbolicDemand::new(fixed, scaled)
    }

    #[test]
    fn feasible_group_admits_everyone() {
        let r = screen(
            &[10, 11, 12],
            &[d(0.01, 0.1), d(0.02, 0.2), d(0.0, 0.3)],
            &[1.0, 1.0, 1.0],
        );
        assert!(r.all_admitted());
        assert_eq!(r.admitted, vec![10, 11, 12]);
        assert!(r.admitted_need <= 1.0);
    }

    #[test]
    fn neediest_rejected_first() {
        // needs: 0.9, 0.5, 0.2 -> reject the 0.9 one, rest fits (0.7)
        let r = screen(
            &[0, 1, 2],
            &[d(0.0, 0.9), d(0.0, 0.5), d(0.0, 0.2)],
            &[1.0, 1.0, 1.0],
        );
        assert_eq!(r.rejected, vec![0]);
        assert_eq!(r.admitted, vec![1, 2]);
        assert!((r.admitted_need - 0.7).abs() < 1e-12);
        assert!((r.total_need - 1.6).abs() < 1e-12);
    }

    #[test]
    fn hopeless_streams_always_rejected() {
        // fixed latency alone exceeds the deadline
        let r = screen(&[5], &[d(0.6, 0.1)], &[0.5]);
        assert_eq!(r.rejected, vec![5]);
        assert!(r.admitted.is_empty());
    }

    #[test]
    fn zero_demand_stream_judged_on_fixed_latency() {
        let r = screen(&[1, 2], &[d(0.1, 0.0), d(0.9, 0.0)], &[0.5, 0.5]);
        assert_eq!(r.admitted, vec![1]);
        assert_eq!(r.rejected, vec![2]);
    }

    #[test]
    fn empty_group() {
        let r = screen(&[], &[], &[]);
        assert!(r.all_admitted());
        assert_eq!(r.total_need, 0.0);
    }

    #[test]
    fn boundary_exactly_full_is_admitted() {
        let r = screen(&[0, 1], &[d(0.0, 0.5), d(0.0, 0.5)], &[1.0, 1.0]);
        assert!(r.all_admitted());
    }

    #[test]
    fn tripped_streams_are_shed_before_need_comparison() {
        // Without breakers the 0.9-need stream would evict the others;
        // with its target tripped it is shed first and the rest fit.
        let demands = [d(0.0, 0.9), d(0.0, 0.5), d(0.0, 0.2)];
        let r = screen_with_breakers(
            &[0, 1, 2],
            &demands,
            &[1.0, 1.0, 1.0],
            &[true, false, false],
        );
        assert_eq!(r.rejected, vec![0]);
        assert_eq!(r.admitted, vec![1, 2]);
        assert!((r.admitted_need - 0.7).abs() < 1e-12);
        // Shed streams do not inflate the group's reported need either.
        assert!((r.total_need - 0.7).abs() < 1e-12);
    }

    #[test]
    fn shed_ids_lead_the_rejection_order() {
        // Stream 2 is shed by its breaker; stream 0 is then evicted on
        // need. Shed comes first in the rejection list.
        let demands = [d(0.0, 0.8), d(0.0, 0.5), d(0.0, 0.1)];
        let r = screen_with_breakers(
            &[0, 1, 2],
            &demands,
            &[1.0, 1.0, 1.0],
            &[false, false, true],
        );
        assert_eq!(r.rejected, vec![2, 0]);
        assert_eq!(r.admitted, vec![1]);
    }

    #[test]
    fn no_breakers_matches_plain_screen() {
        let demands = [d(0.01, 0.1), d(0.02, 0.2)];
        let deadlines = [1.0, 1.0];
        let plain = screen(&[7, 8], &demands, &deadlines);
        let gated = screen_with_breakers(&[7, 8], &demands, &deadlines, &[false, false]);
        assert_eq!(plain, gated);
    }
}
