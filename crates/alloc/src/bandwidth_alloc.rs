//! Per-AP bandwidth allocation.
//!
//! The Shannon-rate uplink is linear in the spectrum share (see
//! `scalpel_sim::net`), so a device transmitting `B` bytes at mean full-AP
//! rate `R` bits/s sees transmission seconds `8B/(R·c)` — the same
//! hyperbolic form as compute, solved by the same machinery. Demands are
//! *expected* per request (scaled by the probability the request reaches
//! the uplink at all, i.e. did not exit on the device).

use crate::convex::{self, AllocScratch, HyperbolicDemand};
use serde::{Deserialize, Serialize};

/// Borrowed SoA view of per-device uplink demands — five parallel
/// columns, one entry per device; the bandwidth analogue of
/// [`crate::compute_alloc::ComputeCols`]. Values are raw; sanitization
/// happens once inside [`allocate_cols_into`].
#[derive(Debug, Clone, Copy)]
pub struct BandwidthCols<'a> {
    /// Expected seconds before transmission starts (device compute).
    pub pre_tx_s: &'a [f64],
    /// Transmission seconds at full AP spectrum (expected per request).
    pub tx_s_full: &'a [f64],
    /// Seconds after transmission (edge compute at the planned share).
    pub post_tx_s: &'a [f64],
    /// Relative importance.
    pub weight: &'a [f64],
    /// Relative deadline, seconds (raw: NaN means infeasible).
    pub deadline_s: &'a [f64],
}

impl BandwidthCols<'_> {
    /// Number of devices covered by every column.
    pub fn len(&self) -> usize {
        self.pre_tx_s
            .len()
            .min(self.tx_s_full.len())
            .min(self.post_tx_s.len())
            .min(self.weight.len())
            .min(self.deadline_s.len())
    }

    /// Whether the view covers no devices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One device's uplink demand on its AP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthDemand {
    /// Device id (for reporting).
    pub device: usize,
    /// Expected seconds before transmission starts (device compute).
    pub pre_tx_s: f64,
    /// Transmission seconds at full AP spectrum (expected per request).
    pub tx_s_full: f64,
    /// Seconds after transmission (edge compute at the planned share).
    pub post_tx_s: f64,
    /// Relative importance.
    pub weight: f64,
    /// Relative deadline, seconds.
    pub deadline_s: f64,
}

/// Allocation policy for an AP's spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BandwidthPolicy {
    /// Equal split among devices that transmit.
    Equal,
    /// KKT water-filling minimizing the weighted latency sum.
    WeightedSum,
    /// Min-max end-to-end latency.
    MinMax,
    /// Deadline minimums with min-max slack; weighted-sum fallback when
    /// deadlines are jointly infeasible.
    DeadlineAware,
}

/// Compute per-device spectrum shares on one AP.
pub fn allocate(demands: &[BandwidthDemand], policy: BandwidthPolicy) -> Vec<f64> {
    let mut out = Vec::new();
    allocate_into(demands, policy, &mut AllocScratch::default(), &mut out);
    out
}

/// [`allocate`] writing into a caller-owned buffer (cleared first) with
/// reusable solver scratch: bit-identical shares, zero heap traffic on the
/// hot path once the buffers are warm. Gathers the AoS demand structs into
/// SoA columns and defers to [`allocate_cols_into`].
pub fn allocate_into(
    demands: &[BandwidthDemand],
    policy: BandwidthPolicy,
    scratch: &mut AllocScratch,
    out: &mut Vec<f64>,
) {
    let pre: Vec<f64> = demands.iter().map(|d| d.pre_tx_s).collect();
    let tx: Vec<f64> = demands.iter().map(|d| d.tx_s_full).collect();
    let post: Vec<f64> = demands.iter().map(|d| d.post_tx_s).collect();
    let weight: Vec<f64> = demands.iter().map(|d| d.weight).collect();
    let deadline: Vec<f64> = demands.iter().map(|d| d.deadline_s).collect();
    allocate_cols_into(
        BandwidthCols {
            pre_tx_s: &pre,
            tx_s_full: &tx,
            post_tx_s: &post,
            weight: &weight,
            deadline_s: &deadline,
        },
        policy,
        scratch,
        out,
    );
}

/// [`allocate_into`] over an SoA column view — the hot-path entry point.
/// Share values are bit-identical to [`allocate`] / [`allocate_into`] for
/// every policy.
pub fn allocate_cols_into(
    cols: BandwidthCols<'_>,
    policy: BandwidthPolicy,
    scratch: &mut AllocScratch,
    out: &mut Vec<f64>,
) {
    out.clear();
    let len = cols.len();
    if len == 0 {
        return;
    }
    match policy {
        BandwidthPolicy::Equal => {
            let n = cols.tx_s_full[..len]
                .iter()
                .filter(|&&t| t > 0.0)
                .count()
                .max(1) as f64;
            out.extend(
                cols.tx_s_full[..len]
                    .iter()
                    .map(|&t| if t > 0.0 { 1.0 / n } else { 0.0 }),
            );
        }
        BandwidthPolicy::WeightedSum => {
            fill_cols(cols, len, scratch);
            convex::weighted_sum_shares_cols(&scratch.scaled, &scratch.weights, out);
        }
        BandwidthPolicy::MinMax => {
            let AllocScratch {
                fixed,
                scaled,
                served_fixed,
                served_scaled,
                ..
            } = scratch;
            fill_fixed_scaled(cols, len, fixed, scaled);
            convex::minmax_shares_cols(fixed, scaled, served_fixed, served_scaled, out);
        }
        BandwidthPolicy::DeadlineAware => {
            fill_cols(cols, len, scratch);
            let AllocScratch {
                fixed,
                scaled,
                weights,
                roots,
                ..
            } = scratch;
            if !convex::deadline_shares_cols(
                fixed,
                scaled,
                &cols.deadline_s[..len],
                weights,
                roots,
                out,
            ) {
                convex::weighted_sum_shares_cols(scaled, weights, out);
            }
        }
    }
    // Post-condition: shares are finite, non-negative, and on the simplex
    // even when the demand vector was adversarial. No-op for valid inputs.
    convex::sanitize_shares(out);
}

fn fill_cols(cols: BandwidthCols<'_>, len: usize, scratch: &mut AllocScratch) {
    let AllocScratch {
        fixed,
        scaled,
        weights,
        ..
    } = scratch;
    fill_fixed_scaled(cols, len, fixed, scaled);
    weights.clear();
    weights.extend(cols.weight[..len].iter().map(|&w| convex::sanitize(w)));
}

fn fill_fixed_scaled(
    cols: BandwidthCols<'_>,
    len: usize,
    fixed: &mut Vec<f64>,
    scaled: &mut Vec<f64>,
) {
    // `fixed` is pre-tx + post-tx seconds, sanitized *after* the add —
    // exactly what `HyperbolicDemand::new(pre + post, tx)` produced.
    fixed.clear();
    fixed.extend(
        cols.pre_tx_s[..len]
            .iter()
            .zip(cols.post_tx_s)
            .map(|(&a, &b)| convex::sanitize(a + b)),
    );
    scaled.clear();
    scaled.extend(cols.tx_s_full[..len].iter().map(|&x| convex::sanitize(x)));
}

/// Analytic end-to-end latency of each device's requests under shares.
pub fn latencies(demands: &[BandwidthDemand], shares: &[f64]) -> Vec<f64> {
    demands
        .iter()
        .zip(shares)
        .map(|(d, &c)| HyperbolicDemand::new(d.pre_tx_s + d.post_tx_s, d.tx_s_full).latency(c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demands() -> Vec<BandwidthDemand> {
        vec![
            BandwidthDemand {
                device: 0,
                pre_tx_s: 0.01,
                tx_s_full: 0.004,
                post_tx_s: 0.02,
                weight: 1.0,
                deadline_s: 0.2,
            },
            BandwidthDemand {
                device: 1,
                pre_tx_s: 0.00,
                tx_s_full: 0.020,
                post_tx_s: 0.01,
                weight: 1.0,
                deadline_s: 0.25,
            },
            BandwidthDemand {
                device: 2,
                pre_tx_s: 0.03,
                tx_s_full: 0.0,
                post_tx_s: 0.0,
                weight: 1.0,
                deadline_s: 0.1,
            },
        ]
    }

    #[test]
    fn non_transmitting_devices_get_no_spectrum() {
        for policy in [
            BandwidthPolicy::Equal,
            BandwidthPolicy::WeightedSum,
            BandwidthPolicy::MinMax,
            BandwidthPolicy::DeadlineAware,
        ] {
            let shares = allocate(&demands(), policy);
            assert_eq!(shares[2], 0.0, "{policy:?}");
            let total: f64 = shares.iter().sum();
            assert!(total <= 1.0 + 1e-9 && total > 0.99, "{policy:?}: {total}");
        }
    }

    #[test]
    fn equal_splits_among_transmitters_only() {
        let shares = allocate(&demands(), BandwidthPolicy::Equal);
        assert!((shares[0] - 0.5).abs() < 1e-12);
        assert!((shares[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn minmax_favors_heavier_transmitter() {
        let shares = allocate(&demands(), BandwidthPolicy::MinMax);
        assert!(shares[1] > shares[0], "{shares:?}");
        let lats = latencies(&demands(), &shares);
        assert!((lats[0] - lats[1]).abs() < 1e-6, "{lats:?}");
    }

    #[test]
    fn deadline_aware_meets_deadlines() {
        let ds = demands();
        let shares = allocate(&ds, BandwidthPolicy::DeadlineAware);
        for (l, d) in latencies(&ds, &shares).iter().zip(&ds) {
            if d.tx_s_full > 0.0 {
                assert!(*l <= d.deadline_s + 1e-9);
            }
        }
    }

    #[test]
    fn empty_is_empty() {
        assert!(allocate(&[], BandwidthPolicy::Equal).is_empty());
    }
}
