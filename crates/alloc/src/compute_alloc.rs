//! Per-server compute allocation.
//!
//! Adapts streams assigned to one edge server into [`HyperbolicDemand`]s
//! (`fixed` = device + transmission seconds, `scaled` = edge seconds at
//! full capacity) and exposes the three allocation policies the evaluation
//! compares. Shares are *weights* for the simulator's weighted
//! processor-sharing server, so they need not sum to exactly one — but the
//! solvers keep them on the simplex so analytic and simulated worlds agree.

use crate::convex::{self, AllocScratch, HyperbolicDemand};
use serde::{Deserialize, Serialize};

/// Borrowed SoA (structure-of-arrays) view of per-stream compute demands:
/// four parallel columns, one entry per stream. The incremental evaluator
/// keeps its per-server gather buffers in exactly this layout so the
/// allocator kernels sweep flat `f64` columns with no per-element struct
/// gather. Columns must be the same length; the allocator operates on the
/// common prefix. Values are raw — sanitization happens once inside
/// [`allocate_cols_into`], exactly where the AoS path applied it.
#[derive(Debug, Clone, Copy)]
pub struct ComputeCols<'a> {
    /// Expected seconds before edge compute starts (device + uplink).
    pub pre_edge_s: &'a [f64],
    /// Edge seconds at full server capacity.
    pub edge_s_full: &'a [f64],
    /// Relative importance.
    pub weight: &'a [f64],
    /// Relative deadline, seconds (raw: NaN means infeasible).
    pub deadline_s: &'a [f64],
}

impl ComputeCols<'_> {
    /// Number of streams covered by every column.
    pub fn len(&self) -> usize {
        self.pre_edge_s
            .len()
            .min(self.edge_s_full.len())
            .min(self.weight.len())
            .min(self.deadline_s.len())
    }

    /// Whether the view covers no streams.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One stream's compute demand on its server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeDemand {
    /// Stream id (for reporting).
    pub stream: usize,
    /// Expected seconds before edge compute starts (device + uplink),
    /// weighted over exit paths.
    pub pre_edge_s: f64,
    /// Edge seconds at full server capacity (expected over exit paths).
    pub edge_s_full: f64,
    /// Relative importance (arrival-rate-weighted in the paper's setting).
    pub weight: f64,
    /// Relative deadline, seconds.
    pub deadline_s: f64,
}

/// Allocation policy for a server's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComputePolicy {
    /// Everyone gets `1/n` (the static baseline).
    Equal,
    /// Shares proportional to weights (the proportional-fair point of the
    /// rate-allocation literature; ignores demands).
    Proportional,
    /// KKT water-filling minimizing the weighted latency sum.
    WeightedSum,
    /// Bisection minimizing the worst latency.
    MinMax,
    /// Deadline minimums + min-max slack distribution; falls back to
    /// WeightedSum when deadlines are infeasible (min-max would equalize
    /// everyone down to the worst stream's fixed latency).
    DeadlineAware,
}

/// Compute per-stream shares on one server under `policy`.
pub fn allocate(demands: &[ComputeDemand], policy: ComputePolicy) -> Vec<f64> {
    let mut out = Vec::new();
    allocate_into(demands, policy, &mut AllocScratch::default(), &mut out);
    out
}

/// [`allocate`] writing into a caller-owned buffer (cleared first) with
/// reusable solver scratch: bit-identical shares, zero heap traffic on the
/// hot path once the buffers are warm. Gathers the AoS demand structs into
/// SoA columns and defers to [`allocate_cols_into`].
pub fn allocate_into(
    demands: &[ComputeDemand],
    policy: ComputePolicy,
    scratch: &mut AllocScratch,
    out: &mut Vec<f64>,
) {
    let pre: Vec<f64> = demands.iter().map(|d| d.pre_edge_s).collect();
    let edge: Vec<f64> = demands.iter().map(|d| d.edge_s_full).collect();
    let weight: Vec<f64> = demands.iter().map(|d| d.weight).collect();
    let deadline: Vec<f64> = demands.iter().map(|d| d.deadline_s).collect();
    allocate_cols_into(
        ComputeCols {
            pre_edge_s: &pre,
            edge_s_full: &edge,
            weight: &weight,
            deadline_s: &deadline,
        },
        policy,
        scratch,
        out,
    );
}

/// [`allocate_into`] over an SoA column view — the hot-path entry point:
/// the evaluator's gather buffers are already columns, so no per-element
/// struct is built. Share values are bit-identical to [`allocate`] /
/// [`allocate_into`] for every policy.
pub fn allocate_cols_into(
    cols: ComputeCols<'_>,
    policy: ComputePolicy,
    scratch: &mut AllocScratch,
    out: &mut Vec<f64>,
) {
    out.clear();
    let len = cols.len();
    if len == 0 {
        return;
    }
    match policy {
        ComputePolicy::Equal => {
            let n = len as f64;
            out.extend(
                cols.edge_s_full[..len]
                    .iter()
                    .map(|&e| if e > 0.0 { 1.0 / n } else { 0.0 }),
            );
        }
        ComputePolicy::Proportional => {
            // Raw values on purpose: a NaN weight must poison the total the
            // same way it always did, not get sanitized away.
            let total: f64 = cols.edge_s_full[..len]
                .iter()
                .zip(cols.weight)
                .filter(|(&e, _)| e > 0.0)
                .map(|(_, &w)| w)
                .sum();
            out.extend(
                cols.edge_s_full[..len]
                    .iter()
                    .zip(cols.weight)
                    .map(|(&e, &w)| {
                        if e > 0.0 && total > 0.0 {
                            w / total
                        } else {
                            0.0
                        }
                    }),
            );
        }
        ComputePolicy::WeightedSum => {
            fill_cols(cols, len, scratch);
            convex::weighted_sum_shares_cols(&scratch.scaled, &scratch.weights, out);
        }
        ComputePolicy::MinMax => {
            let AllocScratch {
                fixed,
                scaled,
                served_fixed,
                served_scaled,
                ..
            } = scratch;
            fill_fixed_scaled(cols, len, fixed, scaled);
            convex::minmax_shares_cols(fixed, scaled, served_fixed, served_scaled, out);
        }
        ComputePolicy::DeadlineAware => {
            fill_cols(cols, len, scratch);
            let AllocScratch {
                fixed,
                scaled,
                weights,
                roots,
                ..
            } = scratch;
            if !convex::deadline_shares_cols(
                fixed,
                scaled,
                &cols.deadline_s[..len],
                weights,
                roots,
                out,
            ) {
                convex::weighted_sum_shares_cols(scaled, weights, out);
            }
        }
    }
    // Post-condition: shares are finite, non-negative, and on the simplex
    // even when the demand vector was adversarial. No-op for valid inputs.
    convex::sanitize_shares(out);
}

fn fill_cols(cols: ComputeCols<'_>, len: usize, scratch: &mut AllocScratch) {
    let AllocScratch {
        fixed,
        scaled,
        weights,
        ..
    } = scratch;
    fill_fixed_scaled(cols, len, fixed, scaled);
    weights.clear();
    weights.extend(cols.weight[..len].iter().map(|&w| convex::sanitize(w)));
}

fn fill_fixed_scaled(
    cols: ComputeCols<'_>,
    len: usize,
    fixed: &mut Vec<f64>,
    scaled: &mut Vec<f64>,
) {
    fixed.clear();
    fixed.extend(cols.pre_edge_s[..len].iter().map(|&x| convex::sanitize(x)));
    scaled.clear();
    scaled.extend(cols.edge_s_full[..len].iter().map(|&x| convex::sanitize(x)));
}

/// Analytic latency of each stream under given shares (no queueing).
pub fn latencies(demands: &[ComputeDemand], shares: &[f64]) -> Vec<f64> {
    demands
        .iter()
        .zip(shares)
        .map(|(d, &c)| HyperbolicDemand::new(d.pre_edge_s, d.edge_s_full).latency(c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demands() -> Vec<ComputeDemand> {
        vec![
            ComputeDemand {
                stream: 0,
                pre_edge_s: 0.02,
                edge_s_full: 0.010,
                weight: 1.0,
                deadline_s: 0.2,
            },
            ComputeDemand {
                stream: 1,
                pre_edge_s: 0.01,
                edge_s_full: 0.060,
                weight: 1.0,
                deadline_s: 0.3,
            },
            ComputeDemand {
                stream: 2,
                pre_edge_s: 0.05,
                edge_s_full: 0.002,
                weight: 2.0,
                deadline_s: 0.15,
            },
        ]
    }

    #[test]
    fn proportional_shares_follow_weights() {
        let ds = demands();
        let shares = allocate(&ds, ComputePolicy::Proportional);
        // weights are 1.0, 1.0, 2.0 -> shares 0.25, 0.25, 0.5
        assert!((shares[0] - 0.25).abs() < 1e-12);
        assert!((shares[2] - 0.50).abs() < 1e-12);
    }

    #[test]
    fn every_policy_yields_simplex_shares() {
        for policy in [
            ComputePolicy::Equal,
            ComputePolicy::Proportional,
            ComputePolicy::WeightedSum,
            ComputePolicy::MinMax,
            ComputePolicy::DeadlineAware,
        ] {
            let shares = allocate(&demands(), policy);
            let total: f64 = shares.iter().sum();
            assert!(total <= 1.0 + 1e-9, "{policy:?}: {total}");
            assert!(total > 0.99, "{policy:?}: {total}");
            assert!(shares.iter().all(|&c| c >= 0.0));
        }
    }

    #[test]
    fn minmax_has_lowest_worst_latency() {
        let ds = demands();
        let worst = |p: ComputePolicy| -> f64 {
            let shares = allocate(&ds, p);
            latencies(&ds, &shares).into_iter().fold(0.0, f64::max)
        };
        let mm = worst(ComputePolicy::MinMax);
        assert!(mm <= worst(ComputePolicy::Equal) + 1e-12);
        assert!(mm <= worst(ComputePolicy::WeightedSum) + 1e-12);
    }

    #[test]
    fn weighted_sum_has_lowest_weighted_total() {
        let ds = demands();
        let cost = |p: ComputePolicy| -> f64 {
            let shares = allocate(&ds, p);
            latencies(&ds, &shares)
                .iter()
                .zip(&ds)
                .map(|(l, d)| l * d.weight)
                .sum()
        };
        let ws = cost(ComputePolicy::WeightedSum);
        assert!(ws <= cost(ComputePolicy::Equal) + 1e-12);
        assert!(ws <= cost(ComputePolicy::MinMax) + 1e-12);
    }

    #[test]
    fn deadline_aware_meets_feasible_deadlines() {
        let ds = demands();
        let shares = allocate(&ds, ComputePolicy::DeadlineAware);
        for (l, d) in latencies(&ds, &shares).iter().zip(&ds) {
            assert!(*l <= d.deadline_s + 1e-9, "stream {} late: {l}", d.stream);
        }
    }

    #[test]
    fn deadline_aware_fallback_when_infeasible() {
        let mut ds = demands();
        ds[1].deadline_s = 0.011; // impossible: pre_edge already 0.01, edge 0.06
        let shares = allocate(&ds, ComputePolicy::DeadlineAware);
        // falls back to min-max: still a valid simplex allocation
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(allocate(&[], ComputePolicy::MinMax).is_empty());
    }

    #[test]
    fn equal_policy_skips_zero_demand_streams() {
        let mut ds = demands();
        ds[0].edge_s_full = 0.0;
        let shares = allocate(&ds, ComputePolicy::Equal);
        assert_eq!(shares[0], 0.0);
    }
}
