//! Exact solvers for hyperbolic share-allocation programs.
//!
//! Every stream on a shared resource (server capacity, AP spectrum) sees
//! latency `L_k(c_k) = a_k + e_k / c_k` with `Σ c_k ≤ 1`, `c_k > 0`:
//!
//! * **Weighted sum** `min Σ w_k L_k` — KKT gives the closed-form
//!   water-filling `c_k* ∝ √(w_k e_k)`.
//! * **Min-max** `min max_k L_k` — at the optimum every stream with
//!   `e_k > 0` is equalized at `λ`, so `c_k = e_k/(λ − a_k)` and
//!   `g(λ) = Σ e_k/(λ − a_k)` is strictly decreasing: bisection.
//! * **Deadlines** — feasibility is `Σ e_k/(D_k − a_k) ≤ 1`; the
//!   deadline shares distribute the slack by clipped water-filling
//!   (weighted-sum-optimal subject to the per-stream minimums).

use scalpel_kernels as kernels;
use serde::{Deserialize, Serialize};

/// Largest magnitude any demand component is allowed to carry. Values
/// above this (including `+∞`) are clamped so bracketing loops and share
/// sums stay finite; realistic latencies are tens of orders of magnitude
/// below it, so clamping never perturbs a sane profile.
pub const MAX_COMPONENT: f64 = 1e30;

/// Map an arbitrary `f64` into the domain the solvers are exact on:
/// `NaN` and negatives become `0.0`, oversized values (including `+∞`)
/// clamp to [`MAX_COMPONENT`]. Identity for every valid input.
#[inline]
pub fn sanitize(x: f64) -> f64 {
    if x.is_nan() || x < 0.0 {
        0.0
    } else if x > MAX_COMPONENT {
        MAX_COMPONENT
    } else {
        x
    }
}

/// Post-condition repair for a share vector: non-finite or negative
/// entries become `0.0`, and if the sum exceeds the simplex (beyond a
/// `1e-9` tolerance) the vector is renormalized onto it. Returns `true`
/// if anything was changed. Valid share vectors pass through untouched,
/// bit-for-bit.
pub fn sanitize_shares(shares: &mut [f64]) -> bool {
    let mut changed = false;
    for s in shares.iter_mut() {
        if !s.is_finite() || *s < 0.0 {
            *s = 0.0;
            changed = true;
        } else if *s > MAX_COMPONENT {
            // Clamp oversized-but-finite entries *before* summing so the
            // renormalization sum cannot overflow to +∞ — an infinite sum
            // would divide every entry to 0.0 and silently drop the whole
            // vector off the simplex instead of renormalizing onto it.
            *s = MAX_COMPONENT;
            changed = true;
        }
    }
    let sum = kernels::seq_sum(shares);
    if sum > 1.0 + 1e-9 {
        kernels::scale_div(shares, sum);
        changed = true;
    }
    changed
}

/// Typed error for the checked allocator entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Two parallel input slices disagree in length.
    LengthMismatch {
        /// Number of demands supplied.
        demands: usize,
        /// Length of the companion slice (weights or deadlines).
        companion: usize,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::LengthMismatch { demands, companion } => write!(
                f,
                "allocation input length mismatch: {demands} demands vs {companion} companions"
            ),
        }
    }
}

impl std::error::Error for AllocError {}

/// Reusable buffers for the borrowed-scratch allocator entry points
/// (`compute_alloc::allocate_into`, `bandwidth_alloc::allocate_into`).
/// Holding one of these across calls removes every per-call heap
/// allocation from the solve path; the solvers themselves are unchanged
/// and produce bit-identical shares.
#[derive(Debug, Default, Clone)]
pub struct AllocScratch {
    pub(crate) fixed: Vec<f64>,
    pub(crate) scaled: Vec<f64>,
    pub(crate) weights: Vec<f64>,
    pub(crate) roots: Vec<f64>,
    pub(crate) served_fixed: Vec<f64>,
    pub(crate) served_scaled: Vec<f64>,
}

/// One stream's demand on a shared resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperbolicDemand {
    /// Latency component independent of this resource's share, seconds.
    pub fixed: f64,
    /// Seconds on this resource at full (share = 1) capacity.
    pub scaled: f64,
}

impl HyperbolicDemand {
    /// Construct, sanitizing each component (`NaN`/negative → `0.0`,
    /// oversized → [`MAX_COMPONENT`]) so a corrupt profile cannot poison
    /// a solve. Identity for valid inputs.
    pub fn new(fixed: f64, scaled: f64) -> Self {
        Self {
            fixed: sanitize(fixed),
            scaled: sanitize(scaled),
        }
    }

    /// Latency at share `c`.
    pub fn latency(&self, c: f64) -> f64 {
        if self.scaled == 0.0 {
            return self.fixed;
        }
        if c <= 0.0 {
            return f64::INFINITY;
        }
        self.fixed + self.scaled / c
    }
}

/// `min Σ w_k (a_k + e_k/c_k)` s.t. `Σ c_k = 1`: the KKT water-filling
/// `c_k = √(w_k e_k) / Σ_j √(w_j e_j)`. Streams with `e_k = 0` receive 0.
/// Returns one share per demand; all zeros if nothing needs the resource.
pub fn weighted_sum_shares(demands: &[HyperbolicDemand], weights: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    weighted_sum_shares_into(demands, weights, &mut out);
    out
}

/// [`weighted_sum_shares`] checking that the inputs line up instead of
/// silently padding; otherwise identical to [`weighted_sum_shares`].
pub fn try_weighted_sum_shares(
    demands: &[HyperbolicDemand],
    weights: &[f64],
) -> Result<Vec<f64>, AllocError> {
    if demands.len() != weights.len() {
        return Err(AllocError::LengthMismatch {
            demands: demands.len(),
            companion: weights.len(),
        });
    }
    Ok(weighted_sum_shares(demands, weights))
}

/// [`weighted_sum_shares`] writing into a caller-owned buffer (cleared
/// first); identical arithmetic, no allocation when `out` has capacity.
/// Missing weights are treated as `0.0`, extra weights are ignored, and
/// `NaN`/negative/oversized inputs are sanitized — a malformed profile
/// yields a degraded (possibly all-zeros) allocation, never a panic.
pub fn weighted_sum_shares_into(demands: &[HyperbolicDemand], weights: &[f64], out: &mut Vec<f64>) {
    let scaled: Vec<f64> = demands.iter().map(|d| sanitize(d.scaled)).collect();
    let w: Vec<f64> = (0..demands.len())
        .map(|i| sanitize(weights.get(i).copied().unwrap_or(0.0)))
        .collect();
    weighted_sum_shares_cols(&scaled, &w, out);
}

/// Column (SoA) core of [`weighted_sum_shares_into`]: the KKT
/// water-filling `c_k = √(w_k e_k) / Σ √(w_j e_j)` over pre-sanitized
/// parallel columns (see [`sanitize`]; callers own the sanitize pass so
/// it runs once, not per solver call). Bit-identical to the AoS entry
/// point: the root pass and strict-order reduction run in one fused
/// [`kernels::sqrt_mul_sum`] sweep.
pub fn weighted_sum_shares_cols(scaled: &[f64], weights: &[f64], out: &mut Vec<f64>) {
    let total = kernels::sqrt_mul_sum(weights, scaled, out);
    if total <= 0.0 || !total.is_finite() {
        out.iter_mut().for_each(|x| *x = 0.0);
        return;
    }
    kernels::scale_div(out, total);
}

/// `min max_k (a_k + e_k/c_k)` s.t. `Σ c_k = 1`. Returns `(λ*, shares)`.
/// Streams with `e_k = 0` get share 0 (their latency `a_k` may exceed λ*;
/// no allocation can help them, and the reported λ* covers served streams
/// only — callers that care take the max with those fixed latencies).
pub fn minmax_shares(demands: &[HyperbolicDemand]) -> (f64, Vec<f64>) {
    let mut out = Vec::new();
    let lambda = minmax_shares_into(demands, &mut out);
    (lambda, out)
}

/// [`minmax_shares`] writing into a caller-owned buffer (cleared first);
/// returns `λ*`. Identical arithmetic, no allocation when `out` has
/// capacity. All reads go through `sanitize` so directly-constructed
/// demands with NaN/∞ components cannot hang the bracket search or emit
/// NaN shares; for valid inputs every sanitized read is bit-identical to
/// the raw one.
pub fn minmax_shares_into(demands: &[HyperbolicDemand], out: &mut Vec<f64>) -> f64 {
    let fixed: Vec<f64> = demands.iter().map(|d| sanitize(d.fixed)).collect();
    let scaled: Vec<f64> = demands.iter().map(|d| sanitize(d.scaled)).collect();
    let mut scratch = AllocScratch::default();
    minmax_shares_cols(
        &fixed,
        &scaled,
        &mut scratch.served_fixed,
        &mut scratch.served_scaled,
        out,
    )
}

/// Column (SoA) core of [`minmax_shares_into`] over pre-sanitized
/// parallel columns. Served streams (`scaled > 0`) are compacted once —
/// order-preserving — into the two scratch columns so the bisection's
/// `g(λ) = Σ e/(λ−a)` evaluations run branch-free 4-lane sweeps
/// ([`kernels::ratio_sum`]) instead of re-filtering the full columns per
/// iteration. Every sum keeps the original element order, so brackets,
/// bisection decisions, λ*, and shares are bit-identical to the AoS path.
pub fn minmax_shares_cols(
    fixed: &[f64],
    scaled: &[f64],
    served_fixed: &mut Vec<f64>,
    served_scaled: &mut Vec<f64>,
    out: &mut Vec<f64>,
) -> f64 {
    let n = fixed.len().min(scaled.len());
    out.clear();
    out.resize(n, 0.0);
    served_fixed.clear();
    served_scaled.clear();
    for i in 0..n {
        if scaled[i] > 0.0 {
            served_fixed.push(fixed[i]);
            served_scaled.push(scaled[i]);
        }
    }
    if served_fixed.is_empty() {
        return fixed[..n].iter().copied().fold(0.0, f64::max);
    }
    // g(λ) = Σ e/(λ - a) is strictly decreasing for λ > max a; find g = 1.
    let a_max = served_fixed
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let g = |lambda: f64| -> f64 { kernels::ratio_sum(served_scaled, served_fixed, lambda) };
    // Bracket: lo slightly above a_max (g → ∞), hi doubling until g < 1.
    // With sanitized components hi − a_k ≥ e_sum, so g(hi) ≤ 1 already at
    // the first hi; the doubling loop and its cap are a pure safety net.
    let e_sum = kernels::seq_sum(served_scaled);
    let mut lo = a_max;
    let mut hi = a_max + e_sum.max(1e-12); // g(hi) ≤ Σe/e_sum... may be ≥ 1
    let mut bracket_iters = 0;
    while g(hi) > 1.0 && bracket_iters < 2048 {
        hi = a_max + (hi - a_max) * 2.0;
        bracket_iters += 1;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= a_max || g(mid) > 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-15 * hi.abs().max(1.0) {
            break;
        }
    }
    let lambda = hi;
    for i in 0..n {
        if scaled[i] > 0.0 {
            out[i] = scaled[i] / (lambda - fixed[i]);
        }
    }
    // Normalize the residual bisection error exactly onto the simplex.
    let s = kernels::seq_sum(out);
    if s > 0.0 && s.is_finite() {
        kernels::scale_div(out, s);
    }
    lambda
}

/// Whether deadlines `d_k` are jointly feasible: every stream needs
/// `c_k ≥ e_k/(D_k − a_k)`, so feasibility is `Σ e_k/(D_k − a_k) ≤ 1`.
/// A stream with `a_k ≥ D_k` and `e_k > 0` is infeasible outright.
pub fn deadline_feasible(demands: &[HyperbolicDemand], deadlines: &[f64]) -> bool {
    let fixed: Vec<f64> = demands.iter().map(|d| sanitize(d.fixed)).collect();
    let scaled: Vec<f64> = demands.iter().map(|d| sanitize(d.scaled)).collect();
    let dls: Vec<f64> = (0..demands.len())
        .map(|i| deadlines.get(i).copied().unwrap_or(f64::INFINITY))
        .collect();
    deadline_feasible_cols(&fixed, &scaled, &dls)
}

/// Column (SoA) core of [`deadline_feasible`]: `fixed`/`scaled` are
/// pre-sanitized, `deadlines` stays **raw** — NaN deadlines propagate
/// into a NaN `need`, which fails the final comparison, so a malformed
/// instance reads as infeasible instead of panicking (sanitizing the
/// deadline would silently flip it to feasible).
pub fn deadline_feasible_cols(fixed: &[f64], scaled: &[f64], deadlines: &[f64]) -> bool {
    let n = fixed.len().min(scaled.len());
    let mut need = 0.0;
    for i in 0..n {
        let dl = deadlines.get(i).copied().unwrap_or(f64::INFINITY);
        let (a, e) = (fixed[i], scaled[i]);
        if e == 0.0 {
            if a > dl || dl.is_nan() {
                return false;
            }
            continue;
        }
        let slack = dl - a;
        if slack <= 0.0 {
            return false;
        }
        need += e / slack;
    }
    need <= 1.0 + 1e-12
}

/// Deadline-respecting shares: every stream gets at least its mandatory
/// minimum `e_k/(D_k − a_k)`, and the remaining capacity is distributed by
/// *clipped water-filling* — the weighted-sum optimum subject to those
/// floors (`c_k = max(mn_k, √(w_k e_k)/ν)` with `ν` bisected so the shares
/// fill the simplex; exact by KKT for the box-constrained program).
/// Returns `None` if the deadlines are jointly infeasible.
pub fn deadline_shares(
    demands: &[HyperbolicDemand],
    deadlines: &[f64],
    weights: &[f64],
) -> Option<Vec<f64>> {
    let mut out = Vec::new();
    let mut roots = Vec::new();
    if deadline_shares_into(demands, deadlines, weights, &mut roots, &mut out) {
        Some(out)
    } else {
        None
    }
}

/// [`deadline_shares`] checking that the inputs line up instead of
/// silently padding; `Ok(None)` means the deadlines are jointly
/// infeasible.
pub fn try_deadline_shares(
    demands: &[HyperbolicDemand],
    deadlines: &[f64],
    weights: &[f64],
) -> Result<Option<Vec<f64>>, AllocError> {
    if demands.len() != deadlines.len() {
        return Err(AllocError::LengthMismatch {
            demands: demands.len(),
            companion: deadlines.len(),
        });
    }
    if demands.len() != weights.len() {
        return Err(AllocError::LengthMismatch {
            demands: demands.len(),
            companion: weights.len(),
        });
    }
    Ok(deadline_shares(demands, deadlines, weights))
}

/// [`deadline_shares`] writing into caller-owned buffers: `out` receives
/// the shares, `roots` is bisection scratch. Returns `false` when the
/// deadlines are jointly infeasible (then `out`'s contents are
/// unspecified). The bisection evaluates the share *sum* directly —
/// accumulated in the same element order as the original per-iteration
/// vector, so the bracket, every bisection decision, and the final shares
/// are bit-identical — without allocating a vector per iteration.
pub fn deadline_shares_into(
    demands: &[HyperbolicDemand],
    deadlines: &[f64],
    weights: &[f64],
    roots: &mut Vec<f64>,
    out: &mut Vec<f64>,
) -> bool {
    // Missing deadlines read as `+∞` (zero minimum), missing weights as
    // `0.0`, matching `deadline_feasible`'s padding.
    let fixed: Vec<f64> = demands.iter().map(|d| sanitize(d.fixed)).collect();
    let scaled: Vec<f64> = demands.iter().map(|d| sanitize(d.scaled)).collect();
    let dls: Vec<f64> = (0..demands.len())
        .map(|i| deadlines.get(i).copied().unwrap_or(f64::INFINITY))
        .collect();
    let w: Vec<f64> = (0..demands.len())
        .map(|i| sanitize(weights.get(i).copied().unwrap_or(0.0)))
        .collect();
    deadline_shares_cols(&fixed, &scaled, &dls, &w, roots, out)
}

/// Column (SoA) core of [`deadline_shares_into`]: `fixed`/`scaled`/
/// `weights` are pre-sanitized, `deadlines` stays raw (NaN ⇒ infeasible,
/// see [`deadline_feasible_cols`]). The bisection objective
/// `Σ max(√(w_k e_k)/ν, min_k)` is branch-free — a stream with
/// `scaled == 0` has root 0 and minimum 0, so `max(0/ν, 0) = 0` drops out
/// of the sum without the old per-element branch — and runs as a 4-lane
/// [`kernels::clipped_share_sum`] sweep in the original element order, so
/// every bracket and bisection decision is bit-identical to the AoS path.
/// The 200-iteration bisection additionally stops early once an
/// iteration leaves `(lo, hi)` bitwise unchanged: `mid` then recomputes
/// identically and every remaining iteration is a no-op, so breaking
/// changes nothing — it just stops paying for converged iterations.
pub fn deadline_shares_cols(
    fixed: &[f64],
    scaled: &[f64],
    deadlines: &[f64],
    weights: &[f64],
    roots: &mut Vec<f64>,
    out: &mut Vec<f64>,
) -> bool {
    if !deadline_feasible_cols(fixed, scaled, deadlines) {
        return false;
    }
    let n = fixed.len().min(scaled.len());
    // `out` carries the per-stream minimums until the final fill.
    out.clear();
    out.extend((0..n).map(|i| {
        let dl = deadlines.get(i).copied().unwrap_or(f64::INFINITY);
        let e = scaled[i];
        if e == 0.0 {
            0.0
        } else {
            e / (dl - fixed[i])
        }
    }));
    let used = kernels::seq_sum(out);
    if used >= 1.0 {
        return true;
    }
    let total_root = kernels::sqrt_mul_sum(weights, scaled, roots);
    if total_root <= 0.0 {
        return true;
    }
    let mins: &[f64] = out;
    // Σ share_at(ν) is decreasing in ν; find Σ = 1. At ν = total_root the
    // unclipped water-filling sums to exactly 1, so clipping can only push
    // the sum above 1 — bracket upward from there.
    let mut lo = total_root;
    let mut hi = total_root;
    while kernels::clipped_share_sum(roots, mins, hi) > 1.0 {
        hi *= 2.0;
        if hi > 1e30 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let (prev_lo, prev_hi) = (lo.to_bits(), hi.to_bits());
        if kernels::clipped_share_sum(roots, mins, mid) > 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if lo.to_bits() == prev_lo && hi.to_bits() == prev_hi {
            break;
        }
    }
    kernels::clipped_fill_inplace(roots, hi, out);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(fixed: f64, scaled: f64) -> HyperbolicDemand {
        HyperbolicDemand::new(fixed, scaled)
    }

    #[test]
    fn weighted_sum_closed_form_small_case() {
        // two identical streams -> equal shares
        let shares = weighted_sum_shares(&[d(0.0, 1.0), d(0.0, 1.0)], &[1.0, 1.0]);
        assert!((shares[0] - 0.5).abs() < 1e-12);
        // e ratio 4:1 -> share ratio 2:1
        let shares = weighted_sum_shares(&[d(0.0, 4.0), d(0.0, 1.0)], &[1.0, 1.0]);
        assert!((shares[0] / shares[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_sum_satisfies_kkt_stationarity() {
        // At the optimum, w_k e_k / c_k^2 equal across streams (the
        // Lagrange multiplier).
        let demands = [d(0.1, 2.0), d(0.3, 0.5), d(0.0, 1.7)];
        let weights = [1.0, 2.5, 0.7];
        let shares = weighted_sum_shares(&demands, &weights);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let mu0 = weights[0] * demands[0].scaled / (shares[0] * shares[0]);
        for i in 1..3 {
            let mu = weights[i] * demands[i].scaled / (shares[i] * shares[i]);
            assert!((mu - mu0).abs() < 1e-6 * mu0, "KKT violated: {mu} vs {mu0}");
        }
    }

    #[test]
    fn weighted_sum_beats_equal_split() {
        let demands = [d(0.0, 5.0), d(0.0, 0.2), d(0.0, 1.0)];
        let weights = [1.0, 1.0, 1.0];
        let opt = weighted_sum_shares(&demands, &weights);
        let cost = |shares: &[f64]| -> f64 {
            demands
                .iter()
                .zip(shares)
                .map(|(dd, &c)| dd.latency(c))
                .sum()
        };
        let equal = vec![1.0 / 3.0; 3];
        assert!(cost(&opt) < cost(&equal));
    }

    #[test]
    fn zero_demand_streams_get_zero_share() {
        let shares = weighted_sum_shares(&[d(0.5, 0.0), d(0.0, 1.0)], &[1.0, 1.0]);
        assert_eq!(shares[0], 0.0);
        assert!((shares[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn minmax_equalizes_latencies() {
        let demands = [d(0.02, 1.0), d(0.10, 0.4), d(0.0, 2.0)];
        let (lambda, shares) = minmax_shares(&demands);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (dd, &c) in demands.iter().zip(&shares) {
            let lat = dd.latency(c);
            assert!((lat - lambda).abs() < 1e-6 * lambda, "{lat} vs {lambda}");
        }
    }

    #[test]
    fn minmax_is_optimal_vs_perturbations() {
        let demands = [d(0.01, 0.7), d(0.05, 0.9)];
        let (lambda, shares) = minmax_shares(&demands);
        // Moving share between the two must raise the max latency.
        for delta in [-0.05, 0.05] {
            let pert = [shares[0] + delta, shares[1] - delta];
            if pert.iter().all(|&c| c > 0.0) {
                let m = demands
                    .iter()
                    .zip(&pert)
                    .map(|(dd, &c)| dd.latency(c))
                    .fold(0.0, f64::max);
                assert!(m >= lambda - 1e-9);
            }
        }
    }

    #[test]
    fn minmax_with_all_zero_demands() {
        let (lambda, shares) = minmax_shares(&[d(0.3, 0.0), d(0.7, 0.0)]);
        assert_eq!(lambda, 0.7);
        assert_eq!(shares, vec![0.0, 0.0]);
    }

    #[test]
    fn deadline_feasibility_threshold() {
        // two streams, each needs 0.5 share exactly
        let demands = [d(0.1, 0.45), d(0.1, 0.45)];
        assert!(deadline_feasible(&demands, &[1.0, 1.0]));
        // tighten one deadline so it needs 0.9 share
        assert!(!deadline_feasible(&demands, &[0.6, 1.0]));
        // a stream already late on fixed time alone
        assert!(!deadline_feasible(&[d(2.0, 0.1)], &[1.0]));
        // zero-demand stream with met deadline is fine
        assert!(deadline_feasible(&[d(0.2, 0.0)], &[0.5]));
    }

    #[test]
    fn deadline_shares_respect_minimums_and_simplex() {
        let demands = [d(0.02, 0.3), d(0.05, 0.2), d(0.0, 0.1)];
        let deadlines = [1.0, 0.8, 1.0];
        let shares = deadline_shares(&demands, &deadlines, &[1.0, 1.0, 1.0]).unwrap();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        for ((dd, &dl), &c) in demands.iter().zip(&deadlines).zip(&shares) {
            assert!(dd.latency(c) <= dl + 1e-9, "deadline violated");
        }
    }

    #[test]
    fn deadline_shares_none_when_infeasible() {
        let demands = [d(0.1, 0.9), d(0.1, 0.9)];
        assert!(deadline_shares(&demands, &[0.5, 0.5], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn latency_helper_handles_edges() {
        assert_eq!(d(0.3, 0.0).latency(0.0), 0.3);
        assert!(d(0.0, 1.0).latency(0.0).is_infinite());
        assert!((d(0.1, 1.0).latency(0.5) - 2.1).abs() < 1e-12);
    }
}
