//! # scalpel-alloc — resource allocation
//!
//! The *inner*, convex half of the joint optimization. With surgery plans
//! fixed, every stream's latency on a shared resource has the hyperbolic
//! form `L(c) = a + e/c` in its share `c` — for edge compute (`e` = edge
//! seconds at full capacity) and for uplink bandwidth (`e` = transmission
//! seconds at full spectrum) alike. This crate solves those programs
//! exactly:
//!
//! * [`convex`] — the shared math: KKT water-filling for weighted-sum
//!   latency, bisection for min-max latency, deadline feasibility and
//!   slack-distributing deadline shares;
//! * [`compute_alloc`] / [`bandwidth_alloc`] — thin, documented adapters
//!   from streams to demand vectors (per server / per AP);
//! * [`placement`] — stream→server assignment as a weighted congestion
//!   game with an exact potential, plus greedy and balanced baselines;
//! * [`admission`] — deadline-feasibility screening.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod admission;
pub mod bandwidth_alloc;
pub mod compute_alloc;
pub mod convex;
pub mod placement;

pub use admission::{screen, screen_with_breakers, AdmissionResult};
pub use bandwidth_alloc::BandwidthCols;
pub use compute_alloc::ComputeCols;
pub use convex::{
    deadline_shares, minmax_shares, sanitize_shares, try_deadline_shares, try_weighted_sum_shares,
    weighted_sum_shares, AllocError, AllocScratch, HyperbolicDemand,
};
pub use placement::{PlacementStrategy, ServerLoadModel};
