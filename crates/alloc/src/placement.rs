//! Stream → server placement as a weighted congestion game.
//!
//! Under the weighted-sum compute allocation (KKT water-filling), the total
//! weighted latency on server `s` is `Σ w_k a_k + L_s²` with
//! `L_s = Σ_{k on s} √(w_k e_ks)` and `e_ks` the stream's edge seconds at
//! `s`'s full capacity. Placement therefore minimizes `Σ_s L_s²`.
//!
//! * **Best-response dynamics** — each stream's individual cost is
//!   `ℓ_ks · L_s` (with `ℓ_ks = √(w_k e_ks)`); the game admits the exact
//!   potential `Φ = ½ Σ_s (L_s² + Σ_{k∈s} ℓ_ks²)`, so best-response
//!   strictly decreases Φ and converges to a pure Nash equilibrium.
//! * **Greedy** — LPT-style: heaviest stream first onto the server with
//!   the least marginal `L_s²` increase.
//! * **Round-robin** — the static baseline.

use serde::{Deserialize, Serialize};

/// One stream's placement-relevant demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementStream {
    /// Stream id.
    pub stream: usize,
    /// Edge FLOPs per request (expected over exit paths).
    pub edge_flops: f64,
    /// Relative importance.
    pub weight: f64,
}

/// One server's placement-relevant capability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerCap {
    /// Server id.
    pub server: usize,
    /// Effective FLOP/s.
    pub capacity_fps: f64,
}

/// Placement algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// Heaviest-first greedy marginal-cost placement.
    Greedy,
    /// Greedy seeding + best-response dynamics to a Nash equilibrium.
    BestResponse,
    /// Static round-robin.
    RoundRobin,
}

/// Load bookkeeping for a placement instance.
#[derive(Debug, Clone)]
pub struct ServerLoadModel {
    loads: Vec<f64>,    // L_s
    ell: Vec<Vec<f64>>, // ell[k][s] = sqrt(w_k e_ks)
}

impl ServerLoadModel {
    /// Precompute `ℓ_ks` for all stream/server pairs.
    pub fn new(streams: &[PlacementStream], servers: &[ServerCap]) -> Self {
        let ell = streams
            .iter()
            .map(|k| {
                servers
                    .iter()
                    .map(|s| {
                        // Sanitized so a zero-capacity or NaN-profiled
                        // server yields a zero load term instead of NaN
                        // poisoning every comparison downstream.
                        crate::convex::sanitize(k.weight * k.edge_flops / s.capacity_fps).sqrt()
                    })
                    .collect()
            })
            .collect();
        Self {
            loads: vec![0.0; servers.len()],
            ell,
        }
    }

    /// `L_s` values under `assignment`.
    pub fn loads_for(&self, assignment: &[usize]) -> Vec<f64> {
        let mut loads = vec![0.0; self.loads.len()];
        for (k, &s) in assignment.iter().enumerate() {
            loads[s] += self.ell[k][s];
        }
        loads
    }

    /// The system objective `Σ_s L_s²`.
    pub fn objective(&self, assignment: &[usize]) -> f64 {
        self.loads_for(assignment).iter().map(|l| l * l).sum()
    }

    /// The exact potential `Φ = ½ Σ_s (L_s² + Σ_{k∈s} ℓ_ks²)`.
    pub fn potential(&self, assignment: &[usize]) -> f64 {
        let loads = self.loads_for(assignment);
        let sq: f64 = loads.iter().map(|l| l * l).sum();
        let own: f64 = assignment
            .iter()
            .enumerate()
            .map(|(k, &s)| self.ell[k][s] * self.ell[k][s])
            .sum();
        0.5 * (sq + own)
    }
}

/// Place every stream on a server. `servers` must be non-empty.
pub fn place(
    streams: &[PlacementStream],
    servers: &[ServerCap],
    strategy: PlacementStrategy,
) -> Vec<usize> {
    assert!(!servers.is_empty(), "need at least one server");
    if streams.is_empty() {
        return Vec::new();
    }
    match strategy {
        PlacementStrategy::RoundRobin => (0..streams.len()).map(|k| k % servers.len()).collect(),
        PlacementStrategy::Greedy => greedy(&ServerLoadModel::new(streams, servers)),
        PlacementStrategy::BestResponse => {
            // One ℓ matrix (the only transcendental work here) shared by
            // the greedy seeding and the best-response dynamics, instead
            // of each rebuilding its own identical copy.
            let model = ServerLoadModel::new(streams, servers);
            let seed = greedy(&model);
            best_response_with_model(&model, seed).0
        }
    }
}

fn greedy(model: &ServerLoadModel) -> Vec<usize> {
    let n_servers = model.loads.len();
    let n_streams = model.ell.len();
    // Heaviest (by best-case ell) first.
    let mut order: Vec<usize> = (0..n_streams).collect();
    order.sort_by(|&a, &b| {
        let wa = model.ell[a].iter().cloned().fold(f64::INFINITY, f64::min);
        let wb = model.ell[b].iter().cloned().fold(f64::INFINITY, f64::min);
        wb.total_cmp(&wa)
    });
    let mut loads = vec![0.0; n_servers];
    let mut assignment = vec![0usize; n_streams];
    for &k in &order {
        let best_s = (0..n_servers)
            .map(|s| {
                let l = model.ell[k][s];
                (s, 2.0 * loads[s] * l + l * l) // marginal increase of L_s²
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(s, _)| s)
            .unwrap_or(0);
        assignment[k] = best_s;
        loads[best_s] += model.ell[k][best_s];
    }
    assignment
}

/// Run best-response dynamics from `assignment`. Returns the equilibrium
/// assignment and the number of improving moves made.
pub fn best_response(
    streams: &[PlacementStream],
    servers: &[ServerCap],
    assignment: Vec<usize>,
) -> (Vec<usize>, usize) {
    best_response_with_model(&ServerLoadModel::new(streams, servers), assignment)
}

/// [`best_response`] over a prebuilt load model, so callers that already
/// paid for the ℓ matrix (greedy seeding, repeated warm starts) don't
/// rebuild it.
pub fn best_response_with_model(
    model: &ServerLoadModel,
    mut assignment: Vec<usize>,
) -> (Vec<usize>, usize) {
    let mut loads = model.loads_for(&assignment);
    let tol = 1e-12;
    let mut moves = 0usize;
    let max_rounds = 100 * assignment.len().max(1);
    for _ in 0..max_rounds {
        let mut improved = false;
        for (k, slot) in assignment.iter_mut().enumerate() {
            let cur = *slot;
            let cur_cost = model.ell[k][cur] * loads[cur];
            let mut best = (cur, cur_cost);
            for (s, &load) in loads.iter().enumerate() {
                if s == cur {
                    continue;
                }
                let l = model.ell[k][s];
                let cost = l * (load + l);
                if cost < best.1 - tol {
                    best = (s, cost);
                }
            }
            if best.0 != cur {
                loads[cur] -= model.ell[k][cur];
                loads[best.0] += model.ell[k][best.0];
                *slot = best.0;
                moves += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    (assignment, moves)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streams(n: usize) -> Vec<PlacementStream> {
        (0..n)
            .map(|i| PlacementStream {
                stream: i,
                edge_flops: 1e9 * (1.0 + (i % 5) as f64),
                weight: 1.0 + (i % 3) as f64 * 0.5,
            })
            .collect()
    }

    fn servers() -> Vec<ServerCap> {
        vec![
            ServerCap {
                server: 0,
                capacity_fps: 4e11,
            },
            ServerCap {
                server: 1,
                capacity_fps: 2.6e12,
            },
            ServerCap {
                server: 2,
                capacity_fps: 1e12,
            },
        ]
    }

    #[test]
    fn all_strategies_produce_valid_assignments() {
        for strat in [
            PlacementStrategy::Greedy,
            PlacementStrategy::BestResponse,
            PlacementStrategy::RoundRobin,
        ] {
            let a = place(&streams(20), &servers(), strat);
            assert_eq!(a.len(), 20);
            assert!(a.iter().all(|&s| s < 3), "{strat:?}");
        }
    }

    #[test]
    fn best_response_reaches_nash_equilibrium() {
        let st = streams(25);
        let sv = servers();
        let a = place(&st, &sv, PlacementStrategy::BestResponse);
        let model = ServerLoadModel::new(&st, &sv);
        let loads = model.loads_for(&a);
        // No stream can strictly improve by unilateral deviation.
        for (k, &cur) in a.iter().enumerate() {
            let cur_cost = model.ell[k][cur] * loads[cur];
            for (s, &load) in loads.iter().enumerate() {
                if s == cur {
                    continue;
                }
                let l = model.ell[k][s];
                assert!(
                    l * (load + l) >= cur_cost - 1e-9,
                    "stream {k} would deviate {cur}->{s}"
                );
            }
        }
    }

    #[test]
    fn best_response_moves_decrease_potential() {
        // Start from the worst possible seed (everything on server 0) and
        // verify Φ decreases monotonically by replaying moves.
        let st = streams(15);
        let sv = servers();
        let model = ServerLoadModel::new(&st, &sv);
        let seed = vec![0usize; st.len()];
        let phi0 = model.potential(&seed);
        let (eq, moves) = best_response(&st, &sv, seed);
        assert!(moves > 0);
        assert!(model.potential(&eq) < phi0);
    }

    #[test]
    fn greedy_beats_round_robin_on_heterogeneous_servers() {
        let st = streams(30);
        let sv = servers();
        let model = ServerLoadModel::new(&st, &sv);
        let g = place(&st, &sv, PlacementStrategy::Greedy);
        let rr = place(&st, &sv, PlacementStrategy::RoundRobin);
        assert!(model.objective(&g) <= model.objective(&rr));
    }

    #[test]
    fn best_response_not_worse_than_its_greedy_seed() {
        let st = streams(30);
        let sv = servers();
        let model = ServerLoadModel::new(&st, &sv);
        let g = greedy(&model);
        let (br, _) = best_response(&st, &sv, g.clone());
        assert!(model.objective(&br) <= model.objective(&g) + 1e-9);
    }

    #[test]
    fn fast_servers_attract_more_load() {
        let st = streams(40);
        let sv = servers();
        let a = place(&st, &sv, PlacementStrategy::BestResponse);
        let count = |srv: usize| a.iter().filter(|&&s| s == srv).count();
        // server 1 (2.6 TFLOPS) should host more than server 0 (0.4 TFLOPS)
        assert!(count(1) > count(0), "{:?}", (count(0), count(1), count(2)));
    }

    #[test]
    fn single_server_everything_lands_there() {
        let sv = vec![ServerCap {
            server: 0,
            capacity_fps: 1e12,
        }];
        let a = place(&streams(5), &sv, PlacementStrategy::BestResponse);
        assert!(a.iter().all(|&s| s == 0));
    }

    #[test]
    fn empty_streams_ok() {
        assert!(place(&[], &servers(), PlacementStrategy::Greedy).is_empty());
    }
}
