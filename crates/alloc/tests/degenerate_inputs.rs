//! Degenerate-input coverage for the allocation layer.
//!
//! Every policy must survive adversarial demand vectors — NaN/negative
//! timings, all-zero weights, single streams, and million-stream loads —
//! returning shares that are finite, non-negative, and on (or under) the
//! simplex. `allocate` and `allocate_into` must agree bit-for-bit so the
//! hot path can use the scratch variant without behavioral drift.

use scalpel_alloc::bandwidth_alloc::{self, BandwidthDemand, BandwidthPolicy};
use scalpel_alloc::compute_alloc::{self, ComputeDemand, ComputePolicy};
use scalpel_alloc::convex::AllocScratch;

const COMPUTE_POLICIES: [ComputePolicy; 5] = [
    ComputePolicy::Equal,
    ComputePolicy::Proportional,
    ComputePolicy::WeightedSum,
    ComputePolicy::MinMax,
    ComputePolicy::DeadlineAware,
];

const BANDWIDTH_POLICIES: [BandwidthPolicy; 4] = [
    BandwidthPolicy::Equal,
    BandwidthPolicy::WeightedSum,
    BandwidthPolicy::MinMax,
    BandwidthPolicy::DeadlineAware,
];

fn cd(stream: usize, pre: f64, edge: f64, weight: f64, deadline: f64) -> ComputeDemand {
    ComputeDemand {
        stream,
        pre_edge_s: pre,
        edge_s_full: edge,
        weight,
        deadline_s: deadline,
    }
}

fn bd(device: usize, pre: f64, tx: f64, post: f64, weight: f64, deadline: f64) -> BandwidthDemand {
    BandwidthDemand {
        device,
        pre_tx_s: pre,
        tx_s_full: tx,
        post_tx_s: post,
        weight,
        deadline_s: deadline,
    }
}

/// Shares must be finite, non-negative, and sum to at most 1 (+ slack).
fn assert_valid_shares(shares: &[f64], ctx: &str) {
    let mut sum = 0.0;
    for (i, &s) in shares.iter().enumerate() {
        assert!(s.is_finite(), "{ctx}: share {i} not finite: {s}");
        assert!(s >= 0.0, "{ctx}: share {i} negative: {s}");
        sum += s;
    }
    assert!(sum <= 1.0 + 1e-6, "{ctx}: shares sum to {sum} > 1");
}

fn compute_into(demands: &[ComputeDemand], policy: ComputePolicy) -> Vec<f64> {
    let mut out = Vec::new();
    compute_alloc::allocate_into(demands, policy, &mut AllocScratch::default(), &mut out);
    out
}

fn bandwidth_into(demands: &[BandwidthDemand], policy: BandwidthPolicy) -> Vec<f64> {
    let mut out = Vec::new();
    bandwidth_alloc::allocate_into(demands, policy, &mut AllocScratch::default(), &mut out);
    out
}

fn assert_bit_identical(a: &[f64], b: &[f64], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{ctx}: share {i} differs: {x} vs {y}"
        );
    }
}

/// The adversarial demand vectors every policy is run against.
fn poison_compute_cases() -> Vec<(&'static str, Vec<ComputeDemand>)> {
    vec![
        ("empty", vec![]),
        ("single", vec![cd(0, 0.01, 0.02, 1.0, 0.1)]),
        ("single-zero-demand", vec![cd(0, 0.0, 0.0, 1.0, 0.1)]),
        (
            "zero-edge-demand",
            vec![cd(0, 0.01, 0.0, 1.0, 0.1), cd(1, 0.0, 0.0, 2.0, 0.2)],
        ),
        (
            "nan-demand",
            vec![
                cd(0, f64::NAN, f64::NAN, 1.0, 0.1),
                cd(1, 0.01, 0.02, 1.0, 0.1),
            ],
        ),
        (
            "negative-demand",
            vec![cd(0, -0.5, -1.0, 1.0, 0.1), cd(1, 0.01, 0.02, 1.0, 0.1)],
        ),
        (
            "infinite-demand",
            vec![
                cd(0, f64::INFINITY, f64::INFINITY, 1.0, 0.1),
                cd(1, 0.01, 0.02, 1.0, 0.1),
            ],
        ),
        (
            "all-zero-weights",
            vec![cd(0, 0.01, 0.02, 0.0, 0.1), cd(1, 0.005, 0.03, 0.0, 0.2)],
        ),
        (
            "nan-weights",
            vec![
                cd(0, 0.01, 0.02, f64::NAN, 0.1),
                cd(1, 0.005, 0.03, -1.0, 0.2),
            ],
        ),
        (
            "poison-deadlines",
            vec![
                cd(0, 0.01, 0.02, 1.0, f64::NAN),
                cd(1, 0.005, 0.03, 1.0, -0.5),
                cd(2, 0.002, 0.01, 1.0, 0.0),
            ],
        ),
        (
            "huge-spread",
            vec![cd(0, 1e-12, 1e-12, 1e-9, 1e-6), cd(1, 1e3, 1e6, 1e9, 1e12)],
        ),
    ]
}

fn poison_bandwidth_cases() -> Vec<(&'static str, Vec<BandwidthDemand>)> {
    vec![
        ("empty", vec![]),
        ("single", vec![bd(0, 0.01, 0.004, 0.02, 1.0, 0.1)]),
        ("single-no-tx", vec![bd(0, 0.01, 0.0, 0.02, 1.0, 0.1)]),
        (
            "all-zero-tx",
            vec![
                bd(0, 0.01, 0.0, 0.0, 1.0, 0.1),
                bd(1, 0.02, 0.0, 0.0, 1.0, 0.2),
            ],
        ),
        (
            "nan-demand",
            vec![
                bd(0, f64::NAN, f64::NAN, f64::NAN, 1.0, 0.1),
                bd(1, 0.01, 0.004, 0.02, 1.0, 0.1),
            ],
        ),
        (
            "negative-demand",
            vec![
                bd(0, -0.5, -1.0, -0.1, 1.0, 0.1),
                bd(1, 0.01, 0.004, 0.02, 1.0, 0.1),
            ],
        ),
        (
            "all-zero-weights",
            vec![
                bd(0, 0.01, 0.004, 0.02, 0.0, 0.1),
                bd(1, 0.0, 0.02, 0.01, 0.0, 0.2),
            ],
        ),
        (
            "poison-deadlines",
            vec![
                bd(0, 0.01, 0.004, 0.02, 1.0, f64::NEG_INFINITY),
                bd(1, 0.0, 0.02, 0.01, 1.0, 0.0),
            ],
        ),
    ]
}

#[test]
fn compute_policies_survive_poisoned_demands() {
    for (name, demands) in poison_compute_cases() {
        for policy in COMPUTE_POLICIES {
            let ctx = format!("compute/{name}/{policy:?}");
            let shares = compute_alloc::allocate(&demands, policy);
            assert_eq!(shares.len(), demands.len(), "{ctx}: arity");
            assert_valid_shares(&shares, &ctx);
        }
    }
}

#[test]
fn bandwidth_policies_survive_poisoned_demands() {
    for (name, demands) in poison_bandwidth_cases() {
        for policy in BANDWIDTH_POLICIES {
            let ctx = format!("bandwidth/{name}/{policy:?}");
            let shares = bandwidth_alloc::allocate(&demands, policy);
            assert_eq!(shares.len(), demands.len(), "{ctx}: arity");
            assert_valid_shares(&shares, &ctx);
        }
    }
}

#[test]
fn allocate_and_allocate_into_are_bit_identical() {
    for (name, demands) in poison_compute_cases() {
        for policy in COMPUTE_POLICIES {
            let ctx = format!("compute/{name}/{policy:?}");
            assert_bit_identical(
                &compute_alloc::allocate(&demands, policy),
                &compute_into(&demands, policy),
                &ctx,
            );
        }
    }
    for (name, demands) in poison_bandwidth_cases() {
        for policy in BANDWIDTH_POLICIES {
            let ctx = format!("bandwidth/{name}/{policy:?}");
            assert_bit_identical(
                &bandwidth_alloc::allocate(&demands, policy),
                &bandwidth_into(&demands, policy),
                &ctx,
            );
        }
    }
}

/// Reusing one scratch across differently-shaped calls must not leak state
/// between calls: results stay bit-identical to a fresh-scratch run.
#[test]
fn scratch_reuse_does_not_leak_state() {
    let mut scratch = AllocScratch::default();
    let mut out = Vec::new();
    for (name, demands) in poison_compute_cases() {
        for policy in COMPUTE_POLICIES {
            compute_alloc::allocate_into(&demands, policy, &mut scratch, &mut out);
            let fresh = compute_into(&demands, policy);
            assert_bit_identical(&out, &fresh, &format!("reuse/compute/{name}/{policy:?}"));
        }
    }
    for (name, demands) in poison_bandwidth_cases() {
        for policy in BANDWIDTH_POLICIES {
            bandwidth_alloc::allocate_into(&demands, policy, &mut scratch, &mut out);
            let fresh = bandwidth_into(&demands, policy);
            assert_bit_identical(&out, &fresh, &format!("reuse/bandwidth/{name}/{policy:?}"));
        }
    }
}

/// Latencies under sanitized shares never come back NaN, even for poisoned
/// demands (a zero share on a positive demand is +inf, which is allowed).
#[test]
fn latencies_under_degenerate_shares_are_not_nan() {
    for (name, demands) in poison_compute_cases() {
        for policy in COMPUTE_POLICIES {
            let shares = compute_alloc::allocate(&demands, policy);
            for (i, l) in compute_alloc::latencies(&demands, &shares)
                .iter()
                .enumerate()
            {
                assert!(!l.is_nan(), "compute/{name}/{policy:?}: latency {i} is NaN");
            }
        }
    }
}

/// One million streams: the solvers stay finite, non-negative, and on the
/// simplex without quadratic blowups or overflow.
#[test]
fn million_stream_stress_stays_on_simplex() {
    const N: usize = 1_000_000;
    let demands: Vec<ComputeDemand> = (0..N)
        .map(|i| {
            // Deterministic pseudo-varied demands; a few poisoned entries.
            let x = (i % 97) as f64;
            let pre = 0.001 + x * 1e-5;
            let edge = 0.002 + ((i % 31) as f64) * 1e-5;
            let weight = 1.0 + (i % 7) as f64;
            let deadline = 0.05 + ((i % 13) as f64) * 0.01;
            match i % 10_007 {
                0 => cd(i, f64::NAN, edge, weight, deadline),
                1 => cd(i, pre, -edge, weight, deadline),
                _ => cd(i, pre, edge, weight, deadline),
            }
        })
        .collect();
    for policy in [
        ComputePolicy::Equal,
        ComputePolicy::Proportional,
        ComputePolicy::WeightedSum,
        ComputePolicy::MinMax,
    ] {
        let shares = compute_alloc::allocate(&demands, policy);
        assert_eq!(shares.len(), N);
        assert_valid_shares(&shares, &format!("stress/{policy:?}"));
    }
}

/// Shares that are individually finite but sum past f64::MAX used to
/// renormalize by +∞ — every entry divided to 0.0 and the vector left
/// the simplex entirely. The clamp-before-sum in `sanitize_shares` must
/// land the vector back on the simplex instead.
#[test]
fn sanitize_shares_renormalizes_a_finite_but_overflowing_sum() {
    let mut shares = vec![1.5e308, 1e308];
    let changed = scalpel_alloc::convex::sanitize_shares(&mut shares);
    assert!(changed, "an overflowing vector must report modification");
    let sum: f64 = shares.iter().sum();
    assert!(
        sum.is_finite() && sum <= 1.0 + 1e-9,
        "renormalized sum must sit on or under the simplex, got {sum}"
    );
    assert!(
        shares.iter().all(|&s| s.is_finite() && s > 0.0),
        "both huge-but-finite entries must survive renormalization \
         with their proportions, got {shares:?}"
    );
    // Proportions are preserved through the shared clamp: equal clamps
    // renormalize to equal shares.
    assert!(
        (shares[0] - shares[1]).abs() < 1e-12,
        "entries clamped to the same component must renormalize equally"
    );
}
