//! AoS ≡ SoA equivalence for the allocation entry points.
//!
//! `allocate_into` gathers `&[Demand]` structs into columns and defers
//! to `allocate_cols_into`; the incremental evaluator skips the gather
//! and hands over its own column buffers directly. Both doors must
//! produce bit-identical shares for every policy — including on raw
//! inputs carrying the NaN deadlines and zero demands the sanitizer
//! handles internally — or the evaluator's SoA fast path silently
//! diverges from the reference AoS world the tests and baselines use.

use proptest::prelude::*;
use scalpel_alloc::bandwidth_alloc::{self, BandwidthDemand, BandwidthPolicy};
use scalpel_alloc::compute_alloc::{self, ComputeDemand, ComputePolicy};
use scalpel_alloc::convex::AllocScratch;
use scalpel_alloc::{BandwidthCols, ComputeCols};

const COMPUTE_POLICIES: [ComputePolicy; 5] = [
    ComputePolicy::Equal,
    ComputePolicy::Proportional,
    ComputePolicy::WeightedSum,
    ComputePolicy::MinMax,
    ComputePolicy::DeadlineAware,
];

const BANDWIDTH_POLICIES: [BandwidthPolicy; 4] = [
    BandwidthPolicy::Equal,
    BandwidthPolicy::WeightedSum,
    BandwidthPolicy::MinMax,
    BandwidthPolicy::DeadlineAware,
];

/// Raw per-field value: mostly plausible positives, with zeros (idle
/// streams) and NaN (infeasible deadline marker) mixed in so the
/// equivalence covers the sanitizer's territory, not just clean inputs.
fn raw() -> impl Strategy<Value = f64> {
    prop_oneof![
        6 => 1e-4f64..10.0,
        1 => Just(0.0f64),
        1 => Just(f64::NAN),
    ]
}

fn compute_demands() -> impl Strategy<Value = Vec<ComputeDemand>> {
    prop::collection::vec((raw(), raw(), raw(), raw()), 0..24).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (pre, edge, w, dl))| ComputeDemand {
                stream: i,
                pre_edge_s: pre,
                edge_s_full: edge,
                weight: w,
                deadline_s: dl,
            })
            .collect()
    })
}

fn bandwidth_demands() -> impl Strategy<Value = Vec<BandwidthDemand>> {
    prop::collection::vec((raw(), raw(), raw(), raw(), raw()), 0..24).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (pre, tx, post, w, dl))| BandwidthDemand {
                device: i,
                pre_tx_s: pre,
                tx_s_full: tx,
                post_tx_s: post,
                weight: w,
                deadline_s: dl,
            })
            .collect()
    })
}

fn assert_bit_identical(aos: &[f64], soa: &[f64], ctx: &str) {
    assert_eq!(aos.len(), soa.len(), "{ctx}: length diverged");
    for (i, (a, s)) in aos.iter().zip(soa).enumerate() {
        assert_eq!(
            a.to_bits(),
            s.to_bits(),
            "{ctx}: share {i} diverged ({a:?} vs {s:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compute_aos_and_soa_doors_are_bit_identical(demands in compute_demands()) {
        // Caller-built columns, the way the evaluator's gather buffers
        // arrive — independent of allocate_into's internal gather.
        let pre: Vec<f64> = demands.iter().map(|d| d.pre_edge_s).collect();
        let edge: Vec<f64> = demands.iter().map(|d| d.edge_s_full).collect();
        let weight: Vec<f64> = demands.iter().map(|d| d.weight).collect();
        let deadline: Vec<f64> = demands.iter().map(|d| d.deadline_s).collect();
        for policy in COMPUTE_POLICIES {
            let aos = compute_alloc::allocate(&demands, policy);
            let mut soa = Vec::new();
            compute_alloc::allocate_cols_into(
                ComputeCols {
                    pre_edge_s: &pre,
                    edge_s_full: &edge,
                    weight: &weight,
                    deadline_s: &deadline,
                },
                policy,
                &mut AllocScratch::default(),
                &mut soa,
            );
            assert_bit_identical(&aos, &soa, &format!("compute/{policy:?}"));
        }
    }

    #[test]
    fn bandwidth_aos_and_soa_doors_are_bit_identical(demands in bandwidth_demands()) {
        let pre: Vec<f64> = demands.iter().map(|d| d.pre_tx_s).collect();
        let tx: Vec<f64> = demands.iter().map(|d| d.tx_s_full).collect();
        let post: Vec<f64> = demands.iter().map(|d| d.post_tx_s).collect();
        let weight: Vec<f64> = demands.iter().map(|d| d.weight).collect();
        let deadline: Vec<f64> = demands.iter().map(|d| d.deadline_s).collect();
        for policy in BANDWIDTH_POLICIES {
            let aos = bandwidth_alloc::allocate(&demands, policy);
            let mut soa = Vec::new();
            bandwidth_alloc::allocate_cols_into(
                BandwidthCols {
                    pre_tx_s: &pre,
                    tx_s_full: &tx,
                    post_tx_s: &post,
                    weight: &weight,
                    deadline_s: &deadline,
                },
                policy,
                &mut AllocScratch::default(),
                &mut soa,
            );
            assert_bit_identical(&aos, &soa, &format!("bandwidth/{policy:?}"));
        }
    }
}
