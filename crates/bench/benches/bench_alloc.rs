//! Allocation-component benchmarks: water-filling, min-max bisection,
//! deadline shares, placement game convergence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalpel_alloc::convex::{self, HyperbolicDemand};
use scalpel_alloc::placement::{self, PlacementStrategy, PlacementStream, ServerCap};

fn demands(n: usize) -> Vec<HyperbolicDemand> {
    (0..n)
        .map(|i| {
            HyperbolicDemand::new(
                0.005 + 0.001 * (i % 7) as f64,
                0.01 + 0.003 * (i % 5) as f64,
            )
        })
        .collect()
}

fn bench_allocators(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocators");
    for &n in &[10usize, 50, 200] {
        let ds = demands(n);
        let ws = vec![1.0; n];
        let dls: Vec<f64> = (0..n).map(|i| 5.0 + 0.01 * (i % 3) as f64).collect();
        g.bench_with_input(BenchmarkId::new("weighted_sum", n), &n, |b, _| {
            b.iter(|| convex::weighted_sum_shares(&ds, &ws))
        });
        g.bench_with_input(BenchmarkId::new("minmax_bisection", n), &n, |b, _| {
            b.iter(|| convex::minmax_shares(&ds))
        });
        g.bench_with_input(BenchmarkId::new("deadline_shares", n), &n, |b, _| {
            b.iter(|| convex::deadline_shares(&ds, &dls, &ws))
        });
    }
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    let caps = [4e11, 2.6e12, 5e12, 2.6e12];
    let servers: Vec<ServerCap> = caps
        .iter()
        .enumerate()
        .map(|(server, &capacity_fps)| ServerCap {
            server,
            capacity_fps,
        })
        .collect();
    for &n in &[20usize, 100, 400] {
        let streams: Vec<PlacementStream> = (0..n)
            .map(|i| PlacementStream {
                stream: i,
                edge_flops: 1e9 * (1 + i % 9) as f64,
                weight: 1.0 + (i % 4) as f64,
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("best_response", n), &n, |b, _| {
            b.iter(|| placement::place(&streams, &servers, PlacementStrategy::BestResponse))
        });
        g.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| placement::place(&streams, &servers, PlacementStrategy::Greedy))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_allocators, bench_placement);
criterion_main!(benches);
