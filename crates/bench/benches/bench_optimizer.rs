//! F11 (criterion form): joint-optimizer runtime vs problem size, plus the
//! cost of one analytic configuration evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalpel_core::config::ScenarioConfig;
use scalpel_core::evaluator::{AllocPolicies, Evaluator};
use scalpel_core::optimizer::{self, OptimizerConfig};

fn evaluator_for(n_streams: usize) -> Evaluator {
    let scfg = ScenarioConfig {
        num_aps: 4,
        devices_per_ap: n_streams.div_ceil(4),
        ..ScenarioConfig::default()
    };
    Evaluator::new(&scfg.build(), None)
}

fn bench_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer_solve");
    g.sample_size(10);
    for &n in &[12usize, 40, 96] {
        let ev = evaluator_for(n);
        let cfg = OptimizerConfig {
            rounds: 2,
            gibbs_iters: 50,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| optimizer::solve(&ev, &cfg))
        });
    }
    g.finish();
}

fn bench_single_evaluation(c: &mut Criterion) {
    let ev = evaluator_for(40);
    let asg = optimizer::initial_assignment(&ev, scalpel_alloc::PlacementStrategy::BestResponse);
    c.bench_function("evaluate_configuration_40_streams", |b| {
        b.iter(|| ev.evaluate(&asg, AllocPolicies::optimal()))
    });
}

fn bench_menu_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("menu_build");
    g.sample_size(10);
    let scfg = ScenarioConfig {
        num_aps: 4,
        devices_per_ap: 10,
        ..ScenarioConfig::default()
    };
    let problem = scfg.build();
    g.bench_function("evaluator_new_40_streams", |b| {
        b.iter(|| Evaluator::new(&problem, None))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_solve,
    bench_single_evaluation,
    bench_menu_build
);
criterion_main!(benches);
