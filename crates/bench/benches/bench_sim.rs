//! Discrete-event simulator throughput on the default scenario — the
//! per-run cost every sweep figure pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalpel_core::baselines::{solve_with, Method};
use scalpel_core::compiler;
use scalpel_core::config::ScenarioConfig;
use scalpel_core::evaluator::Evaluator;
use scalpel_core::optimizer::OptimizerConfig;
use scalpel_sim::{EdgeSim, SimConfig};

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("edge_sim");
    g.sample_size(10);
    for &devices in &[8usize, 40] {
        let scfg = ScenarioConfig {
            num_aps: 4,
            devices_per_ap: devices.div_ceil(4),
            sim: SimConfig {
                horizon_s: 10.0,
                warmup_s: 1.0,
                seed: 1,
                fading: true,
                ..SimConfig::default()
            },
            ..ScenarioConfig::default()
        };
        let problem = scfg.build();
        let ev = Evaluator::new(&problem, None);
        let sol = solve_with(&ev, Method::Neurosurgeon, &OptimizerConfig::default());
        let streams = compiler::compile(&problem, &ev, &sol.assignment, &sol.result);
        g.bench_with_input(
            BenchmarkId::new("run_10s_horizon", devices),
            &devices,
            |b, _| {
                b.iter(|| {
                    EdgeSim::new(problem.cluster.clone(), streams.clone(), scfg.sim.clone())
                        .expect("valid")
                        .run()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
