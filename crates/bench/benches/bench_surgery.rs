//! Surgery-component benchmarks: exit-setting DP, candidate generation,
//! cut enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalpel_models::{zoo, DifficultyModel};
use scalpel_surgery::candidates::{self, CandidateConfig, ReferenceEnv};
use scalpel_surgery::exit_setting::{self, ExitCandidate, ExitSettingProblem};

fn env() -> ReferenceEnv {
    ReferenceEnv {
        device_sec_per_flop: 1.0 / 25.0e9,
        tx_sec_per_byte: 8.0 / 50e6,
        edge_sec_per_flop: 1.0 / 1.0e12,
        rtt_s: 2e-3,
    }
}

fn bench_exit_setting_dp(c: &mut Criterion) {
    let mut g = c.benchmark_group("exit_setting_dp");
    for &m in &[5usize, 10, 20] {
        let hosts: Vec<ExitCandidate> = (1..=m)
            .map(|i| ExitCandidate {
                node: i * 2,
                depth_fraction: i as f64 / (m + 1) as f64,
                time_to_host_s: i as f64 * 0.01,
                head_time_s: 0.001,
            })
            .collect();
        let p = ExitSettingProblem {
            hosts,
            full_prefix_time_s: 0.1 * m as f64 / 5.0,
            rest_time_s: 0.3,
            max_exits: 3,
            accuracy_floor: 0.72,
            acc_full: 0.76,
            difficulty: DifficultyModel::default(),
            threshold_grid: ExitSettingProblem::default_grid(),
        };
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| exit_setting::solve(&p))
        });
    }
    g.finish();
}

fn bench_candidate_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("candidate_generation");
    g.sample_size(20);
    for name in ["alexnet", "resnet18", "vgg16", "mobilenet_v2"] {
        let model = zoo::by_name(name).expect("zoo model");
        let cfg = CandidateConfig::default();
        g.bench_function(name, |b| {
            b.iter(|| candidates::generate(&model, &env(), &cfg))
        });
    }
    g.finish();
}

fn bench_cut_enumeration(c: &mut Criterion) {
    let googlenet = zoo::googlenet(1000);
    c.bench_function("cut_points_googlenet", |b| {
        b.iter(|| googlenet.cut_points())
    });
}

criterion_group!(
    benches,
    bench_exit_setting_dp,
    bench_candidate_generation,
    bench_cut_enumeration
);
criterion_main!(benches);
