//! The experiment runner.
//!
//! ```text
//! experiments <id> [--quick]
//!   id ∈ { t1, t2, t3, f4, f5, f6, f7, f8, f9, f10, f11, all }
//! ```
//!
//! `--quick` shrinks sweeps and simulation horizons for smoke runs; omit it
//! (and build with `--release`) to regenerate the full EXPERIMENTS.md
//! numbers.

use scalpel_bench::experiments;

fn usage() -> ! {
    eprintln!("usage: experiments <t1|t2|t3|f4..f18|a1|all> [--quick]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let quick = args.iter().any(|a| a == "--quick");
    let id = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    match id {
        "t1" => experiments::t1_models::run(),
        "t2" => experiments::t2_params::run(),
        "t3" => experiments::t3_overall::run(quick),
        "f4" => experiments::f4_scalability::run(quick),
        "f5" => experiments::f5_arrival::run(quick),
        "f6" => experiments::f6_bandwidth::run(quick),
        "f7" => experiments::f7_heterogeneity::run(quick),
        "f8" => experiments::f8_accuracy::run(quick),
        "f9" => experiments::f9_convergence::run(quick),
        "f10" => experiments::f10_ablation::run(quick),
        "f11" => experiments::f11_runtime::run(quick),
        "f12" => experiments::f12_burstiness::run(quick),
        "f13" => experiments::f13_energy::run(quick),
        "f14" => experiments::f14_validation::run(quick),
        "f15" => experiments::f15_dynamics::run(quick),
        "f16" => experiments::f16_faults::run(quick),
        "f17" => experiments::f17_recovery::run(quick),
        "f18" => experiments::f18_churn::run(quick),
        "a1" => experiments::a1_design_ablation::run(quick),
        "all" => experiments::run_all(quick),
        _ => usage(),
    }
}
