//! Quick hot-path profiler for kernel work: times only the N=512
//! incremental-descent row (the perfbench bottleneck) so optimization
//! iterations don't pay for the fleet-scale rows.
//!
//! ```text
//! hotprof [--full] [--reps R]
//! ```

use scalpel_core::baselines::{solve_with, Method};
use scalpel_core::compiler;
use scalpel_core::config::{ScenarioConfig, ServerMix};
use scalpel_core::evaluator::Evaluator;
use scalpel_core::optimizer::{self, EvalMode, OptimizerConfig};
use scalpel_sim::{EdgeSim, SimConfig, SimScratch};
use std::time::Instant;

fn scenario(streams: usize) -> ScenarioConfig {
    let num_aps = (streams / 8).max(1);
    ScenarioConfig {
        num_aps,
        devices_per_ap: streams.div_ceil(num_aps),
        servers: ServerMix::Synthetic {
            count: num_aps,
            mean_fps: 1e12,
            cv: 0.3,
        },
        ..ScenarioConfig::default()
    }
}

/// The simbench clean-100k scenario, replicated (64 APs × 8 devices,
/// 4 req/s, 40 GFLOP/s servers).
fn sim_row(reps: usize) {
    let requests = 100_000usize;
    let streams = 512usize;
    let rate_hz = 4.0;
    let num_aps = streams / 8;
    let total_rate = streams as f64 * rate_hz;
    let warmup = 1.0;
    let cfg = ScenarioConfig {
        num_aps,
        devices_per_ap: streams / num_aps,
        arrival_rate_hz: rate_hz,
        servers: ServerMix::Synthetic {
            count: num_aps,
            mean_fps: 4e10,
            cv: 0.3,
        },
        sim: SimConfig {
            horizon_s: warmup + requests as f64 / total_rate,
            warmup_s: warmup,
            seed: 11,
            fading: true,
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    };
    let problem = cfg.build();
    let ev = Evaluator::new(&problem, None);
    let opt_cfg = OptimizerConfig {
        rounds: 1,
        gibbs_iters: 0,
        ..Default::default()
    };
    let sol = solve_with(&ev, Method::Neurosurgeon, &opt_cfg);
    let compiled = compiler::compile(&problem, &ev, &sol.assignment, &sol.result);
    let sim = EdgeSim::new(problem.cluster.clone(), compiled, cfg.sim.clone())
        .expect("scenario compiles");
    let mut scratch = SimScratch::new();
    let mut best = f64::INFINITY;
    for r in 0..reps {
        let t = Instant::now();
        let _ = sim.run_with_scratch(&mut scratch);
        let wall = t.elapsed().as_secs_f64();
        best = best.min(wall);
        println!(
            "sim rep {r}: {:.1} ms, {} events, {:.2}M events/s",
            wall * 1e3,
            scratch.events_scheduled(),
            scratch.events_scheduled() as f64 / wall / 1e6,
        );
    }
    println!("sim clean 100k best: {:.1} ms", best * 1e3);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_full = args.iter().any(|a| a == "--full");
    let run_sim = args.iter().any(|a| a == "--sim");
    let reps: usize = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    if run_sim {
        sim_row(reps);
        return;
    }

    let problem = scenario(512).build();
    let t = Instant::now();
    let ev = Evaluator::new(&problem, None);
    println!("evaluator build: {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let cfg = OptimizerConfig {
        rounds: 2,
        gibbs_iters: 100,
        eval_mode: EvalMode::Incremental,
        ..Default::default()
    };
    let mut best_ms = f64::INFINITY;
    let mut evals = 0usize;
    let mut obj = 0.0f64;
    for r in 0..reps {
        let t0 = Instant::now();
        let sol = optimizer::solve(&ev, &cfg);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        evals = sol.trace.evaluations;
        obj = sol.result.objective;
        println!(
            "rep {r}: incremental {:.1} ms, {:.0} evals/s",
            ms,
            evals as f64 / (ms / 1e3)
        );
        best_ms = best_ms.min(ms);
    }
    println!(
        "N=512 incremental best: {best_ms:.1} ms, {evals} evals, {:.0} evals/s, objective {obj:.9}",
        evals as f64 / (best_ms / 1e3)
    );

    if run_full {
        let full_cfg = OptimizerConfig {
            eval_mode: EvalMode::Full,
            ..cfg
        };
        let t0 = Instant::now();
        let sol = optimizer::solve(&ev, &full_cfg);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "N=512 full: {:.1} ms, {:.0} evals/s, objective {:.9}",
            ms,
            sol.trace.evaluations as f64 / (ms / 1e3),
            sol.result.objective
        );
        assert_eq!(sol.result.objective.to_bits(), obj.to_bits(), "parity");
    }
}
