//! Optimizer micro-benchmark: full re-evaluation vs incremental delta
//! evaluation on identical searches.
//!
//! ```text
//! perfbench [--smoke] [--out PATH]
//! ```
//!
//! Runs the joint search (coordinate descent + Gibbs refinement) twice per
//! problem size — once with `EvalMode::Full`, once with
//! `EvalMode::Incremental` — asserts the two walked bit-identical
//! objective traces and landed on identical assignments, and reports wall
//! time, evaluations/second and the speedup. Results land in
//! `BENCH_optimizer.json` (override with `--out`).
//!
//! The fleet-scale section benchmarks `solve_sharded` (partition →
//! parallel shard solves → reconcile → polish) at N = 4096 / 10⁴ / 10⁵
//! and measures the objective gap to the centralized solver at N = 512,
//! asserting it stays ≤ 2% (DESIGN.md §2.12).
//!
//! `--smoke` runs the smallest size with a short search: a CI-friendly
//! parity check with no timing assertions (timings are still recorded),
//! plus one sharded row (N = 4096) with determinism/trace-parity
//! assertions and the N = 512 gap check.
//! The full run (`cargo run --release -p scalpel-bench --bin perfbench`)
//! regenerates the numbers quoted in EXPERIMENTS.md.

use scalpel_bench::table::Table;
use scalpel_core::config::{ScenarioConfig, ServerMix};
use scalpel_core::evaluator::Evaluator;
use scalpel_core::optimizer::{self, Budget, EvalMode, OptimizerConfig, Solution};
use scalpel_core::shard::{self, ShardConfig};
use std::time::Instant;

/// Asserted ceiling on the sharded-vs-centralized objective gap at N=512.
const GAP_BOUND_PCT: f64 = 2.0;

/// `incremental_evals_per_sec` on the N=512 row of BENCH_optimizer.json
/// as recorded *before* the SoA/SIMD kernel work. The smoke gate asserts
/// current throughput never falls below this; the kernels landed ~5.8×
/// above it, so the wide margin absorbs CI-runner noise and the gate only
/// fires on a genuine hot-path regression.
const N512_BASELINE_EVALS_PER_SEC: f64 = 69_443.2;

/// `incremental_evals_per_sec` per size row as recorded in
/// BENCH_optimizer.json at this PR's parent commit (before the SoA/SIMD
/// kernel work); `kernel_speedup` in the JSON is measured against these.
fn pre_kernel_evals_per_sec(streams: usize) -> Option<f64> {
    match streams {
        32 => Some(218_849.9),
        128 => Some(137_552.9),
        512 => Some(N512_BASELINE_EVALS_PER_SEC),
        _ => None,
    }
}

struct SizeReport {
    streams: usize,
    servers: usize,
    menu_plans: usize,
    evaluations: usize,
    full_ms: f64,
    incremental_ms: f64,
    speedup: f64,
    objective: f64,
}

fn scenario(streams: usize) -> ScenarioConfig {
    // Grow the topology, not the per-group load: 8 devices per AP and one
    // server per AP throughout, so every size is a loaded-but-functional
    // system (offloading actually happens) and larger N means more
    // resource groups — the regime the incremental evaluator targets.
    let num_aps = (streams / 8).max(1);
    ScenarioConfig {
        num_aps,
        devices_per_ap: streams.div_ceil(num_aps),
        servers: ServerMix::Synthetic {
            count: num_aps,
            mean_fps: 1e12,
            cv: 0.3,
        },
        ..ScenarioConfig::default()
    }
}

fn assert_parity(full: &Solution, inc: &Solution, streams: usize) {
    assert_eq!(
        full.trace.evaluations, inc.trace.evaluations,
        "N={streams}: evaluation counts diverged"
    );
    assert_eq!(
        full.trace.objective.len(),
        inc.trace.objective.len(),
        "N={streams}: trace lengths diverged"
    );
    for (i, (a, b)) in full
        .trace
        .objective
        .iter()
        .zip(&inc.trace.objective)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "N={streams}: trace[{i}] diverged: {a} vs {b}"
        );
    }
    assert_eq!(
        full.assignment, inc.assignment,
        "N={streams}: final assignments diverged"
    );
    assert_eq!(
        full.result.objective.to_bits(),
        inc.result.objective.to_bits(),
        "N={streams}: final objectives diverged"
    );
}

fn bench_size(streams: usize, smoke: bool) -> SizeReport {
    let scfg = scenario(streams);
    let problem = scfg.build();
    let ev = Evaluator::new(&problem, None);
    let base = OptimizerConfig {
        rounds: if smoke { 1 } else { 2 },
        gibbs_iters: if smoke { 30 } else { 100 },
        ..Default::default()
    };
    let menu_plans: usize = (0..ev.num_streams()).map(|k| ev.menu(k).len()).sum();

    let full_cfg = OptimizerConfig {
        eval_mode: EvalMode::Full,
        ..base.clone()
    };
    let t0 = Instant::now();
    let full = optimizer::solve(&ev, &full_cfg);
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;

    let inc_cfg = OptimizerConfig {
        eval_mode: EvalMode::Incremental,
        ..base
    };
    let t1 = Instant::now();
    let inc = optimizer::solve(&ev, &inc_cfg);
    let incremental_ms = t1.elapsed().as_secs_f64() * 1e3;

    assert_parity(&full, &inc, ev.num_streams());

    // Anytime-API guard: an unconstrained budget must be a pure pass-through
    // — same trace, same assignment, same objective bits as plain `solve`.
    let anytime = optimizer::solve_with_budget(&ev, &inc_cfg, Budget::UNLIMITED);
    assert!(
        anytime.converged,
        "N={}: unlimited budget reported non-convergence",
        ev.num_streams()
    );
    assert_parity(&inc, &anytime.solution, ev.num_streams());

    SizeReport {
        streams: ev.num_streams(),
        servers: ev.num_servers(),
        menu_plans,
        evaluations: inc.trace.evaluations,
        full_ms,
        incremental_ms,
        speedup: full_ms / incremental_ms.max(1e-9),
        objective: inc.result.objective,
    }
}

fn evals_per_sec(evals: usize, ms: f64) -> f64 {
    evals as f64 / (ms / 1e3).max(1e-12)
}

/// Smoke-mode throughput regression gate: a short incremental-only search
/// at N=512 (the row the kernel work targets) must not fall below the
/// pre-kernel baseline recorded in BENCH_optimizer.json.
fn smoke_throughput_gate() {
    let problem = scenario(512).build();
    let ev = Evaluator::new(&problem, None);
    let cfg = OptimizerConfig {
        rounds: 1,
        gibbs_iters: 30,
        eval_mode: EvalMode::Incremental,
        ..Default::default()
    };
    let t0 = Instant::now();
    let sol = optimizer::solve(&ev, &cfg);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let eps = evals_per_sec(sol.trace.evaluations, ms);
    println!(
        "\nN=512 incremental throughput gate: {:.0} evals/s \
         (floor: pre-kernel baseline {N512_BASELINE_EVALS_PER_SEC:.0})",
        eps
    );
    assert!(
        eps >= N512_BASELINE_EVALS_PER_SEC,
        "N=512 incremental throughput regressed below the pre-kernel \
         baseline: {eps:.0} < {N512_BASELINE_EVALS_PER_SEC:.0} evals/s"
    );
}

struct ShardRow {
    streams: usize,
    shards: usize,
    wall_ms: f64,
    evaluations: usize,
    objective: f64,
    remap_misses: usize,
    reconcile_moves: usize,
    converged: bool,
}

/// Sharded-solver configuration used by every fleet-scale row: default
/// 2048-stream cap, one light descent+Gibbs pass per shard.
fn fleet_cfg(smoke: bool) -> ShardConfig {
    ShardConfig {
        opt: OptimizerConfig {
            rounds: 1,
            gibbs_iters: if smoke { 10 } else { 30 },
            ..Default::default()
        },
        ..ShardConfig::default()
    }
}

fn bench_sharded(streams: usize, smoke: bool) -> ShardRow {
    let problem = scenario(streams).build();
    let cfg = fleet_cfg(smoke);
    // The two smaller rows run to convergence (deterministic, asserted in
    // smoke); the 10⁵ row runs under a 180 s wall budget — the anytime
    // contract at fleet scale, with `converged` recorded honestly.
    let budget = if streams >= 100_000 {
        Budget::wall(std::time::Duration::from_secs(180))
    } else {
        Budget::UNLIMITED
    };
    eprintln!("  [sharded] N={streams}: solving…");
    let t0 = Instant::now();
    let out = shard::solve_sharded(&problem, &cfg, budget)
        .unwrap_or_else(|e| panic!("N={streams}: sharded solve rejected: {e}"));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(
        out.outcome.solution.result.objective.is_finite(),
        "N={streams}: sharded objective not finite"
    );
    if smoke {
        // Determinism / trace parity: a second unbudgeted run must walk a
        // bit-identical trace to a bit-identical incumbent.
        let again = shard::solve_sharded(&problem, &cfg, Budget::UNLIMITED)
            .unwrap_or_else(|e| panic!("N={streams}: sharded re-solve rejected: {e}"));
        assert_parity(&out.outcome.solution, &again.outcome.solution, streams);
    }
    ShardRow {
        streams: problem.streams.len(),
        shards: out.plan.shards.len(),
        wall_ms,
        evaluations: out.outcome.spent.evaluations,
        objective: out.outcome.solution.result.objective,
        remap_misses: out.remap_misses,
        reconcile_moves: out.reconcile.moves,
        converged: out.outcome.converged,
    }
}

struct GapReport {
    streams: usize,
    central: f64,
    sharded: f64,
    gap_pct: f64,
}

/// Objective gap to the centralized solver, measured where the
/// centralized solve is still tractable (N = 512) with the shard cap
/// forced low enough that bisection actually splits the fleet.
fn measure_gap(smoke: bool) -> GapReport {
    let streams = 512;
    let problem = scenario(streams).build();
    let ev = Evaluator::new(&problem, None);
    let opt = OptimizerConfig {
        rounds: if smoke { 1 } else { 2 },
        gibbs_iters: if smoke { 30 } else { 100 },
        ..Default::default()
    };
    let central = optimizer::solve(&ev, &opt);
    let cfg = ShardConfig {
        max_streams: 128,
        opt: opt.clone(),
        polish_gibbs: 100,
        ..ShardConfig::default()
    };
    let out = shard::solve_sharded(&problem, &cfg, Budget::UNLIMITED)
        .unwrap_or_else(|e| panic!("gap run rejected: {e}"));
    assert!(out.plan.shards.len() > 1, "gap run must actually shard");
    let sharded = out.outcome.solution.result.objective;
    let gap_pct = (sharded - central.result.objective) / central.result.objective * 100.0;
    assert!(
        gap_pct <= GAP_BOUND_PCT,
        "N={streams}: sharded gap {gap_pct:.3}% exceeds {GAP_BOUND_PCT}%"
    );
    GapReport {
        streams,
        central: central.result.objective,
        sharded,
        gap_pct,
    }
}

fn write_json(path: &str, smoke: bool, rows: &[SizeReport], fleet: &[ShardRow], gap: &GapReport) {
    // Hand-formatted: the vendored serde stand-in has no derive codegen.
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"optimizer-incremental-eval\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"streams\": {},\n", r.streams));
        out.push_str(&format!("      \"servers\": {},\n", r.servers));
        out.push_str(&format!("      \"menu_plans\": {},\n", r.menu_plans));
        out.push_str(&format!("      \"evaluations\": {},\n", r.evaluations));
        out.push_str(&format!("      \"full_ms\": {:.3},\n", r.full_ms));
        out.push_str(&format!(
            "      \"incremental_ms\": {:.3},\n",
            r.incremental_ms
        ));
        out.push_str(&format!(
            "      \"full_evals_per_sec\": {:.1},\n",
            evals_per_sec(r.evaluations, r.full_ms)
        ));
        out.push_str(&format!(
            "      \"incremental_evals_per_sec\": {:.1},\n",
            evals_per_sec(r.evaluations, r.incremental_ms)
        ));
        out.push_str(&format!("      \"speedup\": {:.2},\n", r.speedup));
        if let Some(pre) = pre_kernel_evals_per_sec(r.streams) {
            out.push_str(&format!("      \"pre_kernel_evals_per_sec\": {pre:.1},\n"));
            out.push_str(&format!(
                "      \"kernel_speedup\": {:.2},\n",
                evals_per_sec(r.evaluations, r.incremental_ms) / pre
            ));
        }
        out.push_str(&format!("      \"objective\": {:.9},\n", r.objective));
        out.push_str("      \"parity\": true\n");
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"sharded\": [\n");
    for (i, r) in fleet.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"streams\": {},\n", r.streams));
        out.push_str(&format!("      \"shards\": {},\n", r.shards));
        out.push_str(&format!("      \"wall_ms\": {:.3},\n", r.wall_ms));
        out.push_str(&format!("      \"evaluations\": {},\n", r.evaluations));
        out.push_str(&format!("      \"objective\": {:.9},\n", r.objective));
        out.push_str(&format!("      \"remap_misses\": {},\n", r.remap_misses));
        out.push_str(&format!(
            "      \"reconcile_moves\": {},\n",
            r.reconcile_moves
        ));
        out.push_str(&format!("      \"converged\": {}\n", r.converged));
        out.push_str(if i + 1 == fleet.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"gap_to_centralized\": {\n");
    out.push_str(&format!("    \"streams\": {},\n", gap.streams));
    out.push_str(&format!("    \"central_objective\": {:.9},\n", gap.central));
    out.push_str(&format!("    \"sharded_objective\": {:.9},\n", gap.sharded));
    out.push_str(&format!("    \"gap_pct\": {:.4},\n", gap.gap_pct));
    out.push_str(&format!("    \"bound_pct\": {GAP_BOUND_PCT:.1}\n"));
    out.push_str("  }\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_optimizer.json")
        .to_string();

    let sizes: &[usize] = if smoke { &[32] } else { &[32, 128, 512] };
    println!("== perfbench: full vs incremental evaluation ==");
    if smoke {
        println!("(smoke mode: parity check only, timings informational)");
    }
    let mut t = Table::new(vec![
        "streams",
        "evaluations",
        "full (ms)",
        "incr (ms)",
        "full evals/s",
        "incr evals/s",
        "speedup",
        "objective",
    ]);
    let mut rows = Vec::new();
    for &n in sizes {
        let r = bench_size(n, smoke);
        t.row(vec![
            r.streams.to_string(),
            r.evaluations.to_string(),
            format!("{:.1}", r.full_ms),
            format!("{:.1}", r.incremental_ms),
            format!("{:.0}", evals_per_sec(r.evaluations, r.full_ms)),
            format!("{:.0}", evals_per_sec(r.evaluations, r.incremental_ms)),
            format!("{:.2}x", r.speedup),
            format!("{:.4}", r.objective),
        ]);
        rows.push(r);
    }
    t.print();

    if smoke {
        smoke_throughput_gate();
    }

    let fleet_sizes: &[usize] = if smoke {
        &[4096]
    } else {
        &[4096, 10_000, 100_000]
    };
    println!("\n== perfbench: fleet-scale sharded solve ==");
    let mut ft = Table::new(vec![
        "streams",
        "shards",
        "wall (ms)",
        "evaluations",
        "objective",
        "remap miss",
        "moves",
        "converged",
    ]);
    let mut fleet = Vec::new();
    for &n in fleet_sizes {
        let r = bench_sharded(n, smoke);
        ft.row(vec![
            r.streams.to_string(),
            r.shards.to_string(),
            format!("{:.1}", r.wall_ms),
            r.evaluations.to_string(),
            format!("{:.4}", r.objective),
            r.remap_misses.to_string(),
            r.reconcile_moves.to_string(),
            r.converged.to_string(),
        ]);
        fleet.push(r);
    }
    ft.print();

    let gap = measure_gap(smoke);
    println!(
        "gap-to-centralized at N={}: {:+.4}% (central {:.6}, sharded {:.6}, bound {:.1}%)",
        gap.streams, gap.gap_pct, gap.central, gap.sharded, GAP_BOUND_PCT
    );

    write_json(&out_path, smoke, &rows, &fleet, &gap);
    println!("wrote {out_path} (parity verified on all sizes)");
}
