//! Optimizer micro-benchmark: full re-evaluation vs incremental delta
//! evaluation on identical searches.
//!
//! ```text
//! perfbench [--smoke] [--out PATH]
//! ```
//!
//! Runs the joint search (coordinate descent + Gibbs refinement) twice per
//! problem size — once with `EvalMode::Full`, once with
//! `EvalMode::Incremental` — asserts the two walked bit-identical
//! objective traces and landed on identical assignments, and reports wall
//! time, evaluations/second and the speedup. Results land in
//! `BENCH_optimizer.json` (override with `--out`).
//!
//! `--smoke` runs the smallest size with a short search: a CI-friendly
//! parity check with no timing assertions (timings are still recorded).
//! The full run (`cargo run --release -p scalpel-bench --bin perfbench`)
//! regenerates the numbers quoted in EXPERIMENTS.md.

use scalpel_bench::table::Table;
use scalpel_core::config::{ScenarioConfig, ServerMix};
use scalpel_core::evaluator::Evaluator;
use scalpel_core::optimizer::{self, Budget, EvalMode, OptimizerConfig, Solution};
use std::time::Instant;

struct SizeReport {
    streams: usize,
    servers: usize,
    menu_plans: usize,
    evaluations: usize,
    full_ms: f64,
    incremental_ms: f64,
    speedup: f64,
    objective: f64,
}

fn scenario(streams: usize) -> ScenarioConfig {
    // Grow the topology, not the per-group load: 8 devices per AP and one
    // server per AP throughout, so every size is a loaded-but-functional
    // system (offloading actually happens) and larger N means more
    // resource groups — the regime the incremental evaluator targets.
    let num_aps = (streams / 8).max(1);
    ScenarioConfig {
        num_aps,
        devices_per_ap: streams.div_ceil(num_aps),
        servers: ServerMix::Synthetic {
            count: num_aps,
            mean_fps: 1e12,
            cv: 0.3,
        },
        ..ScenarioConfig::default()
    }
}

fn assert_parity(full: &Solution, inc: &Solution, streams: usize) {
    assert_eq!(
        full.trace.evaluations, inc.trace.evaluations,
        "N={streams}: evaluation counts diverged"
    );
    assert_eq!(
        full.trace.objective.len(),
        inc.trace.objective.len(),
        "N={streams}: trace lengths diverged"
    );
    for (i, (a, b)) in full
        .trace
        .objective
        .iter()
        .zip(&inc.trace.objective)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "N={streams}: trace[{i}] diverged: {a} vs {b}"
        );
    }
    assert_eq!(
        full.assignment, inc.assignment,
        "N={streams}: final assignments diverged"
    );
    assert_eq!(
        full.result.objective.to_bits(),
        inc.result.objective.to_bits(),
        "N={streams}: final objectives diverged"
    );
}

fn bench_size(streams: usize, smoke: bool) -> SizeReport {
    let scfg = scenario(streams);
    let problem = scfg.build();
    let ev = Evaluator::new(&problem, None);
    let base = OptimizerConfig {
        rounds: if smoke { 1 } else { 2 },
        gibbs_iters: if smoke { 30 } else { 100 },
        ..Default::default()
    };
    let menu_plans: usize = (0..ev.num_streams()).map(|k| ev.menu(k).len()).sum();

    let full_cfg = OptimizerConfig {
        eval_mode: EvalMode::Full,
        ..base.clone()
    };
    let t0 = Instant::now();
    let full = optimizer::solve(&ev, &full_cfg);
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;

    let inc_cfg = OptimizerConfig {
        eval_mode: EvalMode::Incremental,
        ..base
    };
    let t1 = Instant::now();
    let inc = optimizer::solve(&ev, &inc_cfg);
    let incremental_ms = t1.elapsed().as_secs_f64() * 1e3;

    assert_parity(&full, &inc, ev.num_streams());

    // Anytime-API guard: an unconstrained budget must be a pure pass-through
    // — same trace, same assignment, same objective bits as plain `solve`.
    let anytime = optimizer::solve_with_budget(&ev, &inc_cfg, Budget::UNLIMITED);
    assert!(
        anytime.converged,
        "N={}: unlimited budget reported non-convergence",
        ev.num_streams()
    );
    assert_parity(&inc, &anytime.solution, ev.num_streams());

    SizeReport {
        streams: ev.num_streams(),
        servers: ev.num_servers(),
        menu_plans,
        evaluations: inc.trace.evaluations,
        full_ms,
        incremental_ms,
        speedup: full_ms / incremental_ms.max(1e-9),
        objective: inc.result.objective,
    }
}

fn evals_per_sec(evals: usize, ms: f64) -> f64 {
    evals as f64 / (ms / 1e3).max(1e-12)
}

fn write_json(path: &str, smoke: bool, rows: &[SizeReport]) {
    // Hand-formatted: the vendored serde stand-in has no derive codegen.
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"optimizer-incremental-eval\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"streams\": {},\n", r.streams));
        out.push_str(&format!("      \"servers\": {},\n", r.servers));
        out.push_str(&format!("      \"menu_plans\": {},\n", r.menu_plans));
        out.push_str(&format!("      \"evaluations\": {},\n", r.evaluations));
        out.push_str(&format!("      \"full_ms\": {:.3},\n", r.full_ms));
        out.push_str(&format!(
            "      \"incremental_ms\": {:.3},\n",
            r.incremental_ms
        ));
        out.push_str(&format!(
            "      \"full_evals_per_sec\": {:.1},\n",
            evals_per_sec(r.evaluations, r.full_ms)
        ));
        out.push_str(&format!(
            "      \"incremental_evals_per_sec\": {:.1},\n",
            evals_per_sec(r.evaluations, r.incremental_ms)
        ));
        out.push_str(&format!("      \"speedup\": {:.2},\n", r.speedup));
        out.push_str(&format!("      \"objective\": {:.9},\n", r.objective));
        out.push_str("      \"parity\": true\n");
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_optimizer.json")
        .to_string();

    let sizes: &[usize] = if smoke { &[32] } else { &[32, 128, 512] };
    println!("== perfbench: full vs incremental evaluation ==");
    if smoke {
        println!("(smoke mode: parity check only, timings informational)");
    }
    let mut t = Table::new(vec![
        "streams",
        "evaluations",
        "full (ms)",
        "incr (ms)",
        "full evals/s",
        "incr evals/s",
        "speedup",
        "objective",
    ]);
    let mut rows = Vec::new();
    for &n in sizes {
        let r = bench_size(n, smoke);
        t.row(vec![
            r.streams.to_string(),
            r.evaluations.to_string(),
            format!("{:.1}", r.full_ms),
            format!("{:.1}", r.incremental_ms),
            format!("{:.0}", evals_per_sec(r.evaluations, r.full_ms)),
            format!("{:.0}", evals_per_sec(r.evaluations, r.incremental_ms)),
            format!("{:.2}x", r.speedup),
            format!("{:.4}", r.objective),
        ]);
        rows.push(r);
    }
    t.print();
    write_json(&out_path, smoke, &rows);
    println!("wrote {out_path} (parity verified on all sizes)");
}
