//! Simulator hot-loop benchmark: slab pool + timing-wheel event queue +
//! reusable scratch vs the pre-refactor allocating engine.
//!
//! ```text
//! simbench [--smoke] [--out PATH]
//! ```
//!
//! Drives one loaded scenario — 64 APs × 8 devices (512 streams) at
//! 4 req/s each against 40 GFLOP/s edge servers, the regime where deep
//! processor-sharing queues made the old engine's superseded
//! `ServerCheck` events pile up in the heap — at 1k, 10k and 100k
//! requests, with and without faults + the full recovery ladder. Each
//! configuration runs twice, once on a fresh scratch and once on a
//! scratch reused across every prior run, and the two [`SimReport`]s
//! must be bit-identical. The pinned golden-snapshot summaries are also
//! re-checked, so a parity break fails the bench before any number is
//! reported. Wall times are compared against the pre-refactor baseline
//! (recorded below) and land in `BENCH_sim.json` (override with
//! `--out`).
//!
//! `--smoke` runs the 1k size only: a CI-friendly parity gate with no
//! timing assertions (timings are still recorded). The full run
//! (`cargo run --release -p scalpel-bench --bin simbench`) regenerates
//! the numbers quoted in EXPERIMENTS.md.

use scalpel_bench::table::Table;
use scalpel_core::baselines::{self, solve_with, Method};
use scalpel_core::compiler;
use scalpel_core::config::{ScenarioConfig, ServerMix};
use scalpel_core::evaluator::Evaluator;
use scalpel_core::optimizer::{Budget, OptimizerConfig};
use scalpel_core::runner;
use scalpel_sim::{
    EdgeSim, FaultProfile, LatencyStats, RecoveryConfig, SimConfig, SimReport, SimScratch,
};
use std::time::Instant;

/// Streams in the benchmark topology (64 APs × 8 devices).
const STREAMS: usize = 512;
/// Per-stream Poisson arrival rate, req/s.
const RATE_HZ: f64 = 4.0;
/// Synthetic edge-server capacity, FLOP/s — low enough that servers
/// hold deep PS queues and finish estimates sit far in the future.
const MEAN_FPS: f64 = 4e10;

/// Benchmarked request-count sizes; `--smoke` runs only the first.
const SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// Pre-refactor wall times in seconds (best of 7) for the identical
/// scenario, captured on the parent commit with a `VecDeque`-based
/// request store, a non-compacting event heap and per-run allocation.
/// Indexed like `SIZES`; `[clean, recovered]` per size. The refactor
/// provably schedules the identical event sequence, so baseline
/// events/s is `events_scheduled / baseline_wall`.
const BASELINE_WALL_S: [[f64; 2]; 3] = [[0.0019, 0.0063], [0.0109, 0.0242], [0.2554, 0.1982]];

/// Wall times in seconds recorded in BENCH_sim.json at this PR's parent
/// commit — the compacting-heap engine, before the timing wheel, the
/// virtual-time server station and the kernel/SoA work. Same indexing as
/// `BASELINE_WALL_S`. `kernel_speedup` in the JSON is measured against
/// these, isolating what *this* PR bought on top of the slab refactor.
const PRE_KERNEL_WALL_S: [[f64; 2]; 3] = [
    [0.001769, 0.001558],
    [0.008851, 0.006324],
    [0.218306, 0.058718],
];

struct Row {
    requests: usize,
    recovered: bool,
    generated: usize,
    accounted: usize,
    events: u64,
    delivered: u64,
    cancelled: u64,
    rotations: u64,
    wall_s: f64,
    baseline_wall_s: f64,
    pre_kernel_wall_s: f64,
}

impl Row {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-12)
    }
    fn baseline_events_per_sec(&self) -> f64 {
        self.events as f64 / self.baseline_wall_s.max(1e-12)
    }
    fn requests_per_sec(&self) -> f64 {
        self.generated as f64 / self.wall_s.max(1e-12)
    }
    fn speedup(&self) -> f64 {
        self.baseline_wall_s / self.wall_s.max(1e-12)
    }
    fn kernel_speedup(&self) -> f64 {
        self.pre_kernel_wall_s / self.wall_s.max(1e-12)
    }
}

fn scenario(requests: usize, recovered: bool) -> ScenarioConfig {
    let num_aps = STREAMS / 8;
    let total_rate = STREAMS as f64 * RATE_HZ;
    let warmup = 1.0;
    let mut cfg = ScenarioConfig {
        num_aps,
        devices_per_ap: STREAMS / num_aps,
        arrival_rate_hz: RATE_HZ,
        servers: ServerMix::Synthetic {
            count: num_aps,
            mean_fps: MEAN_FPS,
            cv: 0.3,
        },
        sim: SimConfig {
            horizon_s: warmup + requests as f64 / total_rate,
            warmup_s: warmup,
            seed: 11,
            fading: true,
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    };
    if recovered {
        cfg.apply_fault_profile(&FaultProfile {
            seed: 5,
            rate_hz: 0.5,
            mean_outage_s: 2.0,
            start_s: 1.0,
            classes: Vec::new(),
        });
        cfg.apply_recovery(RecoveryConfig::full());
    }
    cfg
}

fn build_sim(cfg: &ScenarioConfig) -> EdgeSim {
    let problem = cfg.build();
    let ev = Evaluator::new(&problem, None);
    let opt_cfg = OptimizerConfig {
        rounds: 1,
        gibbs_iters: 0,
        ..Default::default()
    };
    let sol = solve_with(&ev, Method::Neurosurgeon, &opt_cfg);
    // Anytime-API guard: with no budget the budgeted entry point must plan
    // exactly like the plain one, so the simulated trace below is the same
    // golden trace regardless of which entry point callers use.
    let anytime =
        baselines::solve_with_budget(&ev, Method::Neurosurgeon, &opt_cfg, Budget::UNLIMITED);
    assert!(
        anytime.converged,
        "unlimited budget reported non-convergence"
    );
    assert_eq!(
        sol.assignment, anytime.solution.assignment,
        "budgeted planner diverged from plain planner"
    );
    assert_eq!(
        sol.result.objective.to_bits(),
        anytime.solution.result.objective.to_bits(),
        "budgeted planner objective bits diverged"
    );
    let streams = compiler::compile(&problem, &ev, &sol.assignment, &sol.result);
    EdgeSim::new(problem.cluster.clone(), streams, cfg.sim.clone())
        .expect("benchmark scenario compiles to valid streams")
}

/// Every observable field of the two reports, compared at the bit level
/// (floats via `to_bits`, so `-0.0` vs `0.0` or a 1-ulp drift fails).
fn assert_bit_identical(a: &SimReport, b: &SimReport, what: &str) {
    let lat = |x: &LatencyStats, y: &LatencyStats| {
        assert_eq!(x.count, y.count, "{what}: latency count");
        for (n, (p, q)) in [
            (x.mean, y.mean),
            (x.p50, y.p50),
            (x.p95, y.p95),
            (x.p99, y.p99),
            (x.max, y.max),
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(p.to_bits(), q.to_bits(), "{what}: latency field {n}");
        }
    };
    assert_eq!(a.generated, b.generated, "{what}: generated");
    assert_eq!(a.completed, b.completed, "{what}: completed");
    lat(&a.latency, &b.latency);
    assert_eq!(
        a.deadline_ratio.to_bits(),
        b.deadline_ratio.to_bits(),
        "{what}: deadline_ratio"
    );
    assert_eq!(
        a.mean_accuracy.to_bits(),
        b.mean_accuracy.to_bits(),
        "{what}: mean_accuracy"
    );
    assert_eq!(
        a.early_exit_fraction.to_bits(),
        b.early_exit_fraction.to_bits(),
        "{what}: early_exit_fraction"
    );
    assert_eq!(
        a.server_utilization.len(),
        b.server_utilization.len(),
        "{what}: utilization length"
    );
    for (i, (p, q)) in a
        .server_utilization
        .iter()
        .zip(&b.server_utilization)
        .enumerate()
    {
        assert_eq!(p.to_bits(), q.to_bits(), "{what}: utilization[{i}]");
    }
    assert_eq!(a.per_stream.len(), b.per_stream.len(), "{what}: streams");
    for (p, q) in a.per_stream.iter().zip(&b.per_stream) {
        assert_eq!(p.stream, q.stream, "{what}: stream id");
        assert_eq!(p.completed, q.completed, "{what}: stream completed");
        assert_eq!(p.on_time, q.on_time, "{what}: stream on_time");
        lat(&p.latency, &q.latency);
        assert_eq!(
            p.mean_accuracy.to_bits(),
            q.mean_accuracy.to_bits(),
            "{what}: stream accuracy"
        );
        assert_eq!(p.early_exits, q.early_exits, "{what}: stream exits");
        assert_eq!(
            p.mean_device_wait.to_bits(),
            q.mean_device_wait.to_bits(),
            "{what}: stream wait"
        );
    }
    assert_eq!(a.faults, b.faults, "{what}: fault metrics");
    assert_eq!(a.recovery, b.recovery, "{what}: recovery metrics");
}

/// Re-run the frozen golden scenarios and assert their pinned summaries —
/// the same tuples `tests/golden_snapshot.rs` pins. A perf change that
/// moves these has broken determinism, not just speed.
fn check_golden_pins() {
    let golden = |recovery: bool| -> SimReport {
        let mut cfg = ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 4,
            arrival_rate_hz: 6.0,
            seed: 7,
            sim: SimConfig {
                horizon_s: 6.0,
                warmup_s: 1.0,
                seed: 77,
                fading: true,
                ..SimConfig::default()
            },
            ..ScenarioConfig::default()
        };
        cfg.apply_fault_profile(&FaultProfile {
            seed: 5,
            rate_hz: 1.2,
            mean_outage_s: 1.5,
            start_s: 1.0,
            classes: Vec::new(),
        });
        if recovery {
            cfg.apply_recovery(RecoveryConfig::full());
        }
        let problem = cfg.build();
        let ev = Evaluator::new(&problem, None);
        let sol = solve_with(
            &ev,
            Method::Neurosurgeon,
            &OptimizerConfig {
                rounds: 1,
                gibbs_iters: 0,
                ..Default::default()
            },
        );
        runner::run_solution_seeds(&problem, &ev, &sol, cfg.sim, &[1])
            .pop()
            .expect("one seed, one report")
    };

    let r = golden(false);
    assert_eq!(
        (
            r.generated,
            r.completed,
            r.faults.stranded,
            r.faults.stalled,
            r.faults.injected,
            r.faults.applied,
            r.faults.recoveries,
            (r.latency.p99 * 1e3).round() as i64,
        ),
        (95, 94, 1, 0, 16, 12, 5, 3172),
        "golden faulted pin moved"
    );
    let r = golden(true);
    assert_eq!(
        (
            r.generated,
            r.completed,
            r.recovery.degraded,
            r.recovery.shed,
            r.recovery.timeouts,
            r.recovery.retries,
            r.recovery.hedges,
            r.recovery.breaker_opens,
            r.faults.stranded,
            r.faults.stalled,
            (r.recovery.mean_degraded_accuracy * 1e4).round() as i64,
        ),
        (95, 75, 19, 0, 11, 1, 1, 3, 1, 0, 6286),
        "golden recovered pin moved"
    );
}

fn bench_config(size_idx: usize, recovered: bool, scratch: &mut SimScratch, smoke: bool) -> Row {
    let requests = SIZES[size_idx];
    let cfg = scenario(requests, recovered);
    let sim = build_sim(&cfg);

    // Parity: a fresh run and a reused-scratch run must agree bit-for-bit.
    let fresh = sim.run();
    let reused = sim.run_with_scratch(scratch);
    let what = format!(
        "requests={requests} {}",
        if recovered { "recovered" } else { "clean" }
    );
    assert_bit_identical(&fresh, &reused, &what);

    // Timing: best of K on the reused scratch (steady-state behavior).
    let rounds = if smoke { 3 } else { 7 };
    let mut wall = f64::MAX;
    let mut report = reused;
    for _ in 0..rounds {
        let t = Instant::now();
        report = sim.run_with_scratch(scratch);
        wall = wall.min(t.elapsed().as_secs_f64());
    }
    Row {
        requests,
        recovered,
        generated: report.generated,
        accounted: report.accounted(),
        events: scratch.events_scheduled(),
        delivered: scratch.events_delivered(),
        cancelled: scratch.events_cancelled(),
        rotations: scratch.queue_rotations(),
        wall_s: wall,
        baseline_wall_s: BASELINE_WALL_S[size_idx][usize::from(recovered)],
        pre_kernel_wall_s: PRE_KERNEL_WALL_S[size_idx][usize::from(recovered)],
    }
}

fn write_json(path: &str, smoke: bool, rows: &[Row]) {
    // Hand-formatted: the vendored serde stand-in has no derive codegen.
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"sim-hot-loop\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"streams\": {STREAMS},\n"));
    out.push_str(&format!("  \"arrival_rate_hz\": {RATE_HZ},\n"));
    out.push_str(&format!("  \"server_mean_fps\": {MEAN_FPS:.0},\n"));
    out.push_str("  \"golden_pins\": \"unchanged\",\n");
    out.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"requests\": {},\n", r.requests));
        out.push_str(&format!(
            "      \"mode\": \"{}\",\n",
            if r.recovered {
                "faults+recovery"
            } else {
                "clean"
            }
        ));
        out.push_str(&format!("      \"generated\": {},\n", r.generated));
        out.push_str(&format!("      \"accounted\": {},\n", r.accounted));
        out.push_str(&format!("      \"events_scheduled\": {},\n", r.events));
        out.push_str(&format!("      \"events_delivered\": {},\n", r.delivered));
        out.push_str(&format!("      \"events_cancelled\": {},\n", r.cancelled));
        out.push_str(&format!("      \"rotations\": {},\n", r.rotations));
        out.push_str(&format!("      \"wall_ms\": {:.3},\n", r.wall_s * 1e3));
        out.push_str(&format!(
            "      \"events_per_sec\": {:.0},\n",
            r.events_per_sec()
        ));
        out.push_str(&format!(
            "      \"requests_per_sec\": {:.0},\n",
            r.requests_per_sec()
        ));
        out.push_str(&format!(
            "      \"baseline_wall_ms\": {:.3},\n",
            r.baseline_wall_s * 1e3
        ));
        out.push_str(&format!(
            "      \"baseline_events_per_sec\": {:.0},\n",
            r.baseline_events_per_sec()
        ));
        out.push_str(&format!("      \"speedup\": {:.2},\n", r.speedup()));
        out.push_str(&format!(
            "      \"pre_kernel_wall_ms\": {:.3},\n",
            r.pre_kernel_wall_s * 1e3
        ));
        out.push_str(&format!(
            "      \"kernel_speedup\": {:.2},\n",
            r.kernel_speedup()
        ));
        out.push_str("      \"parity\": true\n");
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_sim.json")
        .to_string();

    println!("== simbench: slab pool + timing-wheel queue + reusable scratch ==");
    if smoke {
        println!("(smoke mode: parity check only, timings informational)");
    }
    check_golden_pins();
    println!("golden pins unchanged (faulted + recovered)");

    let n_sizes = if smoke { 1 } else { SIZES.len() };
    let mut scratch = SimScratch::new();
    let mut t = Table::new(vec![
        "requests",
        "mode",
        "events",
        "cancelled",
        "wall (ms)",
        "events/s",
        "req/s",
        "baseline (ms)",
        "speedup",
        "kernel speedup",
    ]);
    let mut rows = Vec::new();
    for size_idx in 0..n_sizes {
        for recovered in [false, true] {
            let r = bench_config(size_idx, recovered, &mut scratch, smoke);
            t.row(vec![
                r.requests.to_string(),
                if r.recovered {
                    "faults+recovery"
                } else {
                    "clean"
                }
                .to_string(),
                r.events.to_string(),
                r.cancelled.to_string(),
                format!("{:.1}", r.wall_s * 1e3),
                format!("{:.2}M", r.events_per_sec() / 1e6),
                format!("{:.2}M", r.requests_per_sec() / 1e6),
                format!("{:.1}", r.baseline_wall_s * 1e3),
                format!("{:.2}x", r.speedup()),
                format!("{:.2}x", r.kernel_speedup()),
            ]);
            rows.push(r);
        }
    }
    t.print();
    write_json(&out_path, smoke, &rows);
    println!("wrote {out_path} (parity verified on all runs)");
}
