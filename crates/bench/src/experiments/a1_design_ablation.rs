//! A1 \[extension\] — ablation of the optimizer's design choices.
//!
//! DESIGN.md calls out four internal choices; each is toggled here on the
//! default scenario (analytic objective, since these are search-quality
//! questions):
//!
//! * Pareto menu pruning (vs full menus) — does pruning lose quality?
//! * Gibbs refinement after descent (vs descent alone);
//! * placement: best-response game vs greedy vs round-robin;
//! * quantized-transmission variants in the menus.

use crate::table::Table;
use scalpel_alloc::placement::PlacementStrategy;
use scalpel_core::config::ScenarioConfig;
use scalpel_core::evaluator::Evaluator;
use scalpel_core::optimizer::{self, OptimizerConfig};
use scalpel_surgery::candidates::CandidateConfig;
use std::time::Instant;

fn scenario(quick: bool) -> ScenarioConfig {
    let mut scfg = ScenarioConfig::default();
    if quick {
        scfg.num_aps = 2;
        scfg.devices_per_ap = 4;
    }
    scfg
}

/// Print objective + solve time for each design toggle.
pub fn run(quick: bool) {
    println!("\n== A1 [extension]: design-choice ablation (analytic objective) ==");
    let problem = scenario(quick).build();
    let mut t = Table::new(vec!["variant", "objective", "solve ms", "evaluations"]);
    let base_cfg = OptimizerConfig {
        rounds: 3,
        gibbs_iters: if quick { 40 } else { 150 },
        ..Default::default()
    };
    let mut run_one = |label: &str, menu: Option<CandidateConfig>, cfg: &OptimizerConfig| {
        let ev = Evaluator::new(&problem, menu);
        let t0 = Instant::now();
        let sol = optimizer::solve(&ev, cfg);
        t.row(vec![
            label.to_string(),
            format!("{:.4}", sol.result.objective),
            format!("{:.1}", t0.elapsed().as_secs_f64() * 1e3),
            sol.trace.evaluations.to_string(),
        ]);
    };
    // Full system.
    run_one("full (joint defaults)", None, &base_cfg);
    // No Gibbs refinement.
    run_one(
        "descent only (no Gibbs)",
        None,
        &OptimizerConfig {
            gibbs_iters: 0,
            ..base_cfg.clone()
        },
    );
    // Placement variants.
    run_one(
        "greedy placement",
        None,
        &OptimizerConfig {
            placement: PlacementStrategy::Greedy,
            ..base_cfg.clone()
        },
    );
    run_one(
        "round-robin placement",
        None,
        &OptimizerConfig {
            placement: PlacementStrategy::RoundRobin,
            ..base_cfg.clone()
        },
    );
    // Menu ablations.
    run_one(
        "no quantized-tx variants",
        Some(CandidateConfig {
            allow_quantize: false,
            ..Default::default()
        }),
        &base_cfg,
    );
    run_one(
        "coarser menus (3 cuts, 1 exit)",
        Some(CandidateConfig {
            max_cuts: 3,
            max_exits: 1,
            ..Default::default()
        }),
        &base_cfg,
    );
    run_one(
        "richer menus (10 cuts, 4 exits)",
        Some(CandidateConfig {
            max_cuts: 10,
            max_exits: 4,
            ..Default::default()
        }),
        &base_cfg,
    );
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn a1_quick_runs() {
        super::run(true);
    }
}
