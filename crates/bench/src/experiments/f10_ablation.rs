//! F10 — ablation: what each half of the joint optimization buys.

use crate::harness::{self, compare_methods};
use crate::table::{ms, pct, Table};
use scalpel_core::baselines::Method;
use scalpel_core::config::ScenarioConfig;

const LADDER: &[Method] = &[
    Method::Neurosurgeon, // neither knob
    Method::SurgeryOnly,  // surgery knob only
    Method::AllocOnly,    // allocation knob only
    Method::Joint,        // both
];

/// Print the 2×2 ablation with speedups vs the no-knob baseline.
pub fn run(quick: bool) {
    println!("\n== F10: ablation (surgery / allocation knobs) ==");
    let scfg = if quick {
        harness::smoke_scenario()
    } else {
        ScenarioConfig::default()
    };
    let seeds: &[u64] = if quick {
        &[101]
    } else {
        harness::DEFAULT_SEEDS
    };
    let rows = compare_methods(&scfg, &harness::default_optimizer(), LADDER, seeds);
    let base = rows
        .iter()
        .find(|r| r.method == Method::Neurosurgeon)
        .expect("baseline present")
        .outcome
        .latency
        .mean;
    let mut t = Table::new(vec![
        "method",
        "surgery",
        "alloc",
        "mean(ms)",
        "speedup",
        "deadline",
        "early-exit",
    ]);
    for r in &rows {
        let (s, a) = match r.method {
            Method::Neurosurgeon => ("-", "-"),
            Method::SurgeryOnly => ("x", "-"),
            Method::AllocOnly => ("-", "x"),
            Method::Joint => ("x", "x"),
            _ => unreachable!("ladder methods only"),
        };
        t.row(vec![
            r.method.name().to_string(),
            s.to_string(),
            a.to_string(),
            ms(r.outcome.latency.mean),
            format!("{:.2}x", base / r.outcome.latency.mean),
            pct(r.outcome.deadline_ratio),
            pct(r.outcome.early_exit_fraction),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn f10_quick_runs() {
        super::run(true);
    }
}
