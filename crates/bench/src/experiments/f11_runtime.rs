//! F11 — optimizer runtime vs problem size.
//!
//! The joint algorithm must run at edge-controller timescales; this prints
//! wall-clock per solve as the number of streams grows (analytic pricing
//! only — the simulator is not part of the control loop).

use crate::table::Table;
use scalpel_core::config::ScenarioConfig;
use scalpel_core::evaluator::Evaluator;
use scalpel_core::optimizer::{self, OptimizerConfig};
use std::time::Instant;

/// Print per-solve wall-clock over stream counts.
pub fn run(quick: bool) {
    println!("\n== F11: optimizer runtime vs problem size ==");
    let sizes: &[usize] = if quick {
        &[8, 24]
    } else {
        &[12, 24, 48, 96, 144, 200]
    };
    let mut t = Table::new(vec![
        "streams",
        "menu build (ms)",
        "solve (ms)",
        "evaluations",
        "evals/s",
        "objective",
    ]);
    for &n in sizes {
        let scfg = ScenarioConfig {
            num_aps: 4,
            devices_per_ap: n.div_ceil(4),
            ..ScenarioConfig::default()
        };
        let problem = scfg.build();
        let t0 = Instant::now();
        let ev = Evaluator::new(&problem, None);
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let cfg = OptimizerConfig {
            rounds: 3,
            gibbs_iters: if quick { 30 } else { 100 },
            ..Default::default()
        };
        let t1 = Instant::now();
        let sol = optimizer::solve(&ev, &cfg);
        let solve_ms = t1.elapsed().as_secs_f64() * 1e3;
        t.row(vec![
            ev.num_streams().to_string(),
            format!("{build_ms:.1}"),
            format!("{solve_ms:.1}"),
            sol.trace.evaluations.to_string(),
            format!("{:.0}", sol.trace.evaluations as f64 / (solve_ms / 1e3)),
            format!("{:.4}", sol.result.objective),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn f11_quick_runs() {
        super::run(true);
    }
}
