//! F12 \[extension\] — robustness to bursty traffic.
//!
//! Replaces the Poisson arrivals with a two-state MMPP of the same mean
//! rate but increasing burst intensity (rate_high/rate_low ratio) and
//! measures how each method's tail latency degrades. Joint optimization
//! plans on means, so this probes how much slack the allocation policies
//! leave for bursts.

use crate::experiments::f4_scalability::SWEEP_METHODS;
use crate::harness::{self};
use crate::table::{ms, pct, Table};
use rayon::prelude::*;
use scalpel_core::baselines::solve_with;
use scalpel_core::config::ScenarioConfig;
use scalpel_core::evaluator::Evaluator;
use scalpel_core::runner;
use scalpel_sim::ArrivalProcess;

/// Print p99 latency and deadline ratio per method over burst ratios.
pub fn run(quick: bool) {
    println!("\n== F12 [extension]: tail latency vs burstiness (MMPP) ==");
    let ratios: &[f64] = if quick {
        &[1.0, 9.0]
    } else {
        &[1.0, 3.0, 5.0, 9.0, 15.0]
    };
    let seeds: &[u64] = if quick { &[101] } else { &[101, 202] };
    let mean_rate = 8.0;
    let mut t = Table::new(
        std::iter::once("burst ratio".to_string())
            .chain(
                SWEEP_METHODS
                    .iter()
                    .flat_map(|m| [format!("{} p99", m.name()), format!("{} ontime", m.name())]),
            )
            .collect::<Vec<_>>(),
    );
    for &ratio in ratios {
        let mut scfg = ScenarioConfig::default();
        if quick {
            scfg.num_aps = 2;
            scfg.devices_per_ap = 4;
            scfg.sim.horizon_s = 8.0;
            scfg.sim.warmup_s = 1.0;
        }
        let mut problem = scfg.build();
        // Same mean rate, increasing burst intensity. ratio 1 = Poisson.
        for s in &mut problem.streams {
            s.arrivals = if ratio <= 1.0 {
                ArrivalProcess::Poisson { rate_hz: mean_rate }
            } else {
                let low = 2.0 * mean_rate / (1.0 + ratio);
                ArrivalProcess::Mmpp2 {
                    rate_low: low,
                    rate_high: low * ratio,
                    switch_rate: 0.5,
                }
            };
        }
        let ev = Evaluator::new(&problem, None);
        let opt = harness::default_optimizer();
        let outcomes: Vec<_> = SWEEP_METHODS
            .par_iter()
            .map(|&m| {
                let sol = solve_with(&ev, m, &opt);
                let reports =
                    runner::run_solution_seeds(&problem, &ev, &sol, scfg.sim.clone(), seeds);
                runner::aggregate(m, &sol, &reports)
            })
            .collect();
        let mut cells = vec![format!("{ratio:.0}x")];
        for o in &outcomes {
            cells.push(ms(o.latency.p99));
            cells.push(pct(o.deadline_ratio));
        }
        t.row(cells);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn f12_quick_runs() {
        super::run(true);
    }
}
