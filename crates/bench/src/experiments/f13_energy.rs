//! F13 \[extension\] — energy per request.
//!
//! Expected device-side and total energy per request under each method:
//! device-only burns device compute joules, full offload burns radio
//! joules, and joint surgery trades them against each other (the paper
//! family reports energy alongside latency).

use crate::harness::{self, compare_methods};
use crate::table::{ms, Table};
use scalpel_core::baselines::Method;
use scalpel_core::config::ScenarioConfig;

/// Print per-method energy alongside latency.
pub fn run(quick: bool) {
    println!("\n== F13 [extension]: energy per request ==");
    let scfg = if quick {
        harness::smoke_scenario()
    } else {
        ScenarioConfig::default()
    };
    let seeds: &[u64] = &[101];
    let rows = compare_methods(&scfg, &harness::default_optimizer(), Method::ALL, seeds);
    let mut t = Table::new(vec![
        "method",
        "mean(ms)",
        "device mJ/req",
        "total mJ/req",
        "early-exit",
    ]);
    for r in &rows {
        t.row(vec![
            r.method.name().to_string(),
            ms(r.outcome.latency.mean),
            format!("{:.1}", r.outcome.device_energy_j * 1e3),
            format!("{:.1}", r.outcome.total_energy_j * 1e3),
            format!("{:.1}%", r.outcome.early_exit_fraction * 100.0),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn f13_quick_runs() {
        super::run(true);
    }
}
