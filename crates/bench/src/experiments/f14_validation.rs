//! F14 \[extension\] — analytic-model validation.
//!
//! The joint search is steered by the analytic evaluator; this experiment
//! quantifies how well its per-stream expected latencies track the
//! simulator with fading disabled (the planner's world) and enabled (the
//! real one), reporting the relative error distribution.

use crate::table::Table;
use scalpel_core::baselines::{solve_with, Method};
use scalpel_core::config::ScenarioConfig;
use scalpel_core::evaluator::Evaluator;
use scalpel_core::runner;
use scalpel_sim::SimConfig;

/// Print analytic-vs-simulated mean relative error per load level.
pub fn run(quick: bool) {
    println!("\n== F14 [extension]: analytic evaluator vs simulator ==");
    let rates: &[f64] = if quick {
        &[3.0]
    } else {
        &[2.0, 5.0, 8.0, 12.0]
    };
    let mut t = Table::new(vec![
        "rate",
        "fading",
        "mean rel err",
        "worst stream rel err",
        "analytic mean ms",
        "sim mean ms",
    ]);
    for &rate in rates {
        for fading in [false, true] {
            let scfg = ScenarioConfig {
                num_aps: 2,
                devices_per_ap: if quick { 3 } else { 5 },
                arrival_rate_hz: rate,
                sim: SimConfig {
                    horizon_s: if quick { 10.0 } else { 30.0 },
                    warmup_s: 2.0,
                    seed: 17,
                    fading,
                    ..SimConfig::default()
                },
                ..ScenarioConfig::default()
            };
            let problem = scfg.build();
            let ev = Evaluator::new(&problem, None);
            let sol = solve_with(&ev, Method::Joint, &harness_opt(quick));
            let report = runner::run_solution(
                &problem,
                &ev,
                &sol.assignment,
                &sol.result,
                scfg.sim.clone(),
            );
            // Per-stream comparison.
            let mut errs = Vec::new();
            for (k, ss) in report.per_stream.iter().enumerate() {
                if ss.completed == 0 {
                    continue;
                }
                let analytic = sol.result.latency_s[k];
                let simulated = ss.latency.mean;
                errs.push(((analytic - simulated) / simulated).abs());
            }
            let mean_err = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
            let worst = errs.iter().cloned().fold(0.0, f64::max);
            let analytic_mean =
                sol.result.latency_s.iter().sum::<f64>() / sol.result.latency_s.len() as f64;
            t.row(vec![
                format!("{rate:.0}"),
                fading.to_string(),
                format!("{:.1}%", mean_err * 100.0),
                format!("{:.1}%", worst * 100.0),
                format!("{:.2}", analytic_mean * 1e3),
                format!("{:.2}", report.latency.mean * 1e3),
            ]);
        }
    }
    t.print();
}

fn harness_opt(quick: bool) -> scalpel_core::optimizer::OptimizerConfig {
    scalpel_core::optimizer::OptimizerConfig {
        rounds: if quick { 2 } else { 4 },
        gibbs_iters: if quick { 30 } else { 150 },
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn f14_quick_runs() {
        super::run(true);
    }
}
