//! F15 \[extension\] — dynamic edge: online re-optimization and the
//! distributed controller.
//!
//! Timeline: the system runs at 20 MHz per AP, then the links degrade
//! (20 → 6 → 3 MHz). At each epoch we compare (a) keeping the stale
//! solution, (b) the online controller's warm-started re-solve, and
//! (c) the fully distributed best-response dynamics — all *simulated*
//! under the new conditions, plus the controller's re-solve cost.

use crate::table::{ms, pct, Table};
use scalpel_core::baselines::Method;
use scalpel_core::compiler;
use scalpel_core::config::ScenarioConfig;
use scalpel_core::distributed::{self, DistributedConfig};
use scalpel_core::evaluator::Evaluator;
use scalpel_core::online::{remap_assignment, OnlineController};
use scalpel_core::optimizer::OptimizerConfig;
use scalpel_sim::EdgeSim;

fn scenario(bandwidth_mhz: f64, quick: bool) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default();
    if quick {
        cfg.num_aps = 2;
        cfg.devices_per_ap = 3;
        cfg.sim.horizon_s = 8.0;
        cfg.sim.warmup_s = 1.0;
    }
    cfg.ap_bandwidth_hz = bandwidth_mhz * 1e6;
    cfg
}

/// Simulate an assignment under a scenario and return (mean ms, deadline).
fn simulate(
    scfg: &ScenarioConfig,
    ev: &Evaluator,
    asg: &scalpel_core::evaluator::Assignment,
    policies: scalpel_core::evaluator::AllocPolicies,
) -> (f64, f64) {
    let problem = scfg.build();
    let result = ev.evaluate(asg, policies);
    let streams = compiler::compile(&problem, ev, asg, &result);
    let report = EdgeSim::new(problem.cluster.clone(), streams, scfg.sim.clone())
        .expect("valid streams")
        .run();
    (report.latency.mean, report.deadline_ratio)
}

/// Print the degradation timeline.
pub fn run(quick: bool) {
    println!("\n== F15 [extension]: dynamic edge (bandwidth degradation timeline) ==");
    let opt = OptimizerConfig {
        rounds: 3,
        gibbs_iters: if quick { 30 } else { 100 },
        ..Default::default()
    };
    let epochs: &[f64] = if quick {
        &[20.0, 4.0]
    } else {
        &[20.0, 6.0, 3.0]
    };
    let mut t = Table::new(vec![
        "epoch (MHz)",
        "variant",
        "mean(ms)",
        "deadline",
        "resolve ms",
        "plan changes",
    ]);
    // Bootstrap on the first epoch.
    let scfg0 = scenario(epochs[0], quick);
    let ev0 = Evaluator::new(&scfg0.build(), None);
    let mut controller = OnlineController::bootstrap(&ev0, opt.clone());
    let (m0, d0) = simulate(
        &scfg0,
        &ev0,
        &controller.solution().assignment.clone(),
        opt.policies,
    );
    t.row(vec![
        format!("{:.0}", epochs[0]),
        "bootstrap (centralized)".into(),
        ms(m0),
        pct(d0),
        "-".into(),
        "-".into(),
    ]);
    let mut prev_ev = ev0;
    for &mhz in &epochs[1..] {
        let scfg = scenario(mhz, quick);
        let ev = Evaluator::new(&scfg.build(), None);
        // (a) stale decisions under new conditions.
        let stale = remap_assignment(&prev_ev, &ev, &controller.solution().assignment.clone());
        let (sm, sd) = simulate(&scfg, &ev, &stale, opt.policies);
        t.row(vec![
            format!("{mhz:.0}"),
            "stale (no adaptation)".into(),
            ms(sm),
            pct(sd),
            "-".into(),
            "-".into(),
        ]);
        // (b) online warm-started adaptation.
        let report = controller.adapt(&prev_ev, &ev);
        let (am, ad) = simulate(
            &scfg,
            &ev,
            &controller.solution().assignment.clone(),
            opt.policies,
        );
        t.row(vec![
            format!("{mhz:.0}"),
            "online adapt (warm start)".into(),
            ms(am),
            pct(ad),
            format!("{:.1}", report.resolve_ms),
            report.plans_changed.to_string(),
        ]);
        // (c) distributed best response, from scratch, for comparison.
        let dist = distributed::solve_distributed(&ev, &DistributedConfig::default());
        let (dm, dd) = simulate(&scfg, &ev, &dist.solution.assignment, opt.policies);
        t.row(vec![
            format!("{mhz:.0}"),
            format!("distributed ({} rounds)", dist.rounds),
            ms(dm),
            pct(dd),
            "-".into(),
            "-".into(),
        ]);
        prev_ev = ev;
    }
    t.print();
    let _ = Method::Joint; // (method ladder lives in T3; here we compare controllers)
}

#[cfg(test)]
mod tests {
    #[test]
    fn f15_quick_runs() {
        super::run(true);
    }
}
