//! F16 \[extension\] — resilience under fault injection.
//!
//! Every method solves the *clean* scenario once, then all of them face
//! the identical seeded fault schedule (device churn, AP outages, link
//! degradation, server throttling) at escalating intensity. The table
//! reports how gracefully each configuration degrades: mean latency,
//! deadline satisfaction, requests lost to faults, SLO misses
//! attributable to active faults, and observed recovery time. A final
//! `Joint+adapt` row re-solves against the sustained degradations via the
//! online controller and simulates the adapted decisions under the same
//! faults.

use crate::harness::DEFAULT_SEEDS;
use crate::table::{ms, pct, Table};
use rayon::prelude::*;
use scalpel_core::baselines::{solve_with, Method};
use scalpel_core::compiler;
use scalpel_core::config::ScenarioConfig;
use scalpel_core::evaluator::Evaluator;
use scalpel_core::online::{FaultDetector, OnlineController};
use scalpel_core::optimizer::{OptimizerConfig, Solution};
use scalpel_core::runner;
use scalpel_sim::{EdgeSim, FaultPlan, FaultProfile, RecoveryConfig};

/// Seed of the fault stream — fixed so every method and intensity level
/// reuses the same disruption pattern (scaled, not resampled).
pub(crate) const FAULT_SEED: u64 = 901;

pub(crate) fn scenario(quick: bool) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default();
    if quick {
        cfg.num_aps = 2;
        cfg.devices_per_ap = 3;
        cfg.sim.horizon_s = 8.0;
        cfg.sim.warmup_s = 1.0;
    }
    cfg
}

pub(crate) fn plan_for(scfg: &ScenarioConfig, rate_hz: f64) -> FaultPlan {
    if rate_hz <= 0.0 {
        return FaultPlan::none();
    }
    scfg.fault_plan(&FaultProfile {
        seed: FAULT_SEED,
        rate_hz,
        mean_outage_s: 2.0,
        start_s: scfg.sim.warmup_s,
        classes: Vec::new(),
    })
}

/// Print the resilience table.
pub fn run(quick: bool) {
    println!("\n== F16 [extension]: fault injection (resilience vs intensity) ==");
    let scfg = scenario(quick);
    let opt = OptimizerConfig {
        rounds: 3,
        gibbs_iters: if quick { 30 } else { 100 },
        ..Default::default()
    };
    let seeds: &[u64] = if quick { &[101] } else { DEFAULT_SEEDS };
    let intensities: &[f64] = if quick {
        &[0.0, 0.4]
    } else {
        &[0.0, 0.1, 0.3, 0.6]
    };
    let problem = scfg.build();
    let ev = Evaluator::new(&problem, None);
    // Solve once per method on the clean scenario: static solutions face
    // the faults exactly as deployed.
    let sols: Vec<(Method, Solution)> = Method::ALL
        .par_iter()
        .map(|&m| (m, solve_with(&ev, m, &opt)))
        .collect();
    let mut t = Table::new(vec![
        "faults (/s)",
        "method",
        "mean(ms)",
        "deadline",
        "lost",
        "fault misses",
        "recovery(s)",
    ]);
    for &rate in intensities {
        let plan = plan_for(&scfg, rate);
        let rows: Vec<_> = sols
            .par_iter()
            .map(|(m, sol)| {
                let reports = runner::run_solution_seeds_faulted(
                    &problem,
                    &ev,
                    sol,
                    scfg.sim.clone(),
                    &plan,
                    seeds,
                );
                runner::aggregate(*m, sol, &reports)
            })
            .collect();
        for o in &rows {
            t.row(vec![
                format!("{rate:.1}"),
                o.method.name().into(),
                ms(o.latency.mean),
                pct(o.deadline_ratio),
                o.fault_lost.to_string(),
                o.fault_misses.to_string(),
                format!("{:.2}", o.mean_recovery_s),
            ]);
        }
        // Joint + online adaptation, closed loop: a probe run of the
        // deployed Joint solution faces the faults with full recovery and
        // telemetry on; the FaultDetector reads only the emitted health
        // snapshots (breaker states per epoch) and derates the problem
        // accordingly — no oracle access to the fault schedule. The
        // controller warm-starts against the derated problem and the
        // adapted decisions face the same faults.
        if !plan.is_empty() {
            let joint = &sols
                .iter()
                .find(|(m, _)| matches!(m, Method::Joint))
                .expect("Joint is in Method::ALL")
                .1;
            let probe_streams = compiler::compile(&problem, &ev, &joint.assignment, &joint.result);
            let mut probe_sim = scfg.sim.clone();
            probe_sim.seed = seeds[0];
            probe_sim.faults = plan.clone();
            probe_sim.recovery = RecoveryConfig::full();
            let (_, trace) = EdgeSim::new(problem.cluster.clone(), probe_streams, probe_sim)
                .expect("deployed streams validate")
                .run_logged();
            let degraded = FaultDetector::default()
                .degraded_problem(&problem, &trace.health)
                .unwrap_or_else(|| problem.clone());
            let new_ev = Evaluator::new(&degraded, None);
            let mut ctl = OnlineController::bootstrap(&ev, opt.clone());
            ctl.adapt(&ev, &new_ev);
            let asg = ctl.solution().assignment.clone();
            let result = new_ev.evaluate(&asg, opt.policies);
            let streams = compiler::compile(&degraded, &new_ev, &asg, &result);
            let reports: Vec<_> = seeds
                .par_iter()
                .map(|&seed| {
                    let mut sim = scfg.sim.clone();
                    sim.seed = seed;
                    sim.faults = plan.clone();
                    // Simulate on the *real* cluster: the plan itself
                    // applies the degradations at runtime.
                    EdgeSim::new(problem.cluster.clone(), streams.clone(), sim)
                        .expect("adapted streams validate")
                        .run()
                })
                .collect();
            let o = runner::aggregate(Method::Joint, ctl.solution(), &reports);
            t.row(vec![
                format!("{rate:.1}"),
                "Joint+adapt".into(),
                ms(o.latency.mean),
                pct(o.deadline_ratio),
                o.fault_lost.to_string(),
                o.fault_misses.to_string(),
                format!("{:.2}", o.mean_recovery_s),
            ]);
        }
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn f16_quick_runs() {
        super::run(true);
    }

    #[test]
    fn f16_plans_scale_with_intensity() {
        let scfg = super::scenario(true);
        assert!(super::plan_for(&scfg, 0.0).is_empty());
        let low = super::plan_for(&scfg, 0.2);
        let high = super::plan_for(&scfg, 0.8);
        assert!(!low.is_empty());
        assert!(high.events.len() > low.events.len());
    }
}
