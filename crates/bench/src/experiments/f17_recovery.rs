//! F17 \[extension\] — closed-loop recovery under injected faults.
//!
//! The Joint solution is deployed once, then faces an identical seeded
//! path-fault schedule (AP outages, link degradation, server throttling
//! — see [`plan_with_unrecovered_tail`] for why device churn is left to
//! F16) under four recovery postures of escalating capability: no
//! recovery at all, deadline-aware retries with exit-degradation,
//! retries plus circuit breakers, and the full ladder (hedged re-offload
//! and shedding on open breakers). Because the fault plan, simulation
//! seeds, and deployed decisions are shared across rows, every difference
//! in the table is attributable to the recovery policy alone. The table
//! reports requests lost (stranded or stalled), SLO misses during active
//! faults, degraded completions and their accuracy cost, shed requests,
//! and retry timeouts fired.

use crate::harness::DEFAULT_SEEDS;
use crate::table::{ms, pct, Table};
use rayon::prelude::*;
use scalpel_core::baselines::{solve_with, Method};
use scalpel_core::evaluator::Evaluator;
use scalpel_core::optimizer::OptimizerConfig;
use scalpel_core::runner::{self, MethodOutcome};
use scalpel_sim::{FaultClass, FaultPlan, FaultProfile, RecoveryConfig};

use super::f16_faults::{scenario, FAULT_SEED};

/// The F16 fault generator with two deliberate twists.
///
/// First, the schedule covers only *path* faults — AP outages, link
/// degradation, and server throttling. Device churn (covered by F16) is
/// excluded because work resident on a vanishing device is unrecoverable
/// by construction: no retry or breaker can reach it, and a degradation
/// ladder makes things strictly worse by holding extra local-finish work
/// on exactly the hardware that disappears. F17 isolates the faults a
/// recovery policy can actually mask.
///
/// Second, recovery events that would land after the run ends are
/// dropped. F16's generator always pairs every outage with its recovery,
/// so even a late outage heals during the post-horizon drain and nothing
/// ever stays broken; here an outage that outlasts the run stays down —
/// the exact situation the degradation ladder exists for. Down events
/// are untouched (the generator never emits them past the horizon).
pub(crate) fn plan_with_unrecovered_tail(rate_hz: f64, quick: bool) -> FaultPlan {
    let scfg = scenario(quick);
    if rate_hz <= 0.0 {
        return FaultPlan::none();
    }
    let mut plan = scfg.fault_plan(&FaultProfile {
        seed: FAULT_SEED,
        rate_hz,
        mean_outage_s: 2.0,
        start_s: scfg.sim.warmup_s,
        classes: vec![
            FaultClass::ApOutage,
            FaultClass::LinkDegradation,
            FaultClass::ComputeThrottle,
        ],
    });
    let horizon = scfg.sim.horizon_s;
    plan.events.retain(|e| e.at_s < horizon);
    plan
}

/// The recovery postures compared, weakest first.
pub(crate) fn presets() -> Vec<(&'static str, RecoveryConfig)> {
    vec![
        ("no-recovery", RecoveryConfig::none()),
        ("retry-only", RecoveryConfig::retry_only()),
        ("retry+breaker", RecoveryConfig::retry_breaker()),
        ("full ladder", RecoveryConfig::full()),
    ]
}

/// One outcome per (intensity, posture), with the fault plan shared
/// across postures at each intensity.
pub(crate) fn outcomes(quick: bool) -> Vec<(f64, Vec<(&'static str, MethodOutcome)>)> {
    let scfg = scenario(quick);
    let opt = OptimizerConfig {
        rounds: 3,
        gibbs_iters: if quick { 30 } else { 100 },
        ..Default::default()
    };
    let seeds: &[u64] = if quick { &[101] } else { DEFAULT_SEEDS };
    let intensities: &[f64] = if quick {
        &[1.0, 2.0, 3.6]
    } else {
        &[0.6, 1.3, 2.4, 3.6]
    };
    let problem = scfg.build();
    let ev = Evaluator::new(&problem, None);
    let sol = solve_with(&ev, Method::Joint, &opt);
    intensities
        .iter()
        .map(|&rate| {
            let plan = plan_with_unrecovered_tail(rate, quick);
            let rows: Vec<(&'static str, MethodOutcome)> = presets()
                .par_iter()
                .map(|(name, recovery)| {
                    let reports = runner::run_solution_seeds_recovered(
                        &problem,
                        &ev,
                        &sol,
                        scfg.sim.clone(),
                        &plan,
                        recovery,
                        seeds,
                    );
                    (*name, runner::aggregate(Method::Joint, &sol, &reports))
                })
                .collect();
            (rate, rows)
        })
        .collect()
}

/// Print the recovery-posture table.
pub fn run(quick: bool) {
    println!("\n== F17 [extension]: closed-loop recovery (posture vs fault intensity) ==");
    let mut t = Table::new(vec![
        "faults (/s)",
        "recovery",
        "mean(ms)",
        "deadline",
        "lost",
        "fault misses",
        "degraded",
        "shed",
        "timeouts",
        "acc delta",
    ]);
    for (rate, rows) in outcomes(quick) {
        for (name, o) in &rows {
            t.row(vec![
                format!("{rate:.1}"),
                (*name).into(),
                ms(o.latency.mean),
                pct(o.deadline_ratio),
                o.fault_lost.to_string(),
                o.fault_misses.to_string(),
                o.degraded.to_string(),
                o.shed.to_string(),
                o.retry_timeouts.to_string(),
                // Mean accuracy movement per degraded completion versus
                // its nominal path; positive = degrading *gained*
                // accuracy (a full-precision local finish can beat a
                // quantized offload plan). `+ 0.0` folds negative zero.
                format!("{:+.4}", -o.accuracy_cost + 0.0),
            ]);
        }
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f17_quick_runs() {
        run(true);
    }

    /// The acceptance criterion of the recovery subsystem: at every fault
    /// intensity, the full ladder strands strictly fewer requests and
    /// misses no more SLOs during faults than running with no recovery.
    #[test]
    fn f17_full_ladder_dominates_no_recovery() {
        for (rate, rows) in outcomes(true) {
            let find = |name: &str| {
                &rows
                    .iter()
                    .find(|(n, _)| *n == name)
                    .expect("preset present")
                    .1
            };
            let none = find("no-recovery");
            let full = find("full ladder");
            assert!(
                none.fault_lost > 0,
                "rate {rate}: schedule too mild to strand anything"
            );
            assert!(
                full.fault_lost < none.fault_lost,
                "rate {rate}: full ladder lost {} vs no-recovery {}",
                full.fault_lost,
                none.fault_lost
            );
            assert!(
                full.fault_misses <= none.fault_misses,
                "rate {rate}: full ladder missed {} vs no-recovery {}",
                full.fault_misses,
                none.fault_misses
            );
            // The ladder's price is visible and bounded: degraded
            // completions are counted and their accuracy delta reported.
            assert!(full.degraded > 0 || full.shed > 0 || full.retry_timeouts > 0);
            assert!(full.accuracy_cost.is_finite());
        }
    }

    /// Identical plan + seeds + posture reproduce bit-for-bit.
    #[test]
    fn f17_outcomes_are_deterministic() {
        let a = outcomes(true);
        let b = outcomes(true);
        for ((ra, rows_a), (rb, rows_b)) in a.iter().zip(&b) {
            assert_eq!(ra, rb);
            for ((na, oa), (nb, ob)) in rows_a.iter().zip(rows_b) {
                assert_eq!(na, nb);
                assert_eq!(oa.latency.mean, ob.latency.mean);
                assert_eq!(oa.fault_lost, ob.fault_lost);
                assert_eq!(oa.degraded, ob.degraded);
                assert_eq!(oa.accuracy_cost, ob.accuracy_cost);
            }
        }
    }
}
