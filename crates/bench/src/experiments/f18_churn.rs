//! F18 \[extension\] — switching hysteresis under fleet churn.
//!
//! The same seeded churn trace (link/capacity/load drift plus device
//! up/down cycles) is replayed through two [`PlanningService`] postures:
//! *governed* (the [`SwitchGovernor`] defaults — rolling latency windows,
//! minimum dwell, switch-cost-priced acceptance, capped switches per
//! tick) and *ungoverned* (every replan adopted verbatim, the naive
//! per-event-replanning baseline). Both see identical events, identical
//! tick cadence, and identical evaluation-count solve budgets, so every
//! difference in the table is the governor's doing. The claim under test:
//! the governed service performs at least 5× fewer stream switches while
//! its deadline-hit rate (simulated, final adopted plan under the final
//! drifted conditions) stays within one percentage point of the
//! thrashing baseline.
//!
//! [`SwitchGovernor`]: scalpel_core::service::SwitchGovernor

use crate::table::{ms, pct, Table};
use rayon::prelude::*;
use scalpel_core::baselines::Method;
use scalpel_core::optimizer::{Budget, OptimizerConfig};
use scalpel_core::runner::{self, MethodOutcome};
use scalpel_core::service::{PlanningService, ServiceConfig, ServiceStatus};
use scalpel_core::ScenarioConfig;
use scalpel_sim::{ChurnProfile, ChurnTrace};

/// Seed of the shared churn trace (independent of scenario seeds).
pub(crate) const CHURN_SEED: u64 = 1818;

/// The F18 scenario: two APs of smartphones against the default
/// heterogeneous server mix, loaded enough that drift matters.
pub(crate) fn scenario(quick: bool) -> ScenarioConfig {
    ScenarioConfig {
        num_aps: 2,
        devices_per_ap: if quick { 4 } else { 8 },
        arrival_rate_hz: 3.0,
        seed: 7,
        ..ScenarioConfig::default()
    }
}

fn horizon_s(quick: bool) -> f64 {
    if quick {
        40.0
    } else {
        120.0
    }
}

/// The shared churn trace for a scenario.
pub(crate) fn churn_trace(quick: bool) -> ChurnTrace {
    let p = scenario(quick).build();
    ChurnProfile {
        seed: CHURN_SEED,
        ..ChurnProfile::default()
    }
    .plan(
        p.cluster.devices.len(),
        p.cluster.aps.len(),
        p.cluster.servers.len(),
        p.streams.len(),
        horizon_s(quick),
    )
}

/// One posture's end state: the service's final status row, how many
/// ticks it spent degraded, and the simulated outcome of its final
/// adopted plan under the final drifted conditions.
pub(crate) struct ChurnOutcome {
    /// Posture label.
    pub name: &'static str,
    /// Final service status (cumulative switch/replan counters).
    pub status: ServiceStatus,
    /// Ticks spent in degraded mode.
    pub degraded_ticks: usize,
    /// Simulated outcome of the final plan under the final conditions.
    pub sim: MethodOutcome,
}

fn drive(name: &'static str, ungoverned: bool, quick: bool) -> ChurnOutcome {
    let scfg = scenario(quick);
    let problem = scfg.build();
    let trace = churn_trace(quick);
    let cfg = ServiceConfig {
        optimizer: OptimizerConfig {
            rounds: 3,
            gibbs_iters: if quick { 20 } else { 60 },
            ..OptimizerConfig::default()
        },
        replan_budget: Budget::evals(200_000),
        tick_s: 2.0,
        ungoverned,
        ..ServiceConfig::default()
    };
    let mut svc = PlanningService::new(problem, cfg).expect("f18 scenario validates");
    let report = svc.drive_trace(&trace, horizon_s(quick));
    let degraded_ticks = report.outcomes.iter().filter(|o| o.degraded).count();
    let status = svc.status();
    let final_problem = svc.effective_problem();
    let seeds: &[u64] = if quick { &[101, 202] } else { &[101, 202, 303] };
    let reports = runner::run_solution_seeds(
        &final_problem,
        svc.evaluator(),
        svc.solution(),
        scfg.sim.clone(),
        seeds,
    );
    let sim = runner::aggregate(Method::Joint, svc.solution(), &reports);
    ChurnOutcome {
        name,
        status,
        degraded_ticks,
        sim,
    }
}

/// Both postures over the shared trace, governed first.
pub(crate) fn outcomes(quick: bool) -> Vec<ChurnOutcome> {
    [("governed", false), ("ungoverned", true)]
        .par_iter()
        .map(|&(name, ungoverned)| drive(name, ungoverned, quick))
        .collect()
}

/// Print the governed-vs-ungoverned churn table.
pub fn run(quick: bool) {
    println!("\n== F18 [extension]: switching hysteresis under churn (governed vs ungoverned) ==");
    let mut t = Table::new(vec![
        "posture",
        "replans",
        "switches",
        "plan changes",
        "remap misses",
        "degraded ticks",
        "objective",
        "sim mean(ms)",
        "sim deadline",
    ]);
    for o in outcomes(quick) {
        t.row(vec![
            o.name.into(),
            o.status.total_replans.to_string(),
            o.status.total_switches.to_string(),
            o.status.total_plan_changes.to_string(),
            o.status.remap_misses.to_string(),
            o.degraded_ticks.to_string(),
            format!("{:.4}", o.status.last_objective),
            ms(o.sim.latency.mean),
            pct(o.sim.deadline_ratio),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f18_quick_runs() {
        run(true);
    }

    /// The acceptance criterion: ≥5× fewer switches at a deadline-hit
    /// rate within one percentage point, on the same churn trace.
    #[test]
    fn f18_governor_cuts_switching_without_losing_deadlines() {
        let rows = outcomes(true);
        let governed = rows.iter().find(|o| o.name == "governed").expect("row");
        let ungoverned = rows.iter().find(|o| o.name == "ungoverned").expect("row");
        assert!(
            ungoverned.status.total_switches >= 5,
            "trace too mild to thrash the baseline ({} switches)",
            ungoverned.status.total_switches
        );
        assert!(
            ungoverned.status.total_switches >= 5 * governed.status.total_switches.max(1),
            "governed {} vs ungoverned {} switches",
            governed.status.total_switches,
            ungoverned.status.total_switches
        );
        assert!(
            (governed.sim.deadline_ratio - ungoverned.sim.deadline_ratio).abs() <= 0.01,
            "deadline-hit drifted: governed {:.4} vs ungoverned {:.4}",
            governed.sim.deadline_ratio,
            ungoverned.sim.deadline_ratio
        );
        // Both services consumed the entire trace without rejections.
        assert_eq!(governed.status.rejected_batches, 0);
        assert_eq!(
            governed.status.events_consumed,
            ungoverned.status.events_consumed
        );
    }

    /// Same trace + same budgets reproduce bit-for-bit.
    #[test]
    fn f18_outcomes_are_deterministic() {
        let a = outcomes(true);
        let b = outcomes(true);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.status, y.status);
            assert_eq!(x.sim.latency.mean, y.sim.latency.mean);
            assert_eq!(x.sim.deadline_ratio, y.sim.deadline_ratio);
        }
    }
}
