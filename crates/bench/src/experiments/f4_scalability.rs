//! F4 — mean latency vs number of devices (scalability).

use crate::harness::{self, compare_methods};
use crate::table::{ms, Table};
use scalpel_core::baselines::Method;
use scalpel_core::config::ScenarioConfig;

/// The method subset plotted in the sweep figures.
pub const SWEEP_METHODS: &[Method] = &[
    Method::EdgeOnly,
    Method::Neurosurgeon,
    Method::SurgeryOnly,
    Method::AllocOnly,
    Method::Joint,
];

/// Print one mean-latency series per method over device counts.
pub fn run(quick: bool) {
    println!("\n== F4: mean latency (ms) vs number of devices ==");
    let counts: &[usize] = if quick {
        &[8, 24]
    } else {
        &[12, 20, 40, 60, 80, 100]
    };
    let seeds: &[u64] = if quick { &[101] } else { &[101, 202] };
    let mut t = Table::new(
        std::iter::once("devices".to_string())
            .chain(SWEEP_METHODS.iter().map(|m| m.name().to_string()))
            .collect::<Vec<_>>(),
    );
    for &n in counts {
        let mut scfg = ScenarioConfig::default();
        scfg.devices_per_ap = n / scfg.num_aps;
        if quick {
            scfg.sim.horizon_s = 8.0;
            scfg.sim.warmup_s = 1.0;
        }
        let rows = compare_methods(&scfg, &harness::default_optimizer(), SWEEP_METHODS, seeds);
        let mut cells = vec![n.to_string()];
        for m in SWEEP_METHODS {
            let r = rows.iter().find(|r| r.method == *m).expect("method row");
            cells.push(ms(r.outcome.latency.mean));
        }
        t.row(cells);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn f4_quick_runs() {
        super::run(true);
    }
}
