//! F5 — deadline-satisfaction ratio vs arrival rate.

use crate::experiments::f4_scalability::SWEEP_METHODS;
use crate::harness::{self, compare_methods};
use crate::table::{pct, Table};
use scalpel_core::config::ScenarioConfig;

/// Print one deadline-ratio series per method over per-stream rates.
pub fn run(quick: bool) {
    println!("\n== F5: deadline satisfaction vs arrival rate (req/s per stream) ==");
    let rates: &[f64] = if quick {
        &[4.0, 12.0]
    } else {
        &[2.0, 5.0, 8.0, 12.0, 16.0, 20.0]
    };
    let seeds: &[u64] = if quick { &[101] } else { &[101, 202] };
    let mut t = Table::new(
        std::iter::once("rate".to_string())
            .chain(SWEEP_METHODS.iter().map(|m| m.name().to_string()))
            .collect::<Vec<_>>(),
    );
    for &rate in rates {
        let mut scfg = ScenarioConfig {
            arrival_rate_hz: rate,
            ..ScenarioConfig::default()
        };
        if quick {
            scfg.num_aps = 2;
            scfg.devices_per_ap = 4;
            scfg.sim.horizon_s = 8.0;
            scfg.sim.warmup_s = 1.0;
        }
        let rows = compare_methods(&scfg, &harness::default_optimizer(), SWEEP_METHODS, seeds);
        let mut cells = vec![format!("{rate:.0}")];
        for m in SWEEP_METHODS {
            let r = rows.iter().find(|r| r.method == *m).expect("method row");
            cells.push(pct(r.outcome.deadline_ratio));
        }
        t.row(cells);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn f5_quick_runs() {
        super::run(true);
    }
}
