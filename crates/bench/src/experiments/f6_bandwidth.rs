//! F6 — mean latency vs uplink bandwidth.

use crate::experiments::f4_scalability::SWEEP_METHODS;
use crate::harness::{self, compare_methods};
use crate::table::{ms, Table};
use scalpel_core::config::ScenarioConfig;

/// Print one mean-latency series per method over AP bandwidths.
pub fn run(quick: bool) {
    println!("\n== F6: mean latency (ms) vs AP bandwidth (MHz) ==");
    let mhz: &[f64] = if quick {
        &[5.0, 40.0]
    } else {
        &[2.0, 5.0, 10.0, 20.0, 35.0, 50.0]
    };
    let seeds: &[u64] = if quick { &[101] } else { &[101, 202] };
    let mut t = Table::new(
        std::iter::once("MHz".to_string())
            .chain(SWEEP_METHODS.iter().map(|m| m.name().to_string()))
            .collect::<Vec<_>>(),
    );
    for &bw in mhz {
        let mut scfg = ScenarioConfig {
            ap_bandwidth_hz: bw * 1e6,
            ..ScenarioConfig::default()
        };
        if quick {
            scfg.num_aps = 2;
            scfg.devices_per_ap = 4;
            scfg.sim.horizon_s = 8.0;
            scfg.sim.warmup_s = 1.0;
        }
        let rows = compare_methods(&scfg, &harness::default_optimizer(), SWEEP_METHODS, seeds);
        let mut cells = vec![format!("{bw:.0}")];
        for m in SWEEP_METHODS {
            let r = rows.iter().find(|r| r.method == *m).expect("method row");
            cells.push(ms(r.outcome.latency.mean));
        }
        t.row(cells);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn f6_quick_runs() {
        super::run(true);
    }
}
