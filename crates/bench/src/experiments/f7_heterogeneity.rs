//! F7 — mean latency vs edge-server heterogeneity.
//!
//! Server capacities keep the same total but spread with increasing
//! coefficient of variation; allocation-aware methods should degrade
//! gracefully while static splits suffer on the slow boxes.

use crate::harness::{self, compare_methods};
use crate::table::{ms, Table};
use scalpel_core::baselines::Method;
use scalpel_core::config::{ScenarioConfig, ServerMix};

const METHODS: &[Method] = &[
    Method::EdgeOnly,
    Method::Neurosurgeon,
    Method::AllocOnly,
    Method::Joint,
];

/// Print one mean-latency series per method over capacity CVs.
pub fn run(quick: bool) {
    println!("\n== F7: mean latency (ms) vs server-capacity CV ==");
    let cvs: &[f64] = if quick {
        &[0.0, 0.5]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    };
    let seeds: &[u64] = if quick { &[101] } else { &[101, 202] };
    let mut t = Table::new(
        std::iter::once("cv".to_string())
            .chain(METHODS.iter().map(|m| m.name().to_string()))
            .collect::<Vec<_>>(),
    );
    for &cv in cvs {
        let mut scfg = ScenarioConfig {
            servers: ServerMix::Synthetic {
                count: 4,
                mean_fps: 2.0e12,
                cv,
            },
            ..ScenarioConfig::default()
        };
        if quick {
            scfg.num_aps = 2;
            scfg.devices_per_ap = 4;
            scfg.sim.horizon_s = 8.0;
            scfg.sim.warmup_s = 1.0;
        }
        let rows = compare_methods(&scfg, &harness::default_optimizer(), METHODS, seeds);
        let mut cells = vec![format!("{cv:.1}")];
        for m in METHODS {
            let r = rows.iter().find(|r| r.method == *m).expect("method row");
            cells.push(ms(r.outcome.latency.mean));
        }
        t.row(cells);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn f7_quick_runs() {
        super::run(true);
    }
}
