//! F8 — the accuracy/latency trade-off.
//!
//! Relaxing the per-stream accuracy floor lets surgery choose more
//! aggressive exits and pruning; the figure traces the resulting
//! (measured accuracy, measured latency) frontier for the Joint method.

use crate::harness::{self, compare_methods};
use crate::table::{ms, pct, Table};
use scalpel_core::baselines::Method;
use scalpel_core::config::ScenarioConfig;

/// Print the Joint frontier over accuracy-floor relaxations.
pub fn run(quick: bool) {
    println!("\n== F8: accuracy-latency trade-off (Joint, relaxing the floor) ==");
    let drops: &[f64] = if quick {
        &[0.01, 0.06]
    } else {
        &[0.005, 0.01, 0.02, 0.04, 0.06, 0.10]
    };
    let seeds: &[u64] = if quick { &[101] } else { &[101, 202] };
    let mut t = Table::new(vec![
        "allowed drop",
        "measured accuracy",
        "mean(ms)",
        "p95(ms)",
        "early-exit",
    ]);
    for &drop in drops {
        let mut scfg = ScenarioConfig {
            accuracy_floor_drop: drop,
            ..ScenarioConfig::default()
        };
        if quick {
            scfg.num_aps = 2;
            scfg.devices_per_ap = 4;
            scfg.sim.horizon_s = 8.0;
            scfg.sim.warmup_s = 1.0;
        }
        let rows = compare_methods(
            &scfg,
            &harness::default_optimizer(),
            &[Method::Joint],
            seeds,
        );
        let r = &rows[0].outcome;
        t.row(vec![
            format!("{:.1} pp", drop * 100.0),
            format!("{:.3}", r.accuracy),
            ms(r.latency.mean),
            ms(r.latency.p95),
            pct(r.early_exit_fraction),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn f8_quick_runs() {
        super::run(true);
    }
}
