//! F9 — optimizer convergence and optimality gap.
//!
//! On a small instance where the plan product space is exhaustively
//! enumerable, trace the joint search's best-so-far objective and report
//! the final gap to the exhaustive optimum; on the default instance, print
//! the convergence series alone.

use crate::table::Table;
use scalpel_core::config::ScenarioConfig;
use scalpel_core::evaluator::Evaluator;
use scalpel_core::optimizer::{self, OptimizerConfig};
use scalpel_surgery::candidates::CandidateConfig;
use scalpel_surgery::PruneLevel;

/// Print the convergence trace and the optimality gap vs exhaustive.
pub fn run(quick: bool) {
    println!("\n== F9: convergence & optimality gap ==");
    // Small instance for the exhaustive reference.
    let scfg = ScenarioConfig {
        num_aps: 1,
        devices_per_ap: if quick { 2 } else { 3 },
        arrival_rate_hz: 5.0,
        ..ScenarioConfig::default()
    };
    let problem = scfg.build();
    let menu_cfg = CandidateConfig {
        max_cuts: 4,
        prune_levels: vec![PruneLevel::None],
        ..Default::default()
    };
    let ev = Evaluator::new(&problem, Some(menu_cfg));
    let opt_cfg = OptimizerConfig {
        rounds: 4,
        gibbs_iters: if quick { 60 } else { 200 },
        ..Default::default()
    };
    let exhaustive = optimizer::exhaustive(&ev, &opt_cfg, 2_000_000);
    // Start the traced search from the naive configuration (every stream
    // on its first menu plan, round-robin placement) so the figure shows
    // actual descent, then Gibbs refinement.
    let naive = scalpel_core::evaluator::Assignment {
        plan_idx: vec![0; ev.num_streams()],
        placement: (0..ev.num_streams())
            .map(|k| k % ev.num_servers())
            .collect(),
    };
    let descended = optimizer::coordinate_descent_from(&ev, &opt_cfg, naive);
    let sol = optimizer::gibbs_refine(&ev, &opt_cfg, descended);
    let gap = (sol.result.objective - exhaustive.result.objective)
        / exhaustive.result.objective.max(1e-12);
    println!(
        "streams={} menu sizes={:?} evaluations={} (exhaustive={})",
        ev.num_streams(),
        (0..ev.num_streams())
            .map(|k| ev.menu(k).len())
            .collect::<Vec<_>>(),
        sol.trace.evaluations,
        exhaustive.trace.evaluations,
    );
    println!(
        "joint objective={:.5}  exhaustive optimum={:.5}  gap={:.2}%",
        sol.result.objective,
        exhaustive.result.objective,
        gap * 100.0
    );
    // Convergence series, downsampled to ~15 points.
    let trace = &sol.trace.objective;
    let mut t = Table::new(vec!["step", "best objective"]);
    let stride = (trace.len() / 15).max(1);
    for (i, v) in trace.iter().enumerate() {
        if i % stride == 0 || i + 1 == trace.len() {
            t.row(vec![i.to_string(), format!("{v:.5}")]);
        }
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn f9_quick_runs() {
        super::run(true);
    }
}
