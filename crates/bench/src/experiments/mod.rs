//! One module per table/figure of the reconstructed evaluation.
//!
//! Each experiment is a function taking a `quick: bool` flag (smaller
//! sweeps + shorter simulations for smoke runs) and printing the same rows
//! or series the paper-style artifact would contain.

pub mod a1_design_ablation;
pub mod f10_ablation;
pub mod f11_runtime;
pub mod f12_burstiness;
pub mod f13_energy;
pub mod f14_validation;
pub mod f15_dynamics;
pub mod f16_faults;
pub mod f17_recovery;
pub mod f18_churn;
pub mod f4_scalability;
pub mod f5_arrival;
pub mod f6_bandwidth;
pub mod f7_heterogeneity;
pub mod f8_accuracy;
pub mod f9_convergence;
pub mod t1_models;
pub mod t2_params;
pub mod t3_overall;

/// Run every experiment in index order.
pub fn run_all(quick: bool) {
    t1_models::run();
    t2_params::run();
    t3_overall::run(quick);
    f4_scalability::run(quick);
    f5_arrival::run(quick);
    f6_bandwidth::run(quick);
    f7_heterogeneity::run(quick);
    f8_accuracy::run(quick);
    f9_convergence::run(quick);
    f10_ablation::run(quick);
    f11_runtime::run(quick);
    f12_burstiness::run(quick);
    f13_energy::run(quick);
    f14_validation::run(quick);
    f15_dynamics::run(quick);
    f16_faults::run(quick);
    f17_recovery::run(quick);
    f18_churn::run(quick);
    a1_design_ablation::run(quick);
}
