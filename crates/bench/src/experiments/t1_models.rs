//! T1 — model zoo characteristics.

use crate::table::Table;
use scalpel_models::zoo;
use scalpel_surgery::partition;

/// Print the zoo table: layers, GFLOPs, params, cut/exit structure.
pub fn run() {
    println!("\n== T1: model zoo characteristics ==");
    let mut t = Table::new(vec![
        "model",
        "layers",
        "GFLOPs",
        "params(M)",
        "cut points",
        "min-cut KB",
        "input",
    ]);
    for name in zoo::ALL_NAMES {
        let g = zoo::by_name(name).expect("zoo name");
        let min_cut = partition::min_bytes_interior_cut(&g)
            .map(|c| format!("{:.1}", c.bytes as f64 / 1024.0))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            g.name().to_string(),
            g.len().to_string(),
            format!("{:.2}", g.total_flops() as f64 / 1e9),
            format!("{:.2}", g.total_params() as f64 / 1e6),
            g.cut_points().len().to_string(),
            min_cut,
            g.input_shape().to_string(),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn t1_runs() {
        super::run();
    }
}
