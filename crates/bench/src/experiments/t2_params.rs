//! T2 — default simulation parameters.

use crate::table::Table;
use scalpel_core::config::ScenarioConfig;

/// Print the default scenario parameters (the reconstructed Table 2).
pub fn run() {
    println!("\n== T2: default parameters ==");
    let c = ScenarioConfig::default();
    let mut t = Table::new(vec!["parameter", "value"]);
    t.row(vec!["access points", &c.num_aps.to_string()]);
    t.row(vec!["devices per AP", &c.devices_per_ap.to_string()]);
    t.row(vec![
        "device classes",
        "rpi4 40% / phone 30% / nano 20% / tx2 10%",
    ]);
    t.row(vec![
        "AP bandwidth",
        &format!("{:.0} MHz", c.ap_bandwidth_hz / 1e6),
    ]);
    t.row(vec!["RTT", &format!("{:.1} ms", c.rtt_s * 1e3)]);
    t.row(vec!["edge servers", "xeon / t4 / v100 / t4"]);
    t.row(vec![
        "arrival",
        &format!("Poisson {:.0} req/s per stream", c.arrival_rate_hz),
    ]);
    t.row(vec![
        "deadlines (ms)",
        &c.deadlines_s
            .iter()
            .map(|d| format!("{:.0}", d * 1e3))
            .collect::<Vec<_>>()
            .join(" / "),
    ]);
    t.row(vec![
        "accuracy floor",
        &format!("full-model − {:.1} pp", c.accuracy_floor_drop * 100.0),
    ]);
    t.row(vec![
        "simulation",
        &format!(
            "{:.0} s horizon, {:.0} s warm-up",
            c.sim.horizon_s, c.sim.warmup_s
        ),
    ]);
    t.row(vec!["models", "alexnet / vgg16 / resnet18 / mobilenet_v2"]);
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn t2_runs() {
        super::run();
    }
}
