//! T3 — overall comparison: every method on the default scenario.

use crate::harness::{self, compare_methods};
use crate::table::{ms, pct, Table};
use scalpel_core::baselines::Method;
use scalpel_core::config::ScenarioConfig;

/// Print the full method ladder: latency distribution, deadline ratio,
/// accuracy, early-exit fraction.
pub fn run(quick: bool) {
    println!("\n== T3: overall comparison (default scenario) ==");
    let scfg = if quick {
        harness::smoke_scenario()
    } else {
        ScenarioConfig::default()
    };
    let seeds: &[u64] = if quick {
        &[101]
    } else {
        harness::DEFAULT_SEEDS
    };
    let rows = compare_methods(&scfg, &harness::default_optimizer(), Method::ALL, seeds);
    let mut t = Table::new(vec![
        "method",
        "mean(ms)",
        "p50(ms)",
        "p95(ms)",
        "p99(ms)",
        "deadline",
        "accuracy",
        "early-exit",
    ]);
    for r in &rows {
        t.row(vec![
            r.method.name().to_string(),
            ms(r.outcome.latency.mean),
            ms(r.outcome.latency.p50),
            ms(r.outcome.latency.p95),
            ms(r.outcome.latency.p99),
            pct(r.outcome.deadline_ratio),
            format!("{:.3}", r.outcome.accuracy),
            pct(r.outcome.early_exit_fraction),
        ]);
    }
    t.print();
    // Headline: Joint's speedup over the strongest static baseline.
    let joint = rows
        .iter()
        .find(|r| r.method == Method::Joint)
        .expect("Joint in ladder");
    let best_static = rows
        .iter()
        .filter(|r| {
            matches!(
                r.method,
                Method::DeviceOnly | Method::EdgeOnly | Method::Neurosurgeon | Method::FixedExit
            )
        })
        .map(|r| r.outcome.latency.mean)
        .fold(f64::INFINITY, f64::min);
    println!(
        "Joint mean speedup vs best static baseline: {:.2}x",
        best_static / joint.outcome.latency.mean
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn t3_quick_runs() {
        super::run(true);
    }
}
