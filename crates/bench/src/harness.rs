//! Shared experiment machinery: build a scenario, solve it with each
//! method, execute in the simulator over several seeds, aggregate.

use rayon::prelude::*;
use scalpel_core::baselines::{solve_with, Method};
use scalpel_core::config::ScenarioConfig;
use scalpel_core::evaluator::Evaluator;
use scalpel_core::optimizer::OptimizerConfig;
use scalpel_core::runner::{self, MethodOutcome};
use serde::{Deserialize, Serialize};

/// One method's aggregated results on one scenario point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodRow {
    /// The method.
    pub method: Method,
    /// Aggregated outcome.
    pub outcome: MethodOutcome,
}

/// Default simulation seeds for experiment averaging.
pub const DEFAULT_SEEDS: &[u64] = &[101, 202, 303];

/// Solve + simulate every listed method on the scenario.
///
/// Methods run in parallel (each holds its own solution; the evaluator is
/// shared read-only), and each method's seeds run in parallel inside the
/// runner.
pub fn compare_methods(
    scfg: &ScenarioConfig,
    opt_cfg: &OptimizerConfig,
    methods: &[Method],
    seeds: &[u64],
) -> Vec<MethodRow> {
    let problem = scfg.build();
    problem
        .validate()
        .expect("scenario is valid by construction");
    let ev = Evaluator::new(&problem, None);
    methods
        .par_iter()
        .map(|&method| {
            let sol = solve_with(&ev, method, opt_cfg);
            let reports = runner::run_solution_seeds(&problem, &ev, &sol, scfg.sim.clone(), seeds);
            MethodRow {
                method,
                outcome: runner::aggregate(method, &sol, &reports),
            }
        })
        .collect()
}

/// The optimizer configuration used by all experiments (fixed so results
/// are reproducible run-to-run).
pub fn default_optimizer() -> OptimizerConfig {
    OptimizerConfig {
        rounds: 4,
        gibbs_iters: 150,
        ..Default::default()
    }
}

/// A faster scenario for smoke tests and CI.
pub fn smoke_scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        num_aps: 1,
        devices_per_ap: 4,
        arrival_rate_hz: 4.0,
        ..ScenarioConfig::default()
    };
    cfg.sim.horizon_s = 8.0;
    cfg.sim.warmup_s = 1.0;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_methods_smoke() {
        let rows = compare_methods(
            &smoke_scenario(),
            &OptimizerConfig {
                rounds: 1,
                gibbs_iters: 10,
                ..Default::default()
            },
            &[Method::EdgeOnly, Method::Joint],
            &[1],
        );
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.outcome.completed > 0, "{}", r.method.name());
            assert!(r.outcome.latency.mean > 0.0);
        }
    }
}
