//! # scalpel-bench — experiment harness
//!
//! Regenerates every table and figure of the (reconstructed) evaluation —
//! see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! recorded results. The `experiments` binary dispatches one experiment per
//! subcommand (`t1`, `t2`, `t3`, `f4` … `f11`, or `all`); the Criterion
//! benches cover the component-level performance numbers.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod harness;
pub mod table;

pub use harness::{compare_methods, MethodRow};
pub use table::Table;
