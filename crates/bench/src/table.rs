//! Plain-text table rendering for experiment output.

/// A simple aligned-column table printer.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], width: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.len()..width[i] {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&self.headers, &width, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &width, &mut out);
        }
        out
    }

    /// Tab-separated rendering (headers + rows), for plotting pipelines.
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Print to stdout; additionally, when `SCALPEL_TABLE_DIR` is set,
    /// write the TSV form to `<dir>/<slug(first header)>-<n>.tsv` so sweep
    /// results can feed plotting scripts without screen-scraping.
    pub fn print(&self) {
        print!("{}", self.render());
        if let Ok(dir) = std::env::var("SCALPEL_TABLE_DIR") {
            let slug: String = self
                .headers
                .first()
                .map(|h| {
                    h.chars()
                        .map(|c| if c.is_alphanumeric() { c } else { '_' })
                        .collect()
                })
                .unwrap_or_else(|| "table".into());
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(0);
            let path = std::path::Path::new(&dir).join(format!("{slug}-{nanos}.tsv"));
            if let Err(e) = std::fs::write(&path, self.to_tsv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

/// Format seconds as milliseconds with two decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e3)
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["method", "latency"]);
        t.row(vec!["Joint", "12.3"]);
        t.row(vec!["EdgeOnly", "45.6"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // "latency" column aligned at the same offset on all rows
        let off = lines[0].find("latency").unwrap();
        assert_eq!(lines[2].find("12.3").unwrap(), off);
        assert_eq!(lines[3].find("45.6").unwrap(), off);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(0.01234), "12.34");
        assert_eq!(pct(0.987), "98.7%");
    }

    #[test]
    fn tsv_rendering() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["3", "4"]);
        assert_eq!(t.to_tsv(), "a\tb\n1\t2\n3\t4\n");
    }

    #[test]
    fn tsv_dump_writes_file() {
        let dir = std::env::temp_dir().join(format!("scalpel-tsv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // to_tsv + manual write mirrors what print() does with the env var
        // (the env var itself is process-global, so don't set it in tests).
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["42"]);
        let path = dir.join("t.tsv");
        std::fs::write(&path, t.to_tsv()).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n42\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
