//! Deadline-admission screening of a complete solution.
//!
//! After the joint search picks plans, placement and shares, this module
//! answers the operator question "*is every stream's deadline actually
//! coverable by its resource groups?*" — per edge server (compute) and per
//! AP (spectrum) — using the same mandatory-minimum-share test as
//! `scalpel_alloc::admission`. A fully-admitted solution is one whose
//! deadlines are simultaneously satisfiable; rejected ids pinpoint which
//! streams would need a cheaper surgery plan (or a longer deadline).

use crate::evaluator::{Assignment, EvalResult, Evaluator};
use scalpel_alloc::admission::{self, AdmissionResult};
use scalpel_alloc::convex::HyperbolicDemand;
use serde::{Deserialize, Serialize};

/// Screening outcome for every resource group touched by a solution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolutionAdmission {
    /// One result per edge server (index = server id).
    pub servers: Vec<AdmissionResult>,
    /// One result per AP (index = AP id).
    pub aps: Vec<AdmissionResult>,
}

impl SolutionAdmission {
    /// Whether every stream fits everywhere.
    pub fn all_admitted(&self) -> bool {
        self.servers.iter().all(|r| r.all_admitted()) && self.aps.iter().all(|r| r.all_admitted())
    }

    /// Stream ids rejected by at least one group (sorted, deduplicated).
    pub fn rejected_streams(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .servers
            .iter()
            .chain(self.aps.iter())
            .flat_map(|r| r.rejected.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Screen a priced configuration.
pub fn screen_solution(ev: &Evaluator, asg: &Assignment, result: &EvalResult) -> SolutionAdmission {
    screen_solution_with_breakers(
        ev,
        asg,
        result,
        &vec![false; ev.num_servers()],
        &vec![false; ev.num_aps()],
    )
}

/// Screen a priced configuration against live breaker state: streams whose
/// server or AP breaker is open (per `server_open` / `ap_open`, typically
/// read off a [`scalpel_sim::HealthSnapshot`]) are shed from that group up
/// front, so the report shows what admission control would do *during* the
/// outage rather than in the nominal world.
pub fn screen_solution_with_breakers(
    ev: &Evaluator,
    asg: &Assignment,
    result: &EvalResult,
    server_open: &[bool],
    ap_open: &[bool],
) -> SolutionAdmission {
    let n = ev.num_streams();
    let offloaded: Vec<usize> = (0..n)
        .filter(|&k| !ev.menu(k)[asg.plan_idx[k]].is_device_only())
        .collect();
    // Per-server compute screening: fixed = device + transmission at the
    // granted share; scaled = expected edge seconds at full capacity.
    let mut servers = Vec::with_capacity(ev.num_servers());
    for srv in 0..ev.num_servers() {
        let members: Vec<usize> = offloaded
            .iter()
            .copied()
            .filter(|&k| asg.placement[k] == srv)
            .collect();
        let demands: Vec<HyperbolicDemand> = members
            .iter()
            .map(|&k| {
                let p = &ev.menu(k)[asg.plan_idx[k]];
                let tx = ev.tx_full_seconds(k, p) / result.bandwidth_shares[k].max(1e-9);
                HyperbolicDemand::new(
                    p.dev_full + tx,
                    p.remain * p.edge_flops / ev.server_caps()[srv],
                )
            })
            .collect();
        let deadlines: Vec<f64> = members.iter().map(|&k| ev.deadline(k)).collect();
        let tripped = vec![server_open.get(srv).copied().unwrap_or(false); members.len()];
        servers.push(admission::screen_with_breakers(
            &members, &demands, &deadlines, &tripped,
        ));
    }
    // Per-AP spectrum screening: fixed = device + edge at the granted
    // share; scaled = expected transmission seconds at full spectrum.
    let mut aps = Vec::with_capacity(ev.num_aps());
    for ap in 0..ev.num_aps() {
        let members: Vec<usize> = offloaded
            .iter()
            .copied()
            .filter(|&k| ev.ap_of(k) == ap)
            .collect();
        let demands: Vec<HyperbolicDemand> = members
            .iter()
            .map(|&k| {
                let p = &ev.menu(k)[asg.plan_idx[k]];
                let srv = asg.placement[k];
                let edge =
                    p.edge_flops / (ev.server_caps()[srv] * result.compute_shares[k].max(1e-9));
                HyperbolicDemand::new(p.dev_full + edge, p.remain * ev.tx_full_seconds(k, p))
            })
            .collect();
        let deadlines: Vec<f64> = members.iter().map(|&k| ev.deadline(k)).collect();
        let tripped = vec![ap_open.get(ap).copied().unwrap_or(false); members.len()];
        aps.push(admission::screen_with_breakers(
            &members, &demands, &deadlines, &tripped,
        ));
    }
    SolutionAdmission { servers, aps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{solve_with, Method};
    use crate::config::ScenarioConfig;
    use crate::optimizer::OptimizerConfig;

    fn setup() -> (Evaluator, OptimizerConfig) {
        let cfg = ScenarioConfig {
            num_aps: 2,
            devices_per_ap: 3,
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        };
        (
            Evaluator::new(&cfg.build(), None),
            OptimizerConfig::default(),
        )
    }

    #[test]
    fn joint_solution_is_fully_admitted_at_default_load() {
        let (ev, opt) = setup();
        let sol = solve_with(&ev, Method::Joint, &opt);
        let adm = screen_solution(&ev, &sol.assignment, &sol.result);
        assert!(adm.all_admitted(), "rejected: {:?}", adm.rejected_streams());
        assert_eq!(adm.servers.len(), ev.num_servers());
        assert_eq!(adm.aps.len(), ev.num_aps());
    }

    #[test]
    fn edge_only_rejects_more_than_joint() {
        let (ev, opt) = setup();
        let joint = solve_with(&ev, Method::Joint, &opt);
        let edge = solve_with(&ev, Method::EdgeOnly, &opt);
        let adm_joint = screen_solution(&ev, &joint.assignment, &joint.result);
        let adm_edge = screen_solution(&ev, &edge.assignment, &edge.result);
        assert!(
            adm_edge.rejected_streams().len() >= adm_joint.rejected_streams().len(),
            "edge {:?} vs joint {:?}",
            adm_edge.rejected_streams(),
            adm_joint.rejected_streams()
        );
    }

    #[test]
    fn open_breaker_sheds_every_member_of_its_group() {
        let (ev, opt) = setup();
        let sol = solve_with(&ev, Method::Joint, &opt);
        // Open the breaker of the busiest server: each of its streams
        // must land in that group's rejection list, ahead of any
        // need-based eviction.
        let members_of = |srv: usize| -> Vec<usize> {
            (0..ev.num_streams())
                .filter(|&k| {
                    !ev.menu(k)[sol.assignment.plan_idx[k]].is_device_only()
                        && sol.assignment.placement[k] == srv
                })
                .collect()
        };
        let busiest = (0..ev.num_servers())
            .max_by_key(|&s| members_of(s).len())
            .unwrap();
        let members = members_of(busiest);
        assert!(!members.is_empty(), "no stream offloads anywhere");
        let mut server_open = vec![false; ev.num_servers()];
        server_open[busiest] = true;
        let adm = screen_solution_with_breakers(
            &ev,
            &sol.assignment,
            &sol.result,
            &server_open,
            &vec![false; ev.num_aps()],
        );
        assert!(adm.servers[busiest].admitted.is_empty());
        assert_eq!(
            &adm.servers[busiest].rejected[..members.len()],
            &members[..]
        );
        // Other groups are untouched relative to the breaker-free screen.
        let nominal = screen_solution(&ev, &sol.assignment, &sol.result);
        for s in 0..ev.num_servers() {
            if s != busiest {
                assert_eq!(adm.servers[s], nominal.servers[s]);
            }
        }
        assert_eq!(adm.aps, nominal.aps);
    }

    #[test]
    fn screening_covers_every_offloaded_stream_exactly_once_per_axis() {
        let (ev, opt) = setup();
        let sol = solve_with(&ev, Method::Joint, &opt);
        let adm = screen_solution(&ev, &sol.assignment, &sol.result);
        let offloaded: Vec<usize> = (0..ev.num_streams())
            .filter(|&k| !ev.menu(k)[sol.assignment.plan_idx[k]].is_device_only())
            .collect();
        let mut by_server: Vec<usize> = adm
            .servers
            .iter()
            .flat_map(|r| r.admitted.iter().chain(r.rejected.iter()).copied())
            .collect();
        by_server.sort_unstable();
        assert_eq!(by_server, offloaded);
        let mut by_ap: Vec<usize> = adm
            .aps
            .iter()
            .flat_map(|r| r.admitted.iter().chain(r.rejected.iter()).copied())
            .collect();
        by_ap.sort_unstable();
        assert_eq!(by_ap, offloaded);
    }
}
