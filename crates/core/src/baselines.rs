//! The evaluation's method ladder: every baseline the paper-style
//! comparison needs, each expressed as a restriction of the joint search.
//!
//! | Method        | Surgery                         | Allocation            |
//! |---------------|---------------------------------|-----------------------|
//! | DeviceOnly    | everything on the device        | —                     |
//! | EdgeOnly      | full offload                    | equal, round-robin    |
//! | Neurosurgeon  | best static cut, no exits       | equal, round-robin    |
//! | FixedExit     | static cut + all exits @0.8     | equal, round-robin    |
//! | SurgeryOnly   | joint surgery search            | equal, round-robin    |
//! | AllocOnly     | Neurosurgeon cuts               | optimal               |
//! | Joint         | joint surgery search            | optimal               |

use crate::evaluator::{AllocPolicies, Assignment, Evaluator, PlanPricing};
use crate::optimizer::{
    self, Budget, BudgetSpent, OptimizerConfig, SearchTrace, Solution, SolveOutcome,
};
use scalpel_alloc::placement::PlacementStrategy;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The seven methods compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Run the whole model on the device.
    DeviceOnly,
    /// Ship the raw input to the edge (full offload).
    EdgeOnly,
    /// Latency-best static partition per stream, no exits, no pruning
    /// (Neurosurgeon-style), static resource shares.
    Neurosurgeon,
    /// Neurosurgeon's cut plus every available exit at threshold 0.8.
    FixedExit,
    /// Joint surgery search but static (equal/round-robin) resources.
    SurgeryOnly,
    /// Neurosurgeon's plans but optimal placement + allocation.
    AllocOnly,
    /// The paper's scheme: joint surgery + allocation.
    Joint,
}

impl Method {
    /// All methods in the canonical comparison order.
    pub const ALL: &'static [Method] = &[
        Method::DeviceOnly,
        Method::EdgeOnly,
        Method::Neurosurgeon,
        Method::FixedExit,
        Method::SurgeryOnly,
        Method::AllocOnly,
        Method::Joint,
    ];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::DeviceOnly => "DeviceOnly",
            Method::EdgeOnly => "EdgeOnly",
            Method::Neurosurgeon => "Neurosurgeon",
            Method::FixedExit => "FixedExit",
            Method::SurgeryOnly => "SurgeryOnly",
            Method::AllocOnly => "AllocOnly",
            Method::Joint => "Joint",
        }
    }
}

/// Index of the menu plan closest to "device only" (max cut, no exits).
/// Prefers the *pure* classic baseline — no exits, no pruning — over
/// exit-bearing device-only plans the menu may also contain.
fn device_only_idx(menu: &[PlanPricing]) -> usize {
    menu.iter()
        .enumerate()
        .filter(|(_, p)| p.is_device_only())
        .max_by_key(|(_, p)| {
            (
                p.plan.exits.is_empty(),
                p.plan.prune == scalpel_surgery::PruneLevel::None,
            )
        })
        .map(|(i, _)| i)
        .unwrap_or_else(|| {
            // No device-only plan survived Pareto filtering (heavy model on
            // a weak device): fall back to the plan with the most device
            // work — the closest available approximation.
            menu.iter()
                .enumerate()
                .max_by(|a, b| a.1.dev_full.total_cmp(&b.1.dev_full))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
}

/// Index of the full-offload plan (cut 0).
fn full_offload_idx(menu: &[PlanPricing]) -> usize {
    menu.iter()
        .position(|p| p.plan.cut == 0)
        .unwrap_or_else(|| {
            menu.iter()
                .enumerate()
                .min_by(|a, b| a.1.dev_full.total_cmp(&b.1.dev_full))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
}

/// The static fair-share latency estimate a one-stream-at-a-time method
/// (Neurosurgeon, FixedExit) would compute: device time + transmission at
/// `1/peers` of the AP + edge at `1/streams-per-server` of the mean server.
fn static_score(ev: &Evaluator, k: usize, p: &PlanPricing) -> f64 {
    let peers = ev.peers_on_same_ap(k) as f64;
    let mean_cap = ev.server_caps().iter().sum::<f64>() / ev.server_caps().len().max(1) as f64;
    let streams_per_server =
        (ev.num_streams() as f64 / ev.server_caps().len().max(1) as f64).max(1.0);
    let mut lat = p.exp_dev;
    lat += p.remain
        * (ev.tx_full_seconds(k, p) * peers
            + p.edge_flops * streams_per_server / mean_cap.max(1.0));
    lat
}

/// Neurosurgeon: per-stream, the exit-free unpruned plan with the lowest
/// static fair-share latency estimate.
fn neurosurgeon_idx(ev: &Evaluator, k: usize) -> usize {
    let menu = ev.menu(k);
    let candidates: Vec<usize> = (0..menu.len())
        .filter(|&i| {
            menu[i].plan.exits.is_empty()
                && menu[i].plan.prune == scalpel_surgery::PruneLevel::None
                && !menu[i].plan.quantize_tx
        })
        .collect();
    let pool = if candidates.is_empty() {
        (0..menu.len()).collect::<Vec<_>>()
    } else {
        candidates
    };
    pool.into_iter()
        .min_by(|&a, &b| static_score(ev, k, &menu[a]).total_cmp(&static_score(ev, k, &menu[b])))
        .unwrap_or(0)
}

/// FixedExit: a statically-chosen multi-exit configuration — the
/// exit-bearing unpruned plan with the best static fair-share estimate
/// (no joint optimization, equal shares). Falls back to Neurosurgeon's
/// plan when no exit-bearing plan exists for the stream.
fn fixed_exit_idx(ev: &Evaluator, k: usize) -> usize {
    let menu = ev.menu(k);
    menu.iter()
        .enumerate()
        .filter(|(_, p)| {
            !p.plan.exits.is_empty() && p.plan.prune == scalpel_surgery::PruneLevel::None
        })
        .min_by(|a, b| static_score(ev, k, a.1).total_cmp(&static_score(ev, k, b.1)))
        .map(|(i, _)| i)
        .unwrap_or_else(|| neurosurgeon_idx(ev, k))
}

/// Produce a method's solution on a prepared evaluator.
pub fn solve_with(ev: &Evaluator, method: Method, cfg: &OptimizerConfig) -> Solution {
    let n = ev.num_streams();
    let static_policies = AllocPolicies::equal();
    let rr_placement =
        |_: &[usize]| -> Vec<usize> { (0..n).map(|k| k % ev.num_servers()).collect() };
    let fixed = |plan_idx: Vec<usize>, placement: Vec<usize>, policies: AllocPolicies| {
        let asg = Assignment {
            plan_idx,
            placement,
        };
        let result = ev.evaluate(&asg, policies);
        Solution {
            assignment: asg,
            result,
            trace: SearchTrace::default(),
        }
    };
    match method {
        Method::DeviceOnly => {
            let idx: Vec<usize> = (0..n).map(|k| device_only_idx(ev.menu(k))).collect();
            let placement = rr_placement(&idx);
            fixed(idx, placement, static_policies)
        }
        Method::EdgeOnly => {
            let idx: Vec<usize> = (0..n).map(|k| full_offload_idx(ev.menu(k))).collect();
            let placement = rr_placement(&idx);
            fixed(idx, placement, static_policies)
        }
        Method::Neurosurgeon => {
            let idx: Vec<usize> = (0..n).map(|k| neurosurgeon_idx(ev, k)).collect();
            let placement = rr_placement(&idx);
            fixed(idx, placement, static_policies)
        }
        Method::FixedExit => {
            let idx: Vec<usize> = (0..n).map(|k| fixed_exit_idx(ev, k)).collect();
            let placement = rr_placement(&idx);
            fixed(idx, placement, static_policies)
        }
        Method::SurgeryOnly => {
            let mut c = cfg.clone();
            c.policies = static_policies;
            c.placement = PlacementStrategy::RoundRobin;
            optimizer::solve(ev, &c)
        }
        Method::AllocOnly => {
            let idx: Vec<usize> = (0..n).map(|k| neurosurgeon_idx(ev, k)).collect();
            let placement = optimizer::placement_for(ev, &idx, PlacementStrategy::BestResponse);
            fixed(idx, placement, cfg.policies)
        }
        Method::Joint => optimizer::solve(ev, cfg),
    }
}

/// Budgeted variant of [`solve_with`]. The search-based methods
/// (SurgeryOnly, Joint) run their anytime search under `budget` and may
/// return `converged: false` with the best incumbent found; the fixed
/// methods price exactly one configuration and always converge.
pub fn solve_with_budget(
    ev: &Evaluator,
    method: Method,
    cfg: &OptimizerConfig,
    budget: Budget,
) -> SolveOutcome {
    match method {
        Method::SurgeryOnly => {
            let mut c = cfg.clone();
            c.policies = AllocPolicies::equal();
            c.placement = PlacementStrategy::RoundRobin;
            optimizer::solve_with_budget(ev, &c, budget)
        }
        Method::Joint => optimizer::solve_with_budget(ev, cfg, budget),
        _ => {
            let started = Instant::now();
            let solution = solve_with(ev, method, cfg);
            SolveOutcome {
                converged: true,
                spent: BudgetSpent {
                    evaluations: 1,
                    wall_s: started.elapsed().as_secs_f64(),
                },
                solution,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn evaluator() -> Evaluator {
        let cfg = ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 4,
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        };
        Evaluator::new(&cfg.build(), None)
    }

    #[test]
    fn every_method_produces_a_solution() {
        let ev = evaluator();
        let cfg = OptimizerConfig {
            rounds: 2,
            gibbs_iters: 30,
            ..Default::default()
        };
        for &m in Method::ALL {
            let sol = solve_with(&ev, m, &cfg);
            assert!(sol.result.objective.is_finite(), "{}", m.name());
            assert_eq!(sol.assignment.plan_idx.len(), ev.num_streams());
        }
    }

    #[test]
    fn joint_is_best_of_the_ladder_analytically() {
        let ev = evaluator();
        let cfg = OptimizerConfig {
            rounds: 4,
            gibbs_iters: 100,
            ..Default::default()
        };
        let joint = solve_with(&ev, Method::Joint, &cfg).result.objective;
        for &m in Method::ALL {
            let obj = solve_with(&ev, m, &cfg).result.objective;
            assert!(
                joint <= obj * 1.02 + 1e-9,
                "{} beat Joint: {obj} < {joint}",
                m.name()
            );
        }
    }

    #[test]
    fn single_knob_methods_beat_static_baselines() {
        let ev = evaluator();
        let cfg = OptimizerConfig {
            rounds: 3,
            gibbs_iters: 60,
            ..Default::default()
        };
        let ns = solve_with(&ev, Method::Neurosurgeon, &cfg).result.objective;
        let surgery = solve_with(&ev, Method::SurgeryOnly, &cfg).result.objective;
        let alloc = solve_with(&ev, Method::AllocOnly, &cfg).result.objective;
        // Each single-knob optimization should not be worse than its own
        // static starting point.
        assert!(surgery <= ns + 1e-9, "surgery {surgery} vs ns {ns}");
        assert!(alloc <= ns * 1.02 + 1e-9, "alloc {alloc} vs ns {ns}");
    }

    #[test]
    fn device_only_uses_no_server_resources() {
        let ev = evaluator();
        let cfg = OptimizerConfig::default();
        let sol = solve_with(&ev, Method::DeviceOnly, &cfg);
        // Streams whose menu has a true device-only plan get zero shares.
        for k in 0..ev.num_streams() {
            let p = &ev.menu(k)[sol.assignment.plan_idx[k]];
            if p.is_device_only() {
                assert_eq!(sol.result.compute_shares[k], 0.0);
            }
        }
    }

    #[test]
    fn edge_only_offloads_everything() {
        let ev = evaluator();
        let sol = solve_with(&ev, Method::EdgeOnly, &OptimizerConfig::default());
        for k in 0..ev.num_streams() {
            let p = &ev.menu(k)[sol.assignment.plan_idx[k]];
            assert_eq!(p.plan.cut, 0, "stream {k} not fully offloaded");
        }
    }

    #[test]
    fn neurosurgeon_plans_have_no_exits_or_pruning() {
        let ev = evaluator();
        let sol = solve_with(&ev, Method::Neurosurgeon, &OptimizerConfig::default());
        for k in 0..ev.num_streams() {
            let p = &ev.menu(k)[sol.assignment.plan_idx[k]];
            assert!(p.plan.exits.is_empty(), "stream {k}");
        }
    }

    #[test]
    fn method_names_are_unique() {
        let mut names: Vec<_> = Method::ALL.iter().map(|m| m.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Method::ALL.len());
    }
}
