//! Lowering a joint solution to simulator inputs.
//!
//! The compiler turns (problem, per-stream plan pricing, placement, shares)
//! into [`scalpel_sim::CompiledStream`]s. Both the analytic evaluator and
//! this compiler read the *same* [`crate::evaluator::PlanPricing`] numbers,
//! so what the optimizer believed and what the simulator executes differ
//! only by the things the simulator is there to measure: queueing,
//! contention and fading.

use crate::evaluator::{Assignment, EvalResult, Evaluator};
use crate::problem::JointProblem;
use scalpel_sim::CompiledStream;
use scalpel_surgery::{ladder_for_plan, DegradeLadder};

/// Compile every stream of a priced configuration.
pub fn compile(
    problem: &JointProblem,
    ev: &Evaluator,
    asg: &Assignment,
    result: &EvalResult,
) -> Vec<CompiledStream> {
    (0..problem.streams.len())
        .map(|k| {
            let spec = &problem.streams[k];
            let p = &ev.menu(k)[asg.plan_idx[k]];
            let device_only = p.is_device_only();
            let degrade = if device_only {
                DegradeLadder::none()
            } else {
                // The local-finish rung comes from the menu's device-only
                // entry, if the stream has one: running the whole model on
                // the device costs its full device time beyond the prefix
                // this plan has already paid for.
                let local = ev
                    .menu(k)
                    .iter()
                    .find(|c| c.is_device_only())
                    .map(|d| ((d.dev_full - p.dev_full).max(0.0), d.acc_full));
                ladder_for_plan(&p.plan, &p.acc_at_exit, local)
            };
            let fallback_servers = if device_only {
                Vec::new()
            } else {
                // Every other server, best catalog capacity first (ties:
                // lowest index) — the hedging preference order.
                let primary = asg.placement[k];
                let mut alts: Vec<usize> = (0..problem.cluster.servers.len())
                    .filter(|&s| s != primary)
                    .collect();
                alts.sort_by(|&a, &b| {
                    problem.cluster.servers[b]
                        .proc
                        .flops_per_sec
                        .total_cmp(&problem.cluster.servers[a].proc.flops_per_sec)
                        .then(a.cmp(&b))
                });
                alts
            };
            CompiledStream {
                id: k,
                device: spec.device,
                server: if device_only {
                    None
                } else {
                    Some(asg.placement[k])
                },
                arrivals: spec.arrivals.clone(),
                deadline_s: spec.deadline_s,
                device_time_to_exit: p.dev_to_exit.clone(),
                device_full_time: p.dev_full,
                tx_bytes: p.tx_bytes,
                edge_flops: p.edge_flops,
                behavior: p.behavior.clone(),
                acc_at_exit: p.acc_at_exit.clone(),
                acc_full: p.acc_full,
                bandwidth_share: if device_only {
                    0.0
                } else {
                    result.bandwidth_shares[k].clamp(1e-6, 1.0)
                },
                compute_weight: if device_only {
                    0.0
                } else {
                    result.compute_shares[k].max(1e-6)
                },
                degrade,
                fallback_servers,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::evaluator::AllocPolicies;
    use scalpel_sim::{EdgeSim, SimConfig};

    fn setup() -> (JointProblem, Evaluator) {
        let cfg = ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 4,
            arrival_rate_hz: 3.0,
            ..ScenarioConfig::default()
        };
        let p = cfg.build();
        let ev = Evaluator::new(&p, None);
        (p, ev)
    }

    #[test]
    fn every_menu_plan_of_every_stream_compiles_and_validates() {
        // The simulator's validation must accept whatever the menus can
        // produce — sweep every plan index of every stream.
        let (p, ev) = setup();
        for k in 0..ev.num_streams() {
            for idx in 0..ev.menu(k).len() {
                let mut asg = Assignment {
                    plan_idx: vec![0; ev.num_streams()],
                    placement: vec![0; ev.num_streams()],
                };
                asg.plan_idx[k] = idx;
                let r = ev.evaluate(&asg, AllocPolicies::optimal());
                let streams = compile(&p, &ev, &asg, &r);
                for s in &streams {
                    assert!(s.validate().is_ok(), "stream {k} plan {idx}: {s:?}");
                }
            }
        }
    }

    #[test]
    fn quantized_plans_ship_fewer_bytes_into_the_simulator() {
        let (p, ev) = setup();
        for k in 0..ev.num_streams() {
            let menu = ev.menu(k);
            // find a quantized/plain pair at the same cut
            for (qi, q) in menu.iter().enumerate() {
                if !q.plan.quantize_tx {
                    continue;
                }
                if let Some((pi, _)) = menu
                    .iter()
                    .enumerate()
                    .find(|(_, c)| c.plan.cut == q.plan.cut && !c.plan.quantize_tx)
                {
                    let mut asg = Assignment {
                        plan_idx: vec![0; ev.num_streams()],
                        placement: vec![0; ev.num_streams()],
                    };
                    asg.plan_idx[k] = qi;
                    let r = ev.evaluate(&asg, AllocPolicies::optimal());
                    let quant_bytes = compile(&p, &ev, &asg, &r)[k].tx_bytes;
                    asg.plan_idx[k] = pi;
                    let r = ev.evaluate(&asg, AllocPolicies::optimal());
                    let plain_bytes = compile(&p, &ev, &asg, &r)[k].tx_bytes;
                    assert!(
                        quant_bytes < plain_bytes,
                        "stream {k}: quantized {quant_bytes} !< plain {plain_bytes}"
                    );
                    return; // one pair suffices
                }
            }
        }
    }

    #[test]
    fn compiled_streams_pass_simulator_validation() {
        let (p, ev) = setup();
        let asg = Assignment {
            plan_idx: vec![0; ev.num_streams()],
            placement: (0..ev.num_streams())
                .map(|k| k % ev.num_servers())
                .collect(),
        };
        let r = ev.evaluate(&asg, AllocPolicies::optimal());
        let streams = compile(&p, &ev, &asg, &r);
        assert_eq!(streams.len(), 4);
        let sim = EdgeSim::new(
            p.cluster.clone(),
            streams,
            SimConfig {
                horizon_s: 5.0,
                warmup_s: 1.0,
                seed: 3,
                fading: false,
                ..SimConfig::default()
            },
        );
        assert!(sim.is_ok(), "{:?}", sim.err());
        let report = sim.unwrap().run();
        assert!(report.completed > 0);
    }

    #[test]
    fn analytic_and_simulated_latencies_agree_under_light_load() {
        // With fading off and light load, the simulator should land within
        // a factor ~2 of the analytic expectation (queueing corrections are
        // approximations, not exact).
        let cfg = ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 2,
            arrival_rate_hz: 1.0,
            sim: SimConfig {
                horizon_s: 30.0,
                warmup_s: 2.0,
                seed: 5,
                fading: false,
                ..SimConfig::default()
            },
            ..ScenarioConfig::default()
        };
        let p = cfg.build();
        let ev = Evaluator::new(&p, None);
        let asg = Assignment {
            plan_idx: vec![0; 2],
            placement: vec![0, 1],
        };
        let r = ev.evaluate(&asg, AllocPolicies::optimal());
        let report = EdgeSim::new(p.cluster.clone(), compile(&p, &ev, &asg, &r), cfg.sim)
            .unwrap()
            .run();
        let analytic_mean = r.latency_s.iter().sum::<f64>() / r.latency_s.len() as f64;
        let simulated = report.latency.mean;
        assert!(
            simulated < analytic_mean * 2.0 && simulated > analytic_mean * 0.3,
            "analytic {analytic_mean} vs simulated {simulated}"
        );
    }
}
