//! Scenario generation: the evaluation's default parameters (Table 2) and
//! every sweep axis used by the experiment harness.
//!
//! Defaults (all \[reconstructed\] — see DESIGN.md's mismatch note): 4 APs ×
//! 10 devices, a realistic device-class mix (40 % RPi-class, 30 % phone,
//! 20 % Nano, 10 % TX2), four heterogeneous servers, 20 MHz per AP,
//! Poisson 8 req/s per stream, backbones round-robined over the standard
//! zoo with per-model deadlines.

use crate::problem::{JointProblem, StreamSpec};
use scalpel_models::zoo;
use scalpel_models::{DifficultyModel, ProcessorClass, ProcessorSpec};
use scalpel_sim::SimRng;
use scalpel_sim::{
    ApSpec, ArrivalProcess, Cluster, DeviceSpec, FaultPlan, FaultProfile, ServerSpec, SimConfig,
};
use serde::{Deserialize, Serialize};

/// How server capacities are drawn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerMix {
    /// The default four-box rack: Xeon, T4, V100, T4.
    Standard,
    /// `count` servers whose capacities share a mean but vary with the
    /// given coefficient of variation (the F7 heterogeneity sweep).
    Synthetic {
        /// Number of servers.
        count: usize,
        /// Mean effective capacity, FLOP/s.
        mean_fps: f64,
        /// Coefficient of variation of capacities in `[0, 1]`.
        cv: f64,
    },
}

/// Everything needed to instantiate a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of access points.
    pub num_aps: usize,
    /// Devices per AP (total devices = `num_aps × devices_per_ap`).
    pub devices_per_ap: usize,
    /// Uplink spectrum per AP, Hz.
    pub ap_bandwidth_hz: f64,
    /// AP ↔ server round-trip, seconds.
    pub rtt_s: f64,
    /// Server rack composition.
    pub servers: ServerMix,
    /// Mean Poisson arrival rate per stream, req/s.
    pub arrival_rate_hz: f64,
    /// Per-model relative deadlines, seconds (parallel to the zoo order
    /// alexnet, vgg16, resnet18, mobilenet_v2).
    pub deadlines_s: Vec<f64>,
    /// Accuracy floor applied to every stream.
    pub accuracy_floor_drop: f64,
    /// Seed for topology randomness (distances, device classes).
    pub seed: u64,
    /// Simulation settings used when executing solutions.
    pub sim: SimConfig,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            num_aps: 4,
            devices_per_ap: 10,
            ap_bandwidth_hz: 20e6,
            rtt_s: 2e-3,
            servers: ServerMix::Standard,
            arrival_rate_hz: 4.0,
            deadlines_s: vec![0.060, 0.150, 0.080, 0.040],
            accuracy_floor_drop: 0.02,
            seed: 7,
            sim: SimConfig {
                horizon_s: 30.0,
                warmup_s: 3.0,
                seed: 7,
                fading: true,
                ..SimConfig::default()
            },
        }
    }
}

/// Published top-1 accuracies of the standard zoo (alexnet, vgg16,
/// resnet18, mobilenet_v2).
pub const ZOO_ACCURACY: [f64; 4] = [0.565, 0.716, 0.698, 0.718];

impl ScenarioConfig {
    /// Total number of devices (== streams).
    pub fn num_devices(&self) -> usize {
        self.num_aps * self.devices_per_ap
    }

    /// Number of servers the scenario will instantiate.
    pub fn num_servers(&self) -> usize {
        match &self.servers {
            ServerMix::Standard => 4,
            ServerMix::Synthetic { count, .. } => *count,
        }
    }

    /// Generate the fault plan a profile produces for this topology
    /// (a pure function of the profile seed and the scenario dimensions).
    pub fn fault_plan(&self, profile: &FaultProfile) -> FaultPlan {
        profile.plan(
            self.num_devices(),
            self.num_aps,
            self.num_servers(),
            self.sim.horizon_s,
        )
    }

    /// Install the plan a profile generates into `self.sim.faults`, so
    /// every simulation of this scenario runs under it.
    pub fn apply_fault_profile(&mut self, profile: &FaultProfile) {
        self.sim.faults = self.fault_plan(profile);
    }

    /// Install a recovery policy into `self.sim.recovery`, so every
    /// simulation of this scenario runs under it.
    pub fn apply_recovery(&mut self, recovery: scalpel_sim::RecoveryConfig) {
        self.sim.recovery = recovery;
    }

    /// Materialize the topology and streams.
    pub fn build(&self) -> JointProblem {
        let mut rng = SimRng::new(self.seed, 77);
        let device_classes = [
            ProcessorClass::RaspberryPi4,
            ProcessorClass::Smartphone,
            ProcessorClass::JetsonNano,
            ProcessorClass::JetsonTx2,
        ];
        // 40/30/20/10 class mix, deterministic per seed.
        let class_of = |i: usize, rng: &mut SimRng| -> ProcessorClass {
            let _ = i;
            let u = rng.open01();
            if u < 0.4 {
                device_classes[0]
            } else if u < 0.7 {
                device_classes[1]
            } else if u < 0.9 {
                device_classes[2]
            } else {
                device_classes[3]
            }
        };
        let mut devices = Vec::with_capacity(self.num_devices());
        for ap in 0..self.num_aps {
            for j in 0..self.devices_per_ap {
                let id = ap * self.devices_per_ap + j;
                devices.push(DeviceSpec {
                    id,
                    proc: class_of(id, &mut rng).spec(),
                    ap,
                    distance_m: rng.uniform(10.0, 80.0),
                });
            }
        }
        let aps = (0..self.num_aps)
            .map(|id| ApSpec {
                id,
                bandwidth_hz: self.ap_bandwidth_hz,
                rtt_s: self.rtt_s,
            })
            .collect();
        let servers = self.build_servers(&mut rng);
        let models = zoo::standard_zoo();
        let streams = (0..self.num_devices())
            .map(|d| {
                let m = d % models.len();
                StreamSpec {
                    device: d,
                    model: m,
                    arrivals: ArrivalProcess::Poisson {
                        rate_hz: self.arrival_rate_hz,
                    },
                    deadline_s: self.deadlines_s[m % self.deadlines_s.len()],
                    accuracy_floor: (ZOO_ACCURACY[m] - self.accuracy_floor_drop).max(0.0),
                }
            })
            .collect();
        JointProblem {
            cluster: Cluster {
                devices,
                aps,
                servers,
            },
            models,
            model_accuracy: ZOO_ACCURACY.to_vec(),
            streams,
            difficulty: DifficultyModel::default(),
        }
    }

    fn build_servers(&self, rng: &mut SimRng) -> Vec<ServerSpec> {
        match &self.servers {
            ServerMix::Standard => {
                let classes = [
                    ProcessorClass::EdgeXeon,
                    ProcessorClass::EdgeGpuT4,
                    ProcessorClass::EdgeGpuV100,
                    ProcessorClass::EdgeGpuT4,
                ];
                classes
                    .iter()
                    .enumerate()
                    .map(|(id, c)| ServerSpec { id, proc: c.spec() })
                    .collect()
            }
            ServerMix::Synthetic {
                count,
                mean_fps,
                cv,
            } => {
                // Capacities spread uniformly to hit the requested CV
                // (uniform on mean*(1±√3·cv)), clamped positive.
                let half_width = 3f64.sqrt() * cv;
                (0..*count)
                    .map(|id| {
                        let f = rng.uniform(1.0 - half_width, 1.0 + half_width).max(0.05);
                        ServerSpec {
                            id,
                            proc: ProcessorSpec::new(
                                format!("synth{id}"),
                                mean_fps * f,
                                mean_fps * f / 10.0,
                                15e-6,
                            ),
                        }
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_builds_and_validates() {
        let p = ScenarioConfig::default().build();
        assert!(p.validate().is_ok());
        assert_eq!(p.streams.len(), 40);
        assert_eq!(p.cluster.servers.len(), 4);
        assert_eq!(p.cluster.aps.len(), 4);
    }

    #[test]
    fn scenario_is_deterministic_per_seed() {
        let a = ScenarioConfig::default().build();
        let b = ScenarioConfig::default().build();
        assert_eq!(
            a.cluster.devices[5].distance_m,
            b.cluster.devices[5].distance_m
        );
        assert_eq!(
            a.cluster.devices[5].proc.name,
            b.cluster.devices[5].proc.name
        );
    }

    #[test]
    fn seeds_change_topology() {
        let a = ScenarioConfig::default().build();
        let cfg = ScenarioConfig {
            seed: 99,
            ..ScenarioConfig::default()
        };
        let b = cfg.build();
        let same = a
            .cluster
            .devices
            .iter()
            .zip(&b.cluster.devices)
            .filter(|(x, y)| x.distance_m == y.distance_m)
            .count();
        assert!(same < a.cluster.devices.len());
    }

    #[test]
    fn synthetic_servers_honor_count_and_cv_zero() {
        let cfg = ScenarioConfig {
            servers: ServerMix::Synthetic {
                count: 6,
                mean_fps: 1e12,
                cv: 0.0,
            },
            ..ScenarioConfig::default()
        };
        let p = cfg.build();
        assert_eq!(p.cluster.servers.len(), 6);
        for s in &p.cluster.servers {
            assert!((s.proc.flops_per_sec - 1e12).abs() < 1e6);
        }
    }

    #[test]
    fn synthetic_cv_spreads_capacities() {
        let cfg = ScenarioConfig {
            servers: ServerMix::Synthetic {
                count: 16,
                mean_fps: 1e12,
                cv: 0.5,
            },
            ..ScenarioConfig::default()
        };
        let p = cfg.build();
        let caps: Vec<f64> = p
            .cluster
            .servers
            .iter()
            .map(|s| s.proc.flops_per_sec)
            .collect();
        let mean = caps.iter().sum::<f64>() / caps.len() as f64;
        let var = caps.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / caps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 0.2, "cv {cv}");
    }

    #[test]
    fn models_round_robin_with_matching_deadlines() {
        let p = ScenarioConfig::default().build();
        assert_eq!(p.streams[0].model, 0);
        assert_eq!(p.streams[1].model, 1);
        assert_eq!(p.streams[4].model, 0);
        assert_eq!(p.streams[1].deadline_s, 0.150); // vgg16 gets the long one
    }

    #[test]
    fn fault_profile_wiring_sizes_to_topology() {
        let mut cfg = ScenarioConfig::default();
        let profile = FaultProfile {
            rate_hz: 0.5,
            ..FaultProfile::default()
        };
        let plan = cfg.fault_plan(&profile);
        assert!(!plan.is_empty());
        // Every target the generator picked exists in the built topology.
        assert!(plan.validate(&cfg.build().cluster).is_ok());
        // Installing the profile is the same as generating the plan.
        cfg.apply_fault_profile(&profile);
        assert_eq!(cfg.sim.faults, plan);
        // And the same profile regenerates the same plan (purity).
        assert_eq!(cfg.fault_plan(&profile), plan);
    }

    #[test]
    fn device_class_mix_is_roughly_40_30_20_10() {
        let cfg = ScenarioConfig {
            num_aps: 10,
            devices_per_ap: 40, // 400 devices for tight statistics
            ..ScenarioConfig::default()
        };
        let p = cfg.build();
        let count = |name: &str| {
            p.cluster
                .devices
                .iter()
                .filter(|d| d.proc.name == name)
                .count() as f64
                / 400.0
        };
        assert!((count("rpi4") - 0.4).abs() < 0.08);
        assert!((count("phone") - 0.3).abs() < 0.08);
        assert!((count("nano") - 0.2).abs() < 0.08);
        assert!((count("tx2") - 0.1).abs() < 0.06);
    }
}
