//! Distributed joint optimization by per-stream best response.
//!
//! The centralized optimizer assumes a controller that sees everything.
//! The paper family (LEIME's "distributed offloading mechanism … with
//! close-to-optimal performance guarantee") also wants a *decentralized*
//! mode: each stream's agent repeatedly best-responds over its own
//! `(plan, server)` choice against the currently-announced choices of the
//! others, with the inner allocation re-solved for every probe. Agents
//! move one at a time (an asynchronous round-robin token, the standard
//! better-response scheduling), so the dynamics terminate at a pure Nash
//! equilibrium of the stream game whenever improvements are strict.
//!
//! The guarantee mirrors the placement potential game: each stream's cost
//! is its own normalized latency, moves only ever reduce the mover's cost,
//! and the experiment (`experiments f15`) measures the empirical gap to
//! the centralized solution (typically a few percent).

use crate::evaluator::{AllocPolicies, Evaluator};
use crate::optimizer::{initial_assignment, SearchTrace, Solution};
use scalpel_alloc::placement::PlacementStrategy;
use serde::{Deserialize, Serialize};

/// Knobs of the distributed dynamics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedConfig {
    /// Maximum best-response rounds (each round: every stream once).
    pub max_rounds: usize,
    /// Minimum per-stream relative improvement to accept a move.
    pub improvement_tol: f64,
    /// Allocation policies applied when pricing states.
    pub policies: AllocPolicies,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        Self {
            max_rounds: 20,
            improvement_tol: 1e-6,
            policies: AllocPolicies::optimal(),
        }
    }
}

/// Outcome of the distributed dynamics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistributedOutcome {
    /// The converged solution.
    pub solution: Solution,
    /// Rounds executed before convergence (== `max_rounds` if not
    /// converged).
    pub rounds: usize,
    /// Whether a full round passed with no agent moving.
    pub converged: bool,
    /// Total accepted moves.
    pub moves: usize,
}

/// Run per-stream best-response dynamics from the naive initial point.
pub fn solve_distributed(ev: &Evaluator, cfg: &DistributedConfig) -> DistributedOutcome {
    let mut asg = initial_assignment(ev, PlacementStrategy::RoundRobin);
    let mut trace = SearchTrace::default();
    let mut current = ev.evaluate(&asg, cfg.policies);
    trace.evaluations += 1;
    trace.objective.push(current.objective);
    let n = ev.num_streams();
    let mut moves = 0usize;
    let mut rounds = 0usize;
    let mut converged = false;
    for _ in 0..cfg.max_rounds {
        rounds += 1;
        let mut any_move = false;
        for k in 0..n {
            // Agent k probes every (plan, server) option for itself and
            // keeps the one minimizing its OWN normalized latency.
            let my_cost = |r: &crate::evaluator::EvalResult| r.latency_s[k] / ev.deadline(k);
            let mut best = (asg.plan_idx[k], asg.placement[k], my_cost(&current));
            let saved = (asg.plan_idx[k], asg.placement[k]);
            for plan in 0..ev.menu(k).len() {
                for server in 0..ev.num_servers() {
                    if (plan, server) == saved {
                        continue;
                    }
                    asg.plan_idx[k] = plan;
                    asg.placement[k] = server;
                    let r = ev.evaluate(&asg, cfg.policies);
                    trace.evaluations += 1;
                    let c = my_cost(&r);
                    if c < best.2 * (1.0 - cfg.improvement_tol) {
                        best = (plan, server, c);
                    }
                }
            }
            asg.plan_idx[k] = best.0;
            asg.placement[k] = best.1;
            if (best.0, best.1) != saved {
                any_move = true;
                moves += 1;
            }
            current = ev.evaluate(&asg, cfg.policies);
            trace.evaluations += 1;
            trace.objective.push(current.objective);
        }
        if !any_move {
            converged = true;
            break;
        }
    }
    DistributedOutcome {
        solution: Solution {
            assignment: asg,
            result: current,
            trace,
        },
        rounds,
        converged,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::optimizer::{self, OptimizerConfig};

    fn evaluator() -> Evaluator {
        let cfg = ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 4,
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        };
        Evaluator::new(&cfg.build(), None)
    }

    #[test]
    fn dynamics_converge() {
        let ev = evaluator();
        let out = solve_distributed(&ev, &DistributedConfig::default());
        assert!(out.converged, "no equilibrium in {} rounds", out.rounds);
        assert!(out.rounds < 20);
        assert!(out.solution.result.objective.is_finite());
    }

    #[test]
    fn equilibrium_is_unilaterally_stable() {
        let ev = evaluator();
        let cfg = DistributedConfig::default();
        let out = solve_distributed(&ev, &cfg);
        let mut asg = out.solution.assignment.clone();
        // No single stream can improve its own cost by more than tol.
        for k in 0..ev.num_streams() {
            let base = ev.evaluate(&asg, cfg.policies).latency_s[k] / ev.deadline(k);
            let saved = (asg.plan_idx[k], asg.placement[k]);
            for plan in 0..ev.menu(k).len() {
                for server in 0..ev.num_servers() {
                    asg.plan_idx[k] = plan;
                    asg.placement[k] = server;
                    let c = ev.evaluate(&asg, cfg.policies).latency_s[k] / ev.deadline(k);
                    assert!(
                        c >= base * (1.0 - 1e-5) - 1e-12,
                        "stream {k} deviates {saved:?} -> ({plan},{server}): {c} < {base}"
                    );
                }
            }
            asg.plan_idx[k] = saved.0;
            asg.placement[k] = saved.1;
        }
    }

    #[test]
    fn distributed_is_close_to_centralized() {
        let ev = evaluator();
        let dist = solve_distributed(&ev, &DistributedConfig::default());
        let central = optimizer::solve(&ev, &OptimizerConfig::default());
        // "Close-to-optimal": within 30% of the centralized objective on
        // this instance (typically much closer; the bound here just guards
        // regressions).
        assert!(
            dist.solution.result.objective <= central.result.objective * 1.30 + 1e-9,
            "distributed {} vs centralized {}",
            dist.solution.result.objective,
            central.result.objective
        );
    }

    #[test]
    fn selfish_moves_never_worsen_the_mover() {
        // Trace inspection: the recorded global objective may fluctuate
        // (selfishness), but convergence + stability (tested above) is the
        // contract. Here we simply check the trace is non-empty and finite.
        let ev = evaluator();
        let out = solve_distributed(&ev, &DistributedConfig::default());
        assert!(!out.solution.trace.objective.is_empty());
        assert!(out.solution.trace.objective.iter().all(|o| o.is_finite()));
    }
}
