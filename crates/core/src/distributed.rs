//! Distributed joint optimization by per-stream best response.
//!
//! The centralized optimizer assumes a controller that sees everything.
//! The paper family (LEIME's "distributed offloading mechanism … with
//! close-to-optimal performance guarantee") also wants a *decentralized*
//! mode: each stream's agent repeatedly best-responds over its own
//! `(plan, server)` choice against the currently-announced choices of the
//! others, with the inner allocation re-solved for every probe. Agents
//! move one at a time (an asynchronous round-robin token, the standard
//! better-response scheduling), so the dynamics terminate at a pure Nash
//! equilibrium of the stream game whenever improvements are strict.
//!
//! The guarantee mirrors the placement potential game: each stream's cost
//! is its own normalized latency, moves only ever reduce the mover's cost,
//! and the experiment (`experiments f15`) measures the empirical gap to
//! the centralized solution (typically a few percent).

use crate::eval_context::{DeltaScratch, EvalContext};
use crate::evaluator::{AllocPolicies, Evaluator};
use crate::optimizer::{initial_assignment, SearchTrace, Solution};
use scalpel_alloc::placement::PlacementStrategy;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Knobs of the distributed dynamics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedConfig {
    /// Maximum best-response rounds (each round: every stream once).
    pub max_rounds: usize,
    /// Minimum per-stream relative improvement to accept a move.
    pub improvement_tol: f64,
    /// Allocation policies applied when pricing states.
    pub policies: AllocPolicies,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        Self {
            max_rounds: 20,
            improvement_tol: 1e-6,
            policies: AllocPolicies::optimal(),
        }
    }
}

/// Outcome of the distributed dynamics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistributedOutcome {
    /// The converged solution.
    pub solution: Solution,
    /// Rounds executed before convergence (== `max_rounds` if not
    /// converged).
    pub rounds: usize,
    /// Whether a full round passed with no agent moving.
    pub converged: bool,
    /// Total accepted moves.
    pub moves: usize,
}

/// Run per-stream best-response dynamics from the naive initial point.
pub fn solve_distributed(ev: &Evaluator, cfg: &DistributedConfig) -> DistributedOutcome {
    let mut asg = initial_assignment(ev, PlacementStrategy::RoundRobin);
    let mut trace = SearchTrace::default();
    let mut current = ev.evaluate(&asg, cfg.policies);
    trace.evaluations += 1;
    trace.objective.push(current.objective);
    let n = ev.num_streams();
    let mut moves = 0usize;
    let mut rounds = 0usize;
    let mut converged = false;
    for _ in 0..cfg.max_rounds {
        rounds += 1;
        let mut any_move = false;
        for k in 0..n {
            // Agent k probes every (plan, server) option for itself and
            // keeps the one minimizing its OWN normalized latency.
            let my_cost = |r: &crate::evaluator::EvalResult| r.latency_s[k] / ev.deadline(k);
            let mut best = (asg.plan_idx[k], asg.placement[k], my_cost(&current));
            let saved = (asg.plan_idx[k], asg.placement[k]);
            for plan in 0..ev.menu(k).len() {
                for server in 0..ev.num_servers() {
                    if (plan, server) == saved {
                        continue;
                    }
                    asg.plan_idx[k] = plan;
                    asg.placement[k] = server;
                    let r = ev.evaluate(&asg, cfg.policies);
                    trace.evaluations += 1;
                    let c = my_cost(&r);
                    if c < best.2 * (1.0 - cfg.improvement_tol) {
                        best = (plan, server, c);
                    }
                }
            }
            asg.plan_idx[k] = best.0;
            asg.placement[k] = best.1;
            if (best.0, best.1) != saved {
                any_move = true;
                moves += 1;
            }
            current = ev.evaluate(&asg, cfg.policies);
            trace.evaluations += 1;
            trace.objective.push(current.objective);
        }
        if !any_move {
            converged = true;
            break;
        }
    }
    DistributedOutcome {
        solution: Solution {
            assignment: asg,
            result: current,
            trace,
        },
        rounds,
        converged,
        moves,
    }
}

/// Knobs of the cross-shard reconciliation pass (the budgeted, incremental
/// cousin of [`DistributedConfig`] used by `core::shard`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconcileConfig {
    /// Maximum best-response rounds (each round: every stream once).
    pub max_rounds: usize,
    /// Minimum per-stream relative improvement to accept a move.
    pub improvement_tol: f64,
}

impl Default for ReconcileConfig {
    fn default() -> Self {
        Self {
            max_rounds: 4,
            improvement_tol: 1e-6,
        }
    }
}

/// What a reconciliation pass did.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReconcileReport {
    /// Rounds executed (== `max_rounds` if the dynamics never quiesced).
    pub rounds: usize,
    /// Accepted cross-group moves.
    pub moves: usize,
    /// Own-cost probes issued.
    pub probes: usize,
    /// Whether a full round passed with no stream moving, before any
    /// budget cut. `false` means the pass was stopped by `max_rounds`,
    /// the wall deadline, or the evaluation cap.
    pub converged: bool,
    /// Whether the wall deadline or the evaluation cap truncated the
    /// pass. Stopping at `max_rounds` is the *configured* amount of work
    /// (bounded termination), not a cut.
    pub cut: bool,
}

/// Best-response placement reconciliation over an incremental context.
///
/// The full [`solve_distributed`] dynamics price every `(plan, server)`
/// probe with a from-scratch evaluation — O(n) per probe, hopeless at
/// fleet scale. This pass keeps the plans fixed and lets each offloaded
/// stream best-respond over its *server* only, with three economies:
///
/// 1. probes use [`EvalContext::probe_move_cost`] (group re-solves only,
///    no O(n) objective resum), so a probe costs O(|touched groups|);
/// 2. instead of probing all S servers, each stream probes one candidate
///    per server *group* (shard): the least-utilized member, computed
///    once per round from live utilization tallies — the argmin of a
///    load-balancing game is where a selfish mover would land anyway;
/// 3. moves commit through [`EvalContext::commit_move`], which maintains
///    the exact pooled objective incrementally.
///
/// `groups` are disjoint server-index sets (shard server sets). `allowed`
/// optionally restricts stream→server reachability: `allowed[ap]` is the
/// ascending list of servers AP `ap` may reach (streams never probe
/// outside it). `deadline`/`max_evals` bound the pass; `trace` accrues
/// one evaluation per probe/commit and records committed objectives.
///
/// Termination: movers only ever strictly reduce their own cost in a
/// finite state space priced against a per-round frozen candidate set,
/// and the pass is hard-capped at `max_rounds` rounds regardless.
#[allow(clippy::too_many_arguments)]
pub fn reconcile_placement(
    ctx: &mut EvalContext<'_>,
    groups: &[Vec<usize>],
    allowed: Option<&[Vec<usize>]>,
    cfg: &ReconcileConfig,
    deadline: Option<Instant>,
    max_evals: Option<usize>,
    trace: &mut SearchTrace,
) -> ReconcileReport {
    let ev = ctx.evaluator();
    let n = ev.num_streams();
    let num_servers = ev.num_servers();
    // Live per-server utilization: Σ rate·remain·edge_flops / cap — the
    // same fair-share demand proxy the bandwidth stage uses, cheap to
    // maintain exactly across moves.
    let demand = |k: usize, plan: usize, srv: usize| -> f64 {
        let p = &ev.menus[k][plan];
        ev.rate_hz[k] * p.remain * p.edge_flops / ev.server_caps[srv]
    };
    let mut load = vec![0.0f64; num_servers];
    for k in 0..n {
        if ctx.is_offloaded(k) {
            load[ctx.placement()[k]] += demand(k, ctx.plan_of(k), ctx.placement()[k]);
        }
    }
    let mut scratch = DeltaScratch::default();
    let mut cand: Vec<usize> = Vec::with_capacity(groups.len());
    let mut rounds = 0usize;
    let mut moves = 0usize;
    let mut probes = 0usize;
    let mut quiesced = false;
    let mut cut = false;
    'rounds: for _ in 0..cfg.max_rounds {
        rounds += 1;
        // Frozen candidate set for this round: each group's least-loaded
        // server (ties to the lowest index — deterministic).
        cand.clear();
        for g in groups {
            let mut best: Option<usize> = None;
            for &srv in g {
                best = Some(match best {
                    Some(b) if load[b].total_cmp(&load[srv]).is_le() => b,
                    _ => srv,
                });
            }
            if let Some(b) = best {
                cand.push(b);
            }
        }
        let mut any_move = false;
        for k in 0..n {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    cut = true;
                    break 'rounds;
                }
            }
            if let Some(m) = max_evals {
                if trace.evaluations >= m {
                    cut = true;
                    break 'rounds;
                }
            }
            if !ctx.is_offloaded(k) {
                continue;
            }
            let ap = ev.ap_of[k];
            let cur_srv = ctx.placement()[k];
            let cur_cost = ctx.own_cost(k);
            let mut best = (cur_cost, cur_srv);
            for &srv in &cand {
                if srv == cur_srv {
                    continue;
                }
                if let Some(lists) = allowed {
                    if lists[ap].binary_search(&srv).is_err() {
                        continue;
                    }
                }
                let c = ctx.probe_move_cost(k, srv, &mut scratch);
                probes += 1;
                trace.evaluations += 1;
                if c < best.0 * (1.0 - cfg.improvement_tol) {
                    best = (c, srv);
                }
            }
            if best.1 != cur_srv {
                let plan = ctx.plan_of(k);
                load[cur_srv] -= demand(k, plan, cur_srv);
                load[best.1] += demand(k, plan, best.1);
                let obj = ctx.commit_move(k, best.1);
                trace.evaluations += 1;
                trace.objective.push(obj);
                moves += 1;
                any_move = true;
            }
        }
        if !any_move {
            quiesced = true;
            break;
        }
    }
    ReconcileReport {
        rounds,
        moves,
        probes,
        converged: quiesced && !cut,
        cut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::optimizer::{self, OptimizerConfig};

    fn evaluator() -> Evaluator {
        let cfg = ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 4,
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        };
        Evaluator::new(&cfg.build(), None)
    }

    #[test]
    fn dynamics_converge() {
        let ev = evaluator();
        let out = solve_distributed(&ev, &DistributedConfig::default());
        assert!(out.converged, "no equilibrium in {} rounds", out.rounds);
        assert!(out.rounds < 20);
        assert!(out.solution.result.objective.is_finite());
    }

    #[test]
    fn equilibrium_is_unilaterally_stable() {
        let ev = evaluator();
        let cfg = DistributedConfig::default();
        let out = solve_distributed(&ev, &cfg);
        let mut asg = out.solution.assignment.clone();
        // No single stream can improve its own cost by more than tol.
        for k in 0..ev.num_streams() {
            let base = ev.evaluate(&asg, cfg.policies).latency_s[k] / ev.deadline(k);
            let saved = (asg.plan_idx[k], asg.placement[k]);
            for plan in 0..ev.menu(k).len() {
                for server in 0..ev.num_servers() {
                    asg.plan_idx[k] = plan;
                    asg.placement[k] = server;
                    let c = ev.evaluate(&asg, cfg.policies).latency_s[k] / ev.deadline(k);
                    assert!(
                        c >= base * (1.0 - 1e-5) - 1e-12,
                        "stream {k} deviates {saved:?} -> ({plan},{server}): {c} < {base}"
                    );
                }
            }
            asg.plan_idx[k] = saved.0;
            asg.placement[k] = saved.1;
        }
    }

    #[test]
    fn distributed_is_close_to_centralized() {
        let ev = evaluator();
        let dist = solve_distributed(&ev, &DistributedConfig::default());
        let central = optimizer::solve(&ev, &OptimizerConfig::default());
        // "Close-to-optimal": within 30% of the centralized objective on
        // this instance (typically much closer; the bound here just guards
        // regressions).
        assert!(
            dist.solution.result.objective <= central.result.objective * 1.30 + 1e-9,
            "distributed {} vs centralized {}",
            dist.solution.result.objective,
            central.result.objective
        );
    }

    #[test]
    fn reconcile_terminates_and_tracks_exact_objective() {
        // Two-AP scenario, all streams piled onto server 0: reconciliation
        // must spread them, commit exact objectives, and quiesce within
        // the round cap.
        let cfg = ScenarioConfig {
            num_aps: 2,
            devices_per_ap: 4,
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        };
        let ev = Evaluator::new(&cfg.build(), None);
        let n = ev.num_streams();
        let asg = crate::evaluator::Assignment {
            plan_idx: vec![0; n],
            placement: vec![0; n],
        };
        let mut ctx = EvalContext::new(&ev, asg, AllocPolicies::optimal());
        let before = ctx.objective();
        let mut trace = SearchTrace::default();
        let groups: Vec<Vec<usize>> = (0..ev.num_servers()).map(|s| vec![s]).collect();
        let rcfg = ReconcileConfig::default();
        let report = reconcile_placement(&mut ctx, &groups, None, &rcfg, None, None, &mut trace);
        assert!(
            report.converged,
            "no quiescence in {} rounds",
            report.rounds
        );
        assert!(report.moves > 0, "nothing moved off the overloaded server");
        assert!(report.probes >= report.moves);
        assert_eq!(
            trace.evaluations,
            report.probes + report.moves,
            "every probe and commit is counted"
        );
        assert!(
            ctx.objective() <= before,
            "selfish spreading worsened the pool"
        );
        // The incremental objective stays exact (the commit path's bit
        // parity is the eval_context contract; spot-check it here).
        ctx.assert_matches_fresh();
    }

    #[test]
    fn reconcile_respects_reachability_and_eval_cap() {
        let cfg = ScenarioConfig {
            num_aps: 2,
            devices_per_ap: 4,
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        };
        let ev = Evaluator::new(&cfg.build(), None);
        let n = ev.num_streams();
        let asg = crate::evaluator::Assignment {
            plan_idx: vec![0; n],
            placement: vec![0; n],
        };
        // AP 0 may only use server 0; AP 1 may only use server 1.
        let allowed = vec![vec![0], vec![1]];
        let mut ctx = EvalContext::new(&ev, asg.clone(), AllocPolicies::optimal());
        let mut trace = SearchTrace::default();
        let groups: Vec<Vec<usize>> = (0..ev.num_servers()).map(|s| vec![s]).collect();
        let rcfg = ReconcileConfig::default();
        reconcile_placement(
            &mut ctx,
            &groups,
            Some(&allowed),
            &rcfg,
            None,
            None,
            &mut trace,
        );
        for k in 0..n {
            if ctx.is_offloaded(k) {
                let ap = ev.ap_of[k];
                let srv = ctx.placement()[k];
                assert!(
                    srv == asg.placement[k] || allowed[ap].contains(&srv),
                    "stream {k} (AP {ap}) moved to unreachable server {srv}"
                );
            }
        }
        // A zero evaluation cap cuts the pass before any probe.
        let mut ctx2 = EvalContext::new(&ev, asg, AllocPolicies::optimal());
        let mut trace2 = SearchTrace::default();
        let r2 = reconcile_placement(&mut ctx2, &groups, None, &rcfg, None, Some(0), &mut trace2);
        assert!(!r2.converged);
        assert!(r2.cut, "the eval cap must be reported as a budget cut");
        assert_eq!(r2.moves, 0);
        assert_eq!(trace2.evaluations, 0);
    }

    #[test]
    fn selfish_moves_never_worsen_the_mover() {
        // Trace inspection: the recorded global objective may fluctuate
        // (selfishness), but convergence + stability (tested above) is the
        // contract. Here we simply check the trace is non-empty and finite.
        let ev = evaluator();
        let out = solve_distributed(&ev, &DistributedConfig::default());
        assert!(!out.solution.trace.objective.is_empty());
        assert!(out.solution.trace.objective.iter().all(|o| o.is_finite()));
    }
}
