//! Incremental (delta) evaluation of joint configurations.
//!
//! The search loops flip one coordinate at a time — one stream's plan, or
//! one stream's server — yet [`Evaluator::evaluate`] re-prices every
//! stream from scratch. This module caches the per-group state a full
//! evaluation produces (dense per-device Pollaczek–Khinchine
//! accumulators, per-server compute-allocation solutions, per-AP
//! bandwidth solutions, per-stream latency/energy) and re-solves *only
//! the groups a move dirties*:
//!
//! * a **plan flip** on stream `k` dirties `k`'s device queue (its
//!   service mixture changed), the compute groups of every server hosting
//!   an offloaded stream of that device (their `pre_edge` waits changed),
//!   and the bandwidth groups of those streams' APs; if the flip toggles
//!   `k` between device-only and offloading, the offloader count of
//!   `k`'s AP changes too, dirtying the servers of every offloaded
//!   stream on that AP (the fair-share tx term in their compute demand);
//! * a **placement move** of an offloaded stream `k` dirties exactly the
//!   old and new servers' compute groups and `k`'s AP's bandwidth group.
//!
//! The invariant making traces bit-identical to the full path: **every
//! cached value is a pure function of the assignment**. Group recomputes
//! iterate members in ascending stream order (the order a full rebuild
//! uses), and the pooled objective is re-summed over all `n` streams in
//! index order rather than patched in floating point — so a delta trial,
//! a committed delta, and a from-scratch rebuild produce the same bits.
//!
//! One deliberate model change enables the locality: the bandwidth
//! demand's post-transmission term now uses the construction-time
//! fair-share proxy `edge_flops × streams_per_server / cap(srv)` instead
//! of the stage-2 compute share. The previous coupling made every
//! bandwidth group depend on every compute solve (a single plan flip
//! re-solved all APs), destroying incrementality; the proxy mirrors the
//! fair-share tx estimate already used inside compute demands (and the
//! `ReferenceEnv` used for candidate generation) and is symmetric across
//! the two stages. See DESIGN.md §2.9.

use crate::evaluator::{
    AllocPolicies, Assignment, EvalResult, Evaluator, PlanPricing, RHO_CAP, TX_WATTS,
};
use rayon::prelude::*;
use scalpel_alloc::bandwidth_alloc::{self, BandwidthCols};
use scalpel_alloc::compute_alloc::{self, ComputeCols};
use scalpel_alloc::AllocScratch;
use std::cell::RefCell;

/// A single-coordinate change to an [`Assignment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Switch stream `k` to plan `idx` of its menu.
    Plan {
        /// Stream index.
        k: usize,
        /// Menu index to switch to.
        idx: usize,
    },
    /// Move stream `k` to server `srv`.
    Server {
        /// Stream index.
        k: usize,
        /// Target server.
        srv: usize,
    },
}

/// The stage-1 recompute of one device group (replacement values).
#[derive(Debug, Clone, Copy)]
struct DevPatch {
    device: usize,
    les2: f64,
    rho: f64,
    wait: f64,
}

/// PK wait from the dense device accumulators: `W = Λ·E[S²]/(2(1−ρ))`.
fn pk_wait(les2: f64, rho: f64) -> f64 {
    les2 / (2.0 * (1.0 - rho.min(RHO_CAP)))
}

/// One stream's objective terms: `(L/D, penalty, missed)`. The penalty is
/// `10·(L/D − 1)` past the deadline, else exactly `0.0`. This is the ONE
/// definition both the cached and the freshly-patched paths use, so a
/// cached term is bitwise the value a recompute would produce.
#[inline]
fn objective_terms(lat: f64, dl: f64) -> (f64, f64, bool) {
    let norm = lat / dl;
    if lat > dl {
        (norm, 10.0 * (norm - 1.0), true)
    } else {
        (norm, 0.0, false)
    }
}

/// Reusable buffers for one delta trial, generation-stamped so nothing
/// needs clearing between trials. [`EvalContext::evaluate_delta`] takes
/// `&self`, so independent scratches allow concurrent candidate scoring
/// over a shared read-only context.
#[derive(Debug, Default)]
pub struct DeltaScratch {
    gen: u32,
    // Patched-value overlays, indexed by stream; an entry is live iff its
    // stamp equals the current generation.
    cs_stamp: Vec<u32>,
    cs_val: Vec<f64>,
    touched_cs: Vec<usize>,
    bw_stamp: Vec<u32>,
    bw_val: Vec<f64>,
    touched_bw: Vec<usize>,
    lat_stamp: Vec<u32>,
    lat_val: Vec<f64>,
    de_val: Vec<f64>,
    te_val: Vec<f64>,
    touched_lat: Vec<usize>,
    dev: Option<DevPatch>,
    ap_delta: Option<(usize, isize)>,
    dirty_servers: Vec<usize>,
    dirty_aps: Vec<usize>,
    members: Vec<usize>,
    demands: DemandCols,
    shares: Vec<f64>,
    alloc: AllocScratch,
    objective: f64,
    misses: usize,
}

/// SoA gather buffers for one group's demand columns — the flat layout
/// `scalpel_alloc`'s column kernels sweep directly (no per-stream demand
/// struct is materialized on the hot path). The same five columns serve
/// both stages: compute groups leave `post` empty, bandwidth groups fill
/// all five.
#[derive(Debug, Default)]
struct DemandCols {
    pre: Vec<f64>,
    scaled: Vec<f64>,
    post: Vec<f64>,
    weight: Vec<f64>,
    deadline: Vec<f64>,
}

impl DemandCols {
    fn clear(&mut self) {
        self.pre.clear();
        self.scaled.clear();
        self.post.clear();
        self.weight.clear();
        self.deadline.clear();
    }

    /// Stage-2 demand of stream `k` on server `srv`. `peers` is the
    /// offloading-stream count on `k`'s AP (the fair-share tx estimate).
    #[inline]
    fn push_compute(
        &mut self,
        ev: &Evaluator,
        k: usize,
        p: &PlanPricing,
        wait: f64,
        peers: usize,
        srv: usize,
    ) {
        self.pre
            .push(wait + p.dev_full + ev.tx_full_seconds(k, p) * peers.max(1) as f64);
        self.scaled
            .push(p.remain.max(1e-6) * p.edge_flops / ev.server_caps[srv]);
        // weight ∝ urgency so the weighted-sum fallback minimizes the
        // Σ L/D objective directly
        self.weight.push(1.0 / ev.deadline_s[k]);
        self.deadline.push(ev.deadline_s[k]);
    }

    /// Stage-3 demand of stream `k` on its AP. The post-tx estimate uses
    /// the construction-time fair-share proxy (not the live compute
    /// share) so bandwidth groups stay decoupled from compute solves —
    /// the property that makes single-move dirty sets small.
    #[inline]
    fn push_bandwidth(&mut self, ev: &Evaluator, k: usize, p: &PlanPricing, wait: f64, srv: usize) {
        self.pre.push(wait + p.dev_full);
        self.scaled
            .push(p.remain.max(1e-6) * ev.tx_full_seconds(k, p));
        self.post
            .push(p.edge_flops * ev.streams_per_server / ev.server_caps[srv]);
        self.weight.push(1.0 / ev.deadline_s[k]);
        self.deadline.push(ev.deadline_s[k]);
    }

    fn compute_view(&self) -> ComputeCols<'_> {
        ComputeCols {
            pre_edge_s: &self.pre,
            edge_s_full: &self.scaled,
            weight: &self.weight,
            deadline_s: &self.deadline,
        }
    }

    fn bandwidth_view(&self) -> BandwidthCols<'_> {
        BandwidthCols {
            pre_tx_s: &self.pre,
            tx_s_full: &self.scaled,
            post_tx_s: &self.post,
            weight: &self.weight,
            deadline_s: &self.deadline,
        }
    }
}

thread_local! {
    /// Per-thread pool of [`DeltaScratch`] buffers for [`EvalContext::
    /// score_menu`]: each probe recycles a warm scratch instead of paying
    /// six n-sized zeroing allocations. Recycling across contexts (and
    /// across problem sizes) is safe because `DeltaScratch::begin`
    /// reallocates on size change and generation-stamps every overlay.
    static SCRATCH_POOL: RefCell<Vec<DeltaScratch>> = const { RefCell::new(Vec::new()) };
}

impl DeltaScratch {
    fn begin(&mut self, n: usize) {
        if self.cs_stamp.len() != n {
            self.cs_stamp = vec![0; n];
            self.cs_val = vec![0.0; n];
            self.bw_stamp = vec![0; n];
            self.bw_val = vec![0.0; n];
            self.lat_stamp = vec![0; n];
            self.lat_val = vec![0.0; n];
            self.de_val = vec![0.0; n];
            self.te_val = vec![0.0; n];
            self.gen = 0;
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // u32 generation wrapped: reset stamps so stale entries from
            // four billion trials ago cannot collide with the new cycle.
            self.cs_stamp.iter_mut().for_each(|s| *s = 0);
            self.bw_stamp.iter_mut().for_each(|s| *s = 0);
            self.lat_stamp.iter_mut().for_each(|s| *s = 0);
            self.gen = 1;
        }
        self.touched_cs.clear();
        self.touched_bw.clear();
        self.touched_lat.clear();
        self.dev = None;
        self.ap_delta = None;
        self.dirty_servers.clear();
        self.dirty_aps.clear();
    }
}

/// Cached evaluation state for one assignment, supporting O(dirty-groups)
/// re-pricing of single-coordinate moves. Build one with [`new`]
/// (equivalent to a full [`Evaluator::evaluate`]), probe moves with
/// [`evaluate_delta`] / [`evaluate_move`] (read-only, scratch-carried),
/// and apply them with [`commit_plan`] / [`commit_move`].
///
/// [`new`]: EvalContext::new
/// [`evaluate_delta`]: EvalContext::evaluate_delta
/// [`evaluate_move`]: EvalContext::evaluate_move
/// [`commit_plan`]: EvalContext::commit_plan
/// [`commit_move`]: EvalContext::commit_move
pub struct EvalContext<'a> {
    ev: &'a Evaluator,
    policies: AllocPolicies,
    plan_idx: Vec<usize>,
    placement: Vec<usize>,
    /// Whether each stream's current plan offloads.
    offloaded: Vec<bool>,
    /// Dense per-device Λ·E[S²] / ρ accumulators and the derived PK wait.
    dev_les2: Vec<f64>,
    dev_rho: Vec<f64>,
    dev_wait: Vec<f64>,
    /// Offloading-stream count per AP (the fair-share tx peer count).
    ap_offload: Vec<usize>,
    /// Offloaded streams per server, ascending.
    server_members: Vec<Vec<usize>>,
    compute_shares: Vec<f64>,
    bandwidth_shares: Vec<f64>,
    latency: Vec<f64>,
    /// Per-stream objective terms, cached alongside `latency`: the
    /// normalized latency `L/D`, the miss penalty `10·(L/D − 1)` (0 when
    /// the deadline is met), and the miss flag. Stored bitwise as the
    /// fresh expression computes them, so the pooled resum can add cached
    /// terms for untouched streams without re-dividing — same bits,
    /// no division on the O(n) path.
    obj_norm: Vec<f64>,
    obj_pen: Vec<f64>,
    obj_missed: Vec<bool>,
    device_energy: Vec<f64>,
    total_energy: Vec<f64>,
    objective: f64,
    expected_misses: usize,
    scratch: DeltaScratch,
}

impl<'a> EvalContext<'a> {
    /// Build the cache by fully pricing `asg` (one complete evaluation).
    pub fn new(ev: &'a Evaluator, asg: Assignment, policies: AllocPolicies) -> Self {
        let n = ev.num_streams();
        assert_eq!(asg.plan_idx.len(), n);
        assert_eq!(asg.placement.len(), n);
        let mut ctx = Self {
            ev,
            policies,
            plan_idx: asg.plan_idx,
            placement: asg.placement,
            offloaded: vec![false; n],
            dev_les2: vec![0.0; ev.num_devices],
            dev_rho: vec![0.0; ev.num_devices],
            dev_wait: vec![0.0; ev.num_devices],
            ap_offload: vec![0; ev.num_aps],
            server_members: vec![Vec::new(); ev.server_caps.len()],
            compute_shares: vec![0.0; n],
            bandwidth_shares: vec![0.0; n],
            latency: vec![0.0; n],
            obj_norm: vec![0.0; n],
            obj_pen: vec![0.0; n],
            obj_missed: vec![false; n],
            device_energy: vec![0.0; n],
            total_energy: vec![0.0; n],
            objective: 0.0,
            expected_misses: 0,
            scratch: DeltaScratch::default(),
        };
        ctx.rebuild();
        ctx
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &'a Evaluator {
        self.ev
    }

    /// Allocation policies this context prices under.
    pub fn policies(&self) -> AllocPolicies {
        self.policies
    }

    /// Objective of the cached assignment.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Current plan index of stream `k`.
    pub fn plan_of(&self, k: usize) -> usize {
        self.plan_idx[k]
    }

    /// Current plan indices.
    pub fn plan_indices(&self) -> &[usize] {
        &self.plan_idx
    }

    /// Current placement.
    pub fn placement(&self) -> &[usize] {
        &self.placement
    }

    /// The cached assignment, cloned.
    pub fn assignment(&self) -> Assignment {
        Assignment {
            plan_idx: self.plan_idx.clone(),
            placement: self.placement.clone(),
        }
    }

    fn plan(&self, k: usize) -> &PlanPricing {
        &self.ev.menus[k][self.plan_idx[k]]
    }

    /// Recompute every cache from the stored assignment (the full
    /// evaluation; also the oracle the delta path is verified against).
    pub fn rebuild(&mut self) {
        let ev = self.ev;
        let n = ev.num_streams();
        for k in 0..n {
            self.offloaded[k] = !self.plan(k).is_device_only();
        }
        // --- Stage 1: device queueing (independent of allocation).
        // FIFO M/G/1 per device; service is the exact exit mixture, so PK
        // gives the wait from the dense Λ·E[S²] and ρ accumulators,
        // accumulated in ascending stream order.
        self.dev_les2.iter_mut().for_each(|x| *x = 0.0);
        self.dev_rho.iter_mut().for_each(|x| *x = 0.0);
        for k in 0..n {
            let p = &ev.menus[k][self.plan_idx[k]];
            let d = ev.device_of[k];
            self.dev_les2[d] += ev.rate_hz[k] * p.es2;
            self.dev_rho[d] += ev.rate_hz[k] * p.exp_dev;
        }
        for d in 0..ev.num_devices {
            self.dev_wait[d] = pk_wait(self.dev_les2[d], self.dev_rho[d]);
        }
        // --- Group membership: offloader count per AP, members per server.
        self.ap_offload.iter_mut().for_each(|x| *x = 0);
        for m in &mut self.server_members {
            m.clear();
        }
        for k in 0..n {
            if self.offloaded[k] {
                self.ap_offload[ev.ap_of[k]] += 1;
                self.server_members[self.placement[k]].push(k);
            }
        }
        let mut s = std::mem::take(&mut self.scratch);
        // --- Stage 2: compute shares per server.
        self.compute_shares.iter_mut().for_each(|x| *x = 0.0);
        for srv in 0..ev.server_caps.len() {
            if self.server_members[srv].is_empty() {
                continue;
            }
            s.demands.clear();
            for i in 0..self.server_members[srv].len() {
                let k = self.server_members[srv][i];
                s.demands.push_compute(
                    ev,
                    k,
                    self.plan(k),
                    self.dev_wait[ev.device_of[k]],
                    self.ap_offload[ev.ap_of[k]],
                    srv,
                );
            }
            compute_alloc::allocate_cols_into(
                s.demands.compute_view(),
                self.policies.compute,
                &mut s.alloc,
                &mut s.shares,
            );
            for (i, &k) in self.server_members[srv].iter().enumerate() {
                self.compute_shares[k] = s.shares[i];
            }
        }
        // --- Stage 3: bandwidth shares per AP.
        self.bandwidth_shares.iter_mut().for_each(|x| *x = 0.0);
        for ap in 0..ev.num_aps {
            s.members.clear();
            for &k in &ev.ap_members[ap] {
                if self.offloaded[k] {
                    s.members.push(k);
                }
            }
            if s.members.is_empty() {
                continue;
            }
            s.demands.clear();
            for i in 0..s.members.len() {
                let k = s.members[i];
                s.demands.push_bandwidth(
                    ev,
                    k,
                    self.plan(k),
                    self.dev_wait[ev.device_of[k]],
                    self.placement[k],
                );
            }
            bandwidth_alloc::allocate_cols_into(
                s.demands.bandwidth_view(),
                self.policies.bandwidth,
                &mut s.alloc,
                &mut s.shares,
            );
            for (i, &k) in s.members.iter().enumerate() {
                self.bandwidth_shares[k] = s.shares[i];
            }
        }
        self.scratch = s;
        // --- Final pricing with utilization corrections.
        for k in 0..n {
            let (lat, de, te) = self.price_stream(
                k,
                self.plan(k),
                self.dev_wait[ev.device_of[k]],
                self.compute_shares[k],
                self.bandwidth_shares[k],
                self.placement[k],
            );
            self.latency[k] = lat;
            let (norm, pen, miss) = objective_terms(lat, ev.deadline_s[k]);
            self.obj_norm[k] = norm;
            self.obj_pen[k] = pen;
            self.obj_missed[k] = miss;
            self.device_energy[k] = de;
            self.total_energy[k] = te;
        }
        let (obj, misses) = self.sum_objective(|_| None);
        self.objective = obj;
        self.expected_misses = misses;
    }

    /// Pooled objective + expected misses from per-stream latencies, with
    /// an overlay for patched streams. Always resummed over all `n`
    /// streams in index order so delta and full paths agree bitwise.
    ///
    /// Untouched streams read their cached `objective_terms` instead of
    /// re-dividing `L/D`: the cache holds exactly the bits the fresh
    /// expression produces, and the add sequence per stream is unchanged
    /// (`obj += norm`, then `obj += pen` only on a miss), so the result is
    /// bit-identical to the all-fresh resum while the O(n) loop does no
    /// division.
    fn sum_objective(&self, patched: impl Fn(usize) -> Option<f64>) -> (f64, usize) {
        let n = self.latency.len();
        let mut obj = 0.0;
        let mut misses = 0usize;
        for k in 0..n {
            match patched(k) {
                None => {
                    obj += self.obj_norm[k];
                    if self.obj_missed[k] {
                        misses += 1;
                        obj += self.obj_pen[k];
                    }
                }
                Some(lat) => {
                    let dl = self.ev.deadline_s[k];
                    let (norm, pen, miss) = objective_terms(lat, dl);
                    obj += norm;
                    if miss {
                        misses += 1;
                        obj += pen;
                    }
                }
            }
        }
        (obj / n as f64, misses)
    }

    /// Final latency/energy of one stream from its wait, shares, server.
    fn price_stream(
        &self,
        k: usize,
        p: &PlanPricing,
        w_dev: f64,
        cs: f64,
        bw: f64,
        srv: usize,
    ) -> (f64, f64, f64) {
        let ev = self.ev;
        // Every request on the device waits the PK time first, then runs
        // its own (path-dependent) service.
        let mut lat = 0.0;
        for (i, &q) in p.behavior.exit_probs.iter().enumerate() {
            lat += q * (w_dev + p.dev_to_exit[i]);
        }
        let mut full_path = w_dev + p.dev_full;
        // Energy: device compute (service time × board power) is paid on
        // every path; radio + edge only on the offloaded tail.
        let mut dev_e = p.exp_dev * ev.device_watts[k];
        let mut tot_e = dev_e;
        if !p.is_device_only() {
            let b = bw.max(1e-9);
            let tx = ev.tx_full_seconds(k, p) / b;
            // Uplink: M/D/1 (deterministic service at the planned rate),
            // PK wait = λ·S²/(2(1−ρ)).
            let lam_tx = ev.rate_hz[k] * p.remain;
            let rho_tx = (lam_tx * tx).min(RHO_CAP);
            let w_tx = lam_tx * tx * tx / (2.0 * (1.0 - rho_tx));
            let c = cs.max(1e-9);
            let edge = p.edge_flops / (ev.server_caps[srv] * c);
            // Edge: dedicated processor-sharing slice — M/G/1-PS response
            // s/(1−ρ) (insensitive to the service law).
            let rho_edge = (ev.rate_hz[k] * p.remain * edge).min(RHO_CAP);
            full_path += w_tx + tx + ev.rtt_s[k] / 2.0 + edge / (1.0 - rho_edge);
            let radio = p.remain * tx * TX_WATTS;
            dev_e += radio;
            tot_e += radio + p.remain * p.edge_flops * ev.server_jpf[srv];
        }
        lat += p.behavior.remain_prob * full_path;
        (lat, dev_e, tot_e)
    }

    /// Price `mv` against the cached state, leaving the recomputed group
    /// values in `s` (generation-stamped overlays) without touching the
    /// context. Group members are visited in ascending stream order and
    /// the objective is re-summed over all streams, matching a rebuild.
    fn compute_patch(&self, mv: Move, s: &mut DeltaScratch) {
        self.compute_patch_groups(mv, s);
        // --- Pooled objective, resummed in stream order.
        let (obj, misses) = self.sum_objective(|j| {
            if s.lat_stamp[j] == s.gen {
                Some(s.lat_val[j])
            } else {
                None
            }
        });
        s.objective = obj;
        s.misses = misses;
    }

    /// The group-local part of [`compute_patch`]: re-solve every dirty
    /// device/server/AP group and re-price the touched streams into `s`,
    /// *without* the O(n) pooled-objective resum. This is the cheap probe
    /// the shard-reconciliation layer uses when it only needs the mover's
    /// own patched latency, not the global objective.
    fn compute_patch_groups(&self, mv: Move, s: &mut DeltaScratch) {
        let ev = self.ev;
        let n = ev.num_streams();
        s.begin(n);
        let (k, new_plan, new_srv) = match mv {
            Move::Plan { k, idx } => (k, idx, self.placement[k]),
            Move::Server { k, srv } => (k, self.plan_idx[k], srv),
        };
        let p_new = &ev.menus[k][new_plan];
        let old_off = self.offloaded[k];
        let new_off = !p_new.is_device_only();
        let d_k = ev.device_of[k];
        let a_k = ev.ap_of[k];
        let plan_changed = new_plan != self.plan_idx[k];
        let toggled = plan_changed && old_off != new_off;
        // Overrides for "the state after the move" while reading caches
        // that still describe the state before it.
        let plan_of = |j: usize| -> &PlanPricing {
            if j == k {
                p_new
            } else {
                &ev.menus[j][self.plan_idx[j]]
            }
        };
        let off_of = |j: usize| -> bool {
            if j == k {
                new_off
            } else {
                self.offloaded[j]
            }
        };
        let srv_of = |j: usize| -> usize {
            if j == k {
                new_srv
            } else {
                self.placement[j]
            }
        };
        // --- Stage 1: k's device group (plan moves only).
        let dev_patch = if plan_changed {
            let mut les2 = 0.0;
            let mut rho = 0.0;
            for &j in &ev.device_members[d_k] {
                let p = plan_of(j);
                les2 += ev.rate_hz[j] * p.es2;
                rho += ev.rate_hz[j] * p.exp_dev;
            }
            Some(DevPatch {
                device: d_k,
                les2,
                rho,
                wait: pk_wait(les2, rho),
            })
        } else {
            None
        };
        s.dev = dev_patch;
        let wait_of = |j: usize| -> f64 {
            match dev_patch {
                Some(dp) if ev.device_of[j] == dp.device => dp.wait,
                _ => self.dev_wait[ev.device_of[j]],
            }
        };
        // --- AP offloader-count delta (toggles only).
        if toggled {
            s.ap_delta = Some((a_k, if new_off { 1 } else { -1 }));
        }
        let ap_off_of = |ap: usize| -> usize {
            let base = self.ap_offload[ap];
            if toggled && ap == a_k {
                if new_off {
                    base + 1
                } else {
                    base - 1
                }
            } else {
                base
            }
        };
        // --- Dirty compute groups.
        match mv {
            Move::Plan { .. } => {
                if plan_changed {
                    // Device-mates' waits changed → their servers re-solve.
                    for &j in &ev.device_members[d_k] {
                        if off_of(j) {
                            s.dirty_servers.push(srv_of(j));
                        }
                    }
                    // k leaving its server is a membership change there.
                    if old_off && !new_off {
                        s.dirty_servers.push(self.placement[k]);
                    }
                }
                if toggled {
                    // Peer count on a_k changed → the fair-share tx term of
                    // every offloaded stream on that AP changed.
                    for &j in &ev.ap_members[a_k] {
                        if off_of(j) {
                            s.dirty_servers.push(srv_of(j));
                        }
                    }
                }
            }
            Move::Server { .. } => {
                if old_off {
                    s.dirty_servers.push(self.placement[k]);
                    s.dirty_servers.push(new_srv);
                }
            }
        }
        s.dirty_servers.sort_unstable();
        s.dirty_servers.dedup();
        for si in 0..s.dirty_servers.len() {
            let srv = s.dirty_servers[si];
            // Membership under the move: the cached ascending list,
            // patched for k.
            s.members.clear();
            for &j in &self.server_members[srv] {
                if j != k {
                    s.members.push(j);
                }
            }
            if new_off && new_srv == srv {
                let pos = s.members.partition_point(|&j| j < k);
                s.members.insert(pos, k);
            }
            s.demands.clear();
            for i in 0..s.members.len() {
                let j = s.members[i];
                s.demands
                    .push_compute(ev, j, plan_of(j), wait_of(j), ap_off_of(ev.ap_of[j]), srv);
            }
            compute_alloc::allocate_cols_into(
                s.demands.compute_view(),
                self.policies.compute,
                &mut s.alloc,
                &mut s.shares,
            );
            for i in 0..s.members.len() {
                let j = s.members[i];
                if s.cs_stamp[j] != s.gen {
                    s.touched_cs.push(j);
                }
                s.cs_stamp[j] = s.gen;
                s.cs_val[j] = s.shares[i];
            }
        }
        if !new_off {
            // A non-offloading stream holds no compute share.
            if s.cs_stamp[k] != s.gen {
                s.touched_cs.push(k);
            }
            s.cs_stamp[k] = s.gen;
            s.cs_val[k] = 0.0;
        }
        // --- Dirty bandwidth groups (decoupled from compute solves).
        match mv {
            Move::Plan { .. } => {
                if plan_changed {
                    for &j in &ev.device_members[d_k] {
                        if off_of(j) {
                            s.dirty_aps.push(ev.ap_of[j]);
                        }
                    }
                    if old_off || new_off {
                        s.dirty_aps.push(a_k);
                    }
                }
            }
            Move::Server { .. } => {
                // post_tx depends on k's server capacity.
                if old_off {
                    s.dirty_aps.push(a_k);
                }
            }
        }
        s.dirty_aps.sort_unstable();
        s.dirty_aps.dedup();
        for ai in 0..s.dirty_aps.len() {
            let ap = s.dirty_aps[ai];
            s.members.clear();
            for &j in &ev.ap_members[ap] {
                if off_of(j) {
                    s.members.push(j);
                }
            }
            s.demands.clear();
            for i in 0..s.members.len() {
                let j = s.members[i];
                s.demands
                    .push_bandwidth(ev, j, plan_of(j), wait_of(j), srv_of(j));
            }
            bandwidth_alloc::allocate_cols_into(
                s.demands.bandwidth_view(),
                self.policies.bandwidth,
                &mut s.alloc,
                &mut s.shares,
            );
            for i in 0..s.members.len() {
                let j = s.members[i];
                if s.bw_stamp[j] != s.gen {
                    s.touched_bw.push(j);
                }
                s.bw_stamp[j] = s.gen;
                s.bw_val[j] = s.shares[i];
            }
        }
        if !new_off {
            if s.bw_stamp[k] != s.gen {
                s.touched_bw.push(k);
            }
            s.bw_stamp[k] = s.gen;
            s.bw_val[k] = 0.0;
        }
        // --- Re-price dirty streams: k's device-mates (wait and/or k's
        // plan changed) plus anyone whose share moved.
        if plan_changed {
            for &j in &ev.device_members[d_k] {
                if s.lat_stamp[j] != s.gen {
                    s.lat_stamp[j] = s.gen;
                    s.touched_lat.push(j);
                }
            }
        }
        for i in 0..s.touched_cs.len() {
            let j = s.touched_cs[i];
            if s.lat_stamp[j] != s.gen {
                s.lat_stamp[j] = s.gen;
                s.touched_lat.push(j);
            }
        }
        for i in 0..s.touched_bw.len() {
            let j = s.touched_bw[i];
            if s.lat_stamp[j] != s.gen {
                s.lat_stamp[j] = s.gen;
                s.touched_lat.push(j);
            }
        }
        for i in 0..s.touched_lat.len() {
            let j = s.touched_lat[i];
            let cs = if s.cs_stamp[j] == s.gen {
                s.cs_val[j]
            } else {
                self.compute_shares[j]
            };
            let bw = if s.bw_stamp[j] == s.gen {
                s.bw_val[j]
            } else {
                self.bandwidth_shares[j]
            };
            let (lat, de, te) = self.price_stream(j, plan_of(j), wait_of(j), cs, bw, srv_of(j));
            s.lat_val[j] = lat;
            s.de_val[j] = de;
            s.te_val[j] = te;
        }
    }

    /// Objective if stream `k` switched to plan `new_plan_idx` — read-only
    /// trial; the recomputed group state lives in `s` until the next call.
    pub fn evaluate_delta(&self, k: usize, new_plan_idx: usize, s: &mut DeltaScratch) -> f64 {
        self.compute_patch(
            Move::Plan {
                k,
                idx: new_plan_idx,
            },
            s,
        );
        s.objective
    }

    /// Objective if stream `k` moved to `new_server` — read-only trial.
    pub fn evaluate_move(&self, k: usize, new_server: usize, s: &mut DeltaScratch) -> f64 {
        self.compute_patch(Move::Server { k, srv: new_server }, s);
        s.objective
    }

    /// Stream `k`'s own normalized latency if it moved to `new_server`,
    /// priced by group re-solves only — the O(n) pooled-objective resum is
    /// skipped, so a probe costs O(|touched groups|) instead of O(n). This
    /// is what makes fleet-scale best-response reconciliation affordable:
    /// the mover's cost is exact (its latency is always re-priced when its
    /// server group changes), only the *global* objective is left stale.
    /// Device-only streams and no-op moves return the current cost.
    pub fn probe_move_cost(&self, k: usize, new_server: usize, s: &mut DeltaScratch) -> f64 {
        if !self.offloaded[k] || new_server == self.placement[k] {
            return self.latency[k] / self.ev.deadline_s[k];
        }
        self.compute_patch_groups(Move::Server { k, srv: new_server }, s);
        let lat = if s.lat_stamp[k] == s.gen {
            s.lat_val[k]
        } else {
            self.latency[k]
        };
        lat / self.ev.deadline_s[k]
    }

    /// Stream `k`'s current normalized latency (own cost in the stream
    /// game: latency over deadline).
    pub fn own_cost(&self, k: usize) -> f64 {
        self.latency[k] / self.ev.deadline_s[k]
    }

    /// Whether stream `k`'s current plan offloads (its placement matters).
    pub fn is_offloaded(&self, k: usize) -> bool {
        self.offloaded[k]
    }

    /// Score every plan in stream `k`'s menu against the current context.
    /// The context is read-only here, so candidates score in parallel
    /// (each with its own scratch) under rayon; with the sequential
    /// vendored stand-in the loop simply runs in menu order. Entry `i` is
    /// the pooled objective with `k` on plan `i`, everyone else unchanged.
    pub fn score_menu(&self, k: usize) -> Vec<f64> {
        let idxs: Vec<usize> = (0..self.ev.menus[k].len()).collect();
        idxs.par_iter()
            .map(|&idx| {
                // Recycle a per-thread scratch: the overlays inside are
                // generation-stamped, so a warm buffer prices exactly like
                // a fresh one, minus the six n-sized allocations.
                let mut s = SCRATCH_POOL
                    .with(|pool| pool.borrow_mut().pop())
                    .unwrap_or_default();
                let obj = self.evaluate_delta(k, idx, &mut s);
                SCRATCH_POOL.with(|pool| pool.borrow_mut().push(s));
                obj
            })
            .collect()
    }

    /// Apply a priced move: flip the coordinate, splice the recomputed
    /// group values into the caches, adopt the resummed objective.
    fn apply(&mut self, mv: Move, s: &DeltaScratch) {
        let (k, new_srv) = match mv {
            Move::Plan { k, .. } => (k, self.placement[k]),
            Move::Server { k, srv } => (k, srv),
        };
        let old_off = self.offloaded[k];
        let old_srv = self.placement[k];
        if let Move::Plan { idx, .. } = mv {
            self.plan_idx[k] = idx;
        }
        let new_off = !self.plan(k).is_device_only();
        self.placement[k] = new_srv;
        self.offloaded[k] = new_off;
        if old_off && (!new_off || new_srv != old_srv) {
            let m = &mut self.server_members[old_srv];
            // Membership is maintained by this function alone; a miss can
            // only mean a bug, so flag it in debug builds but keep release
            // builds panic-free (removing nothing is then the safe no-op).
            match m.binary_search(&k) {
                Ok(pos) => {
                    m.remove(pos);
                }
                Err(_) => debug_assert!(false, "server membership out of sync"),
            }
        }
        if new_off && (!old_off || new_srv != old_srv) {
            let m = &mut self.server_members[new_srv];
            let pos = m.partition_point(|&j| j < k);
            m.insert(pos, k);
        }
        if let Some((ap, delta)) = s.ap_delta {
            self.ap_offload[ap] = (self.ap_offload[ap] as isize + delta) as usize;
        }
        if let Some(dp) = s.dev {
            self.dev_les2[dp.device] = dp.les2;
            self.dev_rho[dp.device] = dp.rho;
            self.dev_wait[dp.device] = dp.wait;
        }
        for &j in &s.touched_cs {
            self.compute_shares[j] = s.cs_val[j];
        }
        for &j in &s.touched_bw {
            self.bandwidth_shares[j] = s.bw_val[j];
        }
        for &j in &s.touched_lat {
            self.latency[j] = s.lat_val[j];
            let (norm, pen, miss) = objective_terms(s.lat_val[j], self.ev.deadline_s[j]);
            self.obj_norm[j] = norm;
            self.obj_pen[j] = pen;
            self.obj_missed[j] = miss;
            self.device_energy[j] = s.de_val[j];
            self.total_energy[j] = s.te_val[j];
        }
        self.objective = s.objective;
        self.expected_misses = s.misses;
    }

    fn commit(&mut self, mv: Move) -> f64 {
        let mut s = std::mem::take(&mut self.scratch);
        self.compute_patch(mv, &mut s);
        self.apply(mv, &s);
        self.scratch = s;
        #[cfg(feature = "eval-xcheck")]
        self.assert_matches_fresh();
        self.objective
    }

    /// Switch stream `k` to plan `idx` and patch the caches. Returns the
    /// new objective.
    pub fn commit_plan(&mut self, k: usize, idx: usize) -> f64 {
        self.commit(Move::Plan { k, idx })
    }

    /// Move stream `k` to server `srv` and patch the caches. Returns the
    /// new objective.
    pub fn commit_move(&mut self, k: usize, srv: usize) -> f64 {
        self.commit(Move::Server { k, srv })
    }

    /// Adopt a whole placement vector. Few changed coordinates are
    /// committed as individual moves; many trigger one rebuild — both
    /// paths land on identical bits (state is a pure function of the
    /// assignment).
    pub fn set_placement(&mut self, new_placement: &[usize]) -> f64 {
        let n = self.placement.len();
        assert_eq!(new_placement.len(), n);
        let changed = (0..n)
            .filter(|&k| new_placement[k] != self.placement[k])
            .count();
        if changed == 0 {
            return self.objective;
        }
        // Each move re-solves ~2 servers + 1 AP; a rebuild solves all of
        // them once.
        if changed * 3 >= self.ev.server_caps.len() + self.ev.num_aps {
            self.placement.copy_from_slice(new_placement);
            self.rebuild();
        } else {
            for (k, &srv) in new_placement.iter().enumerate() {
                if srv != self.placement[k] {
                    self.commit_move(k, srv);
                }
            }
        }
        self.objective
    }

    /// Adopt a whole assignment (plans + placement), incrementally when
    /// the diff is small, by rebuild otherwise.
    pub fn reconfigure(&mut self, plan_idx: &[usize], placement: &[usize]) -> f64 {
        let n = self.plan_idx.len();
        assert_eq!(plan_idx.len(), n);
        assert_eq!(placement.len(), n);
        let diff = (0..n)
            .filter(|&k| plan_idx[k] != self.plan_idx[k] || placement[k] != self.placement[k])
            .count();
        if diff * 3 >= self.ev.server_caps.len() + self.ev.num_aps + self.ev.num_devices {
            self.plan_idx.copy_from_slice(plan_idx);
            self.placement.copy_from_slice(placement);
            self.rebuild();
        } else {
            for (k, &idx) in plan_idx.iter().enumerate() {
                if idx != self.plan_idx[k] {
                    self.commit_plan(k, idx);
                }
            }
            self.set_placement(placement);
        }
        self.objective
    }

    /// Snapshot the cached pricing as an [`EvalResult`].
    pub fn result(&self) -> EvalResult {
        let n = self.latency.len();
        EvalResult {
            latency_s: self.latency.clone(),
            accuracy: (0..n).map(|k| self.plan(k).exp_accuracy).collect(),
            bandwidth_shares: self.bandwidth_shares.clone(),
            compute_shares: self.compute_shares.clone(),
            objective: self.objective,
            expected_misses: self.expected_misses,
            device_energy_j: self.device_energy.clone(),
            total_energy_j: self.total_energy.clone(),
        }
    }

    /// Consume the context into an [`EvalResult`] without copying caches.
    pub fn into_result(mut self) -> EvalResult {
        let n = self.latency.len();
        let accuracy = (0..n).map(|k| self.plan(k).exp_accuracy).collect();
        EvalResult {
            latency_s: std::mem::take(&mut self.latency),
            accuracy,
            bandwidth_shares: std::mem::take(&mut self.bandwidth_shares),
            compute_shares: std::mem::take(&mut self.compute_shares),
            objective: self.objective,
            expected_misses: self.expected_misses,
            device_energy_j: std::mem::take(&mut self.device_energy),
            total_energy_j: std::mem::take(&mut self.total_energy),
        }
    }

    /// Oracle cross-check: every cache must match a fresh full rebuild of
    /// the same assignment, bit for bit. Used by the property tests and,
    /// under the `eval-xcheck` feature, after every commit.
    pub fn assert_matches_fresh(&self) {
        let fresh = EvalContext::new(self.ev, self.assignment(), self.policies);
        assert_eq!(
            self.objective.to_bits(),
            fresh.objective.to_bits(),
            "objective drifted: cached {} vs fresh {}",
            self.objective,
            fresh.objective
        );
        assert_eq!(self.expected_misses, fresh.expected_misses);
        for k in 0..self.latency.len() {
            assert_eq!(
                self.latency[k].to_bits(),
                fresh.latency[k].to_bits(),
                "latency[{k}] drifted: {} vs {}",
                self.latency[k],
                fresh.latency[k]
            );
            assert_eq!(
                self.compute_shares[k].to_bits(),
                fresh.compute_shares[k].to_bits()
            );
            assert_eq!(
                self.bandwidth_shares[k].to_bits(),
                fresh.bandwidth_shares[k].to_bits()
            );
            assert_eq!(
                self.device_energy[k].to_bits(),
                fresh.device_energy[k].to_bits()
            );
            assert_eq!(
                self.total_energy[k].to_bits(),
                fresh.total_energy[k].to_bits()
            );
        }
        for d in 0..self.dev_wait.len() {
            assert_eq!(self.dev_wait[d].to_bits(), fresh.dev_wait[d].to_bits());
        }
        assert_eq!(self.ap_offload, fresh.ap_offload);
        assert_eq!(self.server_members, fresh.server_members);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn context(cfg: &ScenarioConfig) -> (Evaluator, Assignment) {
        let problem = cfg.build();
        let ev = Evaluator::new(&problem, None);
        let asg = Assignment {
            plan_idx: vec![0; ev.num_streams()],
            placement: (0..ev.num_streams())
                .map(|k| k % ev.num_servers())
                .collect(),
        };
        (ev, asg)
    }

    fn small() -> ScenarioConfig {
        ScenarioConfig {
            num_aps: 2,
            devices_per_ap: 3,
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn fresh_context_matches_evaluator() {
        let cfg = small();
        let (ev, asg) = context(&cfg);
        let full = ev.evaluate(&asg, AllocPolicies::optimal());
        let ctx = EvalContext::new(&ev, asg, AllocPolicies::optimal());
        assert_eq!(full.objective.to_bits(), ctx.objective().to_bits());
        let r = ctx.result();
        for k in 0..r.latency_s.len() {
            assert_eq!(full.latency_s[k].to_bits(), r.latency_s[k].to_bits());
        }
    }

    #[test]
    fn delta_trial_matches_fresh_evaluate_bitwise() {
        let cfg = small();
        let (ev, asg) = context(&cfg);
        let ctx = EvalContext::new(&ev, asg.clone(), AllocPolicies::optimal());
        let mut s = DeltaScratch::default();
        for k in 0..ev.num_streams() {
            for idx in 0..ev.menu(k).len() {
                let delta = ctx.evaluate_delta(k, idx, &mut s);
                let mut probe = asg.clone();
                probe.plan_idx[k] = idx;
                let fresh = ev.evaluate(&probe, AllocPolicies::optimal()).objective;
                assert_eq!(
                    delta.to_bits(),
                    fresh.to_bits(),
                    "plan trial ({k},{idx}): {delta} vs {fresh}"
                );
            }
            for srv in 0..ev.num_servers() {
                let delta = ctx.evaluate_move(k, srv, &mut s);
                let mut probe = asg.clone();
                probe.placement[k] = srv;
                let fresh = ev.evaluate(&probe, AllocPolicies::optimal()).objective;
                assert_eq!(
                    delta.to_bits(),
                    fresh.to_bits(),
                    "move trial ({k},{srv}): {delta} vs {fresh}"
                );
            }
        }
    }

    #[test]
    fn commits_stay_bit_identical_to_rebuild() {
        let cfg = small();
        let (ev, asg) = context(&cfg);
        let mut ctx = EvalContext::new(&ev, asg, AllocPolicies::optimal());
        // A deterministic little walk: flip plans and move servers.
        for k in 0..ev.num_streams() {
            let idx = (k + 1) % ev.menu(k).len();
            ctx.commit_plan(k, idx);
            ctx.assert_matches_fresh();
            let srv = (k + 1) % ev.num_servers();
            ctx.commit_move(k, srv);
            ctx.assert_matches_fresh();
        }
    }

    #[test]
    fn score_menu_matches_individual_trials() {
        let cfg = small();
        let (ev, asg) = context(&cfg);
        let ctx = EvalContext::new(&ev, asg, AllocPolicies::optimal());
        let mut s = DeltaScratch::default();
        for k in 0..ev.num_streams() {
            let scores = ctx.score_menu(k);
            assert_eq!(scores.len(), ev.menu(k).len());
            for (idx, &o) in scores.iter().enumerate() {
                let lone = ctx.evaluate_delta(k, idx, &mut s);
                assert_eq!(o.to_bits(), lone.to_bits());
            }
            // The current plan scores exactly the cached objective.
            assert_eq!(scores[ctx.plan_of(k)].to_bits(), ctx.objective().to_bits());
        }
    }

    #[test]
    fn set_placement_rebuild_and_moves_agree() {
        let cfg = small();
        let (ev, asg) = context(&cfg);
        let mut a = EvalContext::new(&ev, asg.clone(), AllocPolicies::optimal());
        let mut b = EvalContext::new(&ev, asg, AllocPolicies::optimal());
        let target: Vec<usize> = (0..ev.num_streams())
            .map(|k| (k + 2) % ev.num_servers())
            .collect();
        // a: one-by-one committed moves; b: forced rebuild.
        for (k, &srv) in target.iter().enumerate() {
            if a.placement()[k] != srv {
                a.commit_move(k, srv);
            }
        }
        b.placement.copy_from_slice(&target);
        b.rebuild();
        assert_eq!(a.objective().to_bits(), b.objective().to_bits());
        a.assert_matches_fresh();
    }
}
