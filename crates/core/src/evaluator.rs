//! Analytic pricing of joint configurations.
//!
//! The search loop cannot afford a discrete-event simulation per candidate,
//! so configurations are priced analytically: exact expected service times
//! (roofline device compute, mean-rate transmission, shared-capacity edge
//! compute) plus queueing corrections — Pollaczek–Khinchine M/G/1 waiting
//! on the device FIFO (the service second moment comes from the exact exit
//! mixture), M/D/1 on the uplink, and M/G/1-PS response `s/(1−ρ)` on the
//! per-stream edge slice. The simulator (`scalpel-sim`) is the ground truth
//! the experiments report; F14 quantifies the analytic model's residual
//! error against it.

use crate::problem::JointProblem;
use scalpel_alloc::bandwidth_alloc::BandwidthPolicy;
use scalpel_alloc::compute_alloc::ComputePolicy;
use scalpel_models::{ExitHead, LatencyModel};
use scalpel_surgery::candidates::{self, CandidateConfig, CandidatePlan, ReferenceEnv};
use scalpel_surgery::SurgeryPlan;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Utilization is clamped here before the `1/(1−ρ)` correction so an
/// overloaded stage prices as "very bad" rather than infinite/negative.
pub(crate) const RHO_CAP: f64 = 0.99;

/// Radio power while transmitting, watts (Wi-Fi-class uplink).
pub(crate) const TX_WATTS: f64 = 0.8;

/// Allocation policies used when pricing / compiling a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocPolicies {
    /// Per-server compute policy.
    pub compute: ComputePolicy,
    /// Per-AP bandwidth policy.
    pub bandwidth: BandwidthPolicy,
}

impl AllocPolicies {
    /// The paper's allocation: deadline-aware on both resources.
    pub fn optimal() -> Self {
        Self {
            compute: ComputePolicy::DeadlineAware,
            bandwidth: BandwidthPolicy::DeadlineAware,
        }
    }

    /// Static equal shares on both resources (baselines).
    pub fn equal() -> Self {
        Self {
            compute: ComputePolicy::Equal,
            bandwidth: BandwidthPolicy::Equal,
        }
    }
}

/// One plan of one stream, fully priced in that stream's environment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanPricing {
    /// The plan itself.
    pub plan: SurgeryPlan,
    /// Device seconds to complete at each exit (ascending).
    pub dev_to_exit: Vec<f64>,
    /// Device seconds when no exit fires.
    pub dev_full: f64,
    /// Expected device seconds per request.
    pub exp_dev: f64,
    /// Second moment `E[S²]` of the device-service exit mixture (the PK
    /// numerator ingredient), precomputed so stage-1 pricing never
    /// re-derives it per evaluate.
    pub es2: f64,
    /// Transmission seconds at full AP spectrum (per offloaded request).
    pub tx_full_s: f64,
    /// Bytes on the wire (per offloaded request).
    pub tx_bytes: f64,
    /// Edge FLOPs (per offloaded request).
    pub edge_flops: f64,
    /// Probability a request reaches the edge.
    pub remain: f64,
    /// Exit behavior.
    pub behavior: scalpel_models::ExitBehavior,
    /// Conditional accuracy per exit.
    pub acc_at_exit: Vec<f64>,
    /// Full-path accuracy.
    pub acc_full: f64,
    /// Expected accuracy.
    pub exp_accuracy: f64,
}

impl PlanPricing {
    /// Whether the plan keeps everything on the device.
    pub fn is_device_only(&self) -> bool {
        self.remain == 0.0 || (self.tx_bytes == 0.0 && self.edge_flops == 0.0)
    }
}

/// A joint decision: per-stream plan index (into the menus) and server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Plan choice per stream (index into `Evaluator::menu(k)`).
    pub plan_idx: Vec<usize>,
    /// Server per stream (ignored for device-only plans).
    pub placement: Vec<usize>,
}

/// Priced outcome of a configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalResult {
    /// Expected end-to-end latency per stream, seconds.
    pub latency_s: Vec<f64>,
    /// Expected accuracy per stream.
    pub accuracy: Vec<f64>,
    /// Bandwidth share per stream (of its AP).
    pub bandwidth_shares: Vec<f64>,
    /// Compute share per stream (of its server).
    pub compute_shares: Vec<f64>,
    /// Scalar objective (lower is better).
    pub objective: f64,
    /// Streams whose *expected* latency exceeds their deadline.
    pub expected_misses: usize,
    /// Expected *device-side* energy per request, joules (compute on the
    /// device + radio transmission).
    pub device_energy_j: Vec<f64>,
    /// Expected total energy per request, joules (device + edge compute).
    pub total_energy_j: Vec<f64>,
}

/// Prices configurations of one [`JointProblem`].
pub struct Evaluator {
    /// Per-stream candidate menus.
    pub(crate) menus: Vec<Vec<PlanPricing>>,
    /// Mean full-spectrum uplink rate per stream, bits/s.
    pub(crate) link_rate_bps: Vec<f64>,
    /// Request rate per stream.
    pub(crate) rate_hz: Vec<f64>,
    /// Deadline per stream.
    pub(crate) deadline_s: Vec<f64>,
    /// Device of each stream / AP of each stream.
    pub(crate) device_of: Vec<usize>,
    pub(crate) ap_of: Vec<usize>,
    /// Device board power per stream, watts (for energy accounting).
    pub(crate) device_watts: Vec<f64>,
    /// Edge energy per FLOP per server, joules.
    pub(crate) server_jpf: Vec<f64>,
    /// rtt of each stream's AP.
    pub(crate) rtt_s: Vec<f64>,
    /// Server capacities.
    pub(crate) server_caps: Vec<f64>,
    pub(crate) num_aps: usize,
    /// Number of devices in the topology.
    pub(crate) num_devices: usize,
    /// Streams hosted by each device, ascending (stage-1 grouping).
    pub(crate) device_members: Vec<Vec<usize>>,
    /// Streams attached to each AP, ascending (stage-2/3 grouping).
    pub(crate) ap_members: Vec<Vec<usize>>,
    /// Mean streams per server, the construction-time fair-share proxy
    /// for edge time inside bandwidth demands.
    pub(crate) streams_per_server: f64,
}

impl Evaluator {
    /// Fallible constructor: strict ingest validation first, then menu
    /// construction, rejecting any stream whose candidate menu comes out
    /// empty (accuracy floor unsatisfiable at every cut/exit setting).
    /// Use this for inputs that did not already pass
    /// [`crate::validate::validate_problem`].
    pub fn try_new(
        problem: &JointProblem,
        menu_cfg: Option<CandidateConfig>,
    ) -> Result<Self, crate::validate::ProblemError> {
        crate::validate::check_strict(problem)?;
        let ev = Self::new(problem, menu_cfg);
        for (k, menu) in ev.menus.iter().enumerate() {
            if menu.is_empty() {
                return Err(crate::validate::ProblemError::EmptyExitMenu { stream: k });
            }
        }
        Ok(ev)
    }

    /// Build menus and pricing caches for a problem. `menu_cfg` controls
    /// candidate generation; pass `None` for the defaults.
    pub fn new(problem: &JointProblem, menu_cfg: Option<CandidateConfig>) -> Self {
        let n = problem.streams.len();
        let total_cap: f64 = problem
            .cluster
            .servers
            .iter()
            .map(|s| s.proc.flops_per_sec)
            .sum();
        let mean_cap = total_cap / problem.cluster.servers.len() as f64;
        let streams_per_server = (n as f64 / problem.cluster.servers.len() as f64).max(1.0);
        // Latency models cached per (model, device-proc name).
        let mut lat_cache: HashMap<(usize, String), LatencyModel> = HashMap::new();
        let mut menus = Vec::with_capacity(n);
        let mut link_rate_bps = Vec::with_capacity(n);
        let by_ap = problem.streams_by_ap();
        // Mean full-spectrum link rate cached per *device*: `mean_rate_bps`
        // walks the fading model (log2/powf), and streams sharing a device
        // share its link, so the transcendentals run once per device.
        let mut dev_rate_bps: Vec<Option<f64>> = vec![None; problem.cluster.devices.len()];
        for spec in problem.streams.iter() {
            let dev = &problem.cluster.devices[spec.device];
            let rate = *dev_rate_bps[spec.device]
                .get_or_insert_with(|| problem.cluster.link(spec.device).mean_rate_bps(1.0));
            link_rate_bps.push(rate);
            let peers_on_ap = by_ap[dev.ap].len().max(1) as f64;
            let model = &problem.models[spec.model];
            let lat = lat_cache
                .entry((spec.model, dev.proc.name.clone()))
                .or_insert_with(|| LatencyModel::new(model, dev.proc.clone()))
                .clone();
            let env = ReferenceEnv {
                device_sec_per_flop: 1.0 / dev.proc.flops_per_sec,
                tx_sec_per_byte: 8.0 * peers_on_ap / rate,
                edge_sec_per_flop: streams_per_server / mean_cap,
                rtt_s: problem.cluster.aps[dev.ap].rtt_s,
            };
            let cfg = CandidateConfig {
                accuracy_floor: spec.accuracy_floor,
                acc_full: problem.model_accuracy[spec.model],
                difficulty: problem.difficulty.clone(),
                ..menu_cfg.clone().unwrap_or_default()
            };
            let raw = candidates::generate(model, &env, &cfg);
            let mut menu: Vec<PlanPricing> = raw
                .into_iter()
                .map(|c| Self::price_plan(model, &lat, &cfg, c))
                .collect();
            // Fill the per-plan full-spectrum transmission time now that
            // the stream's link rate is known, so the hot path reads a
            // cached field instead of re-dividing per demand gather.
            for plan in &mut menu {
                plan.tx_full_s = if plan.tx_bytes == 0.0 {
                    0.0
                } else {
                    plan.tx_bytes * 8.0 / rate
                };
            }
            menus.push(menu);
        }
        let device_of: Vec<usize> = problem.streams.iter().map(|s| s.device).collect();
        let num_devices = problem.cluster.devices.len();
        let mut device_members = vec![Vec::new(); num_devices];
        for (k, &d) in device_of.iter().enumerate() {
            device_members[d].push(k);
        }
        Self {
            menus,
            link_rate_bps,
            rate_hz: (0..n).map(|k| problem.rate_of(k)).collect(),
            deadline_s: problem.streams.iter().map(|s| s.deadline_s).collect(),
            device_of,
            ap_of: problem
                .streams
                .iter()
                .map(|s| problem.cluster.devices[s.device].ap)
                .collect(),
            device_watts: problem
                .streams
                .iter()
                .map(|s| {
                    let p = &problem.cluster.devices[s.device].proc;
                    p.joules_per_flop * p.flops_per_sec
                })
                .collect(),
            server_jpf: problem
                .cluster
                .servers
                .iter()
                .map(|s| s.proc.joules_per_flop)
                .collect(),
            rtt_s: problem
                .streams
                .iter()
                .map(|s| problem.cluster.aps[problem.cluster.devices[s.device].ap].rtt_s)
                .collect(),
            server_caps: problem
                .cluster
                .servers
                .iter()
                .map(|s| s.proc.flops_per_sec)
                .collect(),
            num_aps: problem.cluster.aps.len(),
            num_devices,
            device_members,
            ap_members: by_ap,
            streams_per_server,
        }
    }

    /// Price one candidate plan on one stream's device.
    fn price_plan(
        model: &scalpel_models::ModelGraph,
        lat: &LatencyModel,
        cfg: &CandidateConfig,
        c: CandidatePlan,
    ) -> PlanPricing {
        let scale = c.plan.prune.flops_scale();
        let classes = model.output_shape().c;
        let mut dev_to_exit = Vec::with_capacity(c.plan.exits.len());
        let mut head_s = 0.0;
        for &(host, _) in &c.plan.exits {
            let feature = model.shape(host);
            let head = ExitHead::standard(feature, classes);
            let head_bytes = feature.bytes(model.dtype()) as u64 + head.params * 4;
            head_s += lat.extra_kernel_seconds(head.flops, head_bytes);
            dev_to_exit.push(lat.prefix_seconds(host + 1) * scale + head_s);
        }
        let dev_full = lat.prefix_seconds(c.plan.cut) * scale + head_s;
        let mut exp_dev = c.profile.behavior.remain_prob * dev_full;
        for (i, &p) in c.profile.behavior.exit_probs.iter().enumerate() {
            exp_dev += p * dev_to_exit[i];
        }
        // Second moment of the same mixture, accumulated in the exact
        // order the evaluator previously used per call (bit-identical).
        let mut es2 = c.profile.behavior.remain_prob * dev_full * dev_full;
        for (i, &q) in c.profile.behavior.exit_probs.iter().enumerate() {
            es2 += q * dev_to_exit[i] * dev_to_exit[i];
        }
        let _ = cfg;
        PlanPricing {
            dev_to_exit,
            dev_full,
            exp_dev,
            es2,
            tx_full_s: 0.0, // filled per stream below (depends on the link)
            tx_bytes: c.profile.tx_bytes,
            edge_flops: c.profile.edge_flops,
            remain: c.profile.remain_prob,
            behavior: c.profile.behavior.clone(),
            acc_at_exit: c.profile.acc_at_exit.clone(),
            acc_full: c.profile.acc_full,
            exp_accuracy: c.profile.expected_accuracy,
            plan: c.plan,
        }
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.menus.len()
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.server_caps.len()
    }

    /// Server capacities (FLOP/s).
    pub fn server_caps(&self) -> &[f64] {
        &self.server_caps
    }

    /// The plan menu of stream `k`.
    pub fn menu(&self, k: usize) -> &[PlanPricing] {
        &self.menus[k]
    }

    /// Mean full-spectrum uplink rate of stream `k`, bits/s.
    pub fn link_rate_bps(&self, k: usize) -> f64 {
        self.link_rate_bps[k]
    }

    /// Deadline of stream `k`.
    pub fn deadline(&self, k: usize) -> f64 {
        self.deadline_s[k]
    }

    /// Request rate of stream `k`.
    pub fn rate(&self, k: usize) -> f64 {
        self.rate_hz[k]
    }

    /// AP of stream `k`'s device.
    pub fn ap_of(&self, k: usize) -> usize {
        self.ap_of[k]
    }

    /// Number of APs in the topology.
    pub fn num_aps(&self) -> usize {
        self.num_aps
    }

    /// Number of streams sharing stream `k`'s AP (including `k`).
    /// O(1): per-AP membership is precomputed at construction.
    pub fn peers_on_same_ap(&self, k: usize) -> usize {
        self.ap_members[self.ap_of[k]].len().max(1)
    }

    /// Device hosting stream `k`.
    pub fn device_of(&self, k: usize) -> usize {
        self.device_of[k]
    }

    /// Number of devices in the topology.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Streams hosted on device `d`, ascending.
    pub fn device_members(&self, d: usize) -> &[usize] {
        &self.device_members[d]
    }

    /// Streams attached to AP `ap`, ascending.
    pub fn ap_members(&self, ap: usize) -> &[usize] {
        &self.ap_members[ap]
    }

    /// Transmission seconds at full spectrum for plan `p` of stream `k`.
    /// Reads the value precomputed at menu construction (`p` must come
    /// from stream `k`'s menu, which every caller satisfies); `k` is kept
    /// in the signature as the provenance reminder.
    pub fn tx_full_seconds(&self, k: usize, p: &PlanPricing) -> f64 {
        let _ = k;
        p.tx_full_s
    }

    /// Price a configuration under the given allocation policies.
    ///
    /// Implemented as a fresh [`crate::eval_context::EvalContext`] rebuild,
    /// so the full evaluator and the incremental delta path share one
    /// pricing implementation — a from-scratch context *is* the oracle the
    /// delta path is checked against.
    pub fn evaluate(&self, asg: &Assignment, policies: AllocPolicies) -> EvalResult {
        crate::eval_context::EvalContext::new(self, asg.clone(), policies).into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::problem::JointProblem;

    fn small_problem() -> JointProblem {
        let cfg = ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 4,
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        };
        cfg.build()
    }

    fn default_assignment(ev: &Evaluator) -> Assignment {
        Assignment {
            plan_idx: vec![0; ev.num_streams()],
            placement: (0..ev.num_streams())
                .map(|k| k % ev.num_servers())
                .collect(),
        }
    }

    #[test]
    fn evaluator_builds_nonempty_menus() {
        let p = small_problem();
        let ev = Evaluator::new(&p, None);
        assert_eq!(ev.num_streams(), 4);
        for k in 0..4 {
            assert!(!ev.menu(k).is_empty(), "stream {k}");
            for plan in ev.menu(k) {
                assert!(plan.exp_dev >= 0.0);
                assert!(plan.exp_accuracy > 0.5);
            }
        }
    }

    #[test]
    fn evaluate_produces_finite_positive_latencies() {
        let p = small_problem();
        let ev = Evaluator::new(&p, None);
        let r = ev.evaluate(&default_assignment(&ev), AllocPolicies::optimal());
        for (k, &l) in r.latency_s.iter().enumerate() {
            assert!(l.is_finite() && l > 0.0, "stream {k}: {l}");
        }
        assert!(r.objective.is_finite());
    }

    #[test]
    fn optimal_allocation_not_worse_than_equal_on_sensible_plans() {
        // On a *sensible* configuration (each stream's lowest-latency-proxy
        // plan, the optimizer's starting point) the deadline-aware
        // allocation must price at least as well as static equal shares on
        // the objective it optimizes. (On pathological plan choices — e.g.
        // a 9-second device-only VGG prefix — no allocation can help and
        // miss counts may tie arbitrarily, so the guarantee is stated on
        // the objective, not raw miss counts.)
        let p = small_problem();
        let ev = Evaluator::new(&p, None);
        let asg = crate::optimizer::initial_assignment(
            &ev,
            scalpel_alloc::PlacementStrategy::BestResponse,
        );
        let opt = ev.evaluate(&asg, AllocPolicies::optimal());
        let eq = ev.evaluate(&asg, AllocPolicies::equal());
        assert!(
            opt.objective <= eq.objective * 1.02 + 1e-9,
            "optimal {} vs equal {}",
            opt.objective,
            eq.objective
        );
    }

    #[test]
    fn shares_live_on_simplices() {
        let p = small_problem();
        let ev = Evaluator::new(&p, None);
        let r = ev.evaluate(&default_assignment(&ev), AllocPolicies::optimal());
        let bw: f64 = r.bandwidth_shares.iter().sum();
        assert!(bw <= 1.0 + 1e-6, "bandwidth over-allocated: {bw}");
        let mut per_server = vec![0.0; ev.num_servers()];
        let asg = default_assignment(&ev);
        for k in 0..ev.num_streams() {
            per_server[asg.placement[k]] += r.compute_shares[k];
        }
        for (s, &c) in per_server.iter().enumerate() {
            assert!(c <= 1.0 + 1e-6, "server {s} over-allocated: {c}");
        }
    }

    #[test]
    fn better_plans_lower_the_objective() {
        // The menu's first entry is arbitrary; check that *some* other
        // selection changes (usually improves) the objective, i.e. plan
        // choice matters to the evaluator.
        let p = small_problem();
        let ev = Evaluator::new(&p, None);
        let base = ev.evaluate(&default_assignment(&ev), AllocPolicies::optimal());
        let mut best = base.objective;
        for k in 0..ev.num_streams() {
            for idx in 0..ev.menu(k).len() {
                let mut asg = default_assignment(&ev);
                asg.plan_idx[k] = idx;
                let r = ev.evaluate(&asg, AllocPolicies::optimal());
                best = best.min(r.objective);
            }
        }
        assert!(best < base.objective * 0.999 || ev.menu(0).len() == 1);
    }

    #[test]
    fn device_only_plans_get_no_shares() {
        let p = small_problem();
        let ev = Evaluator::new(&p, None);
        // find a device-only plan in any menu
        for k in 0..ev.num_streams() {
            if let Some(idx) = ev.menu(k).iter().position(|pl| pl.is_device_only()) {
                let mut asg = default_assignment(&ev);
                asg.plan_idx[k] = idx;
                let r = ev.evaluate(&asg, AllocPolicies::optimal());
                assert_eq!(r.bandwidth_shares[k], 0.0);
                assert_eq!(r.compute_shares[k], 0.0);
                return;
            }
        }
        // No device-only plan in any menu is also acceptable (heavy
        // models on weak devices); nothing to assert then.
    }

    #[test]
    fn latency_matches_pk_hand_computation() {
        // Reconstruct the evaluator's own latency formula for one stream
        // from its public pieces: PK device wait over the device's streams,
        // M/D/1 uplink wait, PS edge response.
        let problem = small_problem();
        let ev = Evaluator::new(&problem, None);
        let asg = default_assignment(&ev);
        let r = ev.evaluate(&asg, AllocPolicies::optimal());
        for k in 0..ev.num_streams() {
            let p = &ev.menu(k)[asg.plan_idx[k]];
            // Device PK wait: all streams on the same device.
            let dev = problem.streams[k].device;
            let mut lam_es2 = 0.0;
            let mut rho = 0.0;
            for j in 0..ev.num_streams() {
                if problem.streams[j].device != dev {
                    continue;
                }
                let pj = &ev.menu(j)[asg.plan_idx[j]];
                let mut es2 = pj.behavior.remain_prob * pj.dev_full * pj.dev_full;
                for (i, &q) in pj.behavior.exit_probs.iter().enumerate() {
                    es2 += q * pj.dev_to_exit[i] * pj.dev_to_exit[i];
                }
                lam_es2 += ev.rate(j) * es2;
                rho += ev.rate(j) * pj.exp_dev;
            }
            let w_dev = lam_es2 / (2.0 * (1.0 - rho.min(0.99)));
            let mut expect = 0.0;
            for (i, &q) in p.behavior.exit_probs.iter().enumerate() {
                expect += q * (w_dev + p.dev_to_exit[i]);
            }
            let mut full = w_dev + p.dev_full;
            if !p.is_device_only() {
                let tx = ev.tx_full_seconds(k, p) / r.bandwidth_shares[k].max(1e-9);
                let lam_tx = ev.rate(k) * p.remain;
                let rho_tx = (lam_tx * tx).min(0.99);
                let w_tx = lam_tx * tx * tx / (2.0 * (1.0 - rho_tx));
                let srv = asg.placement[k];
                let edge = p.edge_flops / (ev.server_caps()[srv] * r.compute_shares[k].max(1e-9));
                let rho_edge = (ev.rate(k) * p.remain * edge).min(0.99);
                full += w_tx + tx + 1e-3 + edge / (1.0 - rho_edge); // rtt 2ms / 2
            }
            expect += p.behavior.remain_prob * full;
            assert!(
                (r.latency_s[k] - expect).abs() < 1e-9 * expect.max(1.0),
                "stream {k}: {} vs hand {expect}",
                r.latency_s[k]
            );
        }
    }

    #[test]
    fn energy_accounting_is_positive_and_split_correctly() {
        let p = small_problem();
        let ev = Evaluator::new(&p, None);
        let r = ev.evaluate(&default_assignment(&ev), AllocPolicies::optimal());
        for k in 0..ev.num_streams() {
            assert!(r.device_energy_j[k] >= 0.0);
            assert!(
                r.total_energy_j[k] >= r.device_energy_j[k] - 1e-12,
                "total < device for stream {k}"
            );
        }
    }

    #[test]
    fn energy_matches_hand_computation() {
        // device energy = device compute (service × board power) + radio
        // (remain × tx seconds at the allocated share × TX_WATTS); total
        // adds the edge compute at the server's joules/FLOP.
        let problem = small_problem();
        let ev = Evaluator::new(&problem, None);
        let asg = default_assignment(&ev);
        let r = ev.evaluate(&asg, AllocPolicies::optimal());
        for k in 0..ev.num_streams() {
            let p = &ev.menu(k)[asg.plan_idx[k]];
            let dev = &problem.cluster.devices[problem.streams[k].device].proc;
            let watts = dev.joules_per_flop * dev.flops_per_sec;
            let mut expect_dev = p.exp_dev * watts;
            let mut expect_tot = expect_dev;
            if !p.is_device_only() {
                let tx = ev.tx_full_seconds(k, p) / r.bandwidth_shares[k].max(1e-9);
                let radio = p.remain * tx * 0.8;
                expect_dev += radio;
                let srv = asg.placement[k];
                let jpf = problem.cluster.servers[srv].proc.joules_per_flop;
                expect_tot += radio + p.remain * p.edge_flops * jpf;
            }
            assert!(
                (r.device_energy_j[k] - expect_dev).abs() < 1e-9 * expect_dev.max(1.0),
                "stream {k}: device {} vs {}",
                r.device_energy_j[k],
                expect_dev
            );
            assert!(
                (r.total_energy_j[k] - expect_tot).abs() < 1e-9 * expect_tot.max(1.0),
                "stream {k}: total {} vs {}",
                r.total_energy_j[k],
                expect_tot
            );
        }
    }

    #[test]
    fn higher_load_prices_worse() {
        let cfg_lo = ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 4,
            arrival_rate_hz: 2.0,
            ..ScenarioConfig::default()
        };
        let mut cfg_hi = cfg_lo.clone();
        cfg_hi.arrival_rate_hz = 16.0;
        let ev_lo = Evaluator::new(&cfg_lo.build(), None);
        let ev_hi = Evaluator::new(&cfg_hi.build(), None);
        let r_lo = ev_lo.evaluate(&default_assignment(&ev_lo), AllocPolicies::optimal());
        let r_hi = ev_hi.evaluate(&default_assignment(&ev_hi), AllocPolicies::optimal());
        assert!(r_hi.objective > r_lo.objective);
    }
}
