//! # scalpel-core — the joint optimizer
//!
//! Ties the substrates together into the paper's contribution: **joint**
//! optimization of model surgery (which cut, which exits, how much pruning
//! — per stream) and resource allocation (which server, what compute share,
//! what spectrum share) for latency-sensitive DNN inference in a
//! heterogeneous edge.
//!
//! * [`problem`] — the joint problem instance (topology + streams + knobs);
//! * [`config`] — scenario generation with the evaluation's default
//!   parameters (Table 2) and every sweep axis;
//! * [`evaluator`] — fast analytic pricing of a configuration (utilization-
//!   corrected expected latency), used inside the search loop;
//! * [`compiler`] — lowering a solution to `scalpel_sim::CompiledStream`s;
//! * [`optimizer`] — coordinate descent and Gibbs-sampling searches over
//!   the per-stream plan menus, with exact inner allocation, plus an
//!   exhaustive reference for small instances;
//! * [`baselines`] — DeviceOnly / EdgeOnly / Neurosurgeon / FixedExit /
//!   SurgeryOnly / AllocOnly / Joint;
//! * [`runner`] — executes solutions in the discrete-event simulator
//!   (multi-seed, rayon-parallel);
//! * [`shard`] — fleet-scale sharded solving: partition the topology into
//!   AP/server shards, solve each in parallel, reconcile cross-shard
//!   placements by best response, polish globally;
//! * [`service`] — the long-lived planning service: churn-driven
//!   replanning behind a switching-hysteresis governor, with
//!   checkpoint/restore and a degraded-mode ladder.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod admission_report;
pub mod baselines;
pub mod compiler;
pub mod config;
pub mod distributed;
pub mod eval_context;
pub mod evaluator;
pub mod online;
pub mod optimizer;
pub mod problem;
pub mod runner;
pub mod service;
pub mod shard;
pub mod validate;

pub use baselines::{solve_with, Method};
pub use config::{ScenarioConfig, ServerMix};
pub use eval_context::{DeltaScratch, EvalContext};
pub use evaluator::{EvalResult, Evaluator};
pub use online::{DetectorConfig, FaultDetector, FaultDiagnosis, OnlineController};
pub use optimizer::{
    Budget, BudgetSpent, EvalMode, OptimizerConfig, SearchTrace, Solution, SolveOutcome,
};
pub use problem::{JointProblem, StreamSpec};
pub use runner::{
    aggregate_sharded, run_sharded_seeds, run_solution, run_solution_seeds,
    run_solution_seeds_faulted, run_solution_seeds_recovered, MethodOutcome,
};
pub use service::{
    FleetState, GovernorConfig, GovernorDecision, PlanDelta, PlanningService, ServiceConfig,
    ServiceStatus, SwitchGovernor, TickOutcome,
};
pub use shard::{
    partition, solve_sharded, Reachability, Shard, ShardConfig, ShardPlan, ShardSolve,
    ShardedOutcome,
};
pub use validate::{validate_problem, ProblemError, RepairAction, RepairReport, ValidationPolicy};
