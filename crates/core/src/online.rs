//! Online re-optimization for dynamic edges.
//!
//! Edge conditions move at runtime — links degrade, devices join, servers
//! drain. The controller keeps the current solution and, when the
//! environment changes, *warm-starts* the joint search from the previous
//! decisions instead of solving from scratch: previous plans are remapped
//! onto the rebuilt menus by structural signature, placement is kept, and
//! coordinate descent runs from there (usually converging in one sweep).

use crate::evaluator::{Assignment, Evaluator, PlanPricing};
use crate::optimizer::{self, Budget, OptimizerConfig, Solution};
use crate::problem::JointProblem;
use scalpel_sim::{FaultKind, FaultPlan, HealthSnapshot};
use scalpel_surgery::SurgeryPlan;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How one adaptation went.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptReport {
    /// Objective of the stale solution re-priced under the new conditions.
    pub stale_objective: f64,
    /// Objective after re-optimization.
    pub adapted_objective: f64,
    /// Evaluations spent adapting.
    pub evaluations: usize,
    /// Wall-clock milliseconds of the re-solve.
    pub resolve_ms: f64,
    /// Whether the re-solve ran to completion. `false` means the budget
    /// expired and the adopted solution is the best incumbent found —
    /// at worst the remapped previous plan, never anything invalid.
    pub converged: bool,
    /// Streams whose plan changed.
    pub plans_changed: usize,
    /// Streams whose server changed.
    pub placements_changed: usize,
    /// Streams whose previous plan had no structural match in the rebuilt
    /// menu and warm-started from the [`closest_idx`] fallback instead.
    /// Non-zero values mean the warm start was approximate — worth
    /// surfacing as a warning, not silently absorbing.
    pub remap_misses: usize,
}

/// Structural signature used to match plans across rebuilt menus.
fn signature(p: &SurgeryPlan) -> (usize, usize, u8, bool) {
    (
        p.cut,
        p.exits.len(),
        p.prune.flops_scale().to_bits() as u8,
        p.quantize_tx,
    )
}

/// Deterministic nearest-neighbour in plan space: the menu entry whose cut
/// is closest to `old`'s, with ties broken toward matching quantization,
/// then matching prune level, then the lowest index. Never arbitrary — two
/// runs over the same menu always pick the same entry.
pub fn closest_idx(menu: &[PlanPricing], old: &SurgeryPlan) -> usize {
    menu.iter()
        .enumerate()
        .min_by_key(|(i, p)| {
            (
                (p.plan.cut as isize - old.cut as isize).unsigned_abs(),
                (p.plan.quantize_tx != old.quantize_tx) as u8,
                (p.plan.prune != old.prune) as u8,
                *i,
            )
        })
        .map(|(i, _)| i)
        // Validation guarantees non-empty menus; tolerate a bypassed
        // ingest by pointing at index 0 instead of aborting a re-plan.
        .unwrap_or(0)
}

/// Remap an assignment onto a rebuilt evaluator: for each stream, find the
/// menu entry with the old plan's signature (falling back to the closest
/// entry via [`closest_idx`]), and clamp placements to the new server
/// count. Streams with no prior decision warm-start from the entry closest
/// to full offload — the least-committed plan — rather than whatever
/// happens to sit at index 0.
pub fn remap_assignment(old_ev: &Evaluator, new_ev: &Evaluator, asg: &Assignment) -> Assignment {
    remap_assignment_counted(old_ev, new_ev, asg).0
}

/// [`remap_assignment`] plus the number of streams that fell through to
/// the [`closest_idx`] fallback (no exact or signature match in the new
/// menu). The count feeds [`AdaptReport::remap_misses`] and the service
/// status report so approximate warm starts are visible.
pub fn remap_assignment_counted(
    old_ev: &Evaluator,
    new_ev: &Evaluator,
    asg: &Assignment,
) -> (Assignment, usize) {
    let n = new_ev.num_streams().min(old_ev.num_streams());
    let mut plan_idx = Vec::with_capacity(new_ev.num_streams());
    let mut placement = Vec::with_capacity(new_ev.num_streams());
    let mut misses = 0usize;
    for k in 0..new_ev.num_streams() {
        if k < n {
            let old_plan = &old_ev.menu(k)[asg.plan_idx[k]].plan;
            let sig = signature(old_plan);
            let menu = new_ev.menu(k);
            let idx = menu
                .iter()
                .position(|p| p.plan == *old_plan)
                .or_else(|| menu.iter().position(|p| signature(&p.plan) == sig))
                .unwrap_or_else(|| {
                    misses += 1;
                    closest_idx(menu, old_plan)
                });
            plan_idx.push(idx);
            placement.push(asg.placement[k].min(new_ev.num_servers() - 1));
        } else {
            plan_idx.push(closest_idx(new_ev.menu(k), &SurgeryPlan::full_offload()));
            placement.push(k % new_ev.num_servers());
        }
    }
    (
        Assignment {
            plan_idx,
            placement,
        },
        misses,
    )
}

/// Steady-state view of a faulted environment: the problem with every
/// sustained degradation in `plan` applied at its *worst* level — each
/// AP's bandwidth scaled by its deepest `LinkDegrade`, each server's
/// capacity by its deepest `ServerThrottle`. Transient churn (device and
/// AP up/down cycles) is not representable in the static problem and is
/// left to the simulator; what this gives the [`OnlineController`] is the
/// environment to re-solve against when degradations persist.
pub fn faulted_problem(problem: &JointProblem, plan: &FaultPlan) -> JointProblem {
    let mut degraded = problem.clone();
    for ev in &plan.events {
        match ev.kind {
            FaultKind::LinkDegrade { ap, factor } => {
                if let Some(spec) = degraded.cluster.aps.get_mut(ap) {
                    let nominal = problem.cluster.aps[ap].bandwidth_hz;
                    spec.bandwidth_hz = spec.bandwidth_hz.min(nominal * factor);
                }
            }
            FaultKind::ServerThrottle { server, factor } => {
                if let Some(spec) = degraded.cluster.servers.get_mut(server) {
                    let nominal = problem.cluster.servers[server].proc.flops_per_sec;
                    spec.proc.flops_per_sec = spec.proc.flops_per_sec.min(nominal * factor);
                }
            }
            _ => {}
        }
    }
    degraded
}

/// Thresholds for turning simulator telemetry into a re-solve trigger.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// An epoch counts as unhealthy when its SLO miss rate reaches this.
    pub miss_rate_threshold: f64,
    /// …or when it records at least this many retry timeouts.
    pub timeout_threshold: usize,
    /// A target must be breaker-open in at least this many epochs before
    /// the detector derates it (filters single-epoch blips).
    pub sustain_epochs: usize,
    /// Derated capacities never drop below this fraction of nominal, so
    /// the rebuilt problem always stays feasible to price.
    pub derate_floor: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            miss_rate_threshold: 0.5,
            timeout_threshold: 3,
            sustain_epochs: 2,
            derate_floor: 0.1,
        }
    }
}

/// What the detector concluded from a telemetry window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultDiagnosis {
    /// Whether any target was derated — i.e. whether a re-solve is worth
    /// triggering at all.
    pub triggered: bool,
    /// Per-server capacity factor in `[derate_floor, 1]`.
    pub server_derate: Vec<f64>,
    /// Per-AP bandwidth factor in `[derate_floor, 1]`.
    pub ap_derate: Vec<f64>,
    /// Epochs whose miss rate or timeout count crossed the thresholds.
    pub unhealthy_epochs: usize,
}

/// Telemetry-driven fault detection: the closed-loop replacement for the
/// oracle [`faulted_problem`]. The simulator emits [`HealthSnapshot`]s
/// (per-epoch completions, misses, timeouts, and circuit-breaker states);
/// the detector watches those signals and, when a server or AP has been
/// breaker-open for a sustained stretch, derates its capacity in
/// proportion to the fraction of epochs it spent open. The resulting
/// problem is what the [`OnlineController`] warm-starts against — no
/// knowledge of the injected fault schedule is used.
#[derive(Debug, Clone, Default)]
pub struct FaultDetector {
    /// Detection thresholds.
    pub cfg: DetectorConfig,
}

impl FaultDetector {
    /// A detector with the given thresholds.
    pub fn new(cfg: DetectorConfig) -> Self {
        Self { cfg }
    }

    /// Diagnose a telemetry window. Purely observational: derates come
    /// only from breaker states the simulator actually reported, never
    /// from the fault schedule.
    pub fn assess(&self, health: &[HealthSnapshot]) -> FaultDiagnosis {
        let epochs = health.len();
        let n_servers = health
            .iter()
            .map(|h| h.server_open.len())
            .max()
            .unwrap_or(0);
        let n_aps = health.iter().map(|h| h.ap_open.len()).max().unwrap_or(0);
        let derate = |open_epochs: usize| -> f64 {
            if epochs == 0 || open_epochs < self.cfg.sustain_epochs {
                1.0
            } else {
                (1.0 - open_epochs as f64 / epochs as f64).max(self.cfg.derate_floor)
            }
        };
        let server_derate: Vec<f64> = (0..n_servers)
            .map(|s| {
                derate(
                    health
                        .iter()
                        .filter(|h| h.server_open.get(s).copied().unwrap_or(false))
                        .count(),
                )
            })
            .collect();
        let ap_derate: Vec<f64> = (0..n_aps)
            .map(|a| {
                derate(
                    health
                        .iter()
                        .filter(|h| h.ap_open.get(a).copied().unwrap_or(false))
                        .count(),
                )
            })
            .collect();
        let unhealthy_epochs = health
            .iter()
            .filter(|h| {
                h.miss_rate() >= self.cfg.miss_rate_threshold
                    || h.timeouts >= self.cfg.timeout_threshold
            })
            .count();
        let triggered = server_derate
            .iter()
            .chain(&ap_derate)
            .any(|&f| f < 1.0 - 1e-12);
        FaultDiagnosis {
            triggered,
            server_derate,
            ap_derate,
            unhealthy_epochs,
        }
    }

    /// The problem the controller should re-solve against, or `None` when
    /// the telemetry shows nothing sustained enough to act on.
    pub fn degraded_problem(
        &self,
        base: &JointProblem,
        health: &[HealthSnapshot],
    ) -> Option<JointProblem> {
        let d = self.assess(health);
        if !d.triggered {
            return None;
        }
        let mut degraded = base.clone();
        for (ap, &f) in d.ap_derate.iter().enumerate() {
            if let Some(spec) = degraded.cluster.aps.get_mut(ap) {
                spec.bandwidth_hz *= f;
            }
        }
        for (srv, &f) in d.server_derate.iter().enumerate() {
            if let Some(spec) = degraded.cluster.servers.get_mut(srv) {
                spec.proc.flops_per_sec *= f;
            }
        }
        Some(degraded)
    }
}

/// The online controller: owns the current solution for one environment.
pub struct OnlineController {
    solution: Solution,
    cfg: OptimizerConfig,
}

impl OnlineController {
    /// Solve the initial environment from scratch.
    pub fn bootstrap(ev: &Evaluator, cfg: OptimizerConfig) -> Self {
        let solution = optimizer::solve(ev, &cfg);
        Self { solution, cfg }
    }

    /// Rebuild a controller around an externally supplied assignment —
    /// the restore path of a checkpointed service. The assignment is
    /// re-priced on `ev`; no search runs, so this is exactly as cheap and
    /// exactly as deterministic as one evaluation.
    pub fn resume(ev: &Evaluator, cfg: OptimizerConfig, assignment: Assignment) -> Self {
        let result = ev.evaluate(&assignment, cfg.policies);
        Self {
            solution: Solution {
                assignment,
                result,
                trace: Default::default(),
            },
            cfg,
        }
    }

    /// Current solution.
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// React to changed conditions: re-price the stale decisions on the
    /// new evaluator, warm-start descent from them, and adopt the result.
    pub fn adapt(&mut self, old_ev: &Evaluator, new_ev: &Evaluator) -> AdaptReport {
        self.adapt_with_budget(old_ev, new_ev, Budget::UNLIMITED)
    }

    /// [`adapt`](Self::adapt) under a re-planning budget. When the budget
    /// expires mid-descent the controller adopts the best incumbent found
    /// so far — which is never worse than the remapped previous plan — so
    /// replanning under churn degrades gracefully instead of stalling.
    pub fn adapt_with_budget(
        &mut self,
        old_ev: &Evaluator,
        new_ev: &Evaluator,
        budget: Budget,
    ) -> AdaptReport {
        let proposal = self.propose_with_budget(old_ev, new_ev, budget);
        let report = proposal.report.clone();
        self.solution = proposal.solution;
        report
    }

    /// Compute a warm-started replan *without adopting it*: the candidate
    /// solution plus its report. This is the propose half of the
    /// propose/adopt split used by the planning service — a policy layer
    /// (e.g. [`crate::service::SwitchGovernor`]) can veto individual moves
    /// in the candidate before [`adopt`](Self::adopt) commits anything.
    pub fn propose_with_budget(
        &self,
        old_ev: &Evaluator,
        new_ev: &Evaluator,
        budget: Budget,
    ) -> Proposal {
        let (warm, remap_misses) =
            remap_assignment_counted(old_ev, new_ev, &self.solution.assignment);
        let stale = new_ev.evaluate(&warm, self.cfg.policies);
        let t0 = Instant::now();
        let mut quick = self.cfg.clone();
        quick.gibbs_iters = 0; // descent-only for fast adaptation
        let outcome = optimizer::descent_from_with_budget(new_ev, &quick, warm.clone(), budget);
        let converged = outcome.converged;
        let adapted = outcome.solution;
        let resolve_ms = t0.elapsed().as_secs_f64() * 1e3;
        let plans_changed = warm
            .plan_idx
            .iter()
            .zip(&adapted.assignment.plan_idx)
            .filter(|(a, b)| a != b)
            .count();
        let placements_changed = warm
            .placement
            .iter()
            .zip(&adapted.assignment.placement)
            .filter(|(a, b)| a != b)
            .count();
        let report = AdaptReport {
            stale_objective: stale.objective,
            adapted_objective: adapted.result.objective,
            evaluations: adapted.trace.evaluations,
            resolve_ms,
            converged,
            plans_changed,
            placements_changed,
            remap_misses,
        };
        Proposal {
            solution: adapted,
            report,
            warm,
            stale,
        }
    }

    /// Adopt an externally chosen assignment (typically a governed blend
    /// of the incumbent and a [`Proposal`]): re-price it on `new_ev` and
    /// install it as the current solution.
    pub fn adopt(&mut self, new_ev: &Evaluator, assignment: Assignment) -> &Solution {
        let result = new_ev.evaluate(&assignment, self.cfg.policies);
        self.solution = Solution {
            assignment,
            result,
            trace: Default::default(),
        };
        &self.solution
    }

    /// Warm-started *sharded* replan: the fleet-scale counterpart of
    /// [`adapt_with_budget`](Self::adapt_with_budget). The previous
    /// assignment is remapped onto the new evaluator, each shard runs
    /// budgeted descent from its slice of the warm point in parallel, and
    /// cross-shard placements are reconciled. The warm point itself joins
    /// the incumbent race inside [`crate::shard::solve_sharded_with`], so
    /// the adopted solution is never worse than the re-priced stale one.
    /// Fails only if `shard_cfg` is inconsistent with `new_problem`.
    pub fn adapt_sharded(
        &mut self,
        old_ev: &Evaluator,
        new_problem: &JointProblem,
        new_ev: &Evaluator,
        shard_cfg: &crate::shard::ShardConfig,
        budget: Budget,
    ) -> Result<AdaptReport, crate::validate::ProblemError> {
        let (warm, warm_misses) =
            remap_assignment_counted(old_ev, new_ev, &self.solution.assignment);
        let stale = new_ev.evaluate(&warm, self.cfg.policies);
        let t0 = Instant::now();
        let out =
            crate::shard::solve_sharded_with(new_problem, new_ev, shard_cfg, budget, Some(&warm))?;
        let resolve_ms = t0.elapsed().as_secs_f64() * 1e3;
        let adapted = out.outcome.solution;
        let plans_changed = warm
            .plan_idx
            .iter()
            .zip(&adapted.assignment.plan_idx)
            .filter(|(a, b)| a != b)
            .count();
        let placements_changed = warm
            .placement
            .iter()
            .zip(&adapted.assignment.placement)
            .filter(|(a, b)| a != b)
            .count();
        let report = AdaptReport {
            stale_objective: stale.objective,
            adapted_objective: adapted.result.objective,
            evaluations: adapted.trace.evaluations,
            resolve_ms,
            converged: out.outcome.converged,
            plans_changed,
            placements_changed,
            remap_misses: warm_misses + out.remap_misses,
        };
        self.solution = adapted;
        Ok(report)
    }
}

/// The propose half of the controller's propose/adopt split: a candidate
/// solution computed by warm-started descent, not yet adopted.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// The candidate solution (assignment + pricing + trace).
    pub solution: Solution,
    /// How the replan went, including [`AdaptReport::remap_misses`].
    pub report: AdaptReport,
    /// The incumbent remapped onto the new evaluator — the do-nothing
    /// baseline a governor compares the candidate against.
    pub warm: Assignment,
    /// The warm point priced under the new conditions (per-stream
    /// latencies drive switch-cost-aware acceptance).
    pub stale: crate::evaluator::EvalResult,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn scenario(bandwidth_mhz: f64) -> ScenarioConfig {
        ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 4,
            arrival_rate_hz: 4.0,
            ap_bandwidth_hz: bandwidth_mhz * 1e6,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn adaptation_never_worse_than_stale() {
        let old_ev = Evaluator::new(&scenario(20.0).build(), None);
        let new_ev = Evaluator::new(&scenario(4.0).build(), None); // link collapse
        let mut ctl = OnlineController::bootstrap(&old_ev, OptimizerConfig::default());
        let report = ctl.adapt(&old_ev, &new_ev);
        assert!(
            report.adapted_objective <= report.stale_objective + 1e-12,
            "adapted {} vs stale {}",
            report.adapted_objective,
            report.stale_objective
        );
    }

    #[test]
    fn bandwidth_collapse_forces_plan_changes() {
        let old_ev = Evaluator::new(&scenario(20.0).build(), None);
        let new_ev = Evaluator::new(&scenario(2.0).build(), None);
        let mut ctl = OnlineController::bootstrap(&old_ev, OptimizerConfig::default());
        let report = ctl.adapt(&old_ev, &new_ev);
        // A 10x bandwidth drop must move at least one stream's plan (more
        // on-device compute / quantized transmission).
        assert!(
            report.plans_changed > 0,
            "no plan reacted to a 10x bandwidth collapse"
        );
    }

    #[test]
    fn warm_start_is_cheaper_than_cold_solve() {
        let old_ev = Evaluator::new(&scenario(20.0).build(), None);
        let new_ev = Evaluator::new(&scenario(10.0).build(), None);
        let mut ctl = OnlineController::bootstrap(&old_ev, OptimizerConfig::default());
        let report = ctl.adapt(&old_ev, &new_ev);
        let cold = optimizer::solve(&new_ev, &OptimizerConfig::default());
        assert!(
            report.evaluations < cold.trace.evaluations,
            "warm {} vs cold {} evaluations",
            report.evaluations,
            cold.trace.evaluations
        );
        // And quality stays comparable.
        assert!(report.adapted_objective <= cold.result.objective * 1.15 + 1e-9);
    }

    #[test]
    fn faulted_problem_applies_worst_sustained_degradation() {
        use scalpel_sim::FaultEvent;
        let problem = scenario(20.0).build();
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    at_s: 3.0,
                    kind: FaultKind::LinkDegrade { ap: 0, factor: 0.5 },
                },
                FaultEvent {
                    at_s: 6.0,
                    kind: FaultKind::LinkDegrade {
                        ap: 0,
                        factor: 0.25,
                    },
                },
                FaultEvent {
                    at_s: 9.0,
                    kind: FaultKind::ServerThrottle {
                        server: 1,
                        factor: 0.4,
                    },
                },
                // Churn does not alter the static problem.
                FaultEvent {
                    at_s: 10.0,
                    kind: FaultKind::DeviceDown { device: 0 },
                },
            ],
        };
        let degraded = faulted_problem(&problem, &plan);
        let b0 = problem.cluster.aps[0].bandwidth_hz;
        assert!((degraded.cluster.aps[0].bandwidth_hz - b0 * 0.25).abs() < 1e-6);
        let c1 = problem.cluster.servers[1].proc.flops_per_sec;
        assert!((degraded.cluster.servers[1].proc.flops_per_sec - c1 * 0.4).abs() < 1.0);
        assert_eq!(
            degraded.cluster.devices.len(),
            problem.cluster.devices.len()
        );
        assert!(degraded.validate().is_ok());
    }

    #[test]
    fn controller_adapts_to_faulted_environment() {
        use scalpel_sim::FaultEvent;
        let problem = scenario(20.0).build();
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at_s: 2.0,
                kind: FaultKind::LinkDegrade { ap: 0, factor: 0.1 },
            }],
        };
        let old_ev = Evaluator::new(&problem, None);
        let new_ev = Evaluator::new(&faulted_problem(&problem, &plan), None);
        let mut ctl = OnlineController::bootstrap(&old_ev, OptimizerConfig::default());
        let report = ctl.adapt(&old_ev, &new_ev);
        assert!(report.adapted_objective <= report.stale_objective + 1e-12);
        // A 10x sustained link collapse must move at least one decision.
        assert!(report.plans_changed + report.placements_changed > 0);
    }

    #[test]
    fn closest_idx_is_deterministic_and_structure_aware() {
        let ev = Evaluator::new(&scenario(20.0).build(), None);
        let menu = ev.menu(0);
        // Exact plans map to an entry with identical structure.
        for p in menu {
            let got = &menu[closest_idx(menu, &p.plan)].plan;
            assert_eq!(got.cut, p.plan.cut);
            assert_eq!(got.quantize_tx, p.plan.quantize_tx);
            assert_eq!(got.prune, p.plan.prune);
        }
        // An off-menu cut lands on the nearest one, preferring matching
        // quantization; repeated calls agree bit-for-bit.
        let mut probe = menu[menu.len() - 1].plan.clone();
        probe.cut += 1000;
        let a = closest_idx(menu, &probe);
        let b = closest_idx(menu, &probe);
        assert_eq!(a, b);
        let max_cut = menu.iter().map(|p| p.plan.cut).max().unwrap();
        assert_eq!(menu[a].plan.cut, max_cut);
    }

    #[test]
    fn new_streams_warm_start_near_full_offload() {
        let small = ScenarioConfig {
            devices_per_ap: 2,
            ..scenario(20.0)
        };
        let old_ev = Evaluator::new(&small.build(), None);
        let new_ev = Evaluator::new(&scenario(20.0).build(), None);
        let asg = Assignment {
            plan_idx: vec![0; old_ev.num_streams()],
            placement: vec![0; old_ev.num_streams()],
        };
        let remapped = remap_assignment(&old_ev, &new_ev, &asg);
        assert_eq!(remapped.plan_idx.len(), new_ev.num_streams());
        for k in old_ev.num_streams()..new_ev.num_streams() {
            let plan = &new_ev.menu(k)[remapped.plan_idx[k]].plan;
            let min_cut = new_ev.menu(k).iter().map(|p| p.plan.cut).min().unwrap();
            assert_eq!(
                plan.cut, min_cut,
                "stream {k} did not start near full offload"
            );
            assert!(!plan.quantize_tx);
        }
    }

    fn snapshot(at_s: f64, server_open: Vec<bool>, ap_open: Vec<bool>) -> HealthSnapshot {
        HealthSnapshot {
            at_s,
            completions: 10,
            slo_misses: 0,
            timeouts: 0,
            degraded: 0,
            shed: 0,
            server_open,
            ap_open,
        }
    }

    #[test]
    fn detector_ignores_healthy_telemetry_and_blips() {
        let det = FaultDetector::default();
        let problem = scenario(20.0).build();
        // All-healthy window.
        let healthy: Vec<_> = (0..6)
            .map(|i| snapshot(i as f64, vec![false, false], vec![false]))
            .collect();
        assert!(det.degraded_problem(&problem, &healthy).is_none());
        // A single-epoch breaker blip is below sustain_epochs.
        let mut blip = healthy.clone();
        blip[2].server_open[1] = true;
        assert!(det.degraded_problem(&problem, &blip).is_none());
        // And an empty window trivially triggers nothing.
        assert!(det.degraded_problem(&problem, &[]).is_none());
    }

    #[test]
    fn sustained_open_breaker_derates_the_target() {
        let det = FaultDetector::default();
        let problem = scenario(20.0).build();
        // Server 0 open in half the epochs, AP 0 open in all of them.
        let health: Vec<_> = (0..8)
            .map(|i| snapshot(i as f64, vec![i % 2 == 0, false], vec![true]))
            .collect();
        let d = det.assess(&health);
        assert!(d.triggered);
        assert!((d.server_derate[0] - 0.5).abs() < 1e-9);
        assert!((d.server_derate[1] - 1.0).abs() < 1e-12);
        // Fully open still floors at derate_floor so the problem prices.
        assert!((d.ap_derate[0] - det.cfg.derate_floor).abs() < 1e-9);
        let degraded = det.degraded_problem(&problem, &health).expect("triggered");
        let b0 = problem.cluster.aps[0].bandwidth_hz;
        assert!((degraded.cluster.aps[0].bandwidth_hz - b0 * det.cfg.derate_floor).abs() < 1e-3);
        let c0 = problem.cluster.servers[0].proc.flops_per_sec;
        assert!((degraded.cluster.servers[0].proc.flops_per_sec - c0 * 0.5).abs() < 1.0);
        assert!(degraded.validate().is_ok());
    }

    #[test]
    fn detector_counts_unhealthy_epochs_from_misses_and_timeouts() {
        let det = FaultDetector::default();
        let mut health: Vec<_> = (0..4).map(|i| snapshot(i as f64, vec![], vec![])).collect();
        health[0].slo_misses = 9; // 90 % miss rate
        health[1].timeouts = 5;
        let d = det.assess(&health);
        assert_eq!(d.unhealthy_epochs, 2);
        // Misses alone never derate anything — there is no target to blame.
        assert!(!d.triggered);
    }

    #[test]
    fn detector_driven_adaptation_matches_oracle_direction() {
        // The closed loop: telemetry showing a breaker stuck open on AP 0
        // yields a degraded problem whose warm-started re-solve is no
        // worse than re-pricing the stale solution — same contract the
        // oracle-driven path satisfies, without reading the fault plan.
        let problem = scenario(20.0).build();
        let det = FaultDetector::default();
        let health: Vec<_> = (0..10)
            .map(|i| snapshot(i as f64, vec![false], vec![i >= 2]))
            .collect();
        let degraded = det.degraded_problem(&problem, &health).expect("sustained");
        let old_ev = Evaluator::new(&problem, None);
        let new_ev = Evaluator::new(&degraded, None);
        let mut ctl = OnlineController::bootstrap(&old_ev, OptimizerConfig::default());
        let report = ctl.adapt(&old_ev, &new_ev);
        assert!(report.adapted_objective <= report.stale_objective + 1e-12);
    }

    #[test]
    fn remap_preserves_signatures_on_identical_menus() {
        let ev = Evaluator::new(&scenario(20.0).build(), None);
        let asg =
            optimizer::initial_assignment(&ev, scalpel_alloc::PlacementStrategy::BestResponse);
        let remapped = remap_assignment(&ev, &ev, &asg);
        assert_eq!(remapped.plan_idx, asg.plan_idx);
        assert_eq!(remapped.placement, asg.placement);
    }
}
