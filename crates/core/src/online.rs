//! Online re-optimization for dynamic edges.
//!
//! Edge conditions move at runtime — links degrade, devices join, servers
//! drain. The controller keeps the current solution and, when the
//! environment changes, *warm-starts* the joint search from the previous
//! decisions instead of solving from scratch: previous plans are remapped
//! onto the rebuilt menus by structural signature, placement is kept, and
//! coordinate descent runs from there (usually converging in one sweep).

use crate::evaluator::{Assignment, Evaluator};
use crate::optimizer::{self, OptimizerConfig, Solution};
use crate::problem::JointProblem;
use scalpel_sim::{FaultKind, FaultPlan};
use scalpel_surgery::SurgeryPlan;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How one adaptation went.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptReport {
    /// Objective of the stale solution re-priced under the new conditions.
    pub stale_objective: f64,
    /// Objective after re-optimization.
    pub adapted_objective: f64,
    /// Evaluations spent adapting.
    pub evaluations: usize,
    /// Wall-clock milliseconds of the re-solve.
    pub resolve_ms: f64,
    /// Streams whose plan changed.
    pub plans_changed: usize,
    /// Streams whose server changed.
    pub placements_changed: usize,
}

/// Structural signature used to match plans across rebuilt menus.
fn signature(p: &SurgeryPlan) -> (usize, usize, u8, bool) {
    (
        p.cut,
        p.exits.len(),
        p.prune.flops_scale().to_bits() as u8,
        p.quantize_tx,
    )
}

/// Remap an assignment onto a rebuilt evaluator: for each stream, find the
/// menu entry with the old plan's signature (falling back to the closest
/// cut), and clamp placements to the new server count.
pub fn remap_assignment(old_ev: &Evaluator, new_ev: &Evaluator, asg: &Assignment) -> Assignment {
    let n = new_ev.num_streams().min(old_ev.num_streams());
    let mut plan_idx = Vec::with_capacity(new_ev.num_streams());
    let mut placement = Vec::with_capacity(new_ev.num_streams());
    for k in 0..new_ev.num_streams() {
        if k < n {
            let old_plan = &old_ev.menu(k)[asg.plan_idx[k]].plan;
            let sig = signature(old_plan);
            let menu = new_ev.menu(k);
            let idx = menu
                .iter()
                .position(|p| p.plan == *old_plan)
                .or_else(|| menu.iter().position(|p| signature(&p.plan) == sig))
                .unwrap_or_else(|| {
                    // closest cut wins
                    (0..menu.len())
                        .min_by_key(|&i| {
                            (menu[i].plan.cut as isize - old_plan.cut as isize).unsigned_abs()
                        })
                        .expect("non-empty menu")
                });
            plan_idx.push(idx);
            placement.push(asg.placement[k].min(new_ev.num_servers() - 1));
        } else {
            plan_idx.push(0);
            placement.push(k % new_ev.num_servers());
        }
    }
    Assignment {
        plan_idx,
        placement,
    }
}

/// Steady-state view of a faulted environment: the problem with every
/// sustained degradation in `plan` applied at its *worst* level — each
/// AP's bandwidth scaled by its deepest `LinkDegrade`, each server's
/// capacity by its deepest `ServerThrottle`. Transient churn (device and
/// AP up/down cycles) is not representable in the static problem and is
/// left to the simulator; what this gives the [`OnlineController`] is the
/// environment to re-solve against when degradations persist.
pub fn faulted_problem(problem: &JointProblem, plan: &FaultPlan) -> JointProblem {
    let mut degraded = problem.clone();
    for ev in &plan.events {
        match ev.kind {
            FaultKind::LinkDegrade { ap, factor } => {
                if let Some(spec) = degraded.cluster.aps.get_mut(ap) {
                    let nominal = problem.cluster.aps[ap].bandwidth_hz;
                    spec.bandwidth_hz = spec.bandwidth_hz.min(nominal * factor);
                }
            }
            FaultKind::ServerThrottle { server, factor } => {
                if let Some(spec) = degraded.cluster.servers.get_mut(server) {
                    let nominal = problem.cluster.servers[server].proc.flops_per_sec;
                    spec.proc.flops_per_sec = spec.proc.flops_per_sec.min(nominal * factor);
                }
            }
            _ => {}
        }
    }
    degraded
}

/// The online controller: owns the current solution for one environment.
pub struct OnlineController {
    solution: Solution,
    cfg: OptimizerConfig,
}

impl OnlineController {
    /// Solve the initial environment from scratch.
    pub fn bootstrap(ev: &Evaluator, cfg: OptimizerConfig) -> Self {
        let solution = optimizer::solve(ev, &cfg);
        Self { solution, cfg }
    }

    /// Current solution.
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// React to changed conditions: re-price the stale decisions on the
    /// new evaluator, warm-start descent from them, and adopt the result.
    pub fn adapt(&mut self, old_ev: &Evaluator, new_ev: &Evaluator) -> AdaptReport {
        let warm = remap_assignment(old_ev, new_ev, &self.solution.assignment);
        let stale = new_ev.evaluate(&warm, self.cfg.policies);
        let t0 = Instant::now();
        let mut quick = self.cfg.clone();
        quick.gibbs_iters = 0; // descent-only for fast adaptation
        let adapted = optimizer::coordinate_descent_from(new_ev, &quick, warm.clone());
        let resolve_ms = t0.elapsed().as_secs_f64() * 1e3;
        let plans_changed = warm
            .plan_idx
            .iter()
            .zip(&adapted.assignment.plan_idx)
            .filter(|(a, b)| a != b)
            .count();
        let placements_changed = warm
            .placement
            .iter()
            .zip(&adapted.assignment.placement)
            .filter(|(a, b)| a != b)
            .count();
        let report = AdaptReport {
            stale_objective: stale.objective,
            adapted_objective: adapted.result.objective,
            evaluations: adapted.trace.evaluations,
            resolve_ms,
            plans_changed,
            placements_changed,
        };
        self.solution = adapted;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn scenario(bandwidth_mhz: f64) -> ScenarioConfig {
        ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 4,
            arrival_rate_hz: 4.0,
            ap_bandwidth_hz: bandwidth_mhz * 1e6,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn adaptation_never_worse_than_stale() {
        let old_ev = Evaluator::new(&scenario(20.0).build(), None);
        let new_ev = Evaluator::new(&scenario(4.0).build(), None); // link collapse
        let mut ctl = OnlineController::bootstrap(&old_ev, OptimizerConfig::default());
        let report = ctl.adapt(&old_ev, &new_ev);
        assert!(
            report.adapted_objective <= report.stale_objective + 1e-12,
            "adapted {} vs stale {}",
            report.adapted_objective,
            report.stale_objective
        );
    }

    #[test]
    fn bandwidth_collapse_forces_plan_changes() {
        let old_ev = Evaluator::new(&scenario(20.0).build(), None);
        let new_ev = Evaluator::new(&scenario(2.0).build(), None);
        let mut ctl = OnlineController::bootstrap(&old_ev, OptimizerConfig::default());
        let report = ctl.adapt(&old_ev, &new_ev);
        // A 10x bandwidth drop must move at least one stream's plan (more
        // on-device compute / quantized transmission).
        assert!(
            report.plans_changed > 0,
            "no plan reacted to a 10x bandwidth collapse"
        );
    }

    #[test]
    fn warm_start_is_cheaper_than_cold_solve() {
        let old_ev = Evaluator::new(&scenario(20.0).build(), None);
        let new_ev = Evaluator::new(&scenario(10.0).build(), None);
        let mut ctl = OnlineController::bootstrap(&old_ev, OptimizerConfig::default());
        let report = ctl.adapt(&old_ev, &new_ev);
        let cold = optimizer::solve(&new_ev, &OptimizerConfig::default());
        assert!(
            report.evaluations < cold.trace.evaluations,
            "warm {} vs cold {} evaluations",
            report.evaluations,
            cold.trace.evaluations
        );
        // And quality stays comparable.
        assert!(report.adapted_objective <= cold.result.objective * 1.15 + 1e-9);
    }

    #[test]
    fn faulted_problem_applies_worst_sustained_degradation() {
        use scalpel_sim::FaultEvent;
        let problem = scenario(20.0).build();
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    at_s: 3.0,
                    kind: FaultKind::LinkDegrade { ap: 0, factor: 0.5 },
                },
                FaultEvent {
                    at_s: 6.0,
                    kind: FaultKind::LinkDegrade {
                        ap: 0,
                        factor: 0.25,
                    },
                },
                FaultEvent {
                    at_s: 9.0,
                    kind: FaultKind::ServerThrottle {
                        server: 1,
                        factor: 0.4,
                    },
                },
                // Churn does not alter the static problem.
                FaultEvent {
                    at_s: 10.0,
                    kind: FaultKind::DeviceDown { device: 0 },
                },
            ],
        };
        let degraded = faulted_problem(&problem, &plan);
        let b0 = problem.cluster.aps[0].bandwidth_hz;
        assert!((degraded.cluster.aps[0].bandwidth_hz - b0 * 0.25).abs() < 1e-6);
        let c1 = problem.cluster.servers[1].proc.flops_per_sec;
        assert!((degraded.cluster.servers[1].proc.flops_per_sec - c1 * 0.4).abs() < 1.0);
        assert_eq!(
            degraded.cluster.devices.len(),
            problem.cluster.devices.len()
        );
        assert!(degraded.validate().is_ok());
    }

    #[test]
    fn controller_adapts_to_faulted_environment() {
        use scalpel_sim::FaultEvent;
        let problem = scenario(20.0).build();
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at_s: 2.0,
                kind: FaultKind::LinkDegrade { ap: 0, factor: 0.1 },
            }],
        };
        let old_ev = Evaluator::new(&problem, None);
        let new_ev = Evaluator::new(&faulted_problem(&problem, &plan), None);
        let mut ctl = OnlineController::bootstrap(&old_ev, OptimizerConfig::default());
        let report = ctl.adapt(&old_ev, &new_ev);
        assert!(report.adapted_objective <= report.stale_objective + 1e-12);
        // A 10x sustained link collapse must move at least one decision.
        assert!(report.plans_changed + report.placements_changed > 0);
    }

    #[test]
    fn remap_preserves_signatures_on_identical_menus() {
        let ev = Evaluator::new(&scenario(20.0).build(), None);
        let asg =
            optimizer::initial_assignment(&ev, scalpel_alloc::PlacementStrategy::BestResponse);
        let remapped = remap_assignment(&ev, &ev, &asg);
        assert_eq!(remapped.plan_idx, asg.plan_idx);
        assert_eq!(remapped.placement, asg.placement);
    }
}
