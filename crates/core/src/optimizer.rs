//! The joint search: coordinate descent + Gibbs sampling (Markov
//! approximation) over the per-stream plan menus, with the inner resource
//! allocation re-solved exactly at every step, plus an exhaustive
//! reference for small instances (F9's optimality-gap measurement).
//!
//! All three searches run over an evaluation [`Engine`] with two
//! interchangeable backends: the classic full re-evaluation per probe,
//! and the incremental [`EvalContext`] that re-solves only the resource
//! groups a single-coordinate move dirties. Both produce bit-identical
//! objective traces (the incremental caches are a pure function of the
//! assignment — see `eval_context`), so [`EvalMode`] is purely a
//! performance knob; the parity is enforced by property tests.

use crate::eval_context::EvalContext;
use crate::evaluator::{AllocPolicies, Assignment, EvalResult, Evaluator};
use scalpel_alloc::placement::{self, PlacementStrategy, PlacementStream, ServerCap};
use scalpel_sim::SimRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Which evaluation backend the search probes moves with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EvalMode {
    /// Re-price the whole configuration from scratch on every probe
    /// (the reference path; O(N) group solves per move).
    Full,
    /// Delta evaluation over cached group state: only the device queue,
    /// servers and APs a move touches are re-solved. Bit-identical
    /// objectives, large constant-factor speedup.
    #[default]
    Incremental,
}

/// Search knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Maximum coordinate-descent rounds.
    pub rounds: usize,
    /// Gibbs-sampling refinement iterations after descent.
    pub gibbs_iters: usize,
    /// Initial Boltzmann temperature (objective units).
    pub init_temperature: f64,
    /// Multiplicative cooling per Gibbs iteration.
    pub cooling: f64,
    /// RNG seed for the Gibbs chain.
    pub seed: u64,
    /// Allocation policies used while pricing.
    pub policies: AllocPolicies,
    /// Placement strategy re-run whenever plans change.
    pub placement: PlacementStrategy,
    /// Evaluation backend (trace-equivalent; Incremental is faster).
    pub eval_mode: EvalMode,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            rounds: 6,
            gibbs_iters: 200,
            init_temperature: 0.5,
            cooling: 0.985,
            seed: 11,
            policies: AllocPolicies::optimal(),
            placement: PlacementStrategy::BestResponse,
            eval_mode: EvalMode::default(),
        }
    }
}

/// Objective values recorded during the search (one per accepted step).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Best-so-far objective after each improvement / Gibbs iteration.
    pub objective: Vec<f64>,
    /// Total configuration evaluations performed.
    pub evaluations: usize,
}

/// A complete joint solution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    /// Chosen plans and placement.
    pub assignment: Assignment,
    /// Its analytic pricing.
    pub result: EvalResult,
    /// Search trajectory.
    pub trace: SearchTrace,
}

/// Resource limits for an anytime solve. `None` means unlimited on that
/// axis; [`Budget::UNLIMITED`] makes [`solve_with_budget`] behave exactly
/// like [`solve`] (bit-identical trace — no clock is consulted on the
/// unlimited path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit for the whole solve.
    pub wall_time: Option<Duration>,
    /// Cap on configuration evaluations (as counted by `SearchTrace`).
    pub max_evals: Option<usize>,
}

impl Budget {
    /// No limits at all.
    pub const UNLIMITED: Budget = Budget {
        wall_time: None,
        max_evals: None,
    };

    /// A wall-clock-only budget.
    pub fn wall(limit: Duration) -> Self {
        Budget {
            wall_time: Some(limit),
            max_evals: None,
        }
    }

    /// An evaluation-count-only budget.
    pub fn evals(limit: usize) -> Self {
        Budget {
            wall_time: None,
            max_evals: Some(limit),
        }
    }

    /// Whether neither axis is limited.
    pub fn is_unlimited(&self) -> bool {
        self.wall_time.is_none() && self.max_evals.is_none()
    }
}

/// What an anytime solve actually consumed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BudgetSpent {
    /// Configuration evaluations performed.
    pub evaluations: usize,
    /// Wall-clock seconds elapsed.
    pub wall_s: f64,
}

/// Result of an anytime solve: the best configuration found, whether the
/// search ran to its natural end (`converged`) or was cut off by the
/// budget, and what it spent. The solution is always valid and complete —
/// an exhausted budget degrades quality, never well-formedness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveOutcome {
    /// Best-so-far solution at the point the search stopped.
    pub solution: Solution,
    /// `true` iff the search finished without hitting the budget.
    pub converged: bool,
    /// Evaluations and wall time consumed.
    pub spent: BudgetSpent,
}

/// Internal budget bookkeeping threaded through the search loops. The
/// unlimited tracker never consults the clock and always answers `false`,
/// so the unconstrained search path is control-flow-identical (and
/// therefore trace-bit-identical) to the pre-budget implementation.
struct BudgetTracker {
    deadline: Option<Instant>,
    max_evals: Option<usize>,
    exhausted: bool,
}

impl BudgetTracker {
    fn unlimited() -> Self {
        BudgetTracker {
            deadline: None,
            max_evals: None,
            exhausted: false,
        }
    }

    fn new(budget: Budget) -> Self {
        BudgetTracker {
            deadline: budget.wall_time.map(|d| Instant::now() + d),
            max_evals: budget.max_evals,
            exhausted: false,
        }
    }

    /// Whether the budget is spent, given `evals` evaluations so far.
    /// Sticky: once exhausted, stays exhausted.
    fn check(&mut self, evals: usize) -> bool {
        if self.exhausted {
            return true;
        }
        if let Some(max) = self.max_evals {
            if evals >= max {
                self.exhausted = true;
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.exhausted = true;
                return true;
            }
        }
        false
    }

    fn is_exhausted(&self) -> bool {
        self.exhausted
    }
}

/// The evaluation backend behind the search loops. `Full` re-prices the
/// entire configuration per probe; `Incremental` patches cached state.
/// Both expose the same operations with bit-identical objectives, so the
/// search code is written once against this enum.
// One Engine exists per search, so the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Engine<'a> {
    Full {
        ev: &'a Evaluator,
        policies: AllocPolicies,
        asg: Assignment,
        current: EvalResult,
    },
    Incremental(Box<EvalContext<'a>>),
}

impl<'a> Engine<'a> {
    /// Build the backend for `cfg.eval_mode`, pricing `asg` once.
    fn new(ev: &'a Evaluator, cfg: &OptimizerConfig, asg: Assignment) -> Self {
        match cfg.eval_mode {
            EvalMode::Full => {
                let current = ev.evaluate(&asg, cfg.policies);
                Engine::Full {
                    ev,
                    policies: cfg.policies,
                    asg,
                    current,
                }
            }
            EvalMode::Incremental => {
                Engine::Incremental(Box::new(EvalContext::new(ev, asg, cfg.policies)))
            }
        }
    }

    fn objective(&self) -> f64 {
        match self {
            Engine::Full { current, .. } => current.objective,
            Engine::Incremental(ctx) => ctx.objective(),
        }
    }

    fn plan_of(&self, k: usize) -> usize {
        match self {
            Engine::Full { asg, .. } => asg.plan_idx[k],
            Engine::Incremental(ctx) => ctx.plan_of(k),
        }
    }

    fn plan_indices(&self) -> &[usize] {
        match self {
            Engine::Full { asg, .. } => &asg.plan_idx,
            Engine::Incremental(ctx) => ctx.plan_indices(),
        }
    }

    fn placement(&self) -> &[usize] {
        match self {
            Engine::Full { asg, .. } => &asg.placement,
            Engine::Incremental(ctx) => ctx.placement(),
        }
    }

    fn assignment(&self) -> Assignment {
        match self {
            Engine::Full { asg, .. } => asg.clone(),
            Engine::Incremental(ctx) => ctx.assignment(),
        }
    }

    /// Objective for every plan in stream `k`'s menu, current state
    /// otherwise unchanged. Entry `plan_of(k)` is the cached objective
    /// (no evaluation spent); the caller accounts `menu_len - 1` probes.
    fn score_menu(&self, k: usize) -> Vec<f64> {
        match self {
            Engine::Full {
                ev,
                policies,
                asg,
                current,
            } => {
                let cur = asg.plan_idx[k];
                let mut probe = asg.clone();
                (0..ev.menu(k).len())
                    .map(|idx| {
                        if idx == cur {
                            current.objective
                        } else {
                            probe.plan_idx[k] = idx;
                            ev.evaluate(&probe, *policies).objective
                        }
                    })
                    .collect()
            }
            Engine::Incremental(ctx) => ctx.score_menu(k),
        }
    }

    /// Adopt plan `idx` for stream `k`; returns the new objective.
    fn commit_plan(&mut self, k: usize, idx: usize) -> f64 {
        match self {
            Engine::Full {
                ev,
                policies,
                asg,
                current,
            } => {
                asg.plan_idx[k] = idx;
                *current = ev.evaluate(asg, *policies);
                current.objective
            }
            Engine::Incremental(ctx) => ctx.commit_plan(k, idx),
        }
    }

    /// Adopt a whole placement vector; returns the new objective.
    fn set_placement(&mut self, new_placement: &[usize]) -> f64 {
        match self {
            Engine::Full {
                ev,
                policies,
                asg,
                current,
            } => {
                if asg.placement == new_placement {
                    return current.objective;
                }
                asg.placement.copy_from_slice(new_placement);
                *current = ev.evaluate(asg, *policies);
                current.objective
            }
            Engine::Incremental(ctx) => ctx.set_placement(new_placement),
        }
    }

    /// Adopt a whole assignment; returns the new objective.
    fn reconfigure(&mut self, plan_idx: &[usize], placement: &[usize]) -> f64 {
        match self {
            Engine::Full {
                ev,
                policies,
                asg,
                current,
            } => {
                asg.plan_idx.copy_from_slice(plan_idx);
                asg.placement.copy_from_slice(placement);
                *current = ev.evaluate(asg, *policies);
                current.objective
            }
            Engine::Incremental(ctx) => ctx.reconfigure(plan_idx, placement),
        }
    }

    /// Pricing of the current state.
    fn result(&self) -> EvalResult {
        match self {
            Engine::Full { current, .. } => current.clone(),
            Engine::Incremental(ctx) => ctx.result(),
        }
    }

    /// Pricing of an arbitrary assignment (moves the engine there; used
    /// only to materialize the final [`Solution`], never counted as a
    /// search evaluation — both backends derive it identically).
    fn result_for(&mut self, asg: &Assignment) -> EvalResult {
        self.reconfigure(&asg.plan_idx, &asg.placement);
        self.result()
    }
}

/// Placement for a fixed plan selection: streams weighted by their
/// expected edge load, servers by capacity.
pub fn placement_for(
    ev: &Evaluator,
    plan_idx: &[usize],
    strategy: PlacementStrategy,
) -> Vec<usize> {
    let streams: Vec<PlacementStream> = (0..ev.num_streams())
        .map(|k| {
            let p = &ev.menu(k)[plan_idx[k]];
            PlacementStream {
                stream: k,
                edge_flops: p.remain * p.edge_flops,
                weight: ev.rate(k),
            }
        })
        .collect();
    let servers: Vec<ServerCap> = ev
        .server_caps()
        .iter()
        .enumerate()
        .map(|(server, &capacity_fps)| ServerCap {
            server,
            capacity_fps,
        })
        .collect();
    placement::place(&streams, &servers, strategy)
}

/// A reasonable starting point: per stream, the plan with the lowest
/// reference expected latency proxy; placement by the chosen strategy.
pub fn initial_assignment(ev: &Evaluator, strategy: PlacementStrategy) -> Assignment {
    let plan_idx: Vec<usize> = (0..ev.num_streams())
        .map(|k| {
            let menu = ev.menu(k);
            (0..menu.len())
                .min_by(|&a, &b| {
                    let score = |i: usize| {
                        let p = &menu[i];
                        p.exp_dev + p.remain * (ev.tx_full_seconds(k, p) * 4.0 + 1e-3)
                    };
                    score(a).total_cmp(&score(b))
                })
                // Validation guarantees non-empty menus; an empty one can
                // only mean the caller bypassed ingest, so fall back to 0
                // rather than abort mid-solve.
                .unwrap_or(0)
        })
        .collect();
    let placement = placement_for(ev, &plan_idx, strategy);
    Assignment {
        plan_idx,
        placement,
    }
}

/// Greedy coordinate descent: sweep streams, trying every plan in each
/// stream's menu (re-solving allocation each time), until a full round
/// yields no improvement.
pub fn coordinate_descent(ev: &Evaluator, cfg: &OptimizerConfig) -> Solution {
    let start = initial_assignment(ev, cfg.placement);
    coordinate_descent_from(ev, cfg, start)
}

/// [`coordinate_descent_from`] under a budget: warm-start descent that
/// stops at the budget and reports what it spent. Used by the online
/// controller so replanning under churn degrades to the (remapped)
/// incumbent instead of blocking.
pub fn descent_from_with_budget(
    ev: &Evaluator,
    cfg: &OptimizerConfig,
    start: Assignment,
    budget: Budget,
) -> SolveOutcome {
    let started = Instant::now();
    let mut tracker = if budget.is_unlimited() {
        BudgetTracker::unlimited()
    } else {
        BudgetTracker::new(budget)
    };
    let solution = descent_impl(ev, cfg, start, &mut tracker);
    let spent = BudgetSpent {
        evaluations: solution.trace.evaluations,
        wall_s: started.elapsed().as_secs_f64(),
    };
    SolveOutcome {
        converged: !tracker.is_exhausted(),
        solution,
        spent,
    }
}

/// [`coordinate_descent`] from an explicit starting assignment (used by
/// the convergence experiment to show descent from a naive configuration).
pub fn coordinate_descent_from(
    ev: &Evaluator,
    cfg: &OptimizerConfig,
    start: Assignment,
) -> Solution {
    descent_impl(ev, cfg, start, &mut BudgetTracker::unlimited())
}

/// Budget-aware descent body. With the unlimited tracker every branch the
/// tracker guards is dead, so the walk — and its trace — is bit-identical
/// to the historical unbudgeted implementation. When the budget runs out
/// mid-round the engine already holds the best committed configuration
/// (descent only ever commits improving plans), so the incumbent is
/// returned as a complete, valid solution.
fn descent_impl(
    ev: &Evaluator,
    cfg: &OptimizerConfig,
    start: Assignment,
    tracker: &mut BudgetTracker,
) -> Solution {
    let mut eng = Engine::new(ev, cfg, start);
    let mut trace = SearchTrace::default();
    trace.evaluations += 1;
    trace.objective.push(eng.objective());
    'rounds: for _ in 0..cfg.rounds {
        let mut improved = false;
        for k in 0..ev.num_streams() {
            if tracker.check(trace.evaluations) {
                break 'rounds;
            }
            let current = eng.plan_of(k);
            let scores = eng.score_menu(k);
            trace.evaluations += scores.len() - 1;
            let mut best_idx = current;
            let mut best_obj = eng.objective();
            for (idx, &o) in scores.iter().enumerate() {
                if idx == current {
                    continue;
                }
                if o < best_obj - 1e-12 {
                    best_obj = o;
                    best_idx = idx;
                }
            }
            if best_idx != current {
                improved = true;
            }
            // Adopt the chosen plan (a re-evaluation, as the full path
            // always re-priced here even when the plan stood).
            let obj = eng.commit_plan(k, best_idx);
            trace.evaluations += 1;
            trace.objective.push(obj);
        }
        // Re-place with the new plan demands.
        let new_placement = placement_for(ev, eng.plan_indices(), cfg.placement);
        if new_placement != eng.placement() {
            let pre = eng.objective();
            let obj = eng.set_placement(&new_placement);
            trace.evaluations += 1;
            if obj < pre {
                improved = true;
            }
            trace.objective.push(obj);
        }
        if !improved {
            break;
        }
    }
    Solution {
        assignment: eng.assignment(),
        result: eng.result(),
        trace,
    }
}

/// Gibbs-sampling refinement (Markov approximation): resample one stream's
/// plan from the Boltzmann distribution of the objective, annealing the
/// temperature. Returns the best configuration visited.
pub fn gibbs_refine(ev: &Evaluator, cfg: &OptimizerConfig, start: Solution) -> Solution {
    gibbs_impl(ev, cfg, start, &mut BudgetTracker::unlimited())
}

/// [`gibbs_refine`] under a budget, *relative* to the start: the chain may
/// spend up to `budget.max_evals` evaluations and `budget.wall_time` on
/// top of whatever `start.trace` already records, then materializes its
/// best-visited assignment. `spent` counts only the refinement's own
/// evaluations. With [`Budget::UNLIMITED`] this is bit-identical to
/// [`gibbs_refine`] (the clock is never consulted).
pub fn refine_from_with_budget(
    ev: &Evaluator,
    cfg: &OptimizerConfig,
    start: Solution,
    budget: Budget,
) -> SolveOutcome {
    let started = Instant::now();
    let base_evals = start.trace.evaluations;
    let mut tracker = if budget.is_unlimited() {
        BudgetTracker::unlimited()
    } else {
        BudgetTracker::new(Budget {
            wall_time: budget.wall_time,
            max_evals: budget.max_evals.map(|m| m.saturating_add(base_evals)),
        })
    };
    let solution = gibbs_impl(ev, cfg, start, &mut tracker);
    let spent = BudgetSpent {
        evaluations: solution.trace.evaluations.saturating_sub(base_evals),
        wall_s: started.elapsed().as_secs_f64(),
    };
    SolveOutcome {
        converged: !tracker.is_exhausted(),
        solution,
        spent,
    }
}

/// Budget-aware Gibbs body; see [`descent_impl`] for the parity argument.
/// The chain tracks its best-visited assignment separately, so a budget
/// cut simply materializes the incumbent early.
fn gibbs_impl(
    ev: &Evaluator,
    cfg: &OptimizerConfig,
    start: Solution,
    tracker: &mut BudgetTracker,
) -> Solution {
    let mut rng = SimRng::new(cfg.seed, 4242);
    let mut trace = start.trace.clone();
    // Rebuilding the start state is not counted: the search inherits the
    // already-priced descent result.
    let mut eng = Engine::new(ev, cfg, start.assignment.clone());
    let mut best_asg = start.assignment;
    let mut best_obj = eng.objective();
    let mut temp = cfg.init_temperature;
    for it in 0..cfg.gibbs_iters {
        if tracker.check(trace.evaluations) {
            break;
        }
        let k = rng.index(ev.num_streams());
        let menu_len = ev.menu(k).len();
        if menu_len <= 1 {
            continue;
        }
        // Price every plan of stream k in the current context.
        let objs = eng.score_menu(k);
        trace.evaluations += menu_len - 1;
        // Boltzmann sample.
        let min_obj = objs.iter().cloned().fold(f64::INFINITY, f64::min);
        let weights: Vec<f64> = objs
            .iter()
            .map(|&o| (-(o - min_obj) / temp.max(1e-9)).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut u = rng.open01() * total;
        let mut chosen = menu_len - 1;
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                chosen = i;
                break;
            }
            u -= w;
        }
        // Committing the sampled plan reuses the trial's pricing (the
        // cached state is a pure function of the assignment), so it is
        // not another evaluation.
        let obj = eng.commit_plan(k, chosen);
        if obj < best_obj {
            best_obj = obj;
            best_asg = eng.assignment();
        }
        trace.objective.push(best_obj);
        temp *= cfg.cooling;
        // Periodically re-run placement.
        if it % 50 == 49 {
            let np = placement_for(ev, eng.plan_indices(), cfg.placement);
            if np != eng.placement() {
                let obj = eng.set_placement(&np);
                trace.evaluations += 1;
                if obj < best_obj {
                    best_obj = obj;
                    best_asg = eng.assignment();
                }
            }
        }
    }
    let result = eng.result_for(&best_asg);
    Solution {
        assignment: best_asg,
        result,
        trace,
    }
}

/// The full joint algorithm: descent, then annealed Gibbs refinement.
pub fn solve(ev: &Evaluator, cfg: &OptimizerConfig) -> Solution {
    let descended = coordinate_descent(ev, cfg);
    if cfg.gibbs_iters == 0 {
        return descended;
    }
    gibbs_refine(ev, cfg, descended)
}

/// Anytime variant of [`solve`]: runs descent then Gibbs under `budget`,
/// checkpointing best-so-far, and returns the incumbent with a
/// convergence flag instead of running unbounded. With
/// [`Budget::UNLIMITED`] the trace (and solution) is bit-identical to
/// [`solve`]. The budget is checked between per-stream steps, so the
/// wall-clock overshoot is bounded by one menu scan.
pub fn solve_with_budget(ev: &Evaluator, cfg: &OptimizerConfig, budget: Budget) -> SolveOutcome {
    let started = Instant::now();
    let mut tracker = if budget.is_unlimited() {
        BudgetTracker::unlimited()
    } else {
        BudgetTracker::new(budget)
    };
    let start = initial_assignment(ev, cfg.placement);
    let descended = descent_impl(ev, cfg, start, &mut tracker);
    let solution = if cfg.gibbs_iters == 0 || tracker.is_exhausted() {
        descended
    } else {
        gibbs_impl(ev, cfg, descended, &mut tracker)
    };
    let spent = BudgetSpent {
        evaluations: solution.trace.evaluations,
        wall_s: started.elapsed().as_secs_f64(),
    };
    SolveOutcome {
        converged: !tracker.is_exhausted(),
        solution,
        spent,
    }
}

/// Fleet-scale sharded solve: partition the problem into AP/server
/// shards, solve each with the incremental optimizer in parallel under a
/// slice of `budget`, then reconcile cross-shard placements and polish
/// globally. Same anytime semantics as [`solve_with_budget`]; see
/// [`crate::shard`] for the pipeline and its guarantees.
pub fn solve_sharded(
    problem: &crate::problem::JointProblem,
    cfg: &crate::shard::ShardConfig,
    budget: Budget,
) -> Result<crate::shard::ShardedOutcome, crate::validate::ProblemError> {
    crate::shard::solve_sharded(problem, cfg, budget)
}

/// Size of the full plan product space.
fn combo_count(ev: &Evaluator) -> u64 {
    let mut combos: u64 = 1;
    for k in 0..ev.num_streams() {
        combos = combos.saturating_mul(ev.menu(k).len() as u64);
    }
    combos
}

/// Exhaustive search over the full plan product space (placement re-solved
/// per combination). Panics if the space exceeds `limit` combinations;
/// [`try_exhaustive`] is the non-panicking variant.
pub fn exhaustive(ev: &Evaluator, cfg: &OptimizerConfig, limit: u64) -> Solution {
    match try_exhaustive(ev, cfg, limit) {
        Some(sol) => sol,
        None => panic!("exhaustive space {} exceeds limit {limit}", combo_count(ev)),
    }
}

/// Exhaustive search, refusing (with `None`) rather than panicking when
/// the product space exceeds `limit` combinations. Evaluation order,
/// counts and the recorded trace are identical to the historical
/// implementation.
pub fn try_exhaustive(ev: &Evaluator, cfg: &OptimizerConfig, limit: u64) -> Option<Solution> {
    if combo_count(ev) > limit {
        return None;
    }
    let n = ev.num_streams();
    let mut idx = vec![0usize; n];
    let mut trace = SearchTrace::default();
    // Evaluate the all-zeros combination first so the engine and incumbent
    // exist unconditionally for the rest of the sweep.
    let placement = placement_for(ev, &idx, cfg.placement);
    let mut eng = Engine::new(
        ev,
        cfg,
        Assignment {
            plan_idx: idx.clone(),
            placement,
        },
    );
    trace.evaluations += 1;
    let mut best_obj = eng.objective();
    let mut best_asg = eng.assignment();
    trace.objective.push(best_obj);
    'sweep: loop {
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == n {
                break 'sweep;
            }
            idx[pos] += 1;
            if idx[pos] < ev.menu(pos).len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
        let placement = placement_for(ev, &idx, cfg.placement);
        let obj = eng.reconfigure(&idx, &placement);
        trace.evaluations += 1;
        if obj < best_obj {
            trace.objective.push(obj);
            best_obj = obj;
            best_asg = eng.assignment();
        }
    }
    let result = eng.result_for(&best_asg);
    Some(Solution {
        assignment: best_asg,
        result,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn tiny_evaluator() -> Evaluator {
        let cfg = ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 3,
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        };
        Evaluator::new(&cfg.build(), None)
    }

    #[test]
    fn descent_improves_on_initial() {
        let ev = tiny_evaluator();
        let cfg = OptimizerConfig::default();
        let init = initial_assignment(&ev, cfg.placement);
        let init_obj = ev.evaluate(&init, cfg.policies).objective;
        let sol = coordinate_descent(&ev, &cfg);
        assert!(sol.result.objective <= init_obj + 1e-12);
        assert!(!sol.trace.objective.is_empty());
    }

    #[test]
    fn trace_best_so_far_is_monotone_in_descent() {
        let ev = tiny_evaluator();
        let sol = coordinate_descent(&ev, &OptimizerConfig::default());
        // The recorded series is best-after-each-accepted-step; descent
        // only accepts improvements, so it must be non-increasing.
        for w in sol.trace.objective.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{:?}", sol.trace.objective);
        }
    }

    #[test]
    fn gibbs_never_loses_the_best() {
        let ev = tiny_evaluator();
        let cfg = OptimizerConfig {
            gibbs_iters: 60,
            ..OptimizerConfig::default()
        };
        let descended = coordinate_descent(&ev, &cfg);
        let d_obj = descended.result.objective;
        let refined = gibbs_refine(&ev, &cfg, descended);
        assert!(refined.result.objective <= d_obj + 1e-12);
    }

    #[test]
    fn full_solve_close_to_exhaustive_on_tiny_instance() {
        let scfg = ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 2,
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        };
        let p = scfg.build();
        let menu_cfg = scalpel_surgery::candidates::CandidateConfig {
            max_cuts: 4,
            prune_levels: vec![scalpel_surgery::PruneLevel::None],
            ..Default::default()
        };
        let ev = Evaluator::new(&p, Some(menu_cfg));
        let cfg = OptimizerConfig::default();
        let ex = exhaustive(&ev, &cfg, 100_000);
        let sol = solve(&ev, &cfg);
        assert!(
            sol.result.objective <= ex.result.objective * 1.10 + 1e-9,
            "joint {} vs exhaustive {}",
            sol.result.objective,
            ex.result.objective
        );
    }

    #[test]
    fn unlimited_budget_reproduces_solve_bit_for_bit() {
        let ev = tiny_evaluator();
        let cfg = OptimizerConfig::default();
        let plain = solve(&ev, &cfg);
        let outcome = solve_with_budget(&ev, &cfg, Budget::UNLIMITED);
        assert!(outcome.converged);
        assert_eq!(
            plain.result.objective.to_bits(),
            outcome.solution.result.objective.to_bits()
        );
        assert_eq!(plain.trace.objective, outcome.solution.trace.objective);
        assert_eq!(plain.trace.evaluations, outcome.solution.trace.evaluations);
        assert_eq!(outcome.spent.evaluations, plain.trace.evaluations);
    }

    #[test]
    fn eval_budget_stops_early_with_a_valid_incumbent() {
        let ev = tiny_evaluator();
        let cfg = OptimizerConfig::default();
        let full = solve_with_budget(&ev, &cfg, Budget::UNLIMITED);
        let max_menu: usize = (0..ev.num_streams())
            .map(|k| ev.menu(k).len())
            .max()
            .unwrap();
        let cap = 5;
        let cut = solve_with_budget(&ev, &cfg, Budget::evals(cap));
        assert!(!cut.converged);
        // Overshoot bounded by one per-stream menu scan.
        assert!(
            cut.spent.evaluations <= cap + max_menu,
            "spent {} vs cap {cap} + menu {max_menu}",
            cut.spent.evaluations
        );
        assert!(cut.spent.evaluations < full.spent.evaluations);
        assert!(cut.solution.result.objective.is_finite());
        assert_eq!(cut.solution.assignment.plan_idx.len(), ev.num_streams());
        for (k, &i) in cut.solution.assignment.plan_idx.iter().enumerate() {
            assert!(i < ev.menu(k).len());
        }
    }

    #[test]
    fn zero_wall_budget_returns_initial_incumbent_immediately() {
        let ev = tiny_evaluator();
        let cfg = OptimizerConfig::default();
        let outcome = solve_with_budget(&ev, &cfg, Budget::wall(Duration::ZERO));
        assert!(!outcome.converged);
        assert!(outcome.solution.result.objective.is_finite());
        // At most the initial evaluation plus one guarded menu scan.
        let max_menu: usize = (0..ev.num_streams())
            .map(|k| ev.menu(k).len())
            .max()
            .unwrap();
        assert!(outcome.spent.evaluations <= 1 + max_menu);
    }

    #[test]
    fn try_exhaustive_refuses_oversized_spaces() {
        let ev = tiny_evaluator();
        let cfg = OptimizerConfig::default();
        assert!(try_exhaustive(&ev, &cfg, 1).is_none());
    }

    #[test]
    fn determinism_same_seed_same_solution() {
        let ev = tiny_evaluator();
        let cfg = OptimizerConfig::default();
        let a = solve(&ev, &cfg);
        let b = solve(&ev, &cfg);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.result.objective, b.result.objective);
    }

    #[test]
    fn exhaustive_panics_when_space_too_large() {
        let ev = tiny_evaluator();
        let cfg = OptimizerConfig::default();
        let res =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| exhaustive(&ev, &cfg, 1)));
        assert!(res.is_err());
    }

    #[test]
    fn placement_keeps_every_stream_on_a_valid_server() {
        let ev = tiny_evaluator();
        let asg = initial_assignment(&ev, PlacementStrategy::BestResponse);
        assert!(asg.placement.iter().all(|&s| s < ev.num_servers()));
        assert_eq!(asg.plan_idx.len(), ev.num_streams());
    }

    /// The two engines must walk the same trajectory: identical objective
    /// traces (bitwise), evaluation counts, and final assignments.
    #[test]
    fn full_and_incremental_traces_are_bit_identical() {
        let ev = tiny_evaluator();
        let base = OptimizerConfig {
            gibbs_iters: 80,
            ..OptimizerConfig::default()
        };
        let full_cfg = OptimizerConfig {
            eval_mode: EvalMode::Full,
            ..base.clone()
        };
        let inc_cfg = OptimizerConfig {
            eval_mode: EvalMode::Incremental,
            ..base
        };
        let a = solve(&ev, &full_cfg);
        let b = solve(&ev, &inc_cfg);
        assert_eq!(a.trace.evaluations, b.trace.evaluations);
        assert_eq!(a.trace.objective.len(), b.trace.objective.len());
        for (i, (x, y)) in a.trace.objective.iter().zip(&b.trace.objective).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "trace[{i}]: {x} vs {y}");
        }
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.result.objective.to_bits(), b.result.objective.to_bits());
    }

    /// Same for the exhaustive reference on a tiny space.
    #[test]
    fn exhaustive_engines_agree() {
        let scfg = ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 2,
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        };
        let ev = Evaluator::new(&scfg.build(), None);
        let full_cfg = OptimizerConfig {
            eval_mode: EvalMode::Full,
            ..OptimizerConfig::default()
        };
        let inc_cfg = OptimizerConfig {
            eval_mode: EvalMode::Incremental,
            ..OptimizerConfig::default()
        };
        let a = exhaustive(&ev, &full_cfg, 1_000_000);
        let b = exhaustive(&ev, &inc_cfg, 1_000_000);
        assert_eq!(a.trace.evaluations, b.trace.evaluations);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.result.objective.to_bits(), b.result.objective.to_bits());
    }
}
