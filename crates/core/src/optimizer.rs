//! The joint search: coordinate descent + Gibbs sampling (Markov
//! approximation) over the per-stream plan menus, with the inner resource
//! allocation re-solved exactly at every step, plus an exhaustive
//! reference for small instances (F9's optimality-gap measurement).

use crate::evaluator::{AllocPolicies, Assignment, EvalResult, Evaluator};
use scalpel_alloc::placement::{self, PlacementStrategy, PlacementStream, ServerCap};
use scalpel_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Search knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Maximum coordinate-descent rounds.
    pub rounds: usize,
    /// Gibbs-sampling refinement iterations after descent.
    pub gibbs_iters: usize,
    /// Initial Boltzmann temperature (objective units).
    pub init_temperature: f64,
    /// Multiplicative cooling per Gibbs iteration.
    pub cooling: f64,
    /// RNG seed for the Gibbs chain.
    pub seed: u64,
    /// Allocation policies used while pricing.
    pub policies: AllocPolicies,
    /// Placement strategy re-run whenever plans change.
    pub placement: PlacementStrategy,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            rounds: 6,
            gibbs_iters: 200,
            init_temperature: 0.5,
            cooling: 0.985,
            seed: 11,
            policies: AllocPolicies::optimal(),
            placement: PlacementStrategy::BestResponse,
        }
    }
}

/// Objective values recorded during the search (one per accepted step).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Best-so-far objective after each improvement / Gibbs iteration.
    pub objective: Vec<f64>,
    /// Total configuration evaluations performed.
    pub evaluations: usize,
}

/// A complete joint solution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    /// Chosen plans and placement.
    pub assignment: Assignment,
    /// Its analytic pricing.
    pub result: EvalResult,
    /// Search trajectory.
    pub trace: SearchTrace,
}

/// Placement for a fixed plan selection: streams weighted by their
/// expected edge load, servers by capacity.
pub fn placement_for(
    ev: &Evaluator,
    plan_idx: &[usize],
    strategy: PlacementStrategy,
) -> Vec<usize> {
    let streams: Vec<PlacementStream> = (0..ev.num_streams())
        .map(|k| {
            let p = &ev.menu(k)[plan_idx[k]];
            PlacementStream {
                stream: k,
                edge_flops: p.remain * p.edge_flops,
                weight: ev.rate(k),
            }
        })
        .collect();
    let servers: Vec<ServerCap> = ev
        .server_caps()
        .iter()
        .enumerate()
        .map(|(server, &capacity_fps)| ServerCap {
            server,
            capacity_fps,
        })
        .collect();
    placement::place(&streams, &servers, strategy)
}

/// A reasonable starting point: per stream, the plan with the lowest
/// reference expected latency proxy; placement by the chosen strategy.
pub fn initial_assignment(ev: &Evaluator, strategy: PlacementStrategy) -> Assignment {
    let plan_idx: Vec<usize> = (0..ev.num_streams())
        .map(|k| {
            let menu = ev.menu(k);
            (0..menu.len())
                .min_by(|&a, &b| {
                    let score = |i: usize| {
                        let p = &menu[i];
                        p.exp_dev + p.remain * (ev.tx_full_seconds(k, p) * 4.0 + 1e-3)
                    };
                    score(a).partial_cmp(&score(b)).expect("finite scores")
                })
                .expect("menus are non-empty")
        })
        .collect();
    let placement = placement_for(ev, &plan_idx, strategy);
    Assignment {
        plan_idx,
        placement,
    }
}

/// Greedy coordinate descent: sweep streams, trying every plan in each
/// stream's menu (re-solving allocation each time), until a full round
/// yields no improvement.
pub fn coordinate_descent(ev: &Evaluator, cfg: &OptimizerConfig) -> Solution {
    let start = initial_assignment(ev, cfg.placement);
    coordinate_descent_from(ev, cfg, start)
}

/// [`coordinate_descent`] from an explicit starting assignment (used by
/// the convergence experiment to show descent from a naive configuration).
pub fn coordinate_descent_from(
    ev: &Evaluator,
    cfg: &OptimizerConfig,
    start: Assignment,
) -> Solution {
    let mut asg = start;
    let mut trace = SearchTrace::default();
    let mut best = ev.evaluate(&asg, cfg.policies);
    trace.evaluations += 1;
    trace.objective.push(best.objective);
    for _ in 0..cfg.rounds {
        let mut improved = false;
        for k in 0..ev.num_streams() {
            let current = asg.plan_idx[k];
            let mut best_idx = current;
            let mut best_obj = best.objective;
            for idx in 0..ev.menu(k).len() {
                if idx == current {
                    continue;
                }
                asg.plan_idx[k] = idx;
                let r = ev.evaluate(&asg, cfg.policies);
                trace.evaluations += 1;
                if r.objective < best_obj - 1e-12 {
                    best_obj = r.objective;
                    best_idx = idx;
                }
            }
            asg.plan_idx[k] = best_idx;
            if best_idx != current {
                improved = true;
            }
            // Re-evaluate at the chosen plan to refresh `best`.
            best = ev.evaluate(&asg, cfg.policies);
            trace.evaluations += 1;
            trace.objective.push(best.objective);
        }
        // Re-place with the new plan demands.
        let new_placement = placement_for(ev, &asg.plan_idx, cfg.placement);
        if new_placement != asg.placement {
            asg.placement = new_placement;
            let r = ev.evaluate(&asg, cfg.policies);
            trace.evaluations += 1;
            if r.objective < best.objective {
                improved = true;
            }
            best = r;
            trace.objective.push(best.objective);
        }
        if !improved {
            break;
        }
    }
    Solution {
        assignment: asg,
        result: best,
        trace,
    }
}

/// Gibbs-sampling refinement (Markov approximation): resample one stream's
/// plan from the Boltzmann distribution of the objective, annealing the
/// temperature. Returns the best configuration visited.
pub fn gibbs_refine(ev: &Evaluator, cfg: &OptimizerConfig, start: Solution) -> Solution {
    let mut rng = SimRng::new(cfg.seed, 4242);
    let mut asg = start.assignment.clone();
    let mut trace = start.trace.clone();
    let mut current = start.result.clone();
    let mut best_asg = asg.clone();
    let mut best = current.clone();
    let mut temp = cfg.init_temperature;
    for it in 0..cfg.gibbs_iters {
        let k = rng.index(ev.num_streams());
        let menu_len = ev.menu(k).len();
        if menu_len <= 1 {
            continue;
        }
        // Price every plan of stream k in the current context.
        let saved = asg.plan_idx[k];
        let mut objs = Vec::with_capacity(menu_len);
        let mut results = Vec::with_capacity(menu_len);
        for idx in 0..menu_len {
            asg.plan_idx[k] = idx;
            let r = if idx == saved {
                current.clone()
            } else {
                trace.evaluations += 1;
                ev.evaluate(&asg, cfg.policies)
            };
            objs.push(r.objective);
            results.push(r);
        }
        // Boltzmann sample.
        let min_obj = objs.iter().cloned().fold(f64::INFINITY, f64::min);
        let weights: Vec<f64> = objs
            .iter()
            .map(|&o| (-(o - min_obj) / temp.max(1e-9)).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut u = rng.open01() * total;
        let mut chosen = menu_len - 1;
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                chosen = i;
                break;
            }
            u -= w;
        }
        asg.plan_idx[k] = chosen;
        current = results.swap_remove(chosen);
        if current.objective < best.objective {
            best = current.clone();
            best_asg = asg.clone();
        }
        trace.objective.push(best.objective);
        temp *= cfg.cooling;
        // Periodically re-run placement.
        if it % 50 == 49 {
            let np = placement_for(ev, &asg.plan_idx, cfg.placement);
            if np != asg.placement {
                asg.placement = np;
                current = ev.evaluate(&asg, cfg.policies);
                trace.evaluations += 1;
                if current.objective < best.objective {
                    best = current.clone();
                    best_asg = asg.clone();
                }
            }
        }
    }
    Solution {
        assignment: best_asg,
        result: best,
        trace,
    }
}

/// The full joint algorithm: descent, then annealed Gibbs refinement.
pub fn solve(ev: &Evaluator, cfg: &OptimizerConfig) -> Solution {
    let descended = coordinate_descent(ev, cfg);
    if cfg.gibbs_iters == 0 {
        return descended;
    }
    gibbs_refine(ev, cfg, descended)
}

/// Exhaustive search over the full plan product space (placement re-solved
/// per combination). Panics if the space exceeds `limit` combinations.
pub fn exhaustive(ev: &Evaluator, cfg: &OptimizerConfig, limit: u64) -> Solution {
    let mut combos: u64 = 1;
    for k in 0..ev.num_streams() {
        combos = combos.saturating_mul(ev.menu(k).len() as u64);
    }
    assert!(
        combos <= limit,
        "exhaustive space {combos} exceeds limit {limit}"
    );
    let n = ev.num_streams();
    let mut idx = vec![0usize; n];
    let mut best: Option<Solution> = None;
    let mut trace = SearchTrace::default();
    loop {
        let placement = placement_for(ev, &idx, cfg.placement);
        let asg = Assignment {
            plan_idx: idx.clone(),
            placement,
        };
        let r = ev.evaluate(&asg, cfg.policies);
        trace.evaluations += 1;
        let better = best
            .as_ref()
            .is_none_or(|b| r.objective < b.result.objective);
        if better {
            trace.objective.push(r.objective);
            best = Some(Solution {
                assignment: asg,
                result: r,
                trace: SearchTrace::default(),
            });
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == n {
                let mut sol = best.expect("at least one combination evaluated");
                sol.trace = trace;
                return sol;
            }
            idx[pos] += 1;
            if idx[pos] < ev.menu(pos).len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn tiny_evaluator() -> Evaluator {
        let cfg = ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 3,
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        };
        Evaluator::new(&cfg.build(), None)
    }

    #[test]
    fn descent_improves_on_initial() {
        let ev = tiny_evaluator();
        let cfg = OptimizerConfig::default();
        let init = initial_assignment(&ev, cfg.placement);
        let init_obj = ev.evaluate(&init, cfg.policies).objective;
        let sol = coordinate_descent(&ev, &cfg);
        assert!(sol.result.objective <= init_obj + 1e-12);
        assert!(!sol.trace.objective.is_empty());
    }

    #[test]
    fn trace_best_so_far_is_monotone_in_descent() {
        let ev = tiny_evaluator();
        let sol = coordinate_descent(&ev, &OptimizerConfig::default());
        // The recorded series is best-after-each-accepted-step; descent
        // only accepts improvements, so it must be non-increasing.
        for w in sol.trace.objective.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{:?}", sol.trace.objective);
        }
    }

    #[test]
    fn gibbs_never_loses_the_best() {
        let ev = tiny_evaluator();
        let cfg = OptimizerConfig {
            gibbs_iters: 60,
            ..OptimizerConfig::default()
        };
        let descended = coordinate_descent(&ev, &cfg);
        let d_obj = descended.result.objective;
        let refined = gibbs_refine(&ev, &cfg, descended);
        assert!(refined.result.objective <= d_obj + 1e-12);
    }

    #[test]
    fn full_solve_close_to_exhaustive_on_tiny_instance() {
        let scfg = ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 2,
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        };
        let p = scfg.build();
        let menu_cfg = scalpel_surgery::candidates::CandidateConfig {
            max_cuts: 4,
            prune_levels: vec![scalpel_surgery::PruneLevel::None],
            ..Default::default()
        };
        let ev = Evaluator::new(&p, Some(menu_cfg));
        let cfg = OptimizerConfig::default();
        let ex = exhaustive(&ev, &cfg, 100_000);
        let sol = solve(&ev, &cfg);
        assert!(
            sol.result.objective <= ex.result.objective * 1.10 + 1e-9,
            "joint {} vs exhaustive {}",
            sol.result.objective,
            ex.result.objective
        );
    }

    #[test]
    fn determinism_same_seed_same_solution() {
        let ev = tiny_evaluator();
        let cfg = OptimizerConfig::default();
        let a = solve(&ev, &cfg);
        let b = solve(&ev, &cfg);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.result.objective, b.result.objective);
    }

    #[test]
    fn exhaustive_panics_when_space_too_large() {
        let ev = tiny_evaluator();
        let cfg = OptimizerConfig::default();
        let res =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| exhaustive(&ev, &cfg, 1)));
        assert!(res.is_err());
    }

    #[test]
    fn placement_keeps_every_stream_on_a_valid_server() {
        let ev = tiny_evaluator();
        let asg = initial_assignment(&ev, PlacementStrategy::BestResponse);
        assert!(asg.placement.iter().all(|&s| s < ev.num_servers()));
        assert_eq!(asg.plan_idx.len(), ev.num_streams());
    }
}
