//! The joint problem instance.

use scalpel_models::{DifficultyModel, ModelGraph};
use scalpel_sim::{ArrivalProcess, Cluster};
use serde::{Deserialize, Serialize};

/// One inference stream to be served.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Device the stream originates on.
    pub device: usize,
    /// Index into [`JointProblem::models`].
    pub model: usize,
    /// Request arrival process.
    pub arrivals: ArrivalProcess,
    /// Relative deadline per request, seconds.
    pub deadline_s: f64,
    /// Minimum acceptable expected accuracy.
    pub accuracy_floor: f64,
}

/// A complete joint-optimization instance.
#[derive(Debug, Clone)]
pub struct JointProblem {
    /// The edge topology.
    pub cluster: Cluster,
    /// The distinct backbones in play.
    pub models: Vec<ModelGraph>,
    /// Published full-model accuracy of each backbone (parallel to
    /// `models`).
    pub model_accuracy: Vec<f64>,
    /// The streams, one per device in the default scenarios.
    pub streams: Vec<StreamSpec>,
    /// Difficulty calibration shared by all streams.
    pub difficulty: DifficultyModel,
}

impl JointProblem {
    /// Validate cross-references and numerical sanity. Delegates to the
    /// strict checks in [`crate::validate`]; use
    /// [`crate::validate::validate_problem`] for the repairing variant.
    pub fn validate(&self) -> Result<(), crate::validate::ProblemError> {
        crate::validate::check_strict(self)
    }

    /// The backbone of stream `k`.
    pub fn model_of(&self, k: usize) -> &ModelGraph {
        &self.models[self.streams[k].model]
    }

    /// Mean request rate of stream `k` (req/s).
    pub fn rate_of(&self, k: usize) -> f64 {
        self.streams[k].arrivals.mean_rate()
    }

    /// Streams grouped by AP (each entry: stream ids on that AP).
    pub fn streams_by_ap(&self) -> Vec<Vec<usize>> {
        let mut by_ap = vec![Vec::new(); self.cluster.aps.len()];
        for (k, s) in self.streams.iter().enumerate() {
            by_ap[self.cluster.devices[s.device].ap].push(k);
        }
        by_ap
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use scalpel_models::{zoo, ProcessorClass};
    use scalpel_sim::{ApSpec, DeviceSpec, ServerSpec};

    pub(crate) fn tiny_problem() -> JointProblem {
        let cluster = Cluster {
            devices: (0..2)
                .map(|id| DeviceSpec {
                    id,
                    proc: ProcessorClass::Smartphone.spec(),
                    ap: 0,
                    distance_m: 30.0,
                })
                .collect(),
            aps: vec![ApSpec {
                id: 0,
                bandwidth_hz: 20e6,
                rtt_s: 2e-3,
            }],
            servers: vec![ServerSpec {
                id: 0,
                proc: ProcessorClass::EdgeGpuT4.spec(),
            }],
        };
        JointProblem {
            cluster,
            models: vec![zoo::alexnet(1000)],
            model_accuracy: vec![0.76],
            streams: (0..2)
                .map(|d| StreamSpec {
                    device: d,
                    model: 0,
                    arrivals: ArrivalProcess::Poisson { rate_hz: 5.0 },
                    deadline_s: 0.2,
                    accuracy_floor: 0.73,
                })
                .collect(),
            difficulty: DifficultyModel::default(),
        }
    }

    #[test]
    fn tiny_problem_validates() {
        assert!(tiny_problem().validate().is_ok());
    }

    #[test]
    fn bad_references_fail() {
        let mut p = tiny_problem();
        p.streams[0].device = 9;
        assert!(p.validate().is_err());
        let mut p = tiny_problem();
        p.streams[1].model = 9;
        assert!(p.validate().is_err());
        let mut p = tiny_problem();
        p.streams[0].deadline_s = 0.0;
        assert!(p.validate().is_err());
        let mut p = tiny_problem();
        p.model_accuracy.clear();
        assert!(p.validate().is_err());
    }

    #[test]
    fn grouping_by_ap() {
        let p = tiny_problem();
        let by_ap = p.streams_by_ap();
        assert_eq!(by_ap.len(), 1);
        assert_eq!(by_ap[0], vec![0, 1]);
    }

    #[test]
    fn accessors() {
        let p = tiny_problem();
        assert_eq!(p.model_of(1).name(), "alexnet");
        assert!((p.rate_of(0) - 5.0).abs() < 1e-12);
    }
}
