//! Executing solutions in the discrete-event simulator.
//!
//! The runner is where analytic beliefs meet measured reality: it compiles
//! a solution, runs the simulator over one or more seeds (rayon-parallel),
//! and aggregates the reports the experiment harness prints.

use crate::baselines::Method;
use crate::compiler;
use crate::evaluator::{Assignment, EvalResult, Evaluator};
use crate::optimizer::Solution;
use crate::problem::JointProblem;
use rayon::prelude::*;
use scalpel_sim::{
    EdgeSim, FaultPlan, LatencyStats, RecoveryConfig, SimConfig, SimReport, SimScratch,
};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Per-thread simulator scratch: the rayon seed fan-out reuses one
    /// scratch per worker across seeds, postures, and fault intensities,
    /// so only the first run on each worker pays for allocation. Safe to
    /// reuse anywhere — every run resets it on entry.
    static SIM_SCRATCH: RefCell<SimScratch> = RefCell::new(SimScratch::new());
}

/// A method's end-to-end measured outcome (possibly seed-averaged).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodOutcome {
    /// Which method.
    pub method: Method,
    /// Analytic pricing of the chosen configuration.
    pub analytic_objective: f64,
    /// Mean expected accuracy over streams (analytic).
    pub analytic_accuracy: f64,
    /// Aggregated simulated latency stats (samples pooled across seeds).
    pub latency: LatencyStats,
    /// Simulated deadline-satisfaction ratio (mean over seeds).
    pub deadline_ratio: f64,
    /// Simulated mean accuracy (mean over seeds).
    pub accuracy: f64,
    /// Fraction of requests that exited on-device (mean over seeds).
    pub early_exit_fraction: f64,
    /// Requests measured across all seeds.
    pub completed: usize,
    /// Mean expected device-side energy per request, joules (analytic).
    pub device_energy_j: f64,
    /// Mean expected total energy per request, joules (analytic).
    pub total_energy_j: f64,
    /// Requests lost to faults across all seeds (stranded + stalled;
    /// zero for fault-free runs).
    pub fault_lost: usize,
    /// Deadline misses completed while a fault was active, across seeds.
    pub fault_misses: usize,
    /// Mean observed fault recovery time, seconds (mean over seeds that
    /// observed ≥1 recovery).
    pub mean_recovery_s: f64,
    /// Requests completed through the degradation ladder, across seeds
    /// (zero when recovery is off).
    #[serde(default)]
    pub degraded: usize,
    /// Requests shed by open breakers, across seeds.
    #[serde(default)]
    pub shed: usize,
    /// Retry timeouts fired, across seeds.
    #[serde(default)]
    pub retry_timeouts: usize,
    /// Mean accuracy sacrificed per degraded completion (mean over seeds
    /// that degraded ≥1 request; zero otherwise). Negative when the
    /// ladder's local-finish rung runs the full unquantized model and
    /// beats the offload plan's accuracy — degradation then trades
    /// latency, not accuracy.
    #[serde(default)]
    pub accuracy_cost: f64,
    /// Warm-start remaps that fell back to the closest-cut heuristic
    /// because no structural/signature match existed (see
    /// [`remap_assignment`](crate::online::remap_assignment)). Zero for
    /// cold solves; populated by [`aggregate_sharded`] so the warning
    /// is carried into printed outcome rows instead of being silently
    /// absorbed inside the reconciler.
    #[serde(default)]
    pub remap_misses: usize,
}

/// Run one solution once.
pub fn run_solution(
    problem: &JointProblem,
    ev: &Evaluator,
    asg: &Assignment,
    result: &EvalResult,
    sim: SimConfig,
) -> SimReport {
    try_run_solution(problem, ev, asg, result, sim)
        .unwrap_or_else(|e| panic!("compiled streams validate by construction: {e}"))
}

/// [`run_solution`] surfacing simulator-construction failures as a typed
/// error instead of panicking — the entry point for callers feeding
/// unvalidated or repaired problems.
pub fn try_run_solution(
    problem: &JointProblem,
    ev: &Evaluator,
    asg: &Assignment,
    result: &EvalResult,
    sim: SimConfig,
) -> Result<SimReport, String> {
    let streams = compiler::compile(problem, ev, asg, result);
    let sim = EdgeSim::new(problem.cluster.clone(), streams, sim)?;
    Ok(SIM_SCRATCH.with(|scratch| sim.run_with_scratch(&mut scratch.borrow_mut())))
}

/// Run one solution over several seeds in parallel and pool the samples.
pub fn run_solution_seeds(
    problem: &JointProblem,
    ev: &Evaluator,
    sol: &Solution,
    base_sim: SimConfig,
    seeds: &[u64],
) -> Vec<SimReport> {
    seeds
        .par_iter()
        .map(|&seed| {
            let mut cfg = base_sim.clone();
            cfg.seed = seed;
            run_solution(problem, ev, &sol.assignment, &sol.result, cfg)
        })
        .collect()
}

/// Solve a fleet with the sharded optimizer and execute the resulting
/// solution in the simulator across `seeds` — the fleet-scale companion
/// of "solve then [`run_solution_seeds`]". Returns the full
/// [`ShardedOutcome`](crate::shard::ShardedOutcome) (partition, per-shard
/// reports, reconciliation stats) alongside the simulator reports so the
/// experiment harness can attribute measured latency to shard decisions.
pub fn run_sharded_seeds(
    problem: &JointProblem,
    ev: &Evaluator,
    shard_cfg: &crate::shard::ShardConfig,
    budget: crate::optimizer::Budget,
    base_sim: SimConfig,
    seeds: &[u64],
) -> Result<(crate::shard::ShardedOutcome, Vec<SimReport>), crate::validate::ProblemError> {
    let out = crate::shard::solve_sharded_with(problem, ev, shard_cfg, budget, None)?;
    if out.remap_misses > 0 {
        eprintln!(
            "warning: sharded reconciliation remapped {} stream(s) via the closest-cut \
             fallback (no structural or signature match in the target menu)",
            out.remap_misses
        );
    }
    let reports = run_solution_seeds(problem, ev, &out.outcome.solution, base_sim, seeds);
    Ok((out, reports))
}

/// Run one solution over several seeds, all under the same fault plan —
/// the resilience counterpart of [`run_solution_seeds`]. The plan is
/// shared across seeds so every method and seed faces the identical
/// disruption schedule.
pub fn run_solution_seeds_faulted(
    problem: &JointProblem,
    ev: &Evaluator,
    sol: &Solution,
    base_sim: SimConfig,
    faults: &FaultPlan,
    seeds: &[u64],
) -> Vec<SimReport> {
    let mut cfg = base_sim;
    cfg.faults = faults.clone();
    run_solution_seeds(problem, ev, sol, cfg, seeds)
}

/// Run one solution over several seeds under a shared fault plan *and* a
/// recovery policy — the closed-loop counterpart of
/// [`run_solution_seeds_faulted`]. Identical plan + seeds across recovery
/// presets isolates the policy's effect.
#[allow(clippy::too_many_arguments)]
pub fn run_solution_seeds_recovered(
    problem: &JointProblem,
    ev: &Evaluator,
    sol: &Solution,
    base_sim: SimConfig,
    faults: &FaultPlan,
    recovery: &RecoveryConfig,
    seeds: &[u64],
) -> Vec<SimReport> {
    let mut cfg = base_sim;
    cfg.faults = faults.clone();
    cfg.recovery = recovery.clone();
    run_solution_seeds(problem, ev, sol, cfg, seeds)
}

/// Aggregate seed reports into one outcome row.
pub fn aggregate(method: Method, sol: &Solution, reports: &[SimReport]) -> MethodOutcome {
    let mut all_latencies: Vec<f64> = Vec::new();
    let mut deadline = 0.0;
    let mut acc = 0.0;
    let mut early = 0.0;
    let mut completed = 0usize;
    for r in reports {
        // Pool per-stream samples via the aggregate distribution: we only
        // kept the stats, so approximate pooling by weighting means; for
        // percentile pooling we rerun from per-report quantiles. Simpler
        // and exact: reports carry per-stream stats; the harness pools
        // means and takes the max of p99s as a conservative tail.
        deadline += r.deadline_ratio;
        acc += r.mean_accuracy;
        early += r.early_exit_fraction;
        completed += r.completed;
        all_latencies.push(r.latency.mean);
    }
    let n = reports.len().max(1) as f64;
    // Conservative pooled stats: mean of means, max of tails.
    let pooled = LatencyStats {
        count: completed,
        mean: all_latencies.iter().sum::<f64>() / n,
        p50: reports.iter().map(|r| r.latency.p50).sum::<f64>() / n,
        p95: reports.iter().map(|r| r.latency.p95).sum::<f64>() / n,
        p99: reports.iter().map(|r| r.latency.p99).fold(0.0, f64::max),
        max: reports.iter().map(|r| r.latency.max).fold(0.0, f64::max),
    };
    let analytic_accuracy =
        sol.result.accuracy.iter().sum::<f64>() / sol.result.accuracy.len().max(1) as f64;
    let mean_of = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let device_energy_j = mean_of(&sol.result.device_energy_j);
    let total_energy_j = mean_of(&sol.result.total_energy_j);
    let fault_lost = reports.iter().map(|r| r.faults.lost()).sum();
    let fault_misses = reports.iter().map(|r| r.faults.misses_during_fault).sum();
    let recovered: Vec<f64> = reports
        .iter()
        .filter(|r| r.faults.recoveries > 0)
        .map(|r| r.faults.mean_recovery_s)
        .collect();
    // An empty f64 sum is -0.0, which would print as "-0.00".
    let mean_recovery_s = if recovered.is_empty() {
        0.0
    } else {
        mean_of(&recovered)
    };
    let degraded = reports.iter().map(|r| r.recovery.degraded).sum();
    let shed = reports.iter().map(|r| r.recovery.shed).sum();
    let retry_timeouts = reports.iter().map(|r| r.recovery.timeouts).sum();
    let costs: Vec<f64> = reports
        .iter()
        .filter(|r| r.recovery.degraded > 0)
        .map(|r| r.recovery.accuracy_cost)
        .collect();
    let accuracy_cost = if costs.is_empty() {
        0.0
    } else {
        mean_of(&costs)
    };
    MethodOutcome {
        method,
        analytic_objective: sol.result.objective,
        analytic_accuracy,
        latency: pooled,
        deadline_ratio: deadline / n,
        accuracy: acc / n,
        early_exit_fraction: early / n,
        completed,
        device_energy_j,
        total_energy_j,
        fault_lost,
        fault_misses,
        mean_recovery_s,
        degraded,
        shed,
        retry_timeouts,
        accuracy_cost,
        remap_misses: 0,
    }
}

/// [`aggregate`] for sharded runs: the same pooled row, plus the
/// reconciler's closest-cut fallback count so downstream tables can show
/// the warning counter next to the measured numbers.
pub fn aggregate_sharded(
    method: Method,
    out: &crate::shard::ShardedOutcome,
    reports: &[SimReport],
) -> MethodOutcome {
    let mut row = aggregate(method, &out.outcome.solution, reports);
    row.remap_misses = out.remap_misses;
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{solve_with, Method};
    use crate::config::ScenarioConfig;
    use crate::optimizer::OptimizerConfig;

    fn quick_scenario() -> (JointProblem, Evaluator, SimConfig) {
        let cfg = ScenarioConfig {
            num_aps: 1,
            devices_per_ap: 4,
            arrival_rate_hz: 4.0,
            sim: SimConfig {
                horizon_s: 8.0,
                warmup_s: 1.0,
                seed: 3,
                fading: true,
                ..SimConfig::default()
            },
            ..ScenarioConfig::default()
        };
        let p = cfg.build();
        let ev = Evaluator::new(&p, None);
        (p, ev, cfg.sim)
    }

    #[test]
    fn joint_solution_runs_in_simulator() {
        let (p, ev, sim) = quick_scenario();
        let cfg = OptimizerConfig {
            rounds: 2,
            gibbs_iters: 20,
            ..Default::default()
        };
        let sol = solve_with(&ev, Method::Joint, &cfg);
        let reports = run_solution_seeds(&p, &ev, &sol, sim, &[1, 2]);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.completed > 0);
            assert!(r.latency.mean > 0.0);
        }
        let outcome = aggregate(Method::Joint, &sol, &reports);
        assert!(outcome.deadline_ratio >= 0.0 && outcome.deadline_ratio <= 1.0);
        assert!(outcome.accuracy > 0.5);
        assert!(outcome.completed > 0);
    }

    #[test]
    fn seed_runs_differ_but_are_individually_deterministic() {
        let (p, ev, sim) = quick_scenario();
        let sol = solve_with(&ev, Method::Neurosurgeon, &OptimizerConfig::default());
        let a = run_solution_seeds(&p, &ev, &sol, sim.clone(), &[7]);
        let b = run_solution_seeds(&p, &ev, &sol, sim.clone(), &[7]);
        assert_eq!(a[0].latency.mean, b[0].latency.mean);
        let c = run_solution_seeds(&p, &ev, &sol, sim, &[8]);
        assert_ne!(a[0].latency.mean, c[0].latency.mean);
    }

    #[test]
    fn faulted_runs_conserve_requests_and_fill_outcome() {
        use scalpel_sim::FaultProfile;
        let (p, ev, sim) = quick_scenario();
        let sol = solve_with(&ev, Method::Joint, &OptimizerConfig::default());
        let plan = FaultProfile {
            rate_hz: 0.6,
            mean_outage_s: 1.5,
            start_s: 1.0,
            ..FaultProfile::default()
        }
        .plan(
            p.cluster.devices.len(),
            p.cluster.aps.len(),
            p.cluster.servers.len(),
            sim.horizon_s,
        );
        assert!(!plan.is_empty());
        let reports = run_solution_seeds_faulted(&p, &ev, &sol, sim, &plan, &[1, 2]);
        for r in &reports {
            assert_eq!(r.generated, r.completed + r.faults.lost());
            assert!(r.faults.injected > 0);
        }
        let outcome = aggregate(Method::Joint, &sol, &reports);
        assert_eq!(
            outcome.fault_lost,
            reports.iter().map(|r| r.faults.lost()).sum::<usize>()
        );
        // The identical plan under the same seed reproduces bit-for-bit.
        let again = run_solution_seeds_faulted(&p, &ev, &sol, outcome_sim(), &plan, &[1, 2]);
        assert_eq!(reports[0].latency.mean, again[0].latency.mean);
        assert_eq!(reports[0].faults, again[0].faults);
    }

    fn outcome_sim() -> SimConfig {
        quick_scenario().2
    }

    #[test]
    fn recovered_runs_account_every_request_and_fill_outcome() {
        use scalpel_sim::FaultProfile;
        let (p, ev, sim) = quick_scenario();
        let sol = solve_with(&ev, Method::Joint, &OptimizerConfig::default());
        let plan = FaultProfile {
            rate_hz: 0.8,
            mean_outage_s: 2.0,
            start_s: 1.0,
            ..FaultProfile::default()
        }
        .plan(
            p.cluster.devices.len(),
            p.cluster.aps.len(),
            p.cluster.servers.len(),
            sim.horizon_s,
        );
        let recovery = RecoveryConfig::full();
        let reports =
            run_solution_seeds_recovered(&p, &ev, &sol, sim.clone(), &plan, &recovery, &[1, 2]);
        for r in &reports {
            assert_eq!(r.generated, r.accounted());
        }
        let outcome = aggregate(Method::Joint, &sol, &reports);
        assert_eq!(
            outcome.degraded,
            reports.iter().map(|r| r.recovery.degraded).sum::<usize>()
        );
        assert!(outcome.accuracy_cost.is_finite());
        // Same plan, seeds, and policy reproduce bit-for-bit.
        let again = run_solution_seeds_recovered(&p, &ev, &sol, sim, &plan, &recovery, &[1, 2]);
        assert_eq!(reports[0].latency.mean, again[0].latency.mean);
        assert_eq!(reports[0].recovery, again[0].recovery);
    }

    #[test]
    fn aggregate_pools_conservatively() {
        let (p, ev, sim) = quick_scenario();
        let sol = solve_with(&ev, Method::EdgeOnly, &OptimizerConfig::default());
        let reports = run_solution_seeds(&p, &ev, &sol, sim, &[1, 2, 3]);
        let outcome = aggregate(Method::EdgeOnly, &sol, &reports);
        let max_p99 = reports.iter().map(|r| r.latency.p99).fold(0.0, f64::max);
        assert_eq!(outcome.latency.p99, max_p99);
        assert_eq!(
            outcome.completed,
            reports.iter().map(|r| r.completed).sum::<usize>()
        );
    }
}
