//! The long-lived planning service: churn-driven replanning with
//! switching hysteresis, checkpoint/restore, and a degraded-mode ladder.
//!
//! The batch CLI answers "what is the best joint plan *right now*"; this
//! module keeps that answer fresh as the fleet churns. A
//! [`PlanningService`] owns the incumbent solution and an event loop
//! driven by two calls:
//!
//! * [`offer_batch`](PlanningService::offer_batch) — ingest a validated
//!   batch of [`ChurnEvent`]s (device join/leave, link/capacity/load
//!   drift). Batches are atomic: one bad event rejects the whole batch
//!   and the fleet view stays consistent with the event log.
//! * [`tick`](PlanningService::tick) — advance one debounce interval.
//!   When enough events are pending, re-solve warm-started under the
//!   configured budget and emit a [`PlanDelta`] (moves + plan changes),
//!   never a whole plan.
//!
//! Three robustness pillars:
//!
//! 1. **[`SwitchGovernor`]** — naive per-event replanning thrashes
//!    streams between servers. The governor keeps a rolling per-stream
//!    latency window (rita-ens `exit_switcher` idiom: no switch until the
//!    window is full), a per-stream minimum dwell time, and a
//!    switch-cost-aware acceptance test: a stream moves only when the
//!    windowed incumbent latency minus the candidate latency exceeds
//!    `switch_cost_s + hysteresis_margin_s`. Switches per tick are capped,
//!    best-improvement-first, so one replan has bounded blast radius.
//!    Plan-index changes (new cut/exit on the same server) migrate no
//!    state and are always free.
//! 2. **Checkpoint/restore** — [`checkpoint_text`](PlanningService::checkpoint_text)
//!    serializes the full planner state (incumbent assignment, fleet
//!    factors, governor windows, ladder counters, event cursor) with every
//!    `f64` as its exact bit pattern; [`restore`](PlanningService::restore)
//!    rebuilds a service that, fed the tail of the same event log under an
//!    evaluation-count budget, replays bit-identically to the run that
//!    never crashed.
//! 3. **Degraded-mode ladder** — when ingest validation rejects a batch
//!    or the solve budget expires before convergence, the service stays
//!    on the last good plan, reports itself degraded, and backs off
//!    replan attempts exponentially (capped) instead of spinning.
//!
//! Determinism note: with [`Budget::evals`] (or unlimited) budgets every
//! path in here is clock-free and bit-deterministic; wall-clock budgets
//! trade that for latency bounds, which is the right default for a real
//! daemon but not for replay tests.

use crate::evaluator::{Assignment, EvalResult, Evaluator};
use crate::online::{self, OnlineController, Proposal};
use crate::optimizer::{Budget, OptimizerConfig, Solution};
use crate::problem::JointProblem;
use crate::shard::ShardConfig;
use crate::validate::{validate_churn_batch, ProblemError};
use scalpel_sim::churn::FACTOR_FLOOR;
use scalpel_sim::{ArrivalProcess, ChurnEvent, ChurnKind, ChurnTrace};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Exact text encoding of an `f64` for checkpoints: IEEE-754 bits in hex.
fn hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_hex(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bits {s:?}: {e}"))
}

/// The service's current multiplicative view of the fleet: every churn
/// event folds into a per-resource factor over the *base* problem, so
/// stream/AP/server indices stay stable across arbitrarily long runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetState {
    /// Per-AP bandwidth factor in `[FACTOR_FLOOR, 1]`.
    pub link_factor: Vec<f64>,
    /// Per-server capacity factor in `[FACTOR_FLOOR, 1]`.
    pub cap_factor: Vec<f64>,
    /// Per-stream offered-load factor.
    pub load_factor: Vec<f64>,
    /// Per-device liveness. A down device's streams are not removed (that
    /// would renumber everything); their load is floored to
    /// [`FACTOR_FLOOR`] × the current load factor instead.
    pub device_up: Vec<bool>,
}

impl FleetState {
    /// The nominal (no-churn) view of `base`.
    pub fn nominal(base: &JointProblem) -> Self {
        Self {
            link_factor: vec![1.0; base.cluster.aps.len()],
            cap_factor: vec![1.0; base.cluster.servers.len()],
            load_factor: vec![1.0; base.streams.len()],
            device_up: vec![true; base.cluster.devices.len()],
        }
    }

    /// Fold one (already validated) event into the view.
    pub fn apply(&mut self, event: &ChurnEvent) {
        match event.kind {
            ChurnKind::DeviceDown { device } => self.device_up[device] = false,
            ChurnKind::DeviceUp { device } => self.device_up[device] = true,
            ChurnKind::LinkDrift { ap, factor } => self.link_factor[ap] = factor,
            ChurnKind::CapacityDrift { server, factor } => self.cap_factor[server] = factor,
            ChurnKind::LoadDrift { stream, factor } => self.load_factor[stream] = factor,
        }
    }

    /// The effective problem under the current view: base scaled by the
    /// per-resource factors. Pure and deterministic — the same view always
    /// produces the bit-identical problem.
    pub fn effective_problem(&self, base: &JointProblem) -> JointProblem {
        let mut p = base.clone();
        for (ap, f) in p.cluster.aps.iter_mut().zip(&self.link_factor) {
            ap.bandwidth_hz *= f;
        }
        for (srv, f) in p.cluster.servers.iter_mut().zip(&self.cap_factor) {
            srv.proc.flops_per_sec *= f;
        }
        for (k, s) in p.streams.iter_mut().enumerate() {
            let mut f = self.load_factor[k];
            if !self.device_up[s.device] {
                f *= FACTOR_FLOOR;
            }
            s.arrivals = scale_arrivals(&s.arrivals, f);
        }
        p
    }
}

/// Scale an arrival process's mean rate by `f > 0`, preserving its shape.
fn scale_arrivals(a: &ArrivalProcess, f: f64) -> ArrivalProcess {
    match a {
        ArrivalProcess::Poisson { rate_hz } => ArrivalProcess::Poisson {
            rate_hz: rate_hz * f,
        },
        ArrivalProcess::Periodic {
            period_s,
            jitter_frac,
        } => ArrivalProcess::Periodic {
            period_s: period_s / f,
            jitter_frac: *jitter_frac,
        },
        ArrivalProcess::Mmpp2 {
            rate_low,
            rate_high,
            switch_rate,
        } => ArrivalProcess::Mmpp2 {
            rate_low: rate_low * f,
            rate_high: rate_high * f,
            switch_rate: *switch_rate,
        },
        ArrivalProcess::Trace { gaps } => ArrivalProcess::Trace {
            gaps: gaps.iter().map(|g| g / f).collect(),
        },
    }
}

/// Hysteresis parameters for the [`SwitchGovernor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// A stream that switched servers may not switch again for this long.
    pub min_dwell_s: f64,
    /// Priced cost of migrating one stream (connection re-establishment,
    /// state transfer), seconds of latency-equivalent.
    pub switch_cost_s: f64,
    /// Extra margin the improvement must clear beyond the switch cost.
    pub hysteresis_margin_s: f64,
    /// Hard cap on server switches adopted in one tick (blast radius).
    pub max_switches_per_tick: usize,
    /// A stream's rolling latency window must hold this many samples
    /// before it is allowed to switch at all (rita-ens warm-up idiom).
    pub window: usize,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self {
            min_dwell_s: 10.0,
            switch_cost_s: 0.010,
            hysteresis_margin_s: 0.005,
            max_switches_per_tick: 2,
            window: 3,
        }
    }
}

/// What the governor did with one candidate plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernorDecision {
    /// The governed assignment: candidate plans, incumbent placements
    /// except for the accepted switches.
    pub adopted: Assignment,
    /// Streams whose server switch was accepted, ascending.
    pub switched: Vec<usize>,
    /// Proposed switches vetoed because the stream's window is not full.
    pub rejected_window: usize,
    /// Proposed switches vetoed by the minimum dwell time.
    pub rejected_dwell: usize,
    /// Proposed switches whose priced improvement did not clear the
    /// switch cost plus hysteresis margin.
    pub rejected_margin: usize,
    /// Eligible switches dropped by the per-tick cap.
    pub rejected_cap: usize,
}

/// Switching-hysteresis gate between the solver and the fleet.
///
/// Plan-index changes pass through untouched; a server switch for stream
/// `k` is adopted only when (window full) ∧ (dwell elapsed) ∧ (windowed
/// incumbent latency − candidate latency > switch_cost + margin), and at
/// most `max_switches_per_tick` winners (largest priced improvement
/// first, ties to the lowest stream index) land per tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchGovernor {
    /// Hysteresis parameters.
    pub cfg: GovernorConfig,
    /// When each stream last switched servers (−∞ = never).
    last_switch_s: Vec<f64>,
    /// Rolling incumbent latencies per stream, newest last, len ≤ window.
    windows: Vec<Vec<f64>>,
}

impl SwitchGovernor {
    /// A governor for `num_streams` streams with empty windows.
    pub fn new(cfg: GovernorConfig, num_streams: usize) -> Self {
        Self {
            cfg,
            last_switch_s: vec![f64::NEG_INFINITY; num_streams],
            windows: vec![Vec::new(); num_streams],
        }
    }

    /// Record the incumbent's per-stream latencies under the current
    /// conditions (one sample per replan tick).
    pub fn observe(&mut self, incumbent: &EvalResult) {
        for (w, &lat) in self.windows.iter_mut().zip(&incumbent.latency_s) {
            if w.len() >= self.cfg.window.max(1) {
                w.remove(0);
            }
            w.push(lat);
        }
    }

    /// Gate a candidate against the incumbent (`warm`, already remapped
    /// onto the same evaluator). Updates dwell clocks for accepted
    /// switches.
    pub fn govern(
        &mut self,
        now_s: f64,
        warm: &Assignment,
        candidate: &Assignment,
        candidate_latency: &[f64],
    ) -> GovernorDecision {
        let mut adopted = Assignment {
            plan_idx: candidate.plan_idx.clone(),
            placement: warm.placement.clone(),
        };
        let mut eligible: Vec<(f64, usize)> = Vec::new();
        let (mut rejected_window, mut rejected_dwell, mut rejected_margin) = (0, 0, 0);
        for (k, &cand_lat) in candidate_latency
            .iter()
            .enumerate()
            .take(warm.placement.len())
        {
            if candidate.placement[k] == warm.placement[k] {
                continue;
            }
            let win = &self.windows[k];
            if win.len() < self.cfg.window {
                rejected_window += 1;
                continue;
            }
            if now_s - self.last_switch_s[k] < self.cfg.min_dwell_s {
                rejected_dwell += 1;
                continue;
            }
            let windowed = win.iter().sum::<f64>() / win.len() as f64;
            let improvement = windowed - cand_lat;
            if improvement <= self.cfg.switch_cost_s + self.cfg.hysteresis_margin_s {
                rejected_margin += 1;
                continue;
            }
            eligible.push((improvement, k));
        }
        // Largest priced improvement first; deterministic tie-break on
        // the stream index so equal improvements never reorder.
        eligible.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let rejected_cap = eligible
            .len()
            .saturating_sub(self.cfg.max_switches_per_tick);
        let mut switched: Vec<usize> = eligible
            .iter()
            .take(self.cfg.max_switches_per_tick)
            .map(|&(_, k)| k)
            .collect();
        switched.sort_unstable();
        for &k in &switched {
            adopted.placement[k] = candidate.placement[k];
            self.last_switch_s[k] = now_s;
        }
        GovernorDecision {
            adopted,
            switched,
            rejected_window,
            rejected_dwell,
            rejected_margin,
            rejected_cap,
        }
    }
}

/// One stream moving between servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamMove {
    /// The stream that moved.
    pub stream: usize,
    /// Previous server.
    pub from_server: usize,
    /// New server.
    pub to_server: usize,
}

/// One stream changing surgery plan (same server, new menu entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanChange {
    /// The stream whose plan changed.
    pub stream: usize,
    /// Previous menu index.
    pub from_plan: usize,
    /// New menu index.
    pub to_plan: usize,
}

/// What one replan tick changed — the service's output unit. Deltas are
/// small under the governor (bounded moves per tick) where whole plans
/// would be O(fleet) every tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanDelta {
    /// Tick that produced this delta.
    pub tick: u64,
    /// Service time at the tick, seconds.
    pub now_s: f64,
    /// Accepted server switches.
    pub moves: Vec<StreamMove>,
    /// Plan-index changes (free — no stream migration).
    pub plan_changes: Vec<PlanChange>,
    /// Objective of the incumbent re-priced under the new conditions.
    pub objective_before: f64,
    /// Objective of the governed plan actually adopted.
    pub objective_after: f64,
}

impl PlanDelta {
    /// `true` when the tick changed nothing.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty() && self.plan_changes.is_empty()
    }
}

/// Service parameters. `restore` requires the same base problem and the
/// same config the checkpoint was taken under.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Solver configuration (seeded — keep fixed for deterministic runs).
    pub optimizer: OptimizerConfig,
    /// Hysteresis parameters.
    pub governor: GovernorConfig,
    /// Per-tick replan budget. Use [`Budget::evals`] for bit-determinism.
    pub replan_budget: Budget,
    /// Replan only once at least this many events are pending (≥ 1).
    pub debounce_events: usize,
    /// Tick period, seconds.
    pub tick_s: f64,
    /// Bypass the governor entirely (the thrash baseline for f18).
    pub ungoverned: bool,
    /// Solve via [`crate::shard::solve_sharded_with`] instead of global
    /// descent — the fleet-scale path.
    pub shard: Option<ShardConfig>,
    /// Ceiling on the exponential backoff, ticks.
    pub max_backoff_ticks: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            optimizer: OptimizerConfig::default(),
            governor: GovernorConfig::default(),
            replan_budget: Budget::UNLIMITED,
            debounce_events: 1,
            tick_s: 1.0,
            ungoverned: false,
            shard: None,
            max_backoff_ticks: 64,
        }
    }
}

/// One row of the service's status report (also the status-log line
/// format via [`to_line`](ServiceStatus::to_line)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceStatus {
    /// Ticks elapsed.
    pub tick: u64,
    /// Service time, seconds.
    pub now_s: f64,
    /// Whether the service is in degraded mode (stale plan in force).
    pub degraded: bool,
    /// Consecutive replan/ingest failures.
    pub consecutive_failures: u32,
    /// Backoff ticks remaining before the next replan attempt.
    pub backoff_ticks_remaining: u32,
    /// Churn events consumed (the event cursor).
    pub events_consumed: usize,
    /// Event batches rejected by ingest validation.
    pub rejected_batches: u64,
    /// Replans completed.
    pub total_replans: u64,
    /// Server switches adopted across all ticks.
    pub total_switches: u64,
    /// Plan-index changes adopted across all ticks.
    pub total_plan_changes: u64,
    /// Warm-start remap misses (closest-cut fallbacks) across all
    /// replans. Non-zero is a warning: warm starts were approximate.
    pub remap_misses: u64,
    /// Objective of the incumbent plan.
    pub last_objective: f64,
    /// Expected deadline misses of the incumbent plan.
    pub expected_misses: usize,
}

impl ServiceStatus {
    /// One-line key=value rendering for status logs.
    pub fn to_line(&self) -> String {
        format!(
            "tick={} now_s={:.3} degraded={} failures={} backoff={} events={} rejected={} \
             replans={} switches={} plan_changes={} remap_misses={} objective={:.6} \
             expected_misses={}",
            self.tick,
            self.now_s,
            self.degraded,
            self.consecutive_failures,
            self.backoff_ticks_remaining,
            self.events_consumed,
            self.rejected_batches,
            self.total_replans,
            self.total_switches,
            self.total_plan_changes,
            self.remap_misses,
            self.last_objective,
            self.expected_misses,
        )
    }
}

/// What one [`tick`](PlanningService::tick) did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TickOutcome {
    /// The tick number.
    pub tick: u64,
    /// Whether a replan ran to completion and was (governed-)adopted.
    pub replanned: bool,
    /// The emitted delta, when a replan adopted anything.
    pub delta: Option<PlanDelta>,
    /// Whether the service is degraded after this tick.
    pub degraded: bool,
}

/// A malformed or inconsistent checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    /// 1-based line number (0 when structural).
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint line {}: {}", self.line, self.reason)
    }
}

impl Error for CheckpointError {}

/// The long-lived planning service. See the module docs for the loop.
pub struct PlanningService {
    base: JointProblem,
    cfg: ServiceConfig,
    fleet: FleetState,
    controller: OnlineController,
    evaluator: Evaluator,
    governor: SwitchGovernor,
    tick: u64,
    now_s: f64,
    cursor: usize,
    cursor_s: f64,
    dirty: usize,
    consecutive_failures: u32,
    backoff_ticks_remaining: u32,
    degraded: bool,
    rejected_batches: u64,
    total_replans: u64,
    total_switches: u64,
    total_plan_changes: u64,
    remap_misses: u64,
}

impl PlanningService {
    /// Validate `base`, solve the nominal environment from scratch, and
    /// start the loop at tick 0 with an empty event cursor.
    pub fn new(base: JointProblem, cfg: ServiceConfig) -> Result<Self, ProblemError> {
        let evaluator = Evaluator::try_new(&base, None)?;
        if let Some(sc) = &cfg.shard {
            crate::validate::validate_shard_config(&base, sc)?;
        }
        let controller = OnlineController::bootstrap(&evaluator, cfg.optimizer.clone());
        let num_streams = base.streams.len();
        let governor = SwitchGovernor::new(cfg.governor, num_streams);
        let fleet = FleetState::nominal(&base);
        Ok(Self {
            base,
            cfg,
            fleet,
            controller,
            evaluator,
            governor,
            tick: 0,
            now_s: 0.0,
            cursor: 0,
            cursor_s: 0.0,
            dirty: 0,
            consecutive_failures: 0,
            backoff_ticks_remaining: 0,
            degraded: false,
            rejected_batches: 0,
            total_replans: 0,
            total_switches: 0,
            total_plan_changes: 0,
            remap_misses: 0,
        })
    }

    /// The incumbent solution (last good plan).
    pub fn solution(&self) -> &Solution {
        self.controller.solution()
    }

    /// The incumbent assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.controller.solution().assignment
    }

    /// Events consumed so far (the replay cursor into the event log).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// The current effective problem (base scaled by the fleet view).
    pub fn effective_problem(&self) -> JointProblem {
        self.fleet.effective_problem(&self.base)
    }

    /// The evaluator of the last-adopted environment — the menus the
    /// incumbent assignment's plan indices refer to.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// The current status row.
    pub fn status(&self) -> ServiceStatus {
        let sol = self.controller.solution();
        ServiceStatus {
            tick: self.tick,
            now_s: self.now_s,
            degraded: self.degraded,
            consecutive_failures: self.consecutive_failures,
            backoff_ticks_remaining: self.backoff_ticks_remaining,
            events_consumed: self.cursor,
            rejected_batches: self.rejected_batches,
            total_replans: self.total_replans,
            total_switches: self.total_switches,
            total_plan_changes: self.total_plan_changes,
            remap_misses: self.remap_misses,
            last_objective: sol.result.objective,
            expected_misses: sol.result.expected_misses,
        }
    }

    /// Ingest one atomic event batch. On success every event is folded
    /// into the fleet view and the cursor advances past the batch; on
    /// validation failure *nothing* is applied, the batch counts as
    /// rejected, and the degraded ladder engages.
    pub fn offer_batch(&mut self, events: &[ChurnEvent]) -> Result<usize, ProblemError> {
        if events.is_empty() {
            return Ok(0);
        }
        if let Err(e) = validate_churn_batch(&self.base, self.cursor_s, events) {
            self.rejected_batches += 1;
            self.fail();
            return Err(e);
        }
        for ev in events {
            self.fleet.apply(ev);
            self.cursor_s = ev.at_s;
        }
        self.cursor += events.len();
        self.dirty += events.len();
        Ok(events.len())
    }

    /// Advance one tick. Replans only when at least `debounce_events`
    /// events are pending and no backoff is in force; otherwise the tick
    /// is idle (and consumes one backoff step, if any).
    pub fn tick(&mut self) -> TickOutcome {
        self.tick += 1;
        // Multiplication, not accumulation: tick 1000's timestamp is the
        // same bit pattern whether or not the service restarted at 500.
        self.now_s = self.tick as f64 * self.cfg.tick_s;
        let idle = |s: &Self| TickOutcome {
            tick: s.tick,
            replanned: false,
            delta: None,
            degraded: s.degraded,
        };
        if self.backoff_ticks_remaining > 0 {
            self.backoff_ticks_remaining -= 1;
            return idle(self);
        }
        if self.dirty < self.cfg.debounce_events.max(1) {
            return idle(self);
        }
        let new_problem = self.fleet.effective_problem(&self.base);
        let new_ev = match Evaluator::try_new(&new_problem, None) {
            Ok(ev) => ev,
            Err(_) => {
                // Churn drove the effective problem out of the evaluable
                // envelope; stay on the last good plan and back off.
                self.fail();
                return idle(self);
            }
        };
        let proposal = match self.propose(&new_problem, &new_ev) {
            Ok(p) => p,
            Err(_) => {
                self.fail();
                return idle(self);
            }
        };
        if !proposal.report.converged {
            // Budget expired mid-solve: the partial result is discarded,
            // the last good plan stays in force, and we back off.
            self.fail();
            return idle(self);
        }
        self.governor.observe(&proposal.stale);
        let decision = if self.cfg.ungoverned {
            let switched: Vec<usize> = proposal
                .warm
                .placement
                .iter()
                .zip(&proposal.solution.assignment.placement)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(k, _)| k)
                .collect();
            GovernorDecision {
                adopted: proposal.solution.assignment.clone(),
                switched,
                rejected_window: 0,
                rejected_dwell: 0,
                rejected_margin: 0,
                rejected_cap: 0,
            }
        } else {
            self.governor.govern(
                self.now_s,
                &proposal.warm,
                &proposal.solution.assignment,
                &proposal.solution.result.latency_s,
            )
        };
        let moves: Vec<StreamMove> = decision
            .switched
            .iter()
            .map(|&k| StreamMove {
                stream: k,
                from_server: proposal.warm.placement[k],
                to_server: decision.adopted.placement[k],
            })
            .collect();
        let plan_changes: Vec<PlanChange> = proposal
            .warm
            .plan_idx
            .iter()
            .zip(&decision.adopted.plan_idx)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(k, (&a, &b))| PlanChange {
                stream: k,
                from_plan: a,
                to_plan: b,
            })
            .collect();
        let adopted = self.controller.adopt(&new_ev, decision.adopted);
        let delta = PlanDelta {
            tick: self.tick,
            now_s: self.now_s,
            objective_before: proposal.report.stale_objective,
            objective_after: adopted.result.objective,
            moves,
            plan_changes,
        };
        self.evaluator = new_ev;
        self.dirty = 0;
        self.total_replans += 1;
        self.total_switches += delta.moves.len() as u64;
        self.total_plan_changes += delta.plan_changes.len() as u64;
        self.remap_misses += proposal.report.remap_misses as u64;
        self.succeed();
        TickOutcome {
            tick: self.tick,
            replanned: true,
            delta: Some(delta),
            degraded: false,
        }
    }

    /// Warm-started candidate under the configured budget: global descent
    /// by default, sharded solve when [`ServiceConfig::shard`] is set.
    fn propose(
        &self,
        new_problem: &JointProblem,
        new_ev: &Evaluator,
    ) -> Result<Proposal, ProblemError> {
        match &self.cfg.shard {
            None => Ok(self.controller.propose_with_budget(
                &self.evaluator,
                new_ev,
                self.cfg.replan_budget,
            )),
            Some(sc) => {
                let (warm, misses) = online::remap_assignment_counted(
                    &self.evaluator,
                    new_ev,
                    &self.controller.solution().assignment,
                );
                let stale = new_ev.evaluate(&warm, self.cfg.optimizer.policies);
                let out = crate::shard::solve_sharded_with(
                    new_problem,
                    new_ev,
                    sc,
                    self.cfg.replan_budget,
                    Some(&warm),
                )?;
                let solution = out.outcome.solution;
                let report = crate::online::AdaptReport {
                    stale_objective: stale.objective,
                    adapted_objective: solution.result.objective,
                    evaluations: solution.trace.evaluations,
                    resolve_ms: 0.0,
                    converged: out.outcome.converged,
                    plans_changed: 0,
                    placements_changed: 0,
                    remap_misses: misses + out.remap_misses,
                };
                Ok(Proposal {
                    solution,
                    report,
                    warm,
                    stale,
                })
            }
        }
    }

    fn fail(&mut self) {
        self.consecutive_failures += 1;
        let exp = (self.consecutive_failures - 1).min(16);
        self.backoff_ticks_remaining = (1u32 << exp).min(self.cfg.max_backoff_ticks.max(1));
        self.degraded = true;
    }

    fn succeed(&mut self) {
        self.consecutive_failures = 0;
        self.backoff_ticks_remaining = 0;
        self.degraded = false;
    }

    /// Serialize the full planner state. Every `f64` is written as its
    /// exact bit pattern, so `restore` + tail replay is bit-identical to
    /// the run that never stopped (under clock-free budgets).
    pub fn checkpoint_text(&self) -> String {
        let sol = self.controller.solution();
        let mut s = String::with_capacity(1024);
        s.push_str("scalpel-serve-checkpoint v1\n");
        s.push_str(&format!("tick {}\n", self.tick));
        s.push_str(&format!("now {}\n", hex(self.now_s)));
        s.push_str(&format!("cursor {}\n", self.cursor));
        s.push_str(&format!("cursor_s {}\n", hex(self.cursor_s)));
        s.push_str(&format!("dirty {}\n", self.dirty));
        s.push_str(&format!("failures {}\n", self.consecutive_failures));
        s.push_str(&format!("backoff {}\n", self.backoff_ticks_remaining));
        s.push_str(&format!("degraded {}\n", u8::from(self.degraded)));
        s.push_str(&format!("rejected_batches {}\n", self.rejected_batches));
        s.push_str(&format!("total_replans {}\n", self.total_replans));
        s.push_str(&format!("total_switches {}\n", self.total_switches));
        s.push_str(&format!("total_plan_changes {}\n", self.total_plan_changes));
        s.push_str(&format!("remap_misses {}\n", self.remap_misses));
        let join_us = |v: &[usize]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        };
        let join_f = |v: &[f64]| v.iter().map(|&x| hex(x)).collect::<Vec<_>>().join(" ");
        s.push_str(&format!("plan {}\n", join_us(&sol.assignment.plan_idx)));
        s.push_str(&format!("place {}\n", join_us(&sol.assignment.placement)));
        s.push_str(&format!("link {}\n", join_f(&self.fleet.link_factor)));
        s.push_str(&format!("cap {}\n", join_f(&self.fleet.cap_factor)));
        s.push_str(&format!("load {}\n", join_f(&self.fleet.load_factor)));
        s.push_str(&format!(
            "up {}\n",
            self.fleet
                .device_up
                .iter()
                .map(|&b| if b { "1" } else { "0" })
                .collect::<Vec<_>>()
                .join(" ")
        ));
        s.push_str(&format!("dwell {}\n", join_f(&self.governor.last_switch_s)));
        for (k, w) in self.governor.windows.iter().enumerate() {
            s.push_str(&format!("win {k} {}\n", join_f(w)));
        }
        s.push_str("end\n");
        s
    }

    /// Rebuild a service from a checkpoint taken by a service over the
    /// same `base` and `cfg`. The restored instance re-prices the
    /// incumbent on the reconstructed effective problem — one evaluation,
    /// no search — and is then indistinguishable from the original.
    pub fn restore(
        base: JointProblem,
        cfg: ServiceConfig,
        text: &str,
    ) -> Result<Self, CheckpointError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(CheckpointError {
            line: 0,
            reason: "empty checkpoint".into(),
        })?;
        if header.trim() != "scalpel-serve-checkpoint v1" {
            return Err(CheckpointError {
                line: 1,
                reason: format!("bad header {header:?}"),
            });
        }
        let mut tick = 0u64;
        let mut now_s = 0.0f64;
        let mut cursor = 0usize;
        let mut cursor_s = 0.0f64;
        let mut dirty = 0usize;
        let mut failures = 0u32;
        let mut backoff = 0u32;
        let mut degraded = false;
        let mut rejected_batches = 0u64;
        let mut total_replans = 0u64;
        let mut total_switches = 0u64;
        let mut total_plan_changes = 0u64;
        let mut remap_misses = 0u64;
        let mut plan: Option<Vec<usize>> = None;
        let mut place: Option<Vec<usize>> = None;
        let mut link: Option<Vec<f64>> = None;
        let mut capf: Option<Vec<f64>> = None;
        let mut load: Option<Vec<f64>> = None;
        let mut up: Option<Vec<bool>> = None;
        let mut dwell: Option<Vec<f64>> = None;
        let mut wins: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut saw_end = false;
        for (i, line) in lines {
            let lineno = i + 1;
            let err = |reason: String| CheckpointError {
                line: lineno,
                reason,
            };
            let body = line.trim();
            if body.is_empty() {
                continue;
            }
            if body == "end" {
                saw_end = true;
                continue;
            }
            let (key, rest) = body.split_once(' ').unwrap_or((body, ""));
            let parse_usize_list = |s: &str| -> Result<Vec<usize>, CheckpointError> {
                s.split_whitespace()
                    .map(|t| t.parse::<usize>().map_err(|e| err(format!("{t:?}: {e}"))))
                    .collect()
            };
            let parse_f64_list = |s: &str| -> Result<Vec<f64>, CheckpointError> {
                s.split_whitespace()
                    .map(|t| parse_hex(t).map_err(&err))
                    .collect()
            };
            match key {
                "tick" => tick = rest.trim().parse().map_err(|e| err(format!("{e}")))?,
                "now" => now_s = parse_hex(rest.trim()).map_err(&err)?,
                "cursor" => cursor = rest.trim().parse().map_err(|e| err(format!("{e}")))?,
                "cursor_s" => cursor_s = parse_hex(rest.trim()).map_err(&err)?,
                "dirty" => dirty = rest.trim().parse().map_err(|e| err(format!("{e}")))?,
                "failures" => failures = rest.trim().parse().map_err(|e| err(format!("{e}")))?,
                "backoff" => backoff = rest.trim().parse().map_err(|e| err(format!("{e}")))?,
                "degraded" => degraded = rest.trim() == "1",
                "rejected_batches" => {
                    rejected_batches = rest.trim().parse().map_err(|e| err(format!("{e}")))?
                }
                "total_replans" => {
                    total_replans = rest.trim().parse().map_err(|e| err(format!("{e}")))?
                }
                "total_switches" => {
                    total_switches = rest.trim().parse().map_err(|e| err(format!("{e}")))?
                }
                "total_plan_changes" => {
                    total_plan_changes = rest.trim().parse().map_err(|e| err(format!("{e}")))?
                }
                "remap_misses" => {
                    remap_misses = rest.trim().parse().map_err(|e| err(format!("{e}")))?
                }
                "plan" => plan = Some(parse_usize_list(rest)?),
                "place" => place = Some(parse_usize_list(rest)?),
                "link" => link = Some(parse_f64_list(rest)?),
                "cap" => capf = Some(parse_f64_list(rest)?),
                "load" => load = Some(parse_f64_list(rest)?),
                "up" => {
                    up = Some(
                        rest.split_whitespace()
                            .map(|t| match t {
                                "1" => Ok(true),
                                "0" => Ok(false),
                                other => Err(err(format!("bad liveness bit {other:?}"))),
                            })
                            .collect::<Result<Vec<bool>, _>>()?,
                    )
                }
                "dwell" => dwell = Some(parse_f64_list(rest)?),
                "win" => {
                    let (idx, vals) = rest.split_once(' ').unwrap_or((rest, ""));
                    let k: usize = idx
                        .trim()
                        .parse()
                        .map_err(|e| err(format!("bad window index: {e}")))?;
                    wins.push((k, parse_f64_list(vals)?));
                }
                other => return Err(err(format!("unknown key {other:?}"))),
            }
        }
        if !saw_end {
            return Err(CheckpointError {
                line: 0,
                reason: "truncated checkpoint (no end marker)".into(),
            });
        }
        let structural = |reason: String| CheckpointError { line: 0, reason };
        let missing = |what: &str| structural(format!("missing {what} record"));
        let plan = plan.ok_or_else(|| missing("plan"))?;
        let place = place.ok_or_else(|| missing("place"))?;
        let link_factor = link.ok_or_else(|| missing("link"))?;
        let cap_factor = capf.ok_or_else(|| missing("cap"))?;
        let load_factor = load.ok_or_else(|| missing("load"))?;
        let device_up = up.ok_or_else(|| missing("up"))?;
        let last_switch_s = dwell.ok_or_else(|| missing("dwell"))?;
        let n = base.streams.len();
        if plan.len() != n
            || place.len() != n
            || load_factor.len() != n
            || last_switch_s.len() != n
            || link_factor.len() != base.cluster.aps.len()
            || cap_factor.len() != base.cluster.servers.len()
            || device_up.len() != base.cluster.devices.len()
        {
            return Err(structural(
                "checkpoint dimensions do not match the base problem".into(),
            ));
        }
        let mut windows = vec![Vec::new(); n];
        for (k, w) in wins {
            if k >= n {
                return Err(structural(format!("window for unknown stream {k}")));
            }
            windows[k] = w;
        }
        let fleet = FleetState {
            link_factor,
            cap_factor,
            load_factor,
            device_up,
        };
        let effective = fleet.effective_problem(&base);
        let evaluator = Evaluator::try_new(&effective, None)
            .map_err(|e| structural(format!("restored fleet state is not evaluable: {e}")))?;
        for (k, &p) in plan.iter().enumerate() {
            if p >= evaluator.menu(k).len() {
                return Err(structural(format!("stream {k}: plan index {p} off-menu")));
            }
        }
        if place.iter().any(|&s| s >= evaluator.num_servers()) {
            return Err(structural("placement names an unknown server".into()));
        }
        let controller = OnlineController::resume(
            &evaluator,
            cfg.optimizer.clone(),
            Assignment {
                plan_idx: plan,
                placement: place,
            },
        );
        let governor = SwitchGovernor {
            cfg: cfg.governor,
            last_switch_s,
            windows,
        };
        Ok(Self {
            base,
            cfg,
            fleet,
            controller,
            evaluator,
            governor,
            tick,
            now_s,
            cursor,
            cursor_s,
            dirty,
            consecutive_failures: failures,
            backoff_ticks_remaining: backoff,
            degraded,
            rejected_batches,
            total_replans,
            total_switches,
            total_plan_changes,
            remap_misses,
        })
    }

    /// Service-in-the-loop harness: replay `trace` from the current
    /// cursor, slicing events into tick-sized batches, until `horizon_s`.
    /// Invalid batches count as rejections and engage the ladder exactly
    /// as live ingest would. Returns every tick's outcome and status row.
    pub fn drive_trace(&mut self, trace: &ChurnTrace, horizon_s: f64) -> DriveReport {
        let mut outcomes = Vec::new();
        let mut statuses = Vec::new();
        let mut next = self.cursor;
        while self.now_s + self.cfg.tick_s <= horizon_s + 1e-12 {
            let boundary = (self.tick + 1) as f64 * self.cfg.tick_s;
            let mut batch_end = next;
            while batch_end < trace.events.len() && trace.events[batch_end].at_s < boundary {
                batch_end += 1;
            }
            // A rejected batch is consumed from the log (it will never
            // become valid by waiting) but is not applied to the fleet.
            let _ = self.offer_batch(&trace.events[next..batch_end]);
            next = batch_end;
            outcomes.push(self.tick());
            statuses.push(self.status());
        }
        DriveReport { outcomes, statuses }
    }
}

/// Everything [`PlanningService::drive_trace`] observed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveReport {
    /// Per-tick outcomes, in order.
    pub outcomes: Vec<TickOutcome>,
    /// Per-tick status rows, parallel to `outcomes`.
    pub statuses: Vec<ServiceStatus>,
}

impl DriveReport {
    /// All non-empty deltas emitted during the drive.
    pub fn deltas(&self) -> Vec<&PlanDelta> {
        self.outcomes
            .iter()
            .filter_map(|o| o.delta.as_ref())
            .filter(|d| !d.is_empty())
            .collect()
    }

    /// The final status row (panics only on an empty drive).
    pub fn final_status(&self) -> Option<&ServiceStatus> {
        self.statuses.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use scalpel_sim::ChurnProfile;

    fn small_problem() -> JointProblem {
        ScenarioConfig {
            num_aps: 2,
            devices_per_ap: 3,
            arrival_rate_hz: 3.0,
            ..ScenarioConfig::default()
        }
        .build()
    }

    fn quick_cfg() -> ServiceConfig {
        ServiceConfig {
            optimizer: OptimizerConfig {
                gibbs_iters: 20,
                ..OptimizerConfig::default()
            },
            replan_budget: Budget::evals(20_000),
            tick_s: 2.0,
            ..ServiceConfig::default()
        }
    }

    fn small_trace(p: &JointProblem) -> ChurnTrace {
        ChurnProfile::default().plan(
            p.cluster.devices.len(),
            p.cluster.aps.len(),
            p.cluster.servers.len(),
            p.streams.len(),
            30.0,
        )
    }

    #[test]
    fn service_replans_under_churn_and_reports_status() {
        let p = small_problem();
        let trace = small_trace(&p);
        let mut svc = PlanningService::new(p, quick_cfg()).expect("valid base");
        let report = svc.drive_trace(&trace, 30.0);
        let last = report.final_status().expect("non-empty drive");
        assert!(last.total_replans > 0, "no replans over a churning trace");
        assert_eq!(last.events_consumed, trace.events.len());
        assert!(!last.degraded);
        assert!(last.to_line().contains("replans="));
    }

    #[test]
    fn rejected_batch_engages_the_ladder_and_backs_off() {
        let p = small_problem();
        let mut svc = PlanningService::new(p, quick_cfg()).expect("valid base");
        let bad = [ChurnEvent {
            at_s: 1.0,
            kind: ChurnKind::LinkDrift {
                ap: 99,
                factor: 0.5,
            },
        }];
        assert!(svc.offer_batch(&bad).is_err());
        let s = svc.status();
        assert!(s.degraded);
        assert_eq!(s.rejected_batches, 1);
        assert_eq!(s.consecutive_failures, 1);
        assert_eq!(s.backoff_ticks_remaining, 1);
        // Second failure doubles the backoff.
        assert!(svc.offer_batch(&bad).is_err());
        assert_eq!(svc.status().backoff_ticks_remaining, 2);
        // Ticks drain the backoff without replanning.
        let out = svc.tick();
        assert!(!out.replanned && out.degraded);
        assert_eq!(svc.status().backoff_ticks_remaining, 1);
        // A good batch + drained backoff recovers.
        svc.tick();
        let good = [ChurnEvent {
            at_s: 1.0,
            kind: ChurnKind::LinkDrift { ap: 0, factor: 0.5 },
        }];
        svc.offer_batch(&good).expect("valid batch");
        let out = svc.tick();
        assert!(out.replanned);
        assert!(!svc.status().degraded);
    }

    #[test]
    fn budget_starvation_degrades_instead_of_adopting_partials() {
        let p = small_problem();
        let mut cfg = quick_cfg();
        cfg.replan_budget = Budget::evals(1); // expires immediately
        let mut svc = PlanningService::new(p, cfg).expect("valid base");
        let before = svc.assignment().clone();
        let ev = [ChurnEvent {
            at_s: 0.5,
            kind: ChurnKind::LinkDrift { ap: 0, factor: 0.3 },
        }];
        svc.offer_batch(&ev).expect("valid");
        let out = svc.tick();
        assert!(!out.replanned && out.degraded);
        assert_eq!(svc.assignment(), &before, "partial result was adopted");
        assert!(svc.status().backoff_ticks_remaining > 0);
    }

    #[test]
    fn checkpoint_roundtrips_bit_exactly() {
        let p = small_problem();
        let trace = small_trace(&p);
        let mut svc = PlanningService::new(p.clone(), quick_cfg()).expect("valid base");
        svc.drive_trace(&trace, 12.0);
        let text = svc.checkpoint_text();
        let restored =
            PlanningService::restore(p, quick_cfg(), &text).expect("checkpoint restores");
        assert_eq!(restored.checkpoint_text(), text);
        assert_eq!(restored.status(), svc.status());
        assert_eq!(restored.assignment(), svc.assignment());
    }

    #[test]
    fn restore_rejects_malformed_checkpoints() {
        let p = small_problem();
        let svc = PlanningService::new(p.clone(), quick_cfg()).expect("valid base");
        let good = svc.checkpoint_text();
        assert!(PlanningService::restore(p.clone(), quick_cfg(), "").is_err());
        assert!(PlanningService::restore(p.clone(), quick_cfg(), "garbage\n").is_err());
        let truncated = good.replace("end\n", "");
        assert!(PlanningService::restore(p.clone(), quick_cfg(), &truncated).is_err());
        let off_menu = good.replace("plan ", "plan 9999 ");
        assert!(PlanningService::restore(p, quick_cfg(), &off_menu).is_err());
    }

    #[test]
    fn governor_blocks_switches_until_window_fills_then_caps_them() {
        let mut gov = SwitchGovernor::new(
            GovernorConfig {
                min_dwell_s: 0.0,
                switch_cost_s: 0.01,
                hysteresis_margin_s: 0.0,
                max_switches_per_tick: 1,
                window: 2,
            },
            3,
        );
        let warm = Assignment {
            plan_idx: vec![0, 0, 0],
            placement: vec![0, 0, 0],
        };
        let cand = Assignment {
            plan_idx: vec![0, 0, 0],
            placement: vec![1, 1, 1],
        };
        let fast = vec![0.01, 0.01, 0.01];
        // Empty windows: everything vetoed.
        let d = gov.govern(1.0, &warm, &cand, &fast);
        assert!(d.switched.is_empty());
        assert_eq!(d.rejected_window, 3);
        // Fill windows with slow incumbent latencies.
        let slow = EvalResult {
            latency_s: vec![0.2, 0.3, 0.25],
            accuracy: vec![1.0; 3],
            bandwidth_shares: vec![0.3; 3],
            compute_shares: vec![0.3; 3],
            objective: 1.0,
            expected_misses: 0,
            device_energy_j: vec![0.0; 3],
            total_energy_j: vec![0.0; 3],
        };
        gov.observe(&slow);
        gov.observe(&slow);
        let d = gov.govern(2.0, &warm, &cand, &fast);
        // All three clear the margin; the cap admits only the biggest
        // improvement (stream 1 at 0.3).
        assert_eq!(d.switched, vec![1]);
        assert_eq!(d.rejected_cap, 2);
        assert_eq!(d.adopted.placement, vec![0, 1, 0]);
    }

    #[test]
    fn governed_switches_far_fewer_than_ungoverned() {
        let p = small_problem();
        let trace = small_trace(&p);
        let governed = {
            let mut svc = PlanningService::new(p.clone(), quick_cfg()).expect("valid base");
            svc.drive_trace(&trace, 30.0);
            svc.status().total_switches
        };
        let ungoverned = {
            let mut cfg = quick_cfg();
            cfg.ungoverned = true;
            let mut svc = PlanningService::new(p, cfg).expect("valid base");
            svc.drive_trace(&trace, 30.0);
            svc.status().total_switches
        };
        assert!(
            governed <= ungoverned,
            "governed {governed} vs ungoverned {ungoverned}"
        );
    }
}
