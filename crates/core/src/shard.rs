//! Fleet-scale sharded optimization: partition → parallel solve →
//! best-response reconciliation → global polish.
//!
//! The centralized search prices every move against the whole
//! configuration; even with incremental evaluation that keeps a single
//! optimizer context for 10⁵–10⁶ streams. This module exploits the
//! locality the pricing model already has — a stream's cost depends only
//! on its device queue, its AP's bandwidth group, and its server's
//! compute group — to split the fleet into **shards**:
//!
//! 1. **Partition** ([`partition`]): connected components of the
//!    AP↔candidate-server reachability graph ([`Reachability`]). A
//!    naturally partitioned topology (disjoint AP/server clusters)
//!    shards for free; one giant component falls back to size-capped
//!    bisection, splitting the AP list at the cumulative-stream midpoint
//!    and the server list proportionally. APs are never split (their
//!    devices share a bandwidth group), so [`ShardConfig::max_streams`]
//!    must admit the largest AP group (enforced at ingest by
//!    [`validate_shard_config`]). A shard can exceed the cap only when
//!    its component has too few servers left to split — bisection keeps
//!    at least one server per side.
//! 2. **Solve** each shard in parallel (rayon) with the existing
//!    incremental optimizer. Each shard is *extracted* into a standalone
//!    [`JointProblem`] ([`extract`]) and gets its own evaluator,
//!    [`EvalContext`] (inside the solver) and a proportional slice of
//!    the caller's [`Budget`]. On a naturally partitioned topology the
//!    extraction is exact — same devices, APs, servers, reindexed
//!    ascending — so a shard solve under [`Budget::UNLIMITED`] is
//!    bit-identical to solving that island standalone (asserted by
//!    `tests/shard_parity.rs`).
//! 3. **Stitch** the shard solutions into one global assignment. Shard
//!    menus are generated against shard-local reference environments, so
//!    plans are remapped onto the global menus (exact structural match
//!    first, deterministic [`closest_idx`] fallback — misses are
//!    counted in [`ShardedOutcome::remap_misses`]).
//! 4. **Reconcile** cross-shard placements with the best-response layer
//!    ([`reconcile_placement`]): streams selfishly probe the
//!    least-loaded server of every *other* shard (subject to
//!    [`Reachability`]) until no stream improves by crossing a shard
//!    boundary, or the round/budget caps hit.
//! 5. **Polish** globally: a few budgeted descent rounds (and optional
//!    Gibbs refinement) from the reconciled point.
//!
//! The returned incumbent is the best of {stitched, reconciled,
//! polished, warm start}, so the sharded path never returns something
//! worse than its own intermediate states. Anytime semantics match
//! [`solve_with_budget`]: under [`Budget::UNLIMITED`] the clock is never
//! consulted and the outcome is a pure function of (problem, config) —
//! including under different rayon thread counts, since shard tasks are
//! independent and reconciliation runs on the stitched result in stream
//! order. See DESIGN.md §2.12.
//!
//! [`validate_shard_config`]: crate::validate::validate_shard_config
//! [`closest_idx`]: crate::online::closest_idx
//! [`solve_with_budget`]: crate::optimizer::solve_with_budget
//! [`EvalContext`]: crate::eval_context::EvalContext

use crate::distributed::{reconcile_placement, ReconcileConfig, ReconcileReport};
use crate::eval_context::EvalContext;
use crate::evaluator::{Assignment, Evaluator};
use crate::online;
use crate::optimizer::SolveOutcome;
use crate::optimizer::{self, Budget, BudgetSpent, OptimizerConfig, SearchTrace, Solution};
use crate::problem::JointProblem;
use crate::validate::{validate_shard_config, ProblemError};
use rayon::prelude::*;
use scalpel_surgery::candidates::CandidateConfig;
use std::time::{Duration, Instant};

/// Which servers each AP's streams may offload to.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Reachability {
    /// Every AP reaches every server (one connected component; sharding
    /// comes from the bisection fallback).
    #[default]
    Full,
    /// `lists[ap]` = the servers AP `ap` may reach. Connected components
    /// of this bipartite graph become shards; reconciliation never moves
    /// a stream outside its AP's list.
    PerAp(Vec<Vec<usize>>),
}

/// Knobs of the sharded solve.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Bisection cap: components larger than this (in streams) are split.
    /// Must admit the largest AP stream group.
    pub max_streams: usize,
    /// AP→server reachability defining the component structure.
    pub reach: Reachability,
    /// Per-shard optimizer configuration (also supplies the policies the
    /// global stitch/reconcile/polish price under).
    pub opt: OptimizerConfig,
    /// Candidate-menu configuration forwarded to every evaluator built
    /// here (global and per-shard). `None` = defaults.
    pub menu: Option<CandidateConfig>,
    /// Cross-shard best-response reconciliation knobs.
    pub reconcile: ReconcileConfig,
    /// Global descent rounds after reconciliation (0 disables polish).
    pub polish_rounds: usize,
    /// Global Gibbs iterations after the polish descent (0 disables).
    pub polish_gibbs: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            max_streams: 2048,
            reach: Reachability::Full,
            opt: OptimizerConfig::default(),
            menu: None,
            reconcile: ReconcileConfig::default(),
            polish_rounds: 2,
            polish_gibbs: 0,
        }
    }
}

/// One shard: an AP/server cluster and the streams living on its APs.
/// All three lists are ascending global indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Access points owned by this shard.
    pub aps: Vec<usize>,
    /// Servers owned by this shard (disjoint across shards).
    pub servers: Vec<usize>,
    /// Streams on this shard's APs (every stream is in exactly one shard).
    pub streams: Vec<usize>,
}

/// The partition of a problem into shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The shards; their AP/server/stream sets are disjoint and their
    /// union covers the problem. Shards with no APs (servers unreachable
    /// under [`Reachability::PerAp`]) carry no streams and are skipped by
    /// the solver but kept here so the server union stays complete.
    pub shards: Vec<Shard>,
    /// `true` iff the reachability components alone were small enough —
    /// no bisection was needed. Natural partitions make shard solves
    /// exactly equivalent to standalone island solves.
    pub natural: bool,
}

/// Union-find with path halving (deterministic, index-keyed).
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Root toward the smaller index: component ids stay stable
            // regardless of edge order.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Split one oversized component into size-capped shards. The AP list is
/// cut at the cumulative-stream midpoint; servers follow proportionally
/// to stream mass, clamped so that whenever a side has at least as many
/// servers as APs the invariant is preserved recursively (each side then
/// keeps ≥ 1 server per AP and bisection can always reach single-AP
/// shards, which the ingest check guarantees fit the cap).
fn bisect(
    aps: Vec<usize>,
    servers: Vec<usize>,
    ap_streams: &[usize],
    max_streams: usize,
    out: &mut Vec<(Vec<usize>, Vec<usize>)>,
) {
    let total: usize = aps.iter().map(|&a| ap_streams[a]).sum();
    if total <= max_streams || aps.len() < 2 || servers.len() < 2 {
        out.push((aps, servers));
        return;
    }
    // Smallest AP prefix carrying at least half the stream mass, clamped
    // so both sides keep at least one AP.
    let mut acc = 0usize;
    let mut cut = aps.len() - 1;
    for (i, &a) in aps.iter().enumerate() {
        acc += ap_streams[a];
        if 2 * acc >= total {
            cut = (i + 1).clamp(1, aps.len() - 1);
            break;
        }
    }
    let left_mass: usize = aps[..cut].iter().map(|&a| ap_streams[a]).sum();
    let (s_len, a_len) = (servers.len(), aps.len());
    let prop = (s_len as f64 * left_mass as f64 / total.max(1) as f64).round() as usize;
    let (lo, hi) = if s_len >= a_len {
        (cut, s_len - (a_len - cut))
    } else {
        (1, s_len - 1)
    };
    let s_cut = prop.clamp(lo.max(1), hi.max(lo.max(1)).min(s_len - 1).max(1));
    let (a_left, a_right) = (aps[..cut].to_vec(), aps[cut..].to_vec());
    let (s_left, s_right) = (servers[..s_cut].to_vec(), servers[s_cut..].to_vec());
    bisect(a_left, s_left, ap_streams, max_streams, out);
    bisect(a_right, s_right, ap_streams, max_streams, out);
}

/// Partition `problem` into shards under `cfg`: connected components of
/// the AP↔server reachability graph, bisected where they exceed
/// [`ShardConfig::max_streams`]. Deterministic: shards are ordered by
/// their smallest member and all index lists ascend.
pub fn partition(problem: &JointProblem, cfg: &ShardConfig) -> Result<ShardPlan, ProblemError> {
    validate_shard_config(problem, cfg)?;
    let num_aps = problem.cluster.aps.len();
    let num_servers = problem.cluster.servers.len();
    let mut dsu = Dsu::new(num_aps + num_servers);
    match &cfg.reach {
        Reachability::Full => {
            for x in 1..num_aps + num_servers {
                dsu.union(0, x);
            }
        }
        Reachability::PerAp(lists) => {
            for (ap, servers) in lists.iter().enumerate() {
                for &srv in servers {
                    dsu.union(ap, num_aps + srv);
                }
            }
        }
    }
    // Components in first-seen node order (APs before servers).
    let mut comp_of_root: Vec<Option<usize>> = vec![None; num_aps + num_servers];
    let mut comp_aps: Vec<Vec<usize>> = Vec::new();
    let mut comp_servers: Vec<Vec<usize>> = Vec::new();
    for node in 0..num_aps + num_servers {
        let root = dsu.find(node);
        let c = match comp_of_root[root] {
            Some(c) => c,
            None => {
                comp_of_root[root] = Some(comp_aps.len());
                comp_aps.push(Vec::new());
                comp_servers.push(Vec::new());
                comp_aps.len() - 1
            }
        };
        if node < num_aps {
            comp_aps[c].push(node);
        } else {
            comp_servers[c].push(node - num_aps);
        }
    }
    let by_ap = problem.streams_by_ap();
    let ap_streams: Vec<usize> = by_ap.iter().map(|m| m.len()).collect();
    let mut natural = true;
    let mut pieces: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
    for (aps, servers) in comp_aps.into_iter().zip(comp_servers) {
        let total: usize = aps.iter().map(|&a| ap_streams[a]).sum();
        if total > cfg.max_streams {
            natural = false;
            bisect(aps, servers, &ap_streams, cfg.max_streams, &mut pieces);
        } else {
            pieces.push((aps, servers));
        }
    }
    let shards = pieces
        .into_iter()
        .map(|(aps, servers)| {
            let mut streams: Vec<usize> =
                aps.iter().flat_map(|&a| by_ap[a].iter().copied()).collect();
            streams.sort_unstable();
            Shard {
                aps,
                servers,
                streams,
            }
        })
        .collect();
    Ok(ShardPlan { shards, natural })
}

/// Extract one shard as a standalone [`JointProblem`]: the shard's APs,
/// their devices, its servers and streams, each reindexed ascending; the
/// model zoo and difficulty calibration are shared unchanged. On a
/// natural partition this reproduces the island exactly, so solving the
/// extraction standalone equals solving it inside the fleet.
pub fn extract(problem: &JointProblem, shard: &Shard) -> JointProblem {
    let mut ap_local = vec![usize::MAX; problem.cluster.aps.len()];
    for (i, &a) in shard.aps.iter().enumerate() {
        ap_local[a] = i;
    }
    let mut dev_local = vec![usize::MAX; problem.cluster.devices.len()];
    let mut devices = Vec::new();
    for (gi, d) in problem.cluster.devices.iter().enumerate() {
        if ap_local[d.ap] != usize::MAX {
            dev_local[gi] = devices.len();
            let mut nd = d.clone();
            nd.id = devices.len();
            nd.ap = ap_local[d.ap];
            devices.push(nd);
        }
    }
    let aps = shard
        .aps
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let mut na = problem.cluster.aps[a].clone();
            na.id = i;
            na
        })
        .collect();
    let servers = shard
        .servers
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let mut ns = problem.cluster.servers[s].clone();
            ns.id = i;
            ns
        })
        .collect();
    let streams = shard
        .streams
        .iter()
        .map(|&k| {
            let mut s = problem.streams[k].clone();
            s.device = dev_local[s.device];
            s
        })
        .collect();
    JointProblem {
        cluster: scalpel_sim::Cluster {
            devices,
            aps,
            servers,
        },
        models: problem.models.clone(),
        model_accuracy: problem.model_accuracy.clone(),
        streams,
        difficulty: problem.difficulty.clone(),
    }
}

/// What one shard's solve reported.
#[derive(Debug, Clone)]
pub struct ShardSolve {
    /// Index into [`ShardPlan::shards`].
    pub shard: usize,
    /// Streams in the shard.
    pub streams: usize,
    /// `true` when the wall deadline expired before this shard's solve
    /// started: its streams were filled from the cheap initial heuristic
    /// on the *global* menus instead (bounded-overshoot degradation).
    pub fallback: bool,
    /// Whether the shard solve finished within its budget slice
    /// (vacuously `true` for empty shards, `false` for fallbacks).
    pub converged: bool,
    /// Evaluations the shard solve spent.
    pub evaluations: usize,
    /// Shard-local objective (its own pooled objective over its streams;
    /// `None` for empty shards and fallbacks).
    pub objective: Option<f64>,
    /// Shard-local solution assignment (indices into the shard's own
    /// menus/servers; `None` for empty shards and fallbacks).
    pub assignment: Option<Assignment>,
}

/// Outcome of a sharded solve.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// The global solution with the same anytime contract as
    /// [`optimizer::solve_with_budget`]: best incumbent across stitch,
    /// reconciliation, polish (and the warm start, when given).
    pub outcome: SolveOutcome,
    /// How the fleet was partitioned.
    pub plan: ShardPlan,
    /// Per-shard solve reports, parallel to [`ShardPlan::shards`].
    pub shards: Vec<ShardSolve>,
    /// What the cross-shard reconciliation pass did.
    pub reconcile: ReconcileReport,
    /// Stitched plans that had no structurally identical entry in the
    /// global menu and fell back to [`online::closest_idx`]. Zero on
    /// identical reference environments; small when shard-local menus
    /// drift from the global ones.
    pub remap_misses: usize,
}

/// Stitched output of one shard task.
struct TaskOut {
    shard: usize,
    global_plans: Vec<usize>,
    global_placement: Vec<usize>,
    misses: usize,
    solve: ShardSolve,
}

/// The cheap per-stream plan heuristic [`optimizer::initial_assignment`]
/// uses, for one stream on the global menus (deadline-expired fallback).
fn cheap_plan_pick(ev: &Evaluator, k: usize) -> usize {
    let menu = ev.menu(k);
    (0..menu.len())
        .min_by(|&a, &b| {
            let score = |i: usize| {
                let p = &menu[i];
                p.exp_dev + p.remain * (ev.tx_full_seconds(k, p) * 4.0 + 1e-3)
            };
            score(a).total_cmp(&score(b))
        })
        .unwrap_or(0)
}

/// Fill a shard from the global initial heuristic without building its
/// evaluator — the degraded path once the wall deadline has passed.
fn fallback_task(ev: &Evaluator, shard_idx: usize, shard: &Shard) -> TaskOut {
    let mut global_plans = Vec::with_capacity(shard.streams.len());
    let mut global_placement = Vec::with_capacity(shard.streams.len());
    for (j, &k) in shard.streams.iter().enumerate() {
        global_plans.push(cheap_plan_pick(ev, k));
        global_placement.push(if shard.servers.is_empty() {
            0
        } else {
            shard.servers[j % shard.servers.len()]
        });
    }
    TaskOut {
        shard: shard_idx,
        global_plans,
        global_placement,
        misses: 0,
        solve: ShardSolve {
            shard: shard_idx,
            streams: shard.streams.len(),
            fallback: true,
            converged: false,
            evaluations: 0,
            objective: None,
            assignment: None,
        },
    }
}

/// Remap a warm global assignment into shard-local indices.
fn warm_local(ev: &Evaluator, sub_ev: &Evaluator, shard: &Shard, warm: &Assignment) -> Assignment {
    let mut plan_idx = Vec::with_capacity(shard.streams.len());
    let mut placement = Vec::with_capacity(shard.streams.len());
    for (j, &k) in shard.streams.iter().enumerate() {
        let gp = &ev.menu(k)[warm.plan_idx[k]].plan;
        let menu = sub_ev.menu(j);
        let idx = menu
            .iter()
            .position(|p| p.plan == *gp)
            .unwrap_or_else(|| online::closest_idx(menu, gp));
        plan_idx.push(idx);
        let srv = warm.placement[k];
        placement.push(match shard.servers.binary_search(&srv) {
            Ok(i) => i,
            Err(_) => j % sub_ev.num_servers().max(1),
        });
    }
    Assignment {
        plan_idx,
        placement,
    }
}

/// Budget slice + shard handle for one parallel task.
struct Task<'p> {
    shard_idx: usize,
    shard: &'p Shard,
    wall: Option<Duration>,
    evals: Option<usize>,
}

/// Solve one shard under its budget slice and stitch the result back to
/// global indices.
fn run_shard_task(
    problem: &JointProblem,
    ev: &Evaluator,
    cfg: &ShardConfig,
    t: &Task<'_>,
    deadline: Option<Instant>,
    warm: Option<&Assignment>,
) -> Result<TaskOut, ProblemError> {
    if let Some(d) = deadline {
        if Instant::now() >= d {
            return Ok(fallback_task(ev, t.shard_idx, t.shard));
        }
    }
    let sub = extract(problem, t.shard);
    let sub_ev = Evaluator::try_new(&sub, cfg.menu.clone())?;
    let wall = match (t.wall, deadline) {
        (Some(w), Some(d)) => Some(w.min(d.saturating_duration_since(Instant::now()))),
        (w, _) => w,
    };
    let slice = Budget {
        wall_time: wall,
        max_evals: t.evals,
    };
    let out = match warm {
        Some(w) => {
            let start = warm_local(ev, &sub_ev, t.shard, w);
            let mut quick = cfg.opt.clone();
            quick.gibbs_iters = 0; // warm replans stay descent-only
            optimizer::descent_from_with_budget(&sub_ev, &quick, start, slice)
        }
        None => optimizer::solve_with_budget(&sub_ev, &cfg.opt, slice),
    };
    let mut global_plans = Vec::with_capacity(t.shard.streams.len());
    let mut global_placement = Vec::with_capacity(t.shard.streams.len());
    let mut misses = 0usize;
    for (j, &k) in t.shard.streams.iter().enumerate() {
        let local = &sub_ev.menu(j)[out.solution.assignment.plan_idx[j]].plan;
        let gmenu = ev.menu(k);
        let gi = match gmenu.iter().position(|p| p.plan == *local) {
            Some(i) => i,
            None => {
                misses += 1;
                online::closest_idx(gmenu, local)
            }
        };
        global_plans.push(gi);
        let lp = out.solution.assignment.placement[j];
        global_placement.push(if t.shard.servers.is_empty() {
            0
        } else {
            t.shard.servers[lp.min(t.shard.servers.len() - 1)]
        });
    }
    Ok(TaskOut {
        shard: t.shard_idx,
        global_plans,
        global_placement,
        misses,
        solve: ShardSolve {
            shard: t.shard_idx,
            streams: t.shard.streams.len(),
            fallback: false,
            converged: out.converged,
            evaluations: out.spent.evaluations,
            objective: Some(out.solution.result.objective),
            assignment: Some(out.solution.assignment),
        },
    })
}

/// Sharded solve with the evaluator built here from `cfg.menu`. See the
/// module docs for the pipeline; [`solve_sharded_with`] is the entry for
/// callers that already hold the global evaluator (online replans, the
/// chaos harness's wall-budget path).
pub fn solve_sharded(
    problem: &JointProblem,
    cfg: &ShardConfig,
    budget: Budget,
) -> Result<ShardedOutcome, ProblemError> {
    let ev = Evaluator::try_new(problem, cfg.menu.clone())?;
    solve_sharded_with(problem, &ev, cfg, budget, None)
}

/// Sharded solve against a prebuilt global evaluator, optionally
/// warm-started from a previous global assignment (shard solves then run
/// descent-only from the remapped warm point, and the warm point itself
/// joins the incumbent race so the result is never worse than it).
pub fn solve_sharded_with(
    problem: &JointProblem,
    ev: &Evaluator,
    cfg: &ShardConfig,
    budget: Budget,
    warm: Option<&Assignment>,
) -> Result<ShardedOutcome, ProblemError> {
    let started = Instant::now();
    let deadline = budget.wall_time.map(|w| started + w);
    let plan = partition(problem, cfg)?;
    let n = problem.streams.len();

    // --- Proportional budget slices (80% for shard solves, the rest for
    // reconciliation + polish). Each wall slice is additionally capped by
    // the remaining time at task start, so sequential execution cannot
    // pile slices past the deadline.
    let tasks: Vec<Task<'_>> = plan
        .shards
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.streams.is_empty())
        .map(|(i, s)| {
            let frac = s.streams.len() as f64 / n.max(1) as f64;
            Task {
                shard_idx: i,
                shard: s,
                wall: budget
                    .wall_time
                    .map(|w| Duration::from_secs_f64(w.as_secs_f64() * 0.8 * frac)),
                evals: budget
                    .max_evals
                    .map(|m| ((m as f64 * 0.8 * frac) as usize).max(1)),
            }
        })
        .collect();
    let outs: Result<Vec<TaskOut>, ProblemError> = tasks
        .par_iter()
        .map(|t| run_shard_task(problem, ev, cfg, t, deadline, warm))
        .collect();
    let outs = outs?;

    // --- Stitch into one global assignment.
    let mut plan_idx = vec![0usize; n];
    let mut placement = vec![0usize; n];
    let mut remap_misses = 0usize;
    let mut shard_evals = 0usize;
    let mut shards: Vec<ShardSolve> = plan
        .shards
        .iter()
        .enumerate()
        .map(|(i, s)| ShardSolve {
            shard: i,
            streams: s.streams.len(),
            fallback: false,
            converged: true,
            evaluations: 0,
            objective: None,
            assignment: None,
        })
        .collect();
    let mut any_fallback = false;
    let mut all_shards_converged = true;
    for out in outs {
        let s = &plan.shards[out.shard];
        for (j, &k) in s.streams.iter().enumerate() {
            plan_idx[k] = out.global_plans[j];
            placement[k] = out.global_placement[j];
        }
        remap_misses += out.misses;
        shard_evals += out.solve.evaluations;
        any_fallback |= out.solve.fallback;
        all_shards_converged &= out.solve.converged;
        shards[out.shard] = out.solve;
    }

    let policies = cfg.opt.policies;
    let mut ctx = EvalContext::new(
        ev,
        Assignment {
            plan_idx,
            placement,
        },
        policies,
    );
    let mut trace = SearchTrace {
        objective: vec![ctx.objective()],
        evaluations: shard_evals + 1,
    };
    let mut best_obj = ctx.objective();
    let mut best_asg = ctx.assignment();
    // The warm start joins the incumbent race: a sharded replan must
    // never adopt something worse than the assignment it started from.
    if let Some(w) = warm {
        let wr = ev.evaluate(w, policies);
        trace.evaluations += 1;
        if wr.objective < best_obj {
            best_obj = wr.objective;
            best_asg = w.clone();
        }
    }

    // --- Cross-shard reconciliation.
    let groups: Vec<Vec<usize>> = plan
        .shards
        .iter()
        .map(|s| s.servers.clone())
        .filter(|g| !g.is_empty())
        .collect();
    let allowed: Option<Vec<Vec<usize>>> = match &cfg.reach {
        Reachability::Full => None,
        Reachability::PerAp(lists) => Some(
            lists
                .iter()
                .map(|l| {
                    let mut l = l.clone();
                    l.sort_unstable();
                    l.dedup();
                    l
                })
                .collect(),
        ),
    };
    let reconcile = reconcile_placement(
        &mut ctx,
        &groups,
        allowed.as_deref(),
        &cfg.reconcile,
        deadline,
        budget.max_evals,
        &mut trace,
    );
    if ctx.objective() < best_obj {
        best_obj = ctx.objective();
        best_asg = ctx.assignment();
    }

    // --- Global polish from the reconciled point.
    let mut polish_converged = true;
    if cfg.polish_rounds > 0 {
        let evals_left = budget
            .max_evals
            .map(|m| m.saturating_sub(trace.evaluations));
        let wall_left = deadline.map(|d| d.saturating_duration_since(Instant::now()));
        if evals_left == Some(0) || wall_left == Some(Duration::ZERO) {
            polish_converged = false;
        } else {
            let mut pcfg = cfg.opt.clone();
            pcfg.rounds = cfg.polish_rounds;
            pcfg.gibbs_iters = 0;
            let d = optimizer::descent_from_with_budget(
                ev,
                &pcfg,
                ctx.assignment(),
                Budget {
                    wall_time: wall_left,
                    max_evals: evals_left,
                },
            );
            polish_converged = d.converged;
            trace.evaluations += d.solution.trace.evaluations;
            trace
                .objective
                .extend_from_slice(&d.solution.trace.objective);
            if d.solution.result.objective < best_obj {
                best_obj = d.solution.result.objective;
                best_asg = d.solution.assignment.clone();
            }
            if cfg.polish_gibbs > 0 && d.converged {
                let evals_left = budget
                    .max_evals
                    .map(|m| m.saturating_sub(trace.evaluations));
                let wall_left = deadline.map(|d| d.saturating_duration_since(Instant::now()));
                if evals_left == Some(0) || wall_left == Some(Duration::ZERO) {
                    polish_converged = false;
                } else {
                    let mut gcfg = cfg.opt.clone();
                    gcfg.gibbs_iters = cfg.polish_gibbs;
                    let descended = Solution {
                        assignment: d.solution.assignment.clone(),
                        result: d.solution.result.clone(),
                        trace: SearchTrace::default(),
                    };
                    let g = optimizer::refine_from_with_budget(
                        ev,
                        &gcfg,
                        descended,
                        Budget {
                            wall_time: wall_left,
                            max_evals: evals_left,
                        },
                    );
                    polish_converged &= g.converged;
                    trace.evaluations += g.spent.evaluations;
                    trace
                        .objective
                        .extend_from_slice(&g.solution.trace.objective);
                    if g.solution.result.objective < best_obj {
                        best_obj = g.solution.result.objective;
                        best_asg = g.solution.assignment.clone();
                    }
                }
            }
        }
    }

    // --- Materialize the incumbent (snapshot pricing, like `result()`;
    // not counted as a search evaluation).
    let result = ev.evaluate(&best_asg, policies);
    debug_assert!((result.objective - best_obj).abs() <= f64::EPSILON * best_obj.abs().max(1.0));
    let spent = BudgetSpent {
        evaluations: trace.evaluations,
        wall_s: started.elapsed().as_secs_f64(),
    };
    // Anytime contract: `converged == false` means the budget truncated
    // the pipeline somewhere. Reconciliation stopping at its round cap is
    // the configured amount of work (bounded termination), not a cut.
    let converged = all_shards_converged && !any_fallback && !reconcile.cut && polish_converged;
    Ok(ShardedOutcome {
        outcome: SolveOutcome {
            solution: Solution {
                assignment: best_asg,
                result,
                trace,
            },
            converged,
            spent,
        },
        plan,
        shards,
        reconcile,
        remap_misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn scenario(num_aps: usize, devices_per_ap: usize) -> JointProblem {
        ScenarioConfig {
            num_aps,
            devices_per_ap,
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        }
        .build()
    }

    #[test]
    fn full_reachability_is_one_component_until_capped() {
        let p = scenario(4, 4);
        let cfg = ShardConfig {
            max_streams: 1000,
            ..ShardConfig::default()
        };
        let plan = partition(&p, &cfg).expect("valid");
        assert!(plan.natural);
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(plan.shards[0].streams.len(), 16);
    }

    #[test]
    fn bisection_respects_cap_when_servers_suffice() {
        let p = ScenarioConfig {
            num_aps: 8,
            devices_per_ap: 4,
            servers: crate::config::ServerMix::Synthetic {
                count: 8,
                mean_fps: 3.0e12,
                cv: 0.0,
            },
            arrival_rate_hz: 4.0,
            ..ScenarioConfig::default()
        }
        .build();
        let cfg = ShardConfig {
            max_streams: 8,
            ..ShardConfig::default()
        };
        let plan = partition(&p, &cfg).expect("valid");
        assert!(!plan.natural);
        let mut seen = vec![false; p.streams.len()];
        for s in &plan.shards {
            assert!(
                s.streams.len() <= cfg.max_streams,
                "shard has {} streams > cap {}",
                s.streams.len(),
                cfg.max_streams
            );
            assert!(!s.servers.is_empty() || s.streams.is_empty());
            for &k in &s.streams {
                assert!(!seen[k], "stream {k} in two shards");
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "not every stream covered");
    }

    #[test]
    fn per_ap_reachability_splits_into_islands() {
        let p = scenario(4, 3);
        // APs {0,1} → servers {0,1}; APs {2,3} → servers {2,3}.
        let reach = Reachability::PerAp(vec![vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3]]);
        let cfg = ShardConfig {
            reach,
            ..ShardConfig::default()
        };
        let plan = partition(&p, &cfg).expect("valid");
        assert!(plan.natural);
        assert_eq!(plan.shards.len(), 2);
        assert_eq!(plan.shards[0].aps, vec![0, 1]);
        assert_eq!(plan.shards[0].servers, vec![0, 1]);
        assert_eq!(plan.shards[1].aps, vec![2, 3]);
        assert_eq!(plan.shards[1].servers, vec![2, 3]);
    }

    #[test]
    fn extraction_reindexes_ascending() {
        let p = scenario(4, 3);
        let reach = Reachability::PerAp(vec![vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3]]);
        let cfg = ShardConfig {
            reach,
            ..ShardConfig::default()
        };
        let plan = partition(&p, &cfg).expect("valid");
        let island = extract(&p, &plan.shards[1]);
        assert_eq!(island.cluster.aps.len(), 2);
        assert_eq!(island.cluster.servers.len(), 2);
        assert_eq!(island.streams.len(), 6);
        island.validate().expect("extracted island is valid");
        for (i, d) in island.cluster.devices.iter().enumerate() {
            assert_eq!(d.id, i);
            assert!(d.ap < 2);
        }
    }

    #[test]
    fn sharded_solve_runs_and_is_deterministic() {
        let p = scenario(4, 4);
        let cfg = ShardConfig {
            max_streams: 8,
            opt: OptimizerConfig {
                rounds: 2,
                gibbs_iters: 20,
                ..OptimizerConfig::default()
            },
            ..ShardConfig::default()
        };
        let a = solve_sharded(&p, &cfg, Budget::UNLIMITED).expect("solves");
        let b = solve_sharded(&p, &cfg, Budget::UNLIMITED).expect("solves");
        assert!(a.outcome.solution.result.objective.is_finite());
        assert!(a.outcome.converged);
        assert_eq!(
            a.outcome.solution.result.objective.to_bits(),
            b.outcome.solution.result.objective.to_bits()
        );
        assert_eq!(a.outcome.solution.assignment, b.outcome.solution.assignment);
        assert_eq!(
            a.outcome.solution.trace.evaluations,
            b.outcome.solution.trace.evaluations
        );
    }

    #[test]
    fn sharded_never_worse_than_its_stitched_start() {
        let p = scenario(4, 6);
        let cfg = ShardConfig {
            max_streams: 6,
            ..ShardConfig::default()
        };
        let out = solve_sharded(&p, &cfg, Budget::UNLIMITED).expect("solves");
        // The first trace entry is the stitched objective; the adopted
        // incumbent can only improve on it.
        let stitched = out.outcome.solution.trace.objective[0];
        assert!(
            out.outcome.solution.result.objective <= stitched + 1e-12,
            "final {} worse than stitched {stitched}",
            out.outcome.solution.result.objective
        );
    }
}
