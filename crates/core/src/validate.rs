//! Ingest validation and repair for joint problem instances.
//!
//! Everything entering the solver stack passes through here once, so the
//! optimizer, evaluator and simulator can assume structurally sound input
//! and stay panic-free on the hot path. A [`ProblemError`] names each way
//! ingest can fail; [`validate_problem`] either rejects with the first
//! defect found ([`ValidationPolicy::Strict`]) or repairs what is
//! repairable — clamping out-of-range scalars, dropping dead resources,
//! reassigning orphaned devices — and reports every action taken
//! ([`ValidationPolicy::Repair`]).

use crate::problem::JointProblem;
use scalpel_sim::SimError;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Ceiling on a stream's long-run mean arrival rate, requests/s. Rates
/// above this are treated as measurement garbage: the parameters may be
/// individually finite and positive, but no edge workload generates a
/// million requests per second per stream, and admitting one would ask
/// the simulator to materialize `rate × horizon` requests.
pub const MAX_ARRIVAL_RATE_HZ: f64 = 1e6;

/// Why a [`JointProblem`] was rejected at ingest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProblemError {
    /// The cluster topology is internally inconsistent (bad ids, dangling
    /// AP references); wraps the simulator's own validation error.
    Topology(SimError),
    /// A stream's arrival process carries out-of-range parameters.
    Arrival {
        /// The offending stream.
        stream: usize,
        /// The underlying arrival-process error.
        source: SimError,
    },
    /// A stream's mean arrival rate exceeds [`MAX_ARRIVAL_RATE_HZ`]; the
    /// parameters are finite but the workload is unsimulatable.
    ArrivalRateTooHigh {
        /// The offending stream.
        stream: usize,
        /// The long-run mean rate, requests/s.
        rate_hz: f64,
    },
    /// The problem names no models.
    NoModels,
    /// `models` and `model_accuracy` disagree in length.
    ModelAccuracyArity {
        /// Number of models.
        models: usize,
        /// Number of published accuracies.
        accuracies: usize,
    },
    /// The problem has no streams.
    NoStreams,
    /// The cluster has no edge servers (the evaluator divides by the
    /// server count, so zero servers is structurally unusable).
    NoServers,
    /// The cluster has no access points.
    NoAps,
    /// A stream originates on a device index outside the cluster.
    MissingDevice {
        /// The offending stream.
        stream: usize,
        /// The referenced device index.
        device: usize,
    },
    /// A stream references a model index outside `models`.
    MissingModel {
        /// The offending stream.
        stream: usize,
        /// The referenced model index.
        model: usize,
    },
    /// A device sits at a non-finite or negative distance from its AP, so
    /// its uplink rate is undefined (the device is unreachable).
    UnreachableDevice {
        /// The offending device.
        device: usize,
        /// The recorded distance, meters.
        distance_m: f64,
    },
    /// A server advertises non-finite or non-positive compute capacity.
    ZeroCapacityServer {
        /// The offending server.
        server: usize,
        /// The advertised capacity, FLOP/s.
        flops_per_sec: f64,
    },
    /// An AP advertises non-finite or non-positive uplink spectrum.
    ZeroBandwidthAp {
        /// The offending AP.
        ap: usize,
        /// The advertised bandwidth, Hz.
        bandwidth_hz: f64,
    },
    /// An AP's round-trip time is non-finite or negative.
    InvalidRtt {
        /// The offending AP.
        ap: usize,
        /// The recorded RTT, seconds.
        rtt_s: f64,
    },
    /// A stream's relative deadline is non-finite or non-positive, so no
    /// plan can ever meet it (the deadline is infeasible by construction).
    NonPositiveDeadline {
        /// The offending stream.
        stream: usize,
        /// The recorded deadline, seconds.
        deadline_s: f64,
    },
    /// A stream's accuracy floor lies outside `[0, 1]`.
    AccuracyFloorOutOfRange {
        /// The offending stream.
        stream: usize,
        /// The recorded floor.
        floor: f64,
    },
    /// A published model accuracy lies outside `[0, 1]`.
    ModelAccuracyOutOfRange {
        /// The offending model.
        model: usize,
        /// The recorded accuracy.
        accuracy: f64,
    },
    /// Candidate generation produced no admissible plan for a stream
    /// (accuracy floor too high for every cut/exit combination).
    EmptyExitMenu {
        /// The offending stream.
        stream: usize,
    },
    /// A shard configuration caps shards at zero streams.
    ShardZeroCap,
    /// A per-AP reachability table does not cover every AP.
    ShardReachArity {
        /// APs in the cluster.
        expected_aps: usize,
        /// Rows in the reachability table.
        got: usize,
    },
    /// A reachability row names a server outside the cluster.
    ShardReachUnknownServer {
        /// The offending AP.
        ap: usize,
        /// The referenced server index.
        server: usize,
    },
    /// A reachability row leaves an AP with no candidate servers, so its
    /// streams could never offload anywhere.
    ShardReachEmptyAp {
        /// The offending AP.
        ap: usize,
    },
    /// `ShardConfig::max_streams` is smaller than some AP's stream group.
    /// APs are never split across shards (their devices share a bandwidth
    /// group), so the cap must admit the largest AP group.
    ShardCapBelowApGroup {
        /// The offending AP.
        ap: usize,
        /// Streams on that AP.
        streams: usize,
        /// The configured cap.
        max_streams: usize,
    },
    /// A churn event names an index outside the fleet.
    ChurnUnknownTarget {
        /// What kind of target ("device", "ap", "server", "stream").
        what: &'static str,
        /// The referenced index.
        index: usize,
        /// How many of that target the fleet has.
        count: usize,
    },
    /// A churn drift factor is non-finite or outside its admissible range.
    ChurnFactorOutOfRange {
        /// What kind of drift ("link", "cap", "load").
        what: &'static str,
        /// The offending factor.
        factor: f64,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// A churn event is timestamped before the service's event cursor —
    /// the stream went backwards in time, so the whole batch is suspect.
    ChurnTimeRegression {
        /// The offending event's timestamp, seconds.
        at_s: f64,
        /// The cursor the service had already advanced to, seconds.
        cursor_s: f64,
    },
    /// A churn event carries a non-finite timestamp.
    ChurnBadTimestamp {
        /// The offending timestamp.
        at_s: f64,
    },
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::Topology(e) => write!(f, "{e}"),
            ProblemError::Arrival { stream, source } => {
                write!(f, "stream {stream}: {source}")
            }
            ProblemError::ArrivalRateTooHigh { stream, rate_hz } => write!(
                f,
                "stream {stream}: mean arrival rate {rate_hz} req/s exceeds \
                 the {MAX_ARRIVAL_RATE_HZ} req/s ceiling"
            ),
            ProblemError::NoModels => write!(f, "no models"),
            ProblemError::ModelAccuracyArity { models, accuracies } => write!(
                f,
                "models/accuracy arity mismatch ({models} models, {accuracies} accuracies)"
            ),
            ProblemError::NoStreams => write!(f, "no streams"),
            ProblemError::NoServers => write!(f, "cluster has no servers"),
            ProblemError::NoAps => write!(f, "cluster has no access points"),
            ProblemError::MissingDevice { stream, device } => {
                write!(f, "stream {stream}: missing device {device}")
            }
            ProblemError::MissingModel { stream, model } => {
                write!(f, "stream {stream}: missing model {model}")
            }
            ProblemError::UnreachableDevice { device, distance_m } => {
                write!(f, "device {device}: unreachable (distance {distance_m} m)")
            }
            ProblemError::ZeroCapacityServer {
                server,
                flops_per_sec,
            } => write!(
                f,
                "server {server}: invalid capacity {flops_per_sec} FLOP/s"
            ),
            ProblemError::ZeroBandwidthAp { ap, bandwidth_hz } => {
                write!(f, "ap {ap}: invalid bandwidth {bandwidth_hz} Hz")
            }
            ProblemError::InvalidRtt { ap, rtt_s } => {
                write!(f, "ap {ap}: invalid RTT {rtt_s} s")
            }
            ProblemError::NonPositiveDeadline { stream, deadline_s } => {
                write!(f, "stream {stream}: non-positive deadline ({deadline_s} s)")
            }
            ProblemError::AccuracyFloorOutOfRange { stream, floor } => {
                write!(f, "stream {stream}: accuracy floor out of range ({floor})")
            }
            ProblemError::ModelAccuracyOutOfRange { model, accuracy } => {
                write!(
                    f,
                    "model {model}: published accuracy out of range ({accuracy})"
                )
            }
            ProblemError::EmptyExitMenu { stream } => {
                write!(
                    f,
                    "stream {stream}: no admissible surgery plan (empty exit menu)"
                )
            }
            ProblemError::ShardZeroCap => {
                write!(f, "shard config: max_streams must be positive")
            }
            ProblemError::ShardReachArity { expected_aps, got } => {
                write!(
                    f,
                    "shard config: reachability table has {got} rows for {expected_aps} APs"
                )
            }
            ProblemError::ShardReachUnknownServer { ap, server } => {
                write!(f, "shard config: AP {ap} reaches unknown server {server}")
            }
            ProblemError::ShardReachEmptyAp { ap } => {
                write!(
                    f,
                    "shard config: AP {ap} reaches no servers (its streams could never offload)"
                )
            }
            ProblemError::ShardCapBelowApGroup {
                ap,
                streams,
                max_streams,
            } => {
                write!(
                    f,
                    "shard config: AP {ap} carries {streams} streams but max_streams is \
                     {max_streams}; APs are never split, so the cap must admit the largest AP group"
                )
            }
            ProblemError::ChurnUnknownTarget { what, index, count } => {
                write!(f, "churn event: unknown {what} {index} (fleet has {count})")
            }
            ProblemError::ChurnFactorOutOfRange {
                what,
                factor,
                lo,
                hi,
            } => {
                write!(
                    f,
                    "churn event: {what} factor {factor} outside [{lo}, {hi}]"
                )
            }
            ProblemError::ChurnTimeRegression { at_s, cursor_s } => {
                write!(
                    f,
                    "churn event: timestamp {at_s} s behind the event cursor ({cursor_s} s)"
                )
            }
            ProblemError::ChurnBadTimestamp { at_s } => {
                write!(f, "churn event: non-finite timestamp ({at_s})")
            }
        }
    }
}

impl Error for ProblemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProblemError::Topology(e) => Some(e),
            ProblemError::Arrival { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<SimError> for ProblemError {
    fn from(e: SimError) -> Self {
        ProblemError::Topology(e)
    }
}

impl From<ProblemError> for String {
    fn from(e: ProblemError) -> Self {
        e.to_string()
    }
}

/// How [`validate_problem`] treats a defective instance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum ValidationPolicy {
    /// Reject at the first defect with a precise [`ProblemError`].
    #[default]
    Strict,
    /// Repair what can be repaired — clamp out-of-range scalars, drop
    /// dead resources, reassign orphaned devices, discard unusable
    /// streams — and reject only structural defects nothing can fix
    /// (no servers left, no streams left, arity mismatches).
    Repair {
        /// Ceiling for device–AP distances when clamping non-finite or
        /// oversized values, meters.
        max_distance_m: f64,
        /// Substitute deadline for streams whose recorded deadline is
        /// non-finite or non-positive, seconds.
        fallback_deadline_s: f64,
    },
}

impl ValidationPolicy {
    /// The repair preset with the default clamp ceilings.
    pub fn repair() -> Self {
        ValidationPolicy::Repair {
            max_distance_m: 10_000.0,
            fallback_deadline_s: 1.0,
        }
    }
}

/// One repair applied by [`validate_problem`] under
/// [`ValidationPolicy::Repair`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RepairAction {
    /// A device's distance was clamped into `[0, max_distance_m]`.
    ClampedDistance {
        /// The repaired device.
        device: usize,
        /// Original value, meters.
        from: f64,
        /// Clamped value, meters.
        to: f64,
    },
    /// An AP's RTT was clamped to a finite non-negative value.
    ClampedRtt {
        /// The repaired AP.
        ap: usize,
        /// Original value, seconds.
        from: f64,
        /// Clamped value, seconds.
        to: f64,
    },
    /// A stream's deadline was replaced by the policy fallback.
    ClampedDeadline {
        /// The repaired stream.
        stream: usize,
        /// Original value, seconds.
        from: f64,
        /// Substitute value, seconds.
        to: f64,
    },
    /// A stream's accuracy floor was clamped into `[0, 1]`.
    ClampedAccuracyFloor {
        /// The repaired stream.
        stream: usize,
        /// Original value.
        from: f64,
        /// Clamped value.
        to: f64,
    },
    /// A published model accuracy was clamped into `[0, 1]`.
    ClampedModelAccuracy {
        /// The repaired model.
        model: usize,
        /// Original value.
        from: f64,
        /// Clamped value.
        to: f64,
    },
    /// A zero-capacity server was removed (survivors renumbered).
    DroppedServer {
        /// The dropped server's original id.
        server: usize,
    },
    /// A zero-bandwidth AP was removed (survivors renumbered).
    DroppedAp {
        /// The dropped AP's original id.
        ap: usize,
    },
    /// A device whose AP was dropped or missing was moved to another AP.
    ReassignedDevice {
        /// The moved device.
        device: usize,
        /// Its original AP id.
        from_ap: usize,
        /// Its new AP id (post-renumbering).
        to_ap: usize,
    },
    /// A stream that could not be repaired (dangling device/model
    /// reference, invalid arrival process) was discarded.
    DroppedStream {
        /// The dropped stream's original index.
        stream: usize,
    },
}

/// Everything [`validate_problem`] changed while repairing an instance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Repairs in application order.
    pub actions: Vec<RepairAction>,
}

impl RepairReport {
    /// `true` when the instance passed untouched.
    pub fn is_clean(&self) -> bool {
        self.actions.is_empty()
    }
}

/// Strict structural/numerical checks; first defect wins.
pub(crate) fn check_strict(p: &JointProblem) -> Result<(), ProblemError> {
    if p.models.is_empty() {
        return Err(ProblemError::NoModels);
    }
    if p.models.len() != p.model_accuracy.len() {
        return Err(ProblemError::ModelAccuracyArity {
            models: p.models.len(),
            accuracies: p.model_accuracy.len(),
        });
    }
    if p.streams.is_empty() {
        return Err(ProblemError::NoStreams);
    }
    if p.cluster.servers.is_empty() {
        return Err(ProblemError::NoServers);
    }
    if p.cluster.aps.is_empty() {
        return Err(ProblemError::NoAps);
    }
    p.cluster.validate().map_err(ProblemError::Topology)?;
    for (i, d) in p.cluster.devices.iter().enumerate() {
        if !d.distance_m.is_finite() || d.distance_m < 0.0 {
            return Err(ProblemError::UnreachableDevice {
                device: i,
                distance_m: d.distance_m,
            });
        }
    }
    for (i, a) in p.cluster.aps.iter().enumerate() {
        if !a.bandwidth_hz.is_finite() || a.bandwidth_hz <= 0.0 {
            return Err(ProblemError::ZeroBandwidthAp {
                ap: i,
                bandwidth_hz: a.bandwidth_hz,
            });
        }
        if !a.rtt_s.is_finite() || a.rtt_s < 0.0 {
            return Err(ProblemError::InvalidRtt {
                ap: i,
                rtt_s: a.rtt_s,
            });
        }
    }
    for (i, s) in p.cluster.servers.iter().enumerate() {
        if !s.proc.flops_per_sec.is_finite() || s.proc.flops_per_sec <= 0.0 {
            return Err(ProblemError::ZeroCapacityServer {
                server: i,
                flops_per_sec: s.proc.flops_per_sec,
            });
        }
    }
    for (i, acc) in p.model_accuracy.iter().enumerate() {
        if !(0.0..=1.0).contains(acc) {
            return Err(ProblemError::ModelAccuracyOutOfRange {
                model: i,
                accuracy: *acc,
            });
        }
    }
    for (i, s) in p.streams.iter().enumerate() {
        if s.device >= p.cluster.devices.len() {
            return Err(ProblemError::MissingDevice {
                stream: i,
                device: s.device,
            });
        }
        if s.model >= p.models.len() {
            return Err(ProblemError::MissingModel {
                stream: i,
                model: s.model,
            });
        }
        s.arrivals.validate().map_err(|e| ProblemError::Arrival {
            stream: i,
            source: e,
        })?;
        let rate = s.arrivals.mean_rate();
        if rate > MAX_ARRIVAL_RATE_HZ {
            return Err(ProblemError::ArrivalRateTooHigh {
                stream: i,
                rate_hz: rate,
            });
        }
        if !s.deadline_s.is_finite() || s.deadline_s <= 0.0 {
            return Err(ProblemError::NonPositiveDeadline {
                stream: i,
                deadline_s: s.deadline_s,
            });
        }
        if !(0.0..=1.0).contains(&s.accuracy_floor) {
            return Err(ProblemError::AccuracyFloorOutOfRange {
                stream: i,
                floor: s.accuracy_floor,
            });
        }
    }
    Ok(())
}

/// Validate a [`ShardConfig`](crate::shard::ShardConfig) against a
/// problem: the cap must be positive and admit the largest AP stream
/// group (APs are never split across shards), and a per-AP reachability
/// table must cover every AP, name only real servers, and leave no AP
/// with an empty candidate set.
pub fn validate_shard_config(
    p: &JointProblem,
    cfg: &crate::shard::ShardConfig,
) -> Result<(), ProblemError> {
    if cfg.max_streams == 0 {
        return Err(ProblemError::ShardZeroCap);
    }
    for (ap, members) in p.streams_by_ap().iter().enumerate() {
        if members.len() > cfg.max_streams {
            return Err(ProblemError::ShardCapBelowApGroup {
                ap,
                streams: members.len(),
                max_streams: cfg.max_streams,
            });
        }
    }
    if let crate::shard::Reachability::PerAp(lists) = &cfg.reach {
        if lists.len() != p.cluster.aps.len() {
            return Err(ProblemError::ShardReachArity {
                expected_aps: p.cluster.aps.len(),
                got: lists.len(),
            });
        }
        for (ap, servers) in lists.iter().enumerate() {
            if servers.is_empty() {
                return Err(ProblemError::ShardReachEmptyAp { ap });
            }
            for &srv in servers {
                if srv >= p.cluster.servers.len() {
                    return Err(ProblemError::ShardReachUnknownServer { ap, server: srv });
                }
            }
        }
    }
    Ok(())
}

/// Validate one churn event against the fleet a service is planning for:
/// the target index must exist, drift factors must be finite and inside
/// their admissible range, and the timestamp must be finite and not
/// regress behind `cursor_s` (the time the service has already consumed
/// up to).
pub fn validate_churn_event(
    p: &JointProblem,
    cursor_s: f64,
    event: &scalpel_sim::ChurnEvent,
) -> Result<(), ProblemError> {
    use scalpel_sim::churn::{FACTOR_FLOOR, MAX_LOAD_FACTOR};
    use scalpel_sim::ChurnKind;
    if !event.at_s.is_finite() {
        return Err(ProblemError::ChurnBadTimestamp { at_s: event.at_s });
    }
    if event.at_s < cursor_s {
        return Err(ProblemError::ChurnTimeRegression {
            at_s: event.at_s,
            cursor_s,
        });
    }
    let check_index = |what: &'static str, index: usize, count: usize| {
        if index >= count {
            Err(ProblemError::ChurnUnknownTarget { what, index, count })
        } else {
            Ok(())
        }
    };
    let check_factor = |what: &'static str, factor: f64, lo: f64, hi: f64| {
        if !factor.is_finite() || !(lo..=hi).contains(&factor) {
            Err(ProblemError::ChurnFactorOutOfRange {
                what,
                factor,
                lo,
                hi,
            })
        } else {
            Ok(())
        }
    };
    match event.kind {
        ChurnKind::DeviceDown { device } | ChurnKind::DeviceUp { device } => {
            check_index("device", device, p.cluster.devices.len())
        }
        ChurnKind::LinkDrift { ap, factor } => {
            check_index("ap", ap, p.cluster.aps.len())?;
            check_factor("link", factor, FACTOR_FLOOR, 1.0)
        }
        ChurnKind::CapacityDrift { server, factor } => {
            check_index("server", server, p.cluster.servers.len())?;
            check_factor("cap", factor, FACTOR_FLOOR, 1.0)
        }
        ChurnKind::LoadDrift { stream, factor } => {
            check_index("stream", stream, p.streams.len())?;
            check_factor("load", factor, FACTOR_FLOOR, MAX_LOAD_FACTOR)
        }
    }
}

/// Validate a whole churn batch atomically: every event is checked (in
/// order, with the cursor advancing inside the batch) and the first
/// defect rejects the batch. A service applies either all of a batch or
/// none of it — partial application would leave the fleet view
/// inconsistent with the event log it replays from.
pub fn validate_churn_batch(
    p: &JointProblem,
    cursor_s: f64,
    events: &[scalpel_sim::ChurnEvent],
) -> Result<(), ProblemError> {
    let mut cursor = cursor_s;
    for e in events {
        validate_churn_event(p, cursor, e)?;
        cursor = e.at_s;
    }
    Ok(())
}

/// Validate a problem under `policy`.
///
/// Under [`ValidationPolicy::Strict`] the input is returned untouched (with
/// an empty report) or rejected with the first defect found. Under
/// [`ValidationPolicy::Repair`] a repaired copy is returned together with
/// the list of repairs; only structurally unfixable instances (no streams
/// or servers survive, arity mismatches) are rejected. The repaired copy
/// always satisfies the strict checks.
pub fn validate_problem(
    problem: &JointProblem,
    policy: &ValidationPolicy,
) -> Result<(JointProblem, RepairReport), ProblemError> {
    let (max_distance_m, fallback_deadline_s) = match policy {
        ValidationPolicy::Strict => {
            check_strict(problem)?;
            return Ok((problem.clone(), RepairReport::default()));
        }
        ValidationPolicy::Repair {
            max_distance_m,
            fallback_deadline_s,
        } => (*max_distance_m, *fallback_deadline_s),
    };
    let mut p = problem.clone();
    let mut report = RepairReport::default();

    // Structurally unfixable defects first.
    if p.models.is_empty() {
        return Err(ProblemError::NoModels);
    }
    if p.models.len() != p.model_accuracy.len() {
        return Err(ProblemError::ModelAccuracyArity {
            models: p.models.len(),
            accuracies: p.model_accuracy.len(),
        });
    }

    // --- Access points: drop dead spectrum, clamp RTT, renumber. ---
    let mut ap_remap: Vec<Option<usize>> = Vec::with_capacity(p.cluster.aps.len());
    let mut kept_aps = Vec::with_capacity(p.cluster.aps.len());
    for (i, mut a) in p.cluster.aps.drain(..).enumerate() {
        if !a.bandwidth_hz.is_finite() || a.bandwidth_hz <= 0.0 {
            report.actions.push(RepairAction::DroppedAp { ap: i });
            ap_remap.push(None);
            continue;
        }
        if !a.rtt_s.is_finite() || a.rtt_s < 0.0 {
            report.actions.push(RepairAction::ClampedRtt {
                ap: i,
                from: a.rtt_s,
                to: 0.0,
            });
            a.rtt_s = 0.0;
        }
        a.id = kept_aps.len();
        ap_remap.push(Some(a.id));
        kept_aps.push(a);
    }
    if kept_aps.is_empty() {
        return Err(ProblemError::NoAps);
    }
    p.cluster.aps = kept_aps;

    // --- Devices: renumber, reattach orphans, clamp distances. ---
    for (i, d) in p.cluster.devices.iter_mut().enumerate() {
        d.id = i;
        let new_ap = ap_remap.get(d.ap).copied().flatten();
        match new_ap {
            Some(ap) if ap == d.ap => {}
            found => {
                let to_ap = found.unwrap_or(0);
                report.actions.push(RepairAction::ReassignedDevice {
                    device: i,
                    from_ap: d.ap,
                    to_ap,
                });
                d.ap = to_ap;
            }
        }
        if !d.distance_m.is_finite() || d.distance_m < 0.0 || d.distance_m > max_distance_m {
            let to = if d.distance_m < 0.0 {
                0.0
            } else {
                max_distance_m
            };
            report.actions.push(RepairAction::ClampedDistance {
                device: i,
                from: d.distance_m,
                to,
            });
            d.distance_m = to;
        }
    }

    // --- Servers: drop dead capacity, renumber. ---
    let mut kept_servers = Vec::with_capacity(p.cluster.servers.len());
    for (i, mut s) in p.cluster.servers.drain(..).enumerate() {
        if !s.proc.flops_per_sec.is_finite() || s.proc.flops_per_sec <= 0.0 {
            report
                .actions
                .push(RepairAction::DroppedServer { server: i });
            continue;
        }
        s.id = kept_servers.len();
        kept_servers.push(s);
    }
    if kept_servers.is_empty() {
        return Err(ProblemError::NoServers);
    }
    p.cluster.servers = kept_servers;

    // --- Model accuracies: clamp into [0, 1] (NaN pins to 0). ---
    for (i, acc) in p.model_accuracy.iter_mut().enumerate() {
        if !(0.0..=1.0).contains(acc) {
            let to = if acc.is_finite() {
                acc.clamp(0.0, 1.0)
            } else {
                0.0
            };
            report.actions.push(RepairAction::ClampedModelAccuracy {
                model: i,
                from: *acc,
                to,
            });
            *acc = to;
        }
    }

    // --- Streams: clamp deadlines/floors, drop unfixable references. ---
    let num_devices = p.cluster.devices.len();
    let num_models = p.models.len();
    let mut kept_streams = Vec::with_capacity(p.streams.len());
    for (i, mut s) in p.streams.drain(..).enumerate() {
        if s.device >= num_devices
            || s.model >= num_models
            || s.arrivals.validate().is_err()
            || s.arrivals.mean_rate() > MAX_ARRIVAL_RATE_HZ
        {
            report
                .actions
                .push(RepairAction::DroppedStream { stream: i });
            continue;
        }
        if !s.deadline_s.is_finite() || s.deadline_s <= 0.0 {
            report.actions.push(RepairAction::ClampedDeadline {
                stream: i,
                from: s.deadline_s,
                to: fallback_deadline_s,
            });
            s.deadline_s = fallback_deadline_s;
        }
        if !(0.0..=1.0).contains(&s.accuracy_floor) {
            let to = if s.accuracy_floor.is_finite() {
                s.accuracy_floor.clamp(0.0, 1.0)
            } else {
                0.0
            };
            report.actions.push(RepairAction::ClampedAccuracyFloor {
                stream: i,
                from: s.accuracy_floor,
                to,
            });
            s.accuracy_floor = to;
        }
        kept_streams.push(s);
    }
    if kept_streams.is_empty() {
        return Err(ProblemError::NoStreams);
    }
    p.streams = kept_streams;

    // A repaired instance must pass the strict gate; anything left over
    // is a defect this policy cannot fix, so surface it.
    check_strict(&p)?;
    Ok((p, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests::tiny_problem;

    #[test]
    fn strict_accepts_valid_instance_untouched() {
        let p = tiny_problem();
        let (q, report) = validate_problem(&p, &ValidationPolicy::Strict).unwrap();
        assert!(report.is_clean());
        assert_eq!(q.streams.len(), p.streams.len());
    }

    #[test]
    fn strict_rejects_each_defect_with_a_precise_error() {
        let mut p = tiny_problem();
        p.streams[0].deadline_s = f64::NAN;
        assert!(matches!(
            validate_problem(&p, &ValidationPolicy::Strict),
            Err(ProblemError::NonPositiveDeadline { stream: 0, .. })
        ));

        let mut p = tiny_problem();
        p.cluster.servers[0].proc.flops_per_sec = 0.0;
        assert!(matches!(
            validate_problem(&p, &ValidationPolicy::Strict),
            Err(ProblemError::ZeroCapacityServer { server: 0, .. })
        ));

        let mut p = tiny_problem();
        p.cluster.aps[0].bandwidth_hz = f64::NAN;
        assert!(matches!(
            validate_problem(&p, &ValidationPolicy::Strict),
            Err(ProblemError::ZeroBandwidthAp { ap: 0, .. })
        ));

        let mut p = tiny_problem();
        p.cluster.devices[1].distance_m = f64::INFINITY;
        assert!(matches!(
            validate_problem(&p, &ValidationPolicy::Strict),
            Err(ProblemError::UnreachableDevice { device: 1, .. })
        ));

        let mut p = tiny_problem();
        p.cluster.servers.clear();
        assert!(matches!(
            validate_problem(&p, &ValidationPolicy::Strict),
            Err(ProblemError::NoServers)
        ));
    }

    #[test]
    fn repair_clamps_scalars_and_reports() {
        let mut p = tiny_problem();
        p.streams[0].deadline_s = -3.0;
        p.streams[1].accuracy_floor = 1.7;
        p.cluster.devices[0].distance_m = f64::NAN;
        let (q, report) = validate_problem(&p, &ValidationPolicy::repair()).unwrap();
        assert!(!report.is_clean());
        assert_eq!(q.streams.len(), 2);
        assert!(q.streams[0].deadline_s > 0.0);
        assert!((0.0..=1.0).contains(&q.streams[1].accuracy_floor));
        assert!(q.cluster.devices[0].distance_m.is_finite());
        assert!(check_strict(&q).is_ok());
    }

    #[test]
    fn repair_drops_dead_resources_and_reassigns() {
        let mut p = tiny_problem();
        // Second AP with no spectrum; move device 1 onto it.
        p.cluster.aps.push(scalpel_sim::ApSpec {
            id: 1,
            bandwidth_hz: 0.0,
            rtt_s: 1e-3,
        });
        p.cluster.devices[1].ap = 1;
        let (q, report) = validate_problem(&p, &ValidationPolicy::repair()).unwrap();
        assert_eq!(q.cluster.aps.len(), 1);
        assert_eq!(q.cluster.devices[1].ap, 0);
        assert!(report
            .actions
            .iter()
            .any(|a| matches!(a, RepairAction::DroppedAp { ap: 1 })));
        assert!(report
            .actions
            .iter()
            .any(|a| matches!(a, RepairAction::ReassignedDevice { device: 1, .. })));
        assert!(check_strict(&q).is_ok());
    }

    #[test]
    fn repair_drops_unfixable_streams_but_rejects_empty_survivor_set() {
        let mut p = tiny_problem();
        p.streams[0].device = 99;
        let (q, report) = validate_problem(&p, &ValidationPolicy::repair()).unwrap();
        assert_eq!(q.streams.len(), 1);
        assert!(report
            .actions
            .iter()
            .any(|a| matches!(a, RepairAction::DroppedStream { stream: 0 })));

        let mut p = tiny_problem();
        for s in &mut p.streams {
            s.model = 99;
        }
        assert!(matches!(
            validate_problem(&p, &ValidationPolicy::repair()),
            Err(ProblemError::NoStreams)
        ));
    }

    #[test]
    fn absurd_arrival_rates_are_rejected_or_dropped() {
        // Finite, positive, and completely unsimulatable: strict rejects,
        // repair drops the stream.
        let mut p = tiny_problem();
        p.streams[0].arrivals = scalpel_sim::ArrivalProcess::Poisson { rate_hz: 1e308 };
        assert!(matches!(
            validate_problem(&p, &ValidationPolicy::Strict),
            Err(ProblemError::ArrivalRateTooHigh { stream: 0, .. })
        ));
        let (q, report) = validate_problem(&p, &ValidationPolicy::repair()).unwrap();
        assert_eq!(q.streams.len(), 1);
        assert!(report
            .actions
            .iter()
            .any(|a| matches!(a, RepairAction::DroppedStream { stream: 0 })));
        assert!(check_strict(&q).is_ok());
    }

    #[test]
    fn repair_rejects_when_no_server_survives() {
        let mut p = tiny_problem();
        p.cluster.servers[0].proc.flops_per_sec = f64::NAN;
        assert!(matches!(
            validate_problem(&p, &ValidationPolicy::repair()),
            Err(ProblemError::NoServers)
        ));
    }

    #[test]
    fn errors_display_and_chain() {
        let e = ProblemError::NonPositiveDeadline {
            stream: 3,
            deadline_s: -1.0,
        };
        assert_eq!(e.to_string(), "stream 3: non-positive deadline (-1 s)");
        let wrapped = ProblemError::Topology(SimError::InvalidTopology {
            detail: "cluster has no devices".into(),
        });
        assert!(wrapped.source().is_some());
        let s: String = wrapped.into();
        assert!(s.contains("no devices"));
    }
}
