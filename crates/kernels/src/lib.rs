//! # scalpel-kernels — hand-unrolled f64x4 hot-loop primitives
//!
//! The solver and simulator hot paths (KKT water-filling, clipped
//! water-filling bisection, min-max bisection, pricing accumulation) are
//! short reductions over flat f64 columns. Written as naive iterator
//! chains they serialize on one scalar add/divide per element; written as
//! 4-lane unrolled loops the *elementwise* work (divide, multiply, sqrt,
//! max) becomes independent across lanes — LLVM packs it into SSE2/AVX
//! vector ops and the four hardware dividers pipeline — while the
//! *reduction* stays under our explicit control.
//!
//! ## Bit-exactness contract
//!
//! Every kernel documents one of two guarantees:
//!
//! * **Bit-exact** — IEEE-754 elementwise operations (`*`, `/`, `sqrt`,
//!   `max`) are exactly rounded, so computing four of them at once
//!   changes nothing; the final accumulation is performed in the same
//!   strict element order a naive scalar loop uses. Result: identical
//!   bits to the reference loop, always. These kernels are safe inside
//!   the solver paths whose outputs are pinned bitwise (trace parity,
//!   golden snapshots).
//! * **Re-associated** (`*_fast`) — four parallel accumulators combined
//!   at the end. This changes the rounding order; callers must tolerate
//!   [`KERNEL_REL_TOL`] and must not feed the result into a bit-pinned
//!   comparison. `min_fast` is the exception: `min` is associative and
//!   commutative exactly (for NaN-free inputs), so its lane-reduction is
//!   still bitwise equal to the sequential fold.
//!
//! ## `kernel-xcheck`
//!
//! With the `kernel-xcheck` feature enabled, every kernel call also runs
//! its scalar reference implementation and asserts agreement — bitwise
//! for the bit-exact kernels, within [`KERNEL_REL_TOL`] for the
//! re-associated ones. This is the allocation-layer analogue of the
//! `eval-xcheck` oracle: turn it on in CI and any divergence between the
//! unrolled and reference paths aborts loudly at the first call.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

/// Relative tolerance the re-associated (`*_fast`) reductions are allowed
/// to diverge from the sequential reference by. A 4-way re-association of
/// `n` same-sign terms differs from the sequential sum by at most
/// ~`n·ε·Σ|x|`; for the column lengths this workspace reduces (≤ a few
/// thousand) and machine ε ≈ 2.2e-16 that is well below `1e-12`
/// relative. Mixed-sign cancellation can exceed this — callers feed
/// non-negative columns (shares, weights, work remaining).
pub const KERNEL_REL_TOL: f64 = 1e-12;

const LANES: usize = 4;

#[cfg(feature = "kernel-xcheck")]
#[inline]
fn xcheck_bits(kernel: &str, got: f64, reference: f64) {
    assert!(
        got.to_bits() == reference.to_bits(),
        "kernel-xcheck: {kernel} diverged from scalar reference: {got:?} vs {reference:?}"
    );
}

#[cfg(feature = "kernel-xcheck")]
#[inline]
fn xcheck_tol(kernel: &str, got: f64, reference: f64) {
    let scale = reference.abs().max(got.abs()).max(1.0);
    assert!(
        (got - reference).abs() <= KERNEL_REL_TOL * scale || got.to_bits() == reference.to_bits(),
        "kernel-xcheck: {kernel} outside KERNEL_REL_TOL: {got:?} vs {reference:?}"
    );
}

/// Sequential sum in strict element order — the reference reduction every
/// bit-exact kernel accumulates with. **Bit-exact** by definition.
#[inline]
pub fn seq_sum(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x;
    }
    acc
}

/// `out[i] = (a[i] * b[i]).sqrt()` for the common prefix of `a`/`b`,
/// returning the strict-order sum of the outputs. This is the
/// water-filling root pass `r_k = √(w_k e_k)`, `Σ_k r_k` fused into one
/// sweep. **Bit-exact**: multiply and sqrt are exactly rounded per
/// element and the sum runs in element order.
pub fn sqrt_mul_sum(a: &[f64], b: &[f64], out: &mut Vec<f64>) -> f64 {
    let n = a.len().min(b.len());
    out.clear();
    out.reserve(n);
    let mut acc = 0.0;
    let mut i = 0;
    while i + LANES <= n {
        let r0 = (a[i] * b[i]).sqrt();
        let r1 = (a[i + 1] * b[i + 1]).sqrt();
        let r2 = (a[i + 2] * b[i + 2]).sqrt();
        let r3 = (a[i + 3] * b[i + 3]).sqrt();
        out.extend_from_slice(&[r0, r1, r2, r3]);
        acc += r0;
        acc += r1;
        acc += r2;
        acc += r3;
        i += LANES;
    }
    while i < n {
        let r = (a[i] * b[i]).sqrt();
        out.push(r);
        acc += r;
        i += 1;
    }
    #[cfg(feature = "kernel-xcheck")]
    {
        let mut racc = 0.0;
        for (j, (&x, &y)) in a.iter().zip(b.iter()).take(n).enumerate() {
            let r = (x * y).sqrt();
            xcheck_bits("sqrt_mul_sum[elem]", out[j], r);
            racc += r;
        }
        xcheck_bits("sqrt_mul_sum", acc, racc);
    }
    acc
}

/// The clipped-water-filling bisection objective
/// `Σ_k max(roots[k] / nu, mins[k])` over the common prefix, summed in
/// strict element order. The four divides per step are independent, so
/// they pipeline (or pack into `divpd`); only the adds serialize.
/// **Bit-exact.**
pub fn clipped_share_sum(roots: &[f64], mins: &[f64], nu: f64) -> f64 {
    let n = roots.len().min(mins.len());
    let mut acc = 0.0;
    let mut i = 0;
    while i + LANES <= n {
        let q0 = (roots[i] / nu).max(mins[i]);
        let q1 = (roots[i + 1] / nu).max(mins[i + 1]);
        let q2 = (roots[i + 2] / nu).max(mins[i + 2]);
        let q3 = (roots[i + 3] / nu).max(mins[i + 3]);
        acc += q0;
        acc += q1;
        acc += q2;
        acc += q3;
        i += LANES;
    }
    while i < n {
        acc += (roots[i] / nu).max(mins[i]);
        i += 1;
    }
    #[cfg(feature = "kernel-xcheck")]
    {
        let mut racc = 0.0;
        for (&r, &m) in roots.iter().zip(mins.iter()).take(n) {
            racc += (r / nu).max(m);
        }
        xcheck_bits("clipped_share_sum", acc, racc);
    }
    acc
}

/// `out[i] = max(roots[i] / nu, mins[i])` elementwise over the common
/// prefix — the final share fill after the clipped-water-filling
/// bisection converges. `out` must be at least that long. **Bit-exact.**
pub fn clipped_fill(roots: &[f64], mins: &[f64], nu: f64, out: &mut [f64]) {
    let n = roots.len().min(mins.len()).min(out.len());
    let mut i = 0;
    while i + LANES <= n {
        out[i] = (roots[i] / nu).max(mins[i]);
        out[i + 1] = (roots[i + 1] / nu).max(mins[i + 1]);
        out[i + 2] = (roots[i + 2] / nu).max(mins[i + 2]);
        out[i + 3] = (roots[i + 3] / nu).max(mins[i + 3]);
        i += LANES;
    }
    while i < n {
        out[i] = (roots[i] / nu).max(mins[i]);
        i += 1;
    }
    #[cfg(feature = "kernel-xcheck")]
    for (j, (&r, &m)) in roots.iter().zip(mins.iter()).take(n).enumerate() {
        xcheck_bits("clipped_fill", out[j], (r / nu).max(m));
    }
}

/// The min-max bisection objective `g(λ) = Σ_k num[k] / (λ − base[k])`
/// over the common prefix, summed in strict element order. Callers pass
/// the *served-streams-compacted* columns so no filter branch runs inside
/// the 4-lane body. **Bit-exact.**
pub fn ratio_sum(num: &[f64], base: &[f64], lambda: f64) -> f64 {
    let n = num.len().min(base.len());
    let mut acc = 0.0;
    let mut i = 0;
    while i + LANES <= n {
        let q0 = num[i] / (lambda - base[i]);
        let q1 = num[i + 1] / (lambda - base[i + 1]);
        let q2 = num[i + 2] / (lambda - base[i + 2]);
        let q3 = num[i + 3] / (lambda - base[i + 3]);
        acc += q0;
        acc += q1;
        acc += q2;
        acc += q3;
        i += LANES;
    }
    while i < n {
        acc += num[i] / (lambda - base[i]);
        i += 1;
    }
    #[cfg(feature = "kernel-xcheck")]
    {
        let mut racc = 0.0;
        for (&e, &a) in num.iter().zip(base.iter()).take(n) {
            racc += e / (lambda - a);
        }
        xcheck_bits("ratio_sum", acc, racc);
    }
    acc
}

/// `out[i] /= d` elementwise — the simplex normalization after a
/// water-filling or bisection solve. **Bit-exact** (division is exactly
/// rounded per element; no reduction involved).
pub fn scale_div(out: &mut [f64], d: f64) {
    let n = out.len();
    let mut i = 0;
    while i + LANES <= n {
        out[i] /= d;
        out[i + 1] /= d;
        out[i + 2] /= d;
        out[i + 3] /= d;
        i += LANES;
    }
    while i < n {
        out[i] /= d;
        i += 1;
    }
}

/// In-place variant of [`clipped_fill`]: `mins_out[i] =
/// max(roots[i] / nu, mins_out[i])` — the deadline solver's final fill,
/// which overwrites the minimums buffer with the shares. **Bit-exact.**
pub fn clipped_fill_inplace(roots: &[f64], nu: f64, mins_out: &mut [f64]) {
    let n = roots.len().min(mins_out.len());
    let mut i = 0;
    while i + LANES <= n {
        mins_out[i] = (roots[i] / nu).max(mins_out[i]);
        mins_out[i + 1] = (roots[i + 1] / nu).max(mins_out[i + 1]);
        mins_out[i + 2] = (roots[i + 2] / nu).max(mins_out[i + 2]);
        mins_out[i + 3] = (roots[i + 3] / nu).max(mins_out[i + 3]);
        i += LANES;
    }
    while i < n {
        mins_out[i] = (roots[i] / nu).max(mins_out[i]);
        i += 1;
    }
}

/// Re-associated 4-accumulator sum. **Not bit-exact** vs [`seq_sum`] —
/// agrees within [`KERNEL_REL_TOL`] for same-sign inputs. Use only where
/// the consumer is explicitly tolerance-gated.
pub fn sum_fast(xs: &[f64]) -> f64 {
    let n = xs.len();
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut i = 0;
    while i + LANES <= n {
        a0 += xs[i];
        a1 += xs[i + 1];
        a2 += xs[i + 2];
        a3 += xs[i + 3];
        i += LANES;
    }
    let mut acc = (a0 + a2) + (a1 + a3);
    while i < n {
        acc += xs[i];
        i += 1;
    }
    #[cfg(feature = "kernel-xcheck")]
    xcheck_tol("sum_fast", acc, seq_sum(xs));
    acc
}

/// Re-associated 4-accumulator dot product `Σ a[i]·b[i]` over the common
/// prefix. **Not bit-exact**; [`KERNEL_REL_TOL`] applies (same-sign
/// inputs). Use only in tolerance-gated consumers.
pub fn dot_fast(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut i = 0;
    while i + LANES <= n {
        a0 += a[i] * b[i];
        a1 += a[i + 1] * b[i + 1];
        a2 += a[i + 2] * b[i + 2];
        a3 += a[i + 3] * b[i + 3];
        i += LANES;
    }
    let mut acc = (a0 + a2) + (a1 + a3);
    while i < n {
        acc += a[i] * b[i];
        i += 1;
    }
    #[cfg(feature = "kernel-xcheck")]
    {
        let mut racc = 0.0;
        for (&x, &y) in a.iter().zip(b.iter()).take(n) {
            racc += x * y;
        }
        xcheck_tol("dot_fast", acc, racc);
    }
    acc
}

/// 4-lane minimum reduce; `+∞` for an empty slice. `min` is exactly
/// associative and commutative for NaN-free inputs, so despite the lane
/// split this is **bit-exact** vs `fold(+∞, f64::min)` on such inputs
/// (NaN entries are ignored, per `f64::min` semantics, in both).
pub fn min_fast(xs: &[f64]) -> f64 {
    let n = xs.len();
    let mut m0 = f64::INFINITY;
    let mut m1 = f64::INFINITY;
    let mut m2 = f64::INFINITY;
    let mut m3 = f64::INFINITY;
    let mut i = 0;
    while i + LANES <= n {
        m0 = m0.min(xs[i]);
        m1 = m1.min(xs[i + 1]);
        m2 = m2.min(xs[i + 2]);
        m3 = m3.min(xs[i + 3]);
        i += LANES;
    }
    let mut m = m0.min(m1).min(m2).min(m3);
    while i < n {
        m = m.min(xs[i]);
        i += 1;
    }
    #[cfg(feature = "kernel-xcheck")]
    xcheck_bits(
        "min_fast",
        m,
        xs.iter().fold(f64::INFINITY, |a, &x| a.min(x)),
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-random positives without external deps.
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 10_000) as f64 / 100.0 + 0.01
            })
            .collect()
    }

    #[test]
    fn seq_sum_matches_iter_sum_bitwise() {
        for n in 0..=19 {
            let xs = col(n, 7);
            // Explicit fold from +0.0: std's `Iterator::sum` seeds with -0.0,
            // which differs bitwise on the empty slice.
            let reference: f64 = xs.iter().fold(0.0, |a, &x| a + x);
            assert_eq!(seq_sum(&xs).to_bits(), reference.to_bits(), "n={n}");
        }
    }

    #[test]
    fn sqrt_mul_sum_is_bit_exact_across_tails() {
        for n in 0..=19 {
            let a = col(n, 1);
            let b = col(n, 2);
            let mut out = Vec::new();
            let s = sqrt_mul_sum(&a, &b, &mut out);
            let mut racc = 0.0;
            for i in 0..n {
                let r = (a[i] * b[i]).sqrt();
                assert_eq!(out[i].to_bits(), r.to_bits());
                racc += r;
            }
            assert_eq!(s.to_bits(), racc.to_bits(), "n={n}");
        }
    }

    #[test]
    fn clipped_share_sum_and_fill_are_bit_exact() {
        for n in 0..=19 {
            let roots = col(n, 3);
            let mins = col(n, 4);
            for nu in [0.5, 1.0, 123.456] {
                let s = clipped_share_sum(&roots, &mins, nu);
                let reference: f64 = roots
                    .iter()
                    .zip(&mins)
                    .map(|(&r, &m)| (r / nu).max(m))
                    .fold(0.0, |acc, q| acc + q);
                assert_eq!(s.to_bits(), reference.to_bits(), "n={n} nu={nu}");
                let mut out = vec![0.0; n];
                clipped_fill(&roots, &mins, nu, &mut out);
                for i in 0..n {
                    assert_eq!(out[i].to_bits(), ((roots[i] / nu).max(mins[i])).to_bits());
                }
                let mut inplace = mins.clone();
                clipped_fill_inplace(&roots, nu, &mut inplace);
                for i in 0..n {
                    assert_eq!(inplace[i].to_bits(), out[i].to_bits());
                }
            }
        }
    }

    #[test]
    fn ratio_sum_is_bit_exact() {
        for n in 0..=19 {
            let e = col(n, 5);
            let a = col(n, 6);
            let lambda = 200.0; // strictly above every base value col() emits
            let s = ratio_sum(&e, &a, lambda);
            let mut racc = 0.0;
            for i in 0..n {
                racc += e[i] / (lambda - a[i]);
            }
            assert_eq!(s.to_bits(), racc.to_bits(), "n={n}");
        }
    }

    #[test]
    fn scale_div_matches_scalar() {
        for n in 0..=19 {
            let mut xs = col(n, 8);
            let reference: Vec<f64> = xs.iter().map(|&x| x / 3.7).collect();
            scale_div(&mut xs, 3.7);
            for i in 0..n {
                assert_eq!(xs[i].to_bits(), reference[i].to_bits());
            }
        }
    }

    #[test]
    fn fast_reductions_stay_within_tolerance() {
        for n in [0, 1, 3, 4, 5, 8, 13, 100, 1000] {
            let a = col(n, 9);
            let b = col(n, 10);
            let s = sum_fast(&a);
            let reference = seq_sum(&a);
            assert!((s - reference).abs() <= KERNEL_REL_TOL * reference.abs().max(1.0));
            let d = dot_fast(&a, &b);
            let dref: f64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
            assert!((d - dref).abs() <= KERNEL_REL_TOL * dref.abs().max(1.0));
        }
    }

    #[test]
    fn min_fast_matches_fold_bitwise() {
        for n in 0..=19 {
            let xs = col(n, 11);
            let reference = xs.iter().fold(f64::INFINITY, |a, &x| a.min(x));
            assert_eq!(min_fast(&xs).to_bits(), reference.to_bits(), "n={n}");
        }
        assert_eq!(min_fast(&[]), f64::INFINITY);
        assert_eq!(min_fast(&[f64::INFINITY, 3.0, f64::NAN, 1.0]), 1.0);
    }
}
