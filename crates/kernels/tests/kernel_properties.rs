//! Property-based scalar-vs-unrolled equivalence for every public kernel.
//!
//! The references here are deliberately naive scalar loops written
//! independently of the kernel bodies — a strict-order fold for the
//! bit-exact kernels, a plain accumulating loop for the re-associated
//! `*_fast` ones. Lengths are drawn to hit every 0..8 lane tail (the
//! unrolled loops switch from 4-lane body to scalar remainder there) as
//! well as multi-hundred-element columns; values cover the sanitized
//! range the solvers actually feed (non-negative, non-finite clamped to
//! zero) plus the all-zero degenerate column.

use proptest::prelude::*;
use scalpel_kernels::{
    clipped_fill, clipped_fill_inplace, clipped_share_sum, dot_fast, min_fast, ratio_sum,
    scale_div, seq_sum, sqrt_mul_sum, sum_fast, KERNEL_REL_TOL,
};

/// Lengths biased toward the lane-tail boundary (0..=8 covers every
/// remainder the 4-lane loops can leave) plus larger columns that run
/// the unrolled body many times.
fn lengths() -> impl Strategy<Value = usize> {
    prop_oneof![
        4 => 0usize..9,
        2 => 9usize..68,
        1 => 250usize..301,
    ]
}

/// A raw value stream including the garbage the solvers sanitize away —
/// NaN, infinities, negatives — mapped through the same clamp
/// `sanitize_shares` applies (non-finite or negative → 0.0). The kernels
/// themselves only ever see sanitized columns, so that is the input
/// space the equivalence must hold on. Keeping zeros in the stream also
/// exercises the all-zero-weight shape whenever the length is small.
fn sanitized(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            6 => 1e-6f64..1e6,
            1 => Just(0.0f64),
            1 => Just(f64::NAN),
            1 => Just(f64::INFINITY),
            1 => Just(-1.0f64),
        ],
        n,
    )
    .prop_map(|xs| {
        xs.into_iter()
            .map(|x| if x.is_finite() && x >= 0.0 { x } else { 0.0 })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn seq_sum_is_bitwise_the_strict_fold(xs in lengths().prop_flat_map(sanitized)) {
        let reference = xs.iter().fold(0.0f64, |a, &x| a + x);
        prop_assert_eq!(seq_sum(&xs).to_bits(), reference.to_bits());
    }

    #[test]
    fn sqrt_mul_sum_is_bitwise_elementwise_and_in_sum(
        cols in lengths().prop_flat_map(|n| (sanitized(n), sanitized(n))),
    ) {
        let (a, b) = cols;
        let mut out = Vec::new();
        let s = sqrt_mul_sum(&a, &b, &mut out);
        let mut acc = 0.0f64;
        for i in 0..a.len() {
            let r = (a[i] * b[i]).sqrt();
            prop_assert_eq!(out[i].to_bits(), r.to_bits(), "elem {}", i);
            acc += r;
        }
        prop_assert_eq!(s.to_bits(), acc.to_bits());
        prop_assert_eq!(out.len(), a.len());
    }

    #[test]
    fn clipped_kernels_are_bitwise_for_any_tail(
        cols in lengths().prop_flat_map(|n| (sanitized(n), sanitized(n))),
        nu in 1e-6f64..1e6,
    ) {
        let (roots, mins) = cols;
        let n = roots.len();
        let s = clipped_share_sum(&roots, &mins, nu);
        let reference = roots
            .iter()
            .zip(&mins)
            .map(|(&r, &m)| (r / nu).max(m))
            .fold(0.0f64, |a, q| a + q);
        prop_assert_eq!(s.to_bits(), reference.to_bits());

        let mut filled = vec![0.0; n];
        clipped_fill(&roots, &mins, nu, &mut filled);
        let mut inplace = mins.clone();
        clipped_fill_inplace(&roots, nu, &mut inplace);
        for i in 0..n {
            let want = (roots[i] / nu).max(mins[i]);
            prop_assert_eq!(filled[i].to_bits(), want.to_bits(), "fill elem {}", i);
            prop_assert_eq!(inplace[i].to_bits(), want.to_bits(), "inplace elem {}", i);
        }
    }

    #[test]
    fn ratio_sum_is_bitwise_above_the_pole(
        cols in lengths().prop_flat_map(|n| (sanitized(n), sanitized(n))),
        margin in 1e-3f64..1e3,
    ) {
        let (num, base) = cols;
        // λ strictly above every base value keeps all denominators
        // positive — the bisection only ever evaluates there.
        let lambda = base.iter().fold(0.0f64, |a, &x| a.max(x)) + margin;
        let s = ratio_sum(&num, &base, lambda);
        let mut reference = 0.0f64;
        for i in 0..num.len() {
            reference += num[i] / (lambda - base[i]);
        }
        prop_assert_eq!(s.to_bits(), reference.to_bits());
    }

    #[test]
    fn scale_div_is_bitwise_elementwise(
        xs in lengths().prop_flat_map(sanitized),
        d in 1e-6f64..1e6,
    ) {
        let mut scaled = xs.clone();
        scale_div(&mut scaled, d);
        for i in 0..xs.len() {
            prop_assert_eq!(scaled[i].to_bits(), (xs[i] / d).to_bits(), "elem {}", i);
        }
    }

    #[test]
    fn fast_sums_stay_within_rel_tol(
        cols in lengths().prop_flat_map(|n| (sanitized(n), sanitized(n))),
    ) {
        let (a, b) = cols;
        let s = sum_fast(&a);
        let sref = seq_sum(&a);
        let scale = sref.abs().max(s.abs()).max(1.0);
        prop_assert!((s - sref).abs() <= KERNEL_REL_TOL * scale, "{s} vs {sref}");

        let d = dot_fast(&a, &b);
        let mut dref = 0.0f64;
        for i in 0..a.len() {
            dref += a[i] * b[i];
        }
        let scale = dref.abs().max(d.abs()).max(1.0);
        prop_assert!((d - dref).abs() <= KERNEL_REL_TOL * scale, "{d} vs {dref}");
    }

    #[test]
    fn min_fast_is_bitwise_the_sequential_fold(xs in lengths().prop_flat_map(sanitized)) {
        let reference = xs.iter().fold(f64::INFINITY, |a, &x| a.min(x));
        prop_assert_eq!(min_fast(&xs).to_bits(), reference.to_bits());
    }
}

/// The all-zero-weight column every policy hits when no stream on a
/// server carries importance: sums collapse to exactly +0.0 through the
/// unrolled paths too, and the clip falls through to the minimums.
#[test]
fn all_zero_columns_collapse_exactly() {
    for n in 0..=9 {
        let zeros = vec![0.0f64; n];
        let mins: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        assert_eq!(seq_sum(&zeros).to_bits(), 0.0f64.to_bits());
        assert_eq!(sum_fast(&zeros).to_bits(), 0.0f64.to_bits());
        assert_eq!(dot_fast(&zeros, &mins).to_bits(), 0.0f64.to_bits());
        let mut out = Vec::new();
        assert_eq!(
            sqrt_mul_sum(&zeros, &mins, &mut out).to_bits(),
            0.0f64.to_bits()
        );
        let mut filled = vec![f64::NAN; n];
        clipped_fill(&zeros, &mins, 1.0, &mut filled);
        for i in 0..n {
            // 0/ν = 0, so the max lands on the minimum itself.
            assert_eq!(filled[i].to_bits(), mins[i].to_bits());
        }
        assert_eq!(
            clipped_share_sum(&zeros, &mins, 1.0).to_bits(),
            mins.iter().fold(0.0f64, |a, &m| a + m.max(0.0)).to_bits()
        );
    }
}
