//! Input-difficulty model: maps exit positions + confidence thresholds to
//! per-exit exit probabilities and end-to-end expected accuracy.
//!
//! Without the authors' trained models and datasets we substitute an
//! analytic calibration (DESIGN.md §3): each input carries a latent
//! difficulty `u ∈ [0,1]`; an exit at backbone-depth fraction `x` with
//! threshold `t` confidently classifies all inputs with
//! `u ≤ s(x,t) = (1 − t^ρ) · x^γ`. The exponents are fit so that the
//! resulting early-exit rates (30–60 % at mid-depth with thresholds around
//! 0.8) and accuracy drops (≲1 % for conservative thresholds) match the
//! ranges published for BranchyNet-style multi-exit networks.
//!
//! Because `s` is evaluated per exit and an input takes the *first* exit
//! whose `s` covers its difficulty, the per-exit probabilities follow from
//! the running maximum of `s` — consistent for any threshold pattern.

use serde::{Deserialize, Serialize};

/// Calibrated difficulty / confidence model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DifficultyModel {
    /// Depth exponent γ (< 1: early layers already resolve easy inputs).
    pub gamma: f64,
    /// Threshold exponent ρ (> 1: high thresholds sharply reduce exits).
    pub rho: f64,
    /// Top-1 accuracy of the full backbone.
    pub acc_full: f64,
    /// Accuracy lost by a hypothetical exit at depth 0.
    pub acc_drop: f64,
    /// Depth exponent η of exit accuracy recovery.
    pub eta: f64,
    /// How much thresholding boosts *conditional* accuracy on exited inputs
    /// (confident inputs are easier, so they are classified better).
    pub conf_boost: f64,
}

impl DifficultyModel {
    /// Calibration for an ImageNet-class backbone with the given full-model
    /// top-1 accuracy.
    pub fn imagenet(acc_full: f64) -> Self {
        Self {
            gamma: 0.5,
            rho: 4.0,
            acc_full,
            acc_drop: 0.25,
            eta: 1.5,
            conf_boost: 0.6,
        }
    }

    /// Fraction of inputs an exit at depth `x` with threshold `t` would
    /// confidently classify (unconditionally).
    pub fn coverage(&self, x: f64, t: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&x));
        debug_assert!((0.0..=1.0).contains(&t));
        self.coverage_cached(self.depth_cache(x), self.threshold_pow(t))
    }

    /// Accuracy of an exit classifier at depth `x` over *all* inputs.
    pub fn exit_accuracy(&self, x: f64) -> f64 {
        (self.acc_full - self.acc_drop * (1.0 - x).powf(self.eta)).clamp(0.0, 1.0)
    }

    /// Conditional accuracy on the inputs that actually exit at depth `x`
    /// with threshold `t` (confident ⇒ easier ⇒ more accurate). Capped at
    /// the full model's accuracy: exited inputs are easy, but the full
    /// model would have classified those same easy inputs at least as
    /// well, so a multi-exit network's expected accuracy never exceeds the
    /// backbone's (the selection effect the boost would otherwise ignore).
    pub fn conditional_accuracy(&self, x: f64, t: f64) -> f64 {
        self.conditional_accuracy_cached(self.depth_cache(x), t)
    }

    /// Precompute the two depth transcendentals (`x^γ` and the exit
    /// accuracy's `(1−x)^η` term) for one exit depth. Threshold sweeps —
    /// the exit-setting DP grid, coordinate-ascent refinement — evaluate
    /// [`Self::coverage`]/[`Self::conditional_accuracy`] many times at
    /// the *same* depth, and this cache is what they hoist out of the
    /// loop (the same idiom as the simulator's per-link SNR cache).
    pub fn depth_cache(&self, x: f64) -> DepthCache {
        DepthCache {
            depth_pow: x.powf(self.gamma),
            exit_acc: self.exit_accuracy(x),
        }
    }

    /// The threshold transcendental `t^ρ`, hoistable across every depth
    /// evaluated at the same threshold.
    pub fn threshold_pow(&self, t: f64) -> f64 {
        t.powf(self.rho)
    }

    /// [`Self::coverage`] from cached powers — bit-identical to the
    /// uncached form (same expression tree, exactly-rounded ops).
    pub fn coverage_cached(&self, depth: DepthCache, thr_pow: f64) -> f64 {
        ((1.0 - thr_pow) * depth.depth_pow).clamp(0.0, 1.0)
    }

    /// [`Self::conditional_accuracy`] from a cached depth — bit-identical
    /// to the uncached form.
    pub fn conditional_accuracy_cached(&self, depth: DepthCache, t: f64) -> f64 {
        let base = depth.exit_acc;
        // Strictly below the backbone: a small head never quite matches the
        // full model, even on the easy inputs it confidently accepts.
        let cap = (self.acc_full - 0.002).max(0.0);
        (base + (1.0 - base) * self.conf_boost * t * t).clamp(0.0, cap)
    }

    /// Resolve the behavior of an exit chain given `(depth_fraction,
    /// threshold)` pairs in ascending depth order.
    pub fn behavior(&self, profile: &[(f64, f64)]) -> ExitBehavior {
        let mut exit_probs = Vec::with_capacity(profile.len());
        let mut cum = Vec::with_capacity(profile.len());
        let mut running = 0.0f64;
        for &(x, t) in profile {
            let s = self.coverage(x, t);
            let new_running = running.max(s);
            exit_probs.push(new_running - running);
            running = new_running;
            cum.push(running);
        }
        let remain_prob = 1.0 - running;
        let mut acc = remain_prob * self.acc_full;
        for (i, &(x, t)) in profile.iter().enumerate() {
            acc += exit_probs[i] * self.conditional_accuracy(x, t);
        }
        ExitBehavior {
            exit_probs,
            cum,
            remain_prob,
            expected_accuracy: acc,
        }
    }
}

impl Default for DifficultyModel {
    /// ResNet-18-class calibration (76 % is generous; the classic 69.8 % is
    /// also fine — only relative movements matter for the optimizer).
    fn default() -> Self {
        Self::imagenet(0.76)
    }
}

/// Per-depth transcendental cache for [`DifficultyModel`]: the values of
/// `x^γ` and the depth-only exit accuracy, valid for one `(model, x)`
/// pair. Build once per exit host, reuse across a whole threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthCache {
    /// `x^γ` — the depth factor of coverage.
    depth_pow: f64,
    /// `exit_accuracy(x)` — the threshold-independent accuracy base.
    exit_acc: f64,
}

/// Resolved behavior of a specific exit chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExitBehavior {
    /// Probability an input leaves at exit `i` (first match wins).
    pub exit_probs: Vec<f64>,
    /// Cumulative exit probability through exit `i`.
    pub cum: Vec<f64>,
    /// Probability the input runs the full backbone.
    pub remain_prob: f64,
    /// End-to-end expected top-1 accuracy.
    pub expected_accuracy: f64,
}

impl ExitBehavior {
    /// Behavior of a model with no exits.
    pub fn no_exits(acc_full: f64) -> Self {
        Self {
            exit_probs: Vec::new(),
            cum: Vec::new(),
            remain_prob: 1.0,
            expected_accuracy: acc_full,
        }
    }

    /// Which exit a specific input takes, given its latent difficulty draw
    /// `u ∈ [0,1)`: the first exit whose cumulative coverage reaches `u`,
    /// or `None` for the full path. Deterministic in `u` — the simulator
    /// draws `u` once per task so retries are reproducible.
    pub fn sample_exit(&self, u: f64) -> Option<usize> {
        self.cum.iter().position(|&c| u < c)
    }

    /// Expected number of exit heads evaluated per input (all heads up to
    /// the taken exit, or all of them on the full path).
    pub fn expected_heads_evaluated(&self) -> f64 {
        let mut e = 0.0;
        for (i, &p) in self.exit_probs.iter().enumerate() {
            e += p * (i + 1) as f64;
        }
        e + self.remain_prob * self.exit_probs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_monotonicity() {
        let m = DifficultyModel::default();
        // deeper -> more coverage
        assert!(m.coverage(0.6, 0.8) > m.coverage(0.2, 0.8));
        // higher threshold -> less coverage
        assert!(m.coverage(0.5, 0.9) < m.coverage(0.5, 0.6));
        // extremes
        assert_eq!(m.coverage(0.0, 0.5), 0.0);
        assert!(m.coverage(1.0, 0.0) >= 0.999);
    }

    #[test]
    fn cached_forms_are_bit_identical_to_direct_evaluation() {
        let m = DifficultyModel::default();
        for xi in 0..=20 {
            let x = xi as f64 / 20.0;
            let d = m.depth_cache(x);
            for ti in 0..=20 {
                let t = ti as f64 / 20.0;
                let tp = m.threshold_pow(t);
                assert_eq!(
                    m.coverage_cached(d, tp).to_bits(),
                    m.coverage(x, t).to_bits(),
                    "coverage x={x} t={t}"
                );
                assert_eq!(
                    m.conditional_accuracy_cached(d, t).to_bits(),
                    m.conditional_accuracy(x, t).to_bits(),
                    "cond acc x={x} t={t}"
                );
            }
        }
    }

    #[test]
    fn calibration_matches_branchynet_ranges() {
        let m = DifficultyModel::default();
        // mid-depth exit at threshold 0.8: 30-60% of inputs exit early.
        let c = m.coverage(0.35, 0.8);
        assert!((0.3..0.6).contains(&c), "coverage {c}");
    }

    #[test]
    fn exit_accuracy_recovers_with_depth() {
        let m = DifficultyModel::default();
        assert!(m.exit_accuracy(0.9) > m.exit_accuracy(0.3));
        assert!((m.exit_accuracy(1.0) - m.acc_full).abs() < 1e-12);
    }

    #[test]
    fn behavior_probabilities_are_a_distribution() {
        let m = DifficultyModel::default();
        let b = m.behavior(&[(0.2, 0.8), (0.5, 0.8), (0.8, 0.85)]);
        let total: f64 = b.exit_probs.iter().sum::<f64>() + b.remain_prob;
        assert!((total - 1.0).abs() < 1e-12);
        assert!(b.exit_probs.iter().all(|&p| p >= 0.0));
        assert!((0.0..=1.0).contains(&b.expected_accuracy));
    }

    #[test]
    fn conservative_thresholds_keep_accuracy_close_to_full() {
        let m = DifficultyModel::default();
        let b = m.behavior(&[(0.3, 0.92), (0.6, 0.92)]);
        assert!(
            m.acc_full - b.expected_accuracy < 0.01,
            "accuracy drop {}",
            m.acc_full - b.expected_accuracy
        );
        // But some inputs do exit early.
        assert!(b.remain_prob < 1.0);
    }

    #[test]
    fn aggressive_thresholds_cost_accuracy_but_exit_more() {
        let m = DifficultyModel::default();
        let cons = m.behavior(&[(0.3, 0.92)]);
        let aggr = m.behavior(&[(0.3, 0.5)]);
        assert!(aggr.exit_probs[0] > cons.exit_probs[0]);
        assert!(aggr.expected_accuracy < cons.expected_accuracy);
    }

    #[test]
    fn sample_exit_respects_cumulative_bands() {
        let m = DifficultyModel::default();
        let b = m.behavior(&[(0.3, 0.8), (0.7, 0.8)]);
        assert_eq!(b.sample_exit(0.0), Some(0));
        assert_eq!(b.sample_exit(b.cum[0] + 1e-9), Some(1));
        assert_eq!(b.sample_exit(0.9999), None);
    }

    #[test]
    fn no_exit_behavior() {
        let b = ExitBehavior::no_exits(0.76);
        assert_eq!(b.sample_exit(0.1), None);
        assert_eq!(b.remain_prob, 1.0);
        assert_eq!(b.expected_heads_evaluated(), 0.0);
    }

    #[test]
    fn expected_heads_counts_declined_heads() {
        let m = DifficultyModel::default();
        let b = m.behavior(&[(0.3, 0.8), (0.7, 0.8)]);
        let manual = b.exit_probs[0] * 1.0 + b.exit_probs[1] * 2.0 + b.remain_prob * 2.0;
        assert!((b.expected_heads_evaluated() - manual).abs() < 1e-12);
    }

    #[test]
    fn later_weaker_exit_adds_no_mass() {
        // A deep exit with a very high threshold can cover *less* than an
        // earlier permissive one; the running-max construction must then
        // assign it zero probability rather than a negative one.
        let m = DifficultyModel::default();
        let b = m.behavior(&[(0.5, 0.3), (0.6, 0.99)]);
        assert!(b.exit_probs[1].abs() < 1e-12);
    }
}
