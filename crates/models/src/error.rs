//! Error type shared by the model substrate.

use crate::tensor::TensorShape;
use std::fmt;

/// Precisely which shape rule a layer's input violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeErrorKind {
    /// A convolution received the wrong number of input channels.
    ChannelMismatch {
        /// Channels the layer expects.
        expected: usize,
        /// Channels actually received.
        actual: usize,
    },
    /// Grouped convolution whose groups do not divide the channel counts.
    InvalidGrouping {
        /// The group count (zero is invalid outright).
        groups: usize,
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
    },
    /// A conv/pool window larger than its input plane.
    WindowTooLarge {
        /// Kernel size.
        kernel: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
    },
    /// A linear layer received the wrong flattened feature count.
    FeatureMismatch {
        /// Features the layer expects.
        expected: usize,
        /// Features actually received.
        actual: usize,
    },
    /// A multi-input op (`Add`/`Concat`) received disagreeing shapes.
    ShapeDisagreement {
        /// The op name ("add" or "concat").
        op: &'static str,
        /// Shape of the first input.
        first: TensorShape,
        /// The disagreeing shape.
        other: TensorShape,
    },
}

impl fmt::Display for ShapeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeErrorKind::ChannelMismatch { expected, actual } => {
                write!(f, "conv expects {expected} input channels, got {actual}")
            }
            ShapeErrorKind::InvalidGrouping {
                groups,
                in_c,
                out_c,
            } => {
                write!(
                    f,
                    "groups={groups} must divide in_c={in_c} and out_c={out_c}"
                )
            }
            ShapeErrorKind::WindowTooLarge { kernel, h, w } => {
                write!(f, "window {kernel} larger than input {h}x{w}")
            }
            ShapeErrorKind::FeatureMismatch { expected, actual } => {
                write!(f, "linear expects {expected} features, got {actual}")
            }
            ShapeErrorKind::ShapeDisagreement { op, first, other } => {
                write!(f, "{op} inputs differ: {first} vs {other}")
            }
        }
    }
}

/// Precisely why an exit cannot be attached where requested.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExitErrorKind {
    /// The requested host node does not exist.
    MissingNode,
    /// The host is the final classifier (an exit there is redundant).
    FinalClassifier,
    /// The confidence threshold is outside `[0, 1)`.
    ThresholdOutOfRange {
        /// The offending threshold.
        threshold: f64,
    },
    /// Two exits share the same host node.
    DuplicateHost,
    /// The host does not precede the partition cut.
    HostAfterCut {
        /// The cut position the host must precede.
        cut: usize,
    },
}

impl fmt::Display for ExitErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitErrorKind::MissingNode => write!(f, "node does not exist"),
            ExitErrorKind::FinalClassifier => {
                write!(f, "cannot attach an exit at the final classifier")
            }
            ExitErrorKind::ThresholdOutOfRange { threshold } => {
                write!(f, "threshold {threshold} outside [0,1)")
            }
            ExitErrorKind::DuplicateHost => write!(f, "duplicate exit host"),
            ExitErrorKind::HostAfterCut { cut } => {
                write!(f, "exit host must precede the cut at {cut}")
            }
        }
    }
}

/// Errors raised while building or analyzing model graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A node referenced an input id that does not exist (or is not earlier
    /// in topological order).
    DanglingInput {
        /// The node whose input reference is invalid.
        node: usize,
        /// The invalid input id.
        input: usize,
    },
    /// A layer received an input shape it cannot process.
    ShapeMismatch {
        /// The offending node id.
        node: usize,
        /// Which shape rule was violated.
        kind: ShapeErrorKind,
    },
    /// A layer has the wrong number of inputs (e.g. `Add` with one input).
    ArityMismatch {
        /// The offending node id.
        node: usize,
        /// Expected input count description.
        expected: &'static str,
        /// Actual input count.
        actual: usize,
    },
    /// The graph is empty or has no output.
    EmptyGraph,
    /// A cut was requested at a position that is not a valid cut point.
    InvalidCut {
        /// The requested boundary position.
        position: usize,
    },
    /// An exit was attached to a node that does not exist or cannot host one.
    InvalidExit {
        /// The requested host node.
        node: usize,
        /// Why the exit cannot be attached there.
        kind: ExitErrorKind,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DanglingInput { node, input } => {
                write!(f, "node {node} references dangling input {input}")
            }
            ModelError::ShapeMismatch { node, kind } => {
                write!(f, "shape mismatch at node {node}: {kind}")
            }
            ModelError::ArityMismatch {
                node,
                expected,
                actual,
            } => write!(
                f,
                "node {node} expects {expected} input(s) but received {actual}"
            ),
            ModelError::EmptyGraph => write!(f, "model graph is empty"),
            ModelError::InvalidCut { position } => {
                write!(f, "position {position} is not a valid single-tensor cut")
            }
            ModelError::InvalidExit { node, kind } => {
                write!(f, "cannot attach exit at node {node}: {kind}")
            }
        }
    }
}

impl std::error::Error for ModelError {}
