//! Error type shared by the model substrate.

use std::fmt;

/// Errors raised while building or analyzing model graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A node referenced an input id that does not exist (or is not earlier
    /// in topological order).
    DanglingInput {
        /// The node whose input reference is invalid.
        node: usize,
        /// The invalid input id.
        input: usize,
    },
    /// A layer received an input shape it cannot process.
    ShapeMismatch {
        /// The offending node id.
        node: usize,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A layer has the wrong number of inputs (e.g. `Add` with one input).
    ArityMismatch {
        /// The offending node id.
        node: usize,
        /// Expected input count description.
        expected: &'static str,
        /// Actual input count.
        actual: usize,
    },
    /// The graph is empty or has no output.
    EmptyGraph,
    /// A cut was requested at a position that is not a valid cut point.
    InvalidCut {
        /// The requested boundary position.
        position: usize,
    },
    /// An exit was attached to a node that does not exist or cannot host one.
    InvalidExit {
        /// The requested host node.
        node: usize,
        /// Why the exit cannot be attached there.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DanglingInput { node, input } => {
                write!(f, "node {node} references dangling input {input}")
            }
            ModelError::ShapeMismatch { node, detail } => {
                write!(f, "shape mismatch at node {node}: {detail}")
            }
            ModelError::ArityMismatch {
                node,
                expected,
                actual,
            } => write!(
                f,
                "node {node} expects {expected} input(s) but received {actual}"
            ),
            ModelError::EmptyGraph => write!(f, "model graph is empty"),
            ModelError::InvalidCut { position } => {
                write!(f, "position {position} is not a valid single-tensor cut")
            }
            ModelError::InvalidExit { node, detail } => {
                write!(f, "cannot attach exit at node {node}: {detail}")
            }
        }
    }
}

impl std::error::Error for ModelError {}
