//! Early-exit heads and multi-exit model construction.
//!
//! An *exit head* is a lightweight classifier attached to an intermediate
//! node of the backbone: `conv1×1(C→C')` (only if the feature map is wide)
//! → global-average-pool → `fc(C'→classes)`. An input whose head confidence
//! clears the exit's threshold leaves the network there — on the device —
//! and never pays transmission or edge compute. This is the BranchyNet-style
//! construction the paper family (LEIME et al.) builds on.

use crate::error::{ExitErrorKind, ModelError};
use crate::graph::{ModelGraph, NodeId};
use crate::tensor::TensorShape;
use serde::{Deserialize, Serialize};

/// Maximum channel width the 1×1 reducing conv leaves in an exit head.
const HEAD_REDUCE_CHANNELS: usize = 128;

/// The computation performed by one exit head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExitHead {
    /// Feature-map shape the head consumes.
    pub feature: TensorShape,
    /// Channels after the optional 1×1 reduction (== `feature.c` if none).
    pub reduced_c: usize,
    /// Classifier width.
    pub classes: usize,
    /// Total FLOPs of the head.
    pub flops: u64,
    /// Learned parameters of the head.
    pub params: u64,
}

impl ExitHead {
    /// Build the standard head for a feature map: reduce wide maps with a
    /// 1×1 conv to ≤128 channels, then GAP, then a linear classifier.
    pub fn standard(feature: TensorShape, classes: usize) -> Self {
        let needs_reduce = feature.c > HEAD_REDUCE_CHANNELS && !feature.is_flat();
        let reduced_c = if needs_reduce {
            HEAD_REDUCE_CHANNELS
        } else {
            feature.c
        };
        let mut flops = 0u64;
        let mut params = 0u64;
        if needs_reduce {
            // 1x1 conv feature.c -> reduced_c over h*w positions (+bias).
            let outs = (reduced_c * feature.h * feature.w) as u64;
            flops += 2 * outs * feature.c as u64 + outs;
            params += (reduced_c * feature.c + reduced_c) as u64;
        }
        // Global average pool over the (possibly reduced) map.
        flops += (reduced_c * feature.h * feature.w) as u64;
        // Linear reduced_c -> classes (+bias) and softmax.
        flops += 2 * (classes * reduced_c) as u64 + classes as u64 + 5 * classes as u64;
        params += (classes * reduced_c + classes) as u64;
        Self {
            feature,
            reduced_c,
            classes,
            flops,
            params,
        }
    }
}

/// One exit attached to the backbone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExitPoint {
    /// Backbone node whose output feeds the head (the exit "host").
    pub node: NodeId,
    /// Head computation.
    pub head: ExitHead,
    /// Confidence threshold in `[0, 1)`: an input exits here if the head's
    /// top-1 confidence is at least this value.
    pub threshold: f64,
    /// Fraction of backbone FLOPs completed at this exit's host (cached).
    pub depth_fraction: f64,
}

/// A backbone plus an ordered set of early exits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiExitModel {
    base: ModelGraph,
    exits: Vec<ExitPoint>,
}

impl MultiExitModel {
    /// Attach heads at the given `(node, threshold)` positions. Exits are
    /// sorted by position; hosts must exist and must not be the final node
    /// (an exit there would duplicate the model's own classifier).
    pub fn new(
        base: ModelGraph,
        positions: &[(NodeId, f64)],
        classes: usize,
    ) -> Result<Self, ModelError> {
        let mut exits = Vec::with_capacity(positions.len());
        for &(node, threshold) in positions {
            if node >= base.len() {
                return Err(ModelError::InvalidExit {
                    node,
                    kind: ExitErrorKind::MissingNode,
                });
            }
            if node + 1 == base.len() {
                return Err(ModelError::InvalidExit {
                    node,
                    kind: ExitErrorKind::FinalClassifier,
                });
            }
            if !(0.0..1.0).contains(&threshold) {
                return Err(ModelError::InvalidExit {
                    node,
                    kind: ExitErrorKind::ThresholdOutOfRange { threshold },
                });
            }
            let feature = base.shape(node);
            exits.push(ExitPoint {
                node,
                head: ExitHead::standard(feature, classes),
                threshold,
                depth_fraction: base.depth_fraction(node + 1),
            });
        }
        exits.sort_by_key(|e| e.node);
        for w in exits.windows(2) {
            if w[0].node == w[1].node {
                return Err(ModelError::InvalidExit {
                    node: w[0].node,
                    kind: ExitErrorKind::DuplicateHost,
                });
            }
        }
        Ok(Self { base, exits })
    }

    /// A multi-exit model with no exits (plain backbone).
    pub fn plain(base: ModelGraph) -> Self {
        Self {
            base,
            exits: Vec::new(),
        }
    }

    /// The backbone.
    pub fn base(&self) -> &ModelGraph {
        &self.base
    }

    /// Exits in ascending host order.
    pub fn exits(&self) -> &[ExitPoint] {
        &self.exits
    }

    /// Number of exits.
    pub fn num_exits(&self) -> usize {
        self.exits.len()
    }

    /// Backbone + all-head FLOPs if every exit head were evaluated and the
    /// input still ran to the end (the worst case).
    pub fn worst_case_flops(&self) -> u64 {
        self.base.total_flops() + self.exits.iter().map(|e| e.head.flops).sum::<u64>()
    }

    /// Cumulative FLOPs for an input that leaves at exit index `i`
    /// (backbone prefix through the host + every head up to and including
    /// `i`, since earlier heads were evaluated and declined).
    pub fn flops_to_exit(&self, i: usize) -> u64 {
        let e = &self.exits[i];
        self.base.prefix_flops(e.node + 1)
            + self.exits[..=i].iter().map(|x| x.head.flops).sum::<u64>()
    }

    /// Cumulative FLOPs spent on heads for an input that passes through the
    /// first `k` exits without leaving (k may be `num_exits()`).
    pub fn head_flops_through(&self, k: usize) -> u64 {
        self.exits[..k].iter().map(|x| x.head.flops).sum()
    }

    /// Total head parameters added by surgery.
    pub fn head_params(&self) -> u64 {
        self.exits.iter().map(|e| e.head.params).sum()
    }

    /// The `(depth_fraction, threshold)` pairs consumed by the
    /// difficulty/behavior model.
    pub fn exit_profile(&self) -> Vec<(f64, f64)> {
        self.exits
            .iter()
            .map(|e| (e.depth_fraction, e.threshold))
            .collect()
    }

    /// Indices of exits whose host lies strictly inside the device prefix
    /// of a cut at `boundary` (only those can fire before transmission).
    pub fn device_side_exits(&self, boundary: usize) -> Vec<usize> {
        self.exits
            .iter()
            .enumerate()
            .filter(|(_, e)| e.node < boundary)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn head_with_reduction_for_wide_maps() {
        let h = ExitHead::standard(TensorShape::chw(256, 13, 13), 1000);
        assert_eq!(h.reduced_c, 128);
        assert!(h.params > 0);
        // reduce conv params + fc params
        assert_eq!(
            h.params,
            (128 * 256 + 128) as u64 + (1000 * 128 + 1000) as u64
        );
    }

    #[test]
    fn head_without_reduction_for_narrow_maps() {
        let h = ExitHead::standard(TensorShape::chw(64, 56, 56), 1000);
        assert_eq!(h.reduced_c, 64);
        assert_eq!(h.params, (1000 * 64 + 1000) as u64);
    }

    #[test]
    fn exit_heads_are_cheap_relative_to_backbone() {
        let g = zoo::alexnet(1000);
        let total = g.total_flops();
        for cut in g.cut_points() {
            if cut.boundary == 0 || cut.boundary == g.len() {
                continue;
            }
            let h = ExitHead::standard(g.shape(cut.boundary - 1), 1000);
            assert!(
                h.flops * 20 < total,
                "head at {} too expensive: {} vs {}",
                cut.boundary,
                h.flops,
                total
            );
        }
    }

    #[test]
    fn multi_exit_construction_and_ordering() {
        let g = zoo::lenet5(10);
        // attach out of order; must come back sorted
        let me = MultiExitModel::new(g, &[(5, 0.8), (2, 0.6)], 10).unwrap();
        assert_eq!(me.num_exits(), 2);
        assert_eq!(me.exits()[0].node, 2);
        assert_eq!(me.exits()[1].node, 5);
        assert!(me.exits()[0].depth_fraction < me.exits()[1].depth_fraction);
    }

    #[test]
    fn invalid_exits_rejected() {
        let g = zoo::lenet5(10);
        assert!(MultiExitModel::new(g.clone(), &[(999, 0.5)], 10).is_err());
        let last = g.len() - 1;
        assert!(MultiExitModel::new(g.clone(), &[(last, 0.5)], 10).is_err());
        assert!(MultiExitModel::new(g.clone(), &[(2, 1.5)], 10).is_err());
        assert!(MultiExitModel::new(g, &[(2, 0.5), (2, 0.6)], 10).is_err());
    }

    #[test]
    fn flops_to_exit_is_increasing_and_bounded() {
        let g = zoo::alexnet(1000);
        let me = MultiExitModel::new(g, &[(3, 0.7), (7, 0.7), (15, 0.7)], 1000).unwrap();
        let mut prev = 0;
        for i in 0..me.num_exits() {
            let f = me.flops_to_exit(i);
            assert!(f > prev);
            assert!(f < me.worst_case_flops());
            prev = f;
        }
        assert!(me.worst_case_flops() > me.base().total_flops());
    }

    #[test]
    fn device_side_exit_filtering() {
        let g = zoo::alexnet(1000);
        let me = MultiExitModel::new(g, &[(3, 0.7), (7, 0.7), (15, 0.7)], 1000).unwrap();
        assert_eq!(me.device_side_exits(0), Vec::<usize>::new());
        assert_eq!(me.device_side_exits(4), vec![0]);
        assert_eq!(me.device_side_exits(8), vec![0, 1]);
        assert_eq!(me.device_side_exits(16), vec![0, 1, 2]);
    }
}
