//! Layer DAGs: construction, validation, shape/FLOPs inference, and
//! enumeration of the single-tensor *cut points* used by model surgery.
//!
//! Nodes are stored in topological order by construction: a node may only
//! reference earlier nodes (or the graph input), which makes the structure
//! acyclic by induction and makes "cut after position *k*" a well-defined
//! partition of the computation.

use crate::error::ModelError;
use crate::layer::LayerKind;
use crate::tensor::{DType, TensorShape};
use serde::{Deserialize, Serialize};

/// Index of a node within a [`ModelGraph`].
pub type NodeId = usize;

// Referenced only from the `#[serde(default = ...)]` attribute below; the
// offline serde stub discards those attributes, so silence the dead-code
// lint instead of deleting the deserialization default.
#[allow(dead_code)]
fn default_input_dtype() -> DType {
    DType::F32
}

/// Sentinel id referring to the graph input tensor.
pub const INPUT: NodeId = usize::MAX;

/// One node of the model DAG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Stable index of this node (== its position).
    pub id: NodeId,
    /// Human-readable name, e.g. `"conv2_1"`.
    pub name: String,
    /// The layer computed at this node.
    pub kind: LayerKind,
    /// Ids of producer nodes (or [`INPUT`]); all strictly earlier.
    pub inputs: Vec<NodeId>,
}

/// A validated partition boundary.
///
/// Cutting *after position `boundary`* places nodes `0..boundary` on the
/// device and `boundary..n` on the edge. For a *single-tensor* cut, exactly
/// one tensor crosses the boundary; `bytes` is what must be transmitted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CutPoint {
    /// Prefix length: nodes `0..boundary` run on the device.
    pub boundary: usize,
    /// Producers whose outputs cross the boundary ([`INPUT`] allowed).
    pub crossing: Vec<NodeId>,
    /// Total bytes crossing the boundary (0 for the device-only cut).
    pub bytes: usize,
}

impl CutPoint {
    /// The full-offload cut (raw input is transmitted).
    pub fn is_full_offload(&self) -> bool {
        self.boundary == 0
    }
}

/// A validated, shape-inferred model DAG with per-node cost caches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelGraph {
    name: String,
    input_shape: TensorShape,
    dtype: DType,
    /// Datatype of the *raw input* as transmitted (images are uint8, so a
    /// full-offload cut ships 1 byte/pixel, not 4).
    #[serde(default = "default_input_dtype")]
    input_dtype: DType,
    nodes: Vec<Node>,
    shapes: Vec<TensorShape>,
    flops: Vec<u64>,
    params: Vec<u64>,
    mem_bytes: Vec<u64>,
    prefix_flops: Vec<u64>,
    prefix_mem: Vec<u64>,
}

impl ModelGraph {
    /// Model name (e.g. `"resnet18"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shape of the graph input.
    pub fn input_shape(&self) -> TensorShape {
        self.input_shape
    }

    /// Datatype used for activation/byte accounting.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Datatype of the raw input as transmitted.
    pub fn input_dtype(&self) -> DType {
        self.input_dtype
    }

    /// Serialized bytes of the tensor produced by `id` as it would cross a
    /// cut ([`INPUT`] uses the raw-input dtype).
    pub fn tensor_bytes(&self, id: NodeId) -> usize {
        if id == INPUT {
            self.input_shape.bytes(self.input_dtype)
        } else {
            self.shapes[id].bytes(self.dtype)
        }
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes (never true for a built graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Output shape of node `id` (or the input shape for [`INPUT`]).
    pub fn shape(&self, id: NodeId) -> TensorShape {
        if id == INPUT {
            self.input_shape
        } else {
            self.shapes[id]
        }
    }

    /// Output shape of the whole model.
    pub fn output_shape(&self) -> TensorShape {
        self.shapes.last().copied().unwrap_or(self.input_shape)
    }

    /// FLOPs of node `id`.
    pub fn node_flops(&self, id: NodeId) -> u64 {
        self.flops[id]
    }

    /// Roofline memory traffic of node `id` in bytes.
    pub fn node_mem_bytes(&self, id: NodeId) -> u64 {
        self.mem_bytes[id]
    }

    /// Parameter count of node `id`.
    pub fn node_params(&self, id: NodeId) -> u64 {
        self.params[id]
    }

    /// Total model FLOPs.
    pub fn total_flops(&self) -> u64 {
        self.prefix_flops.last().copied().unwrap_or(0)
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.params.iter().sum()
    }

    /// Total roofline memory traffic in bytes.
    pub fn total_mem_bytes(&self) -> u64 {
        self.prefix_mem.last().copied().unwrap_or(0)
    }

    /// FLOPs of the prefix `0..boundary`.
    pub fn prefix_flops(&self, boundary: usize) -> u64 {
        if boundary == 0 {
            0
        } else {
            self.prefix_flops[boundary - 1]
        }
    }

    /// FLOPs of the suffix `boundary..n`.
    pub fn suffix_flops(&self, boundary: usize) -> u64 {
        self.total_flops() - self.prefix_flops(boundary)
    }

    /// Memory traffic of the prefix `0..boundary` in bytes.
    pub fn prefix_mem_bytes(&self, boundary: usize) -> u64 {
        if boundary == 0 {
            0
        } else {
            self.prefix_mem[boundary - 1]
        }
    }

    /// Memory traffic of the suffix `boundary..n` in bytes.
    pub fn suffix_mem_bytes(&self, boundary: usize) -> u64 {
        self.total_mem_bytes() - self.prefix_mem_bytes(boundary)
    }

    /// Fraction of total FLOPs computed by the prefix `0..boundary`.
    pub fn depth_fraction(&self, boundary: usize) -> f64 {
        let total = self.total_flops();
        if total == 0 {
            return 0.0;
        }
        self.prefix_flops(boundary) as f64 / total as f64
    }

    /// The set of producers whose tensors cross the boundary after
    /// position `boundary` (deduplicated, in ascending order, [`INPUT`]
    /// sorted first).
    pub fn crossing_producers(&self, boundary: usize) -> Vec<NodeId> {
        let mut crossing: Vec<NodeId> = Vec::new();
        for node in &self.nodes[boundary..] {
            for &r in &node.inputs {
                let from_prefix = r == INPUT || r < boundary;
                if from_prefix && !crossing.contains(&r) {
                    crossing.push(r);
                }
            }
        }
        crossing.sort_unstable_by_key(|&r| if r == INPUT { (0, 0) } else { (1, r) });
        crossing
    }

    /// Bytes that must cross the boundary after `boundary`.
    pub fn crossing_bytes(&self, boundary: usize) -> usize {
        self.crossing_producers(boundary)
            .iter()
            .map(|&r| self.tensor_bytes(r))
            .sum()
    }

    /// Every boundary `0..=n` as a [`CutPoint`], including multi-tensor
    /// cuts. Boundary `n` (device-only) has no crossing tensor.
    pub fn all_boundaries(&self) -> Vec<CutPoint> {
        (0..=self.nodes.len())
            .map(|b| {
                let crossing = self.crossing_producers(b);
                let bytes = crossing.iter().map(|&r| self.tensor_bytes(r)).sum();
                CutPoint {
                    boundary: b,
                    crossing,
                    bytes,
                }
            })
            .collect()
    }

    /// The *valid partition candidates*: boundaries where at most one
    /// tensor crosses (single-tensor cuts), always including full offload
    /// (boundary 0) and device-only (boundary n).
    pub fn cut_points(&self) -> Vec<CutPoint> {
        self.all_boundaries()
            .into_iter()
            .filter(|c| c.crossing.len() <= 1)
            .collect()
    }

    /// Validate a specific boundary as a single-tensor cut.
    pub fn validate_cut(&self, boundary: usize) -> Result<CutPoint, ModelError> {
        if boundary > self.nodes.len() {
            return Err(ModelError::InvalidCut { position: boundary });
        }
        let crossing = self.crossing_producers(boundary);
        if crossing.len() > 1 {
            return Err(ModelError::InvalidCut { position: boundary });
        }
        let bytes = crossing.iter().map(|&r| self.tensor_bytes(r)).sum();
        Ok(CutPoint {
            boundary,
            crossing,
            bytes,
        })
    }
}

/// Incremental, order-enforcing builder for [`ModelGraph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    input_shape: TensorShape,
    dtype: DType,
    input_dtype: DType,
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// Start a new graph with the given input shape (default dtype F32 for
    /// both activations and the raw input).
    pub fn new(name: impl Into<String>, input_shape: TensorShape) -> Self {
        Self {
            name: name.into(),
            input_shape,
            dtype: DType::F32,
            input_dtype: DType::F32,
            nodes: Vec::new(),
        }
    }

    /// Override the activation datatype used for byte accounting.
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }

    /// Override the raw-input datatype (e.g. [`DType::I8`] for images, so
    /// full offload ships pixels, not floats).
    pub fn with_input_dtype(mut self, dtype: DType) -> Self {
        self.input_dtype = dtype;
        self
    }

    /// Append a node consuming the given producers. Returns its id.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        inputs: Vec<NodeId>,
    ) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            name: name.into(),
            kind,
            inputs,
        });
        id
    }

    /// Append a node consuming the single producer `from`.
    pub fn chain(&mut self, name: impl Into<String>, kind: LayerKind, from: NodeId) -> NodeId {
        self.push(name, kind, vec![from])
    }

    /// Id of the most recently pushed node ([`INPUT`] if none yet).
    pub fn last(&self) -> NodeId {
        if self.nodes.is_empty() {
            INPUT
        } else {
            self.nodes.len() - 1
        }
    }

    /// Validate references and shapes, compute all cost caches, and freeze.
    pub fn build(self) -> Result<ModelGraph, ModelError> {
        if self.nodes.is_empty() {
            return Err(ModelError::EmptyGraph);
        }
        let n = self.nodes.len();
        let mut shapes: Vec<TensorShape> = Vec::with_capacity(n);
        let mut flops: Vec<u64> = Vec::with_capacity(n);
        let mut params: Vec<u64> = Vec::with_capacity(n);
        let mut mem_bytes: Vec<u64> = Vec::with_capacity(n);
        for node in &self.nodes {
            let mut in_shapes = Vec::with_capacity(node.inputs.len());
            for &r in &node.inputs {
                if r == INPUT {
                    in_shapes.push(self.input_shape);
                } else if r < node.id {
                    in_shapes.push(shapes[r]);
                } else {
                    return Err(ModelError::DanglingInput {
                        node: node.id,
                        input: r,
                    });
                }
            }
            if node.inputs.is_empty() {
                return Err(ModelError::ArityMismatch {
                    node: node.id,
                    expected: "at least 1",
                    actual: 0,
                });
            }
            let out = node.kind.output_shape(node.id, &in_shapes)?;
            flops.push(node.kind.flops(&in_shapes, out));
            params.push(node.kind.params(&in_shapes));
            mem_bytes.push(node.kind.memory_bytes(&in_shapes, out, self.dtype));
            shapes.push(out);
        }
        let mut prefix_flops = Vec::with_capacity(n);
        let mut prefix_mem = Vec::with_capacity(n);
        let mut acc_f = 0u64;
        let mut acc_m = 0u64;
        for i in 0..n {
            acc_f += flops[i];
            acc_m += mem_bytes[i];
            prefix_flops.push(acc_f);
            prefix_mem.push(acc_m);
        }
        Ok(ModelGraph {
            name: self.name,
            input_shape: self.input_shape,
            dtype: self.dtype,
            input_dtype: self.input_dtype,
            nodes: self.nodes,
            shapes,
            flops,
            params,
            mem_bytes,
            prefix_flops,
            prefix_mem,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{conv, linear, maxpool, relu, LayerKind};

    /// conv -> relu -> pool -> flatten -> fc : a pure chain.
    fn tiny_chain() -> ModelGraph {
        let mut g = GraphBuilder::new("tiny", TensorShape::chw(3, 32, 32));
        let c = g.chain("conv1", conv(3, 8, 3, 1, 1), INPUT);
        let r = g.chain("relu1", relu(), c);
        let p = g.chain("pool1", maxpool(2, 2), r);
        let f = g.chain("flatten", LayerKind::Flatten, p);
        g.chain("fc", linear(8 * 16 * 16, 10), f);
        g.build().unwrap()
    }

    /// A two-branch residual: conv -> (identity + conv) -> add -> fc.
    fn tiny_residual() -> ModelGraph {
        let mut g = GraphBuilder::new("res", TensorShape::chw(3, 8, 8));
        let c1 = g.chain("stem", conv(3, 4, 3, 1, 1), INPUT);
        let c2 = g.chain("branch", conv(4, 4, 3, 1, 1), c1);
        let add = g.push("add", LayerKind::Add, vec![c1, c2]);
        let fl = g.chain("flatten", LayerKind::Flatten, add);
        g.chain("fc", linear(4 * 8 * 8, 10), fl);
        g.build().unwrap()
    }

    #[test]
    fn chain_shapes_and_totals() {
        let g = tiny_chain();
        assert_eq!(g.len(), 5);
        assert_eq!(g.output_shape(), TensorShape::flat(10));
        assert_eq!(g.shape(0), TensorShape::chw(8, 32, 32));
        assert_eq!(g.shape(2), TensorShape::chw(8, 16, 16));
        assert!(g.total_flops() > 0);
        assert_eq!(
            g.total_flops(),
            (0..g.len()).map(|i| g.node_flops(i)).sum::<u64>()
        );
    }

    #[test]
    fn prefix_suffix_flops_are_complementary() {
        let g = tiny_chain();
        for b in 0..=g.len() {
            assert_eq!(g.prefix_flops(b) + g.suffix_flops(b), g.total_flops());
        }
        assert_eq!(g.prefix_flops(0), 0);
        assert_eq!(g.suffix_flops(g.len()), 0);
    }

    #[test]
    fn chain_has_all_single_tensor_cuts() {
        let g = tiny_chain();
        let cuts = g.cut_points();
        // Every boundary of a pure chain is a single-tensor cut.
        assert_eq!(cuts.len(), g.len() + 1);
        // Full offload transmits the raw input.
        assert_eq!(cuts[0].bytes, TensorShape::chw(3, 32, 32).bytes(DType::F32));
        assert!(cuts[0].is_full_offload());
        // Device-only transmits nothing.
        assert_eq!(cuts.last().unwrap().bytes, 0);
    }

    #[test]
    fn residual_interior_is_not_a_single_cut() {
        let g = tiny_residual();
        // Boundary 2 splits between `branch` and `add`: both c1 and c2 cross.
        assert_eq!(g.crossing_producers(2), vec![0, 1]);
        assert!(g.validate_cut(2).is_err());
        // Boundary 3 (after add) is a clean cut.
        let cp = g.validate_cut(3).unwrap();
        assert_eq!(cp.crossing, vec![2]);
        assert_eq!(cp.bytes, TensorShape::chw(4, 8, 8).bytes(DType::F32));
    }

    #[test]
    fn cut_points_skip_multi_tensor_boundaries() {
        let g = tiny_residual();
        let cuts = g.cut_points();
        assert!(cuts.iter().all(|c| c.crossing.len() <= 1));
        assert!(cuts.iter().any(|c| c.boundary == 0));
        assert!(cuts.iter().any(|c| c.boundary == g.len()));
        assert!(!cuts.iter().any(|c| c.boundary == 2));
    }

    #[test]
    fn dangling_reference_is_rejected() {
        let mut g = GraphBuilder::new("bad", TensorShape::chw(3, 8, 8));
        g.push("conv", conv(3, 4, 3, 1, 1), vec![7]);
        assert!(matches!(
            g.build(),
            Err(ModelError::DanglingInput { node: 0, input: 7 })
        ));
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = GraphBuilder::new("empty", TensorShape::chw(3, 8, 8));
        assert!(matches!(g.build(), Err(ModelError::EmptyGraph)));
    }

    #[test]
    fn shape_error_carries_node_id() {
        let mut g = GraphBuilder::new("bad", TensorShape::chw(3, 8, 8));
        let c = g.chain("conv", conv(3, 4, 3, 1, 1), INPUT);
        g.chain("fc", linear(999, 10), c); // 4*8*8 = 256 != 999
        match g.build() {
            Err(ModelError::ShapeMismatch { node, .. }) => assert_eq!(node, 1),
            other => panic!("expected shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn depth_fraction_is_monotone() {
        let g = tiny_chain();
        let mut prev = -1.0;
        for b in 0..=g.len() {
            let d = g.depth_fraction(b);
            assert!(d >= prev);
            assert!((0.0..=1.0).contains(&d));
            prev = d;
        }
        assert_eq!(g.depth_fraction(g.len()), 1.0);
    }

    #[test]
    fn dtype_scales_crossing_bytes() {
        let mut g = GraphBuilder::new("q", TensorShape::chw(3, 8, 8)).with_dtype(DType::I8);
        let c = g.chain("conv", conv(3, 4, 3, 1, 1), INPUT);
        let _ = g.chain("relu", relu(), c);
        let g = g.build().unwrap();
        assert_eq!(g.crossing_bytes(1), 4 * 8 * 8); // 1 byte/elem
    }
}
