//! Layer kinds with exact FLOPs / parameter / output-shape accounting.
//!
//! Conventions:
//! * FLOPs count multiply–accumulate as **2 FLOPs** (the common convention in
//!   the split-computing literature; Neurosurgeon and follow-ups use the
//!   same, so relative layer costs match published profiles).
//! * Shapes are batch-1; see [`crate::tensor`].
//! * `memory_bytes` is the roofline traffic estimate: inputs + outputs +
//!   parameters, in the given datatype — used by
//!   [`crate::profile::ProcessorSpec`] to decide compute- vs memory-bound.

use crate::error::{ModelError, ShapeErrorKind};
use crate::tensor::{DType, TensorShape};
use serde::{Deserialize, Serialize};

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling (compare per window element).
    Max,
    /// Average pooling (add per window element).
    Avg,
}

/// Elementwise activation flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// ReLU clipped at 6 (MobileNet family).
    Relu6,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Softmax over the channel dimension.
    Softmax,
}

/// One layer of a model graph.
///
/// Multi-input layers (`Add`, `Concat`) consume every input listed on their
/// graph node; all others are single-input.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution. `groups == in_c == out_c` encodes a depthwise conv.
    Conv2d {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
        /// Channel groups (1 = dense, `in_c` = depthwise).
        groups: usize,
        /// Whether a bias vector is present.
        bias: bool,
    },
    /// Fully-connected layer.
    Linear {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
        /// Whether a bias vector is present.
        bias: bool,
    },
    /// Spatial pooling.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Square window size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// Global average pooling to `C × 1 × 1`.
    GlobalAvgPool,
    /// Batch normalization (inference: scale + shift per channel).
    BatchNorm,
    /// Local response normalization (AlexNet).
    Lrn,
    /// Elementwise activation.
    Act(Activation),
    /// Elementwise addition of ≥2 same-shaped inputs (residual join).
    Add,
    /// Channel-wise concatenation of ≥2 inputs with equal spatial dims.
    Concat,
    /// Flatten to a vector.
    Flatten,
    /// Dropout — identity at inference time (kept so zoo graphs mirror the
    /// published architectures layer-for-layer).
    Dropout,
}

impl LayerKind {
    /// Number of inputs this layer requires: `None` means "two or more".
    pub fn arity(&self) -> Option<usize> {
        match self {
            LayerKind::Add | LayerKind::Concat => None,
            _ => Some(1),
        }
    }

    /// Compute the output shape from the input shapes.
    pub fn output_shape(
        &self,
        node: usize,
        inputs: &[TensorShape],
    ) -> Result<TensorShape, ModelError> {
        let single = |inputs: &[TensorShape]| -> Result<TensorShape, ModelError> {
            if inputs.len() != 1 {
                return Err(ModelError::ArityMismatch {
                    node,
                    expected: "exactly 1",
                    actual: inputs.len(),
                });
            }
            Ok(inputs[0])
        };
        match *self {
            LayerKind::Conv2d {
                in_c,
                out_c,
                kernel,
                stride,
                padding,
                groups,
                ..
            } => {
                let x = single(inputs)?;
                if x.c != in_c {
                    return Err(ModelError::ShapeMismatch {
                        node,
                        kind: ShapeErrorKind::ChannelMismatch {
                            expected: in_c,
                            actual: x.c,
                        },
                    });
                }
                if groups == 0 || in_c % groups != 0 || out_c % groups != 0 {
                    return Err(ModelError::ShapeMismatch {
                        node,
                        kind: ShapeErrorKind::InvalidGrouping {
                            groups,
                            in_c,
                            out_c,
                        },
                    });
                }
                let h = TensorShape::conv_out(x.h, kernel, stride, padding);
                let w = TensorShape::conv_out(x.w, kernel, stride, padding);
                if h == 0 || w == 0 {
                    return Err(ModelError::ShapeMismatch {
                        node,
                        kind: ShapeErrorKind::WindowTooLarge {
                            kernel,
                            h: x.h,
                            w: x.w,
                        },
                    });
                }
                Ok(TensorShape::chw(out_c, h, w))
            }
            LayerKind::Linear { in_f, out_f, .. } => {
                let x = single(inputs)?;
                if x.elements() != in_f {
                    return Err(ModelError::ShapeMismatch {
                        node,
                        kind: ShapeErrorKind::FeatureMismatch {
                            expected: in_f,
                            actual: x.elements(),
                        },
                    });
                }
                Ok(TensorShape::flat(out_f))
            }
            LayerKind::Pool {
                kernel,
                stride,
                padding,
                ..
            } => {
                let x = single(inputs)?;
                let h = TensorShape::conv_out(x.h, kernel, stride, padding);
                let w = TensorShape::conv_out(x.w, kernel, stride, padding);
                if h == 0 || w == 0 {
                    return Err(ModelError::ShapeMismatch {
                        node,
                        kind: ShapeErrorKind::WindowTooLarge {
                            kernel,
                            h: x.h,
                            w: x.w,
                        },
                    });
                }
                Ok(TensorShape::chw(x.c, h, w))
            }
            LayerKind::GlobalAvgPool => {
                let x = single(inputs)?;
                Ok(TensorShape::chw(x.c, 1, 1))
            }
            LayerKind::BatchNorm | LayerKind::Lrn | LayerKind::Act(_) | LayerKind::Dropout => {
                single(inputs)
            }
            LayerKind::Add => {
                if inputs.len() < 2 {
                    return Err(ModelError::ArityMismatch {
                        node,
                        expected: "2 or more",
                        actual: inputs.len(),
                    });
                }
                let first = inputs[0];
                for x in &inputs[1..] {
                    if *x != first {
                        return Err(ModelError::ShapeMismatch {
                            node,
                            kind: ShapeErrorKind::ShapeDisagreement {
                                op: "add",
                                first,
                                other: *x,
                            },
                        });
                    }
                }
                Ok(first)
            }
            LayerKind::Concat => {
                if inputs.len() < 2 {
                    return Err(ModelError::ArityMismatch {
                        node,
                        expected: "2 or more",
                        actual: inputs.len(),
                    });
                }
                let first = inputs[0];
                let mut c = first.c;
                for x in &inputs[1..] {
                    if x.h != first.h || x.w != first.w {
                        return Err(ModelError::ShapeMismatch {
                            node,
                            kind: ShapeErrorKind::ShapeDisagreement {
                                op: "concat",
                                first,
                                other: *x,
                            },
                        });
                    }
                    c += x.c;
                }
                Ok(TensorShape::chw(c, first.h, first.w))
            }
            LayerKind::Flatten => {
                let x = single(inputs)?;
                Ok(TensorShape::flat(x.elements()))
            }
        }
    }

    /// FLOPs to compute the layer given input shapes and the (already
    /// validated) output shape. MAC = 2 FLOPs.
    pub fn flops(&self, inputs: &[TensorShape], output: TensorShape) -> u64 {
        let out_elems = output.elements() as u64;
        match *self {
            LayerKind::Conv2d {
                in_c,
                kernel,
                groups,
                bias,
                ..
            } => {
                let macs_per_out = (in_c / groups) as u64 * (kernel * kernel) as u64;
                let mut f = 2 * out_elems * macs_per_out;
                if bias {
                    f += out_elems;
                }
                f
            }
            LayerKind::Linear { in_f, bias, .. } => {
                let mut f = 2 * out_elems * in_f as u64;
                if bias {
                    f += out_elems;
                }
                f
            }
            LayerKind::Pool { kernel, .. } => out_elems * (kernel * kernel) as u64,
            LayerKind::GlobalAvgPool => inputs.first().map_or(0, |x| x.elements() as u64),
            LayerKind::BatchNorm => 2 * out_elems,
            LayerKind::Lrn => 6 * out_elems,
            LayerKind::Act(Activation::Softmax) => 5 * out_elems,
            LayerKind::Act(_) => out_elems,
            LayerKind::Add => {
                let n = inputs.len().saturating_sub(1) as u64;
                n * out_elems
            }
            LayerKind::Concat | LayerKind::Flatten | LayerKind::Dropout => 0,
        }
    }

    /// Number of learned parameters.
    pub fn params(&self, inputs: &[TensorShape]) -> u64 {
        match *self {
            LayerKind::Conv2d {
                in_c,
                out_c,
                kernel,
                groups,
                bias,
                ..
            } => {
                let w = (out_c as u64) * (in_c / groups) as u64 * (kernel * kernel) as u64;
                w + if bias { out_c as u64 } else { 0 }
            }
            LayerKind::Linear { in_f, out_f, bias } => {
                (out_f as u64) * (in_f as u64) + if bias { out_f as u64 } else { 0 }
            }
            // scale + shift per channel
            LayerKind::BatchNorm => inputs.first().map_or(0, |x| 2 * x.c as u64),
            _ => 0,
        }
    }

    /// Roofline memory-traffic estimate in bytes: inputs read + output
    /// written + parameters streamed, in `dtype`.
    pub fn memory_bytes(&self, inputs: &[TensorShape], output: TensorShape, dtype: DType) -> u64 {
        let io: u64 =
            inputs.iter().map(|s| s.bytes(dtype) as u64).sum::<u64>() + output.bytes(dtype) as u64;
        io + self.params(inputs) * dtype.bytes_per_element() as u64
    }

    /// Short lowercase tag for display / labels.
    pub fn tag(&self) -> &'static str {
        match self {
            LayerKind::Conv2d { groups, in_c, .. } if *groups == *in_c && *groups > 1 => "dwconv",
            LayerKind::Conv2d { .. } => "conv",
            LayerKind::Linear { .. } => "fc",
            LayerKind::Pool {
                kind: PoolKind::Max,
                ..
            } => "maxpool",
            LayerKind::Pool {
                kind: PoolKind::Avg,
                ..
            } => "avgpool",
            LayerKind::GlobalAvgPool => "gap",
            LayerKind::BatchNorm => "bn",
            LayerKind::Lrn => "lrn",
            LayerKind::Act(Activation::Relu) => "relu",
            LayerKind::Act(Activation::Relu6) => "relu6",
            LayerKind::Act(Activation::Sigmoid) => "sigmoid",
            LayerKind::Act(Activation::Tanh) => "tanh",
            LayerKind::Act(Activation::Softmax) => "softmax",
            LayerKind::Add => "add",
            LayerKind::Concat => "concat",
            LayerKind::Flatten => "flatten",
            LayerKind::Dropout => "dropout",
        }
    }
}

/// Convenience constructor: dense conv with bias.
pub fn conv(in_c: usize, out_c: usize, kernel: usize, stride: usize, padding: usize) -> LayerKind {
    LayerKind::Conv2d {
        in_c,
        out_c,
        kernel,
        stride,
        padding,
        groups: 1,
        bias: true,
    }
}

/// Convenience constructor: dense conv without bias (typical before BN).
pub fn conv_nb(
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> LayerKind {
    LayerKind::Conv2d {
        in_c,
        out_c,
        kernel,
        stride,
        padding,
        groups: 1,
        bias: false,
    }
}

/// Convenience constructor: depthwise conv without bias.
pub fn dwconv(channels: usize, kernel: usize, stride: usize, padding: usize) -> LayerKind {
    LayerKind::Conv2d {
        in_c: channels,
        out_c: channels,
        kernel,
        stride,
        padding,
        groups: channels,
        bias: false,
    }
}

/// Convenience constructor: fully-connected layer with bias.
pub fn linear(in_f: usize, out_f: usize) -> LayerKind {
    LayerKind::Linear {
        in_f,
        out_f,
        bias: true,
    }
}

/// Convenience constructor: max pool.
pub fn maxpool(kernel: usize, stride: usize) -> LayerKind {
    LayerKind::Pool {
        kind: PoolKind::Max,
        kernel,
        stride,
        padding: 0,
    }
}

/// Convenience constructor: ReLU.
pub fn relu() -> LayerKind {
    LayerKind::Act(Activation::Relu)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_of(k: &LayerKind, input: TensorShape) -> TensorShape {
        k.output_shape(0, &[input]).unwrap()
    }

    #[test]
    fn conv_shape_and_flops_alexnet_conv1() {
        // AlexNet conv1: 3->64 (torchvision), k=11, s=4, p=2 on 224x224.
        let k = conv(3, 64, 11, 4, 2);
        let out = shape_of(&k, TensorShape::chw(3, 224, 224));
        assert_eq!(out, TensorShape::chw(64, 55, 55));
        let flops = k.flops(&[TensorShape::chw(3, 224, 224)], out);
        // 2 * 64*55*55 * 3*11*11 + bias
        assert_eq!(flops, 2 * 64 * 55 * 55 * 3 * 121 + 64 * 55 * 55);
        assert_eq!(
            k.params(&[TensorShape::chw(3, 224, 224)]),
            64 * 3 * 121 + 64
        );
    }

    #[test]
    fn depthwise_conv_flops_scale_with_groups() {
        let input = TensorShape::chw(32, 112, 112);
        let dw = dwconv(32, 3, 1, 1);
        let out = shape_of(&dw, input);
        assert_eq!(out, input);
        // per-output MACs = (in_c/groups)*k*k = 9
        assert_eq!(dw.flops(&[input], out), 2 * (32 * 112 * 112) as u64 * 9);
        assert_eq!(dw.params(&[input]), 32 * 9);
    }

    #[test]
    fn linear_shape_flops_params() {
        let k = linear(4096, 1000);
        let out = shape_of(&k, TensorShape::flat(4096));
        assert_eq!(out, TensorShape::flat(1000));
        assert_eq!(
            k.flops(&[TensorShape::flat(4096)], out),
            2 * 1000 * 4096 + 1000
        );
        assert_eq!(k.params(&[TensorShape::flat(4096)]), 1000 * 4096 + 1000);
    }

    #[test]
    fn add_requires_matching_shapes() {
        let a = TensorShape::chw(64, 56, 56);
        let b = TensorShape::chw(64, 56, 56);
        let c = TensorShape::chw(64, 28, 28);
        assert_eq!(LayerKind::Add.output_shape(0, &[a, b]).unwrap(), a);
        assert!(LayerKind::Add.output_shape(0, &[a, c]).is_err());
        assert!(matches!(
            LayerKind::Add.output_shape(0, &[a]),
            Err(ModelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn concat_sums_channels() {
        let a = TensorShape::chw(64, 28, 28);
        let b = TensorShape::chw(96, 28, 28);
        assert_eq!(
            LayerKind::Concat.output_shape(0, &[a, b]).unwrap(),
            TensorShape::chw(160, 28, 28)
        );
        let c = TensorShape::chw(96, 14, 14);
        assert!(LayerKind::Concat.output_shape(0, &[a, c]).is_err());
    }

    #[test]
    fn flatten_and_gap() {
        let x = TensorShape::chw(512, 7, 7);
        assert_eq!(
            LayerKind::Flatten.output_shape(0, &[x]).unwrap(),
            TensorShape::flat(512 * 49)
        );
        assert_eq!(
            LayerKind::GlobalAvgPool.output_shape(0, &[x]).unwrap(),
            TensorShape::chw(512, 1, 1)
        );
    }

    #[test]
    fn wrong_channel_count_is_rejected() {
        let k = conv(3, 64, 3, 1, 1);
        assert!(k.output_shape(0, &[TensorShape::chw(4, 32, 32)]).is_err());
    }

    #[test]
    fn zero_flop_layers() {
        let x = TensorShape::chw(16, 8, 8);
        for k in [LayerKind::Flatten, LayerKind::Dropout, LayerKind::Concat] {
            let ins = if matches!(k, LayerKind::Concat) {
                vec![x, x]
            } else {
                vec![x]
            };
            let out = k.output_shape(0, &ins).unwrap();
            assert_eq!(k.flops(&ins, out), 0, "{}", k.tag());
        }
    }

    #[test]
    fn memory_bytes_includes_params() {
        let k = linear(100, 10);
        let input = TensorShape::flat(100);
        let out = k.output_shape(0, &[input]).unwrap();
        let bytes = k.memory_bytes(&[input], out, DType::F32);
        assert_eq!(bytes, (100 + 10) * 4 + (100 * 10 + 10) * 4);
    }

    #[test]
    fn invalid_groups_rejected() {
        let k = LayerKind::Conv2d {
            in_c: 10,
            out_c: 20,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 3,
            bias: false,
        };
        assert!(k.output_shape(0, &[TensorShape::chw(10, 8, 8)]).is_err());
    }
}
