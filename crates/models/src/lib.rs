//! # scalpel-models — DNN model substrate
//!
//! This crate provides everything `scalpel` needs to know about the *models*
//! being served in the heterogeneous edge:
//!
//! * [`tensor`] — feature-map shapes and datatype accounting,
//! * [`layer`] — layer kinds with exact FLOPs / parameter / output-shape math,
//! * [`graph`] — layer DAGs with topological ordering, validation and
//!   single-tensor *cut point* enumeration (the partition candidates used by
//!   model surgery),
//! * [`zoo`] — faithful layer-by-layer reconstructions of the classic
//!   backbones the paper family evaluates (AlexNet, VGG-16, ResNet-18/50,
//!   MobileNet-V2, plus a tiny LeNet-5 for tests),
//! * [`exits`] — early-exit heads and multi-exit model construction,
//! * [`profile`] — roofline latency predictors for heterogeneous processors,
//! * [`difficulty`] — the input-difficulty / exit-confidence model that maps
//!   confidence thresholds to per-exit exit probabilities and accuracies.
//!
//! The optimizer in `scalpel-core` consumes only the *profiles* produced
//! here (FLOPs, bytes, exit probabilities, accuracies, predicted latencies);
//! no weights are involved. See DESIGN.md §3 for the substitution rationale.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod difficulty;
pub mod error;
pub mod exits;
pub mod graph;
pub mod layer;
pub mod profile;
pub mod summary;
pub mod tensor;
pub mod zoo;

pub use difficulty::{DepthCache, DifficultyModel, ExitBehavior};
pub use error::{ExitErrorKind, ModelError, ShapeErrorKind};
pub use exits::{ExitHead, ExitPoint, MultiExitModel};
pub use graph::{CutPoint, GraphBuilder, ModelGraph, Node, NodeId, INPUT};
pub use layer::{Activation, LayerKind, PoolKind};
pub use profile::{LatencyModel, ProcessorClass, ProcessorSpec};
pub use tensor::{DType, TensorShape};
