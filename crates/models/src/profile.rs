//! Roofline latency prediction for heterogeneous processors.
//!
//! The paper's testbed (embedded devices + GPU edge servers) is replaced by
//! calibrated analytic processors: each layer costs
//! `max(flops / compute_throughput, bytes / memory_bandwidth)` plus a small
//! per-layer launch overhead. Throughputs are *effective* (published peak ×
//! a typical conv-workload efficiency), taken from public spec sheets, so
//! the ratios between device classes — which drive every crossover in the
//! evaluation — are realistic.

use crate::graph::ModelGraph;
use serde::{Deserialize, Serialize};

/// An analytic processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorSpec {
    /// Human-readable name.
    pub name: String,
    /// Effective compute throughput in FLOP/s.
    pub flops_per_sec: f64,
    /// Effective memory bandwidth in bytes/s.
    pub bytes_per_sec: f64,
    /// Fixed overhead per layer launch, seconds (kernel launch / op
    /// dispatch; dominates tiny layers on GPUs).
    pub layer_overhead_s: f64,
    /// Compute energy, joules per FLOP (board power ÷ effective
    /// throughput; used by the energy accounting in the evaluator).
    pub joules_per_flop: f64,
}

impl ProcessorSpec {
    /// Construct a spec directly (energy defaults to zero; use
    /// [`ProcessorSpec::with_power_watts`] or the class presets for realistic
    /// joules-per-FLOP figures).
    pub fn new(
        name: impl Into<String>,
        flops_per_sec: f64,
        bytes_per_sec: f64,
        layer_overhead_s: f64,
    ) -> Self {
        assert!(flops_per_sec > 0.0 && bytes_per_sec > 0.0 && layer_overhead_s >= 0.0);
        Self {
            name: name.into(),
            flops_per_sec,
            bytes_per_sec,
            layer_overhead_s,
            joules_per_flop: 0.0,
        }
    }

    /// Set the compute energy from a board-power figure in watts.
    pub fn with_power_watts(mut self, watts: f64) -> Self {
        assert!(watts >= 0.0);
        self.joules_per_flop = watts / self.flops_per_sec;
        self
    }

    /// Energy to execute `flops` FLOPs, joules.
    #[inline]
    pub fn compute_energy_j(&self, flops: f64) -> f64 {
        flops * self.joules_per_flop
    }

    /// Roofline time for one kernel of `flops` FLOPs touching `bytes` bytes.
    #[inline]
    pub fn kernel_time(&self, flops: u64, bytes: u64) -> f64 {
        let compute = flops as f64 / self.flops_per_sec;
        let memory = bytes as f64 / self.bytes_per_sec;
        compute.max(memory) + self.layer_overhead_s
    }

    /// Scale this processor's compute throughput (used by processor-sharing
    /// servers handing a fraction of capacity to one stream).
    pub fn scaled(&self, fraction: f64) -> ProcessorSpec {
        assert!(fraction > 0.0 && fraction <= 1.0);
        ProcessorSpec {
            name: format!("{}@{:.2}", self.name, fraction),
            flops_per_sec: self.flops_per_sec * fraction,
            bytes_per_sec: self.bytes_per_sec * fraction,
            layer_overhead_s: self.layer_overhead_s,
            joules_per_flop: self.joules_per_flop,
        }
    }
}

/// Named device / server classes with calibrated effective throughputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessorClass {
    /// Raspberry Pi 4 class CPU (NEON fp32, ~1/3 efficiency).
    RaspberryPi4,
    /// Jetson Nano class embedded GPU.
    JetsonNano,
    /// Jetson TX2 class embedded GPU.
    JetsonTx2,
    /// Mid-range smartphone SoC (CPU+GPU mix).
    Smartphone,
    /// 16-core Xeon edge server (AVX2).
    EdgeXeon,
    /// NVIDIA T4 class edge GPU.
    EdgeGpuT4,
    /// NVIDIA V100 class edge GPU.
    EdgeGpuV100,
}

impl ProcessorClass {
    /// Every class, weakest device first.
    pub const ALL: &'static [ProcessorClass] = &[
        ProcessorClass::RaspberryPi4,
        ProcessorClass::Smartphone,
        ProcessorClass::JetsonNano,
        ProcessorClass::JetsonTx2,
        ProcessorClass::EdgeXeon,
        ProcessorClass::EdgeGpuT4,
        ProcessorClass::EdgeGpuV100,
    ];

    /// Device-side classes only.
    pub const DEVICES: &'static [ProcessorClass] = &[
        ProcessorClass::RaspberryPi4,
        ProcessorClass::Smartphone,
        ProcessorClass::JetsonNano,
        ProcessorClass::JetsonTx2,
    ];

    /// Server-side classes only.
    pub const SERVERS: &'static [ProcessorClass] = &[
        ProcessorClass::EdgeXeon,
        ProcessorClass::EdgeGpuT4,
        ProcessorClass::EdgeGpuV100,
    ];

    /// Calibrated effective spec (peak × typical conv efficiency; board
    /// power from spec sheets for the energy accounting).
    pub fn spec(self) -> ProcessorSpec {
        match self {
            // ~9.6 GFLOPS peak NEON, ~35% effective; LPDDR4 ~4 GB/s usable.
            ProcessorClass::RaspberryPi4 => {
                ProcessorSpec::new("rpi4", 3.4e9, 4.0e9, 40e-6).with_power_watts(6.0)
            }
            // big.LITTLE CPU + mobile GPU mix, ~25 GFLOPS effective.
            ProcessorClass::Smartphone => {
                ProcessorSpec::new("phone", 25.0e9, 12.0e9, 30e-6).with_power_watts(4.0)
            }
            // 472 GFLOPS fp16 peak -> ~120 GFLOPS effective fp32 conv.
            ProcessorClass::JetsonNano => {
                ProcessorSpec::new("nano", 120.0e9, 20.0e9, 60e-6).with_power_watts(8.0)
            }
            // 1.33 TFLOPS fp16 peak -> ~330 GFLOPS effective.
            ProcessorClass::JetsonTx2 => {
                ProcessorSpec::new("tx2", 330.0e9, 45.0e9, 50e-6).with_power_watts(12.0)
            }
            // 16-core AVX2 ~1 TFLOPS peak -> ~400 GFLOPS effective.
            ProcessorClass::EdgeXeon => {
                ProcessorSpec::new("xeon", 400.0e9, 70.0e9, 8e-6).with_power_watts(150.0)
            }
            // T4: 8.1 TFLOPS fp32 peak -> ~2.6 TFLOPS effective.
            ProcessorClass::EdgeGpuT4 => {
                ProcessorSpec::new("t4", 2.6e12, 250.0e9, 25e-6).with_power_watts(70.0)
            }
            // V100: 14 TFLOPS fp32 peak -> ~5 TFLOPS effective.
            ProcessorClass::EdgeGpuV100 => {
                ProcessorSpec::new("v100", 5.0e12, 750.0e9, 25e-6).with_power_watts(250.0)
            }
        }
    }
}

/// Per-model latency predictor: caches per-node roofline times for one
/// processor so prefix/suffix queries are O(1).
#[derive(Debug, Clone)]
pub struct LatencyModel {
    spec: ProcessorSpec,
    prefix_time: Vec<f64>,
}

impl LatencyModel {
    /// Precompute per-node times of `graph` on `spec`.
    pub fn new(graph: &ModelGraph, spec: ProcessorSpec) -> Self {
        let mut prefix_time = Vec::with_capacity(graph.len());
        let mut acc = 0.0;
        for node in graph.nodes() {
            acc += spec.kernel_time(graph.node_flops(node.id), graph.node_mem_bytes(node.id));
            prefix_time.push(acc);
        }
        Self { spec, prefix_time }
    }

    /// The processor this model predicts for.
    pub fn spec(&self) -> &ProcessorSpec {
        &self.spec
    }

    /// Predicted seconds to run nodes `0..boundary`.
    pub fn prefix_seconds(&self, boundary: usize) -> f64 {
        if boundary == 0 {
            0.0
        } else {
            self.prefix_time[boundary - 1]
        }
    }

    /// Predicted seconds to run nodes `boundary..n`.
    pub fn suffix_seconds(&self, boundary: usize) -> f64 {
        self.total_seconds() - self.prefix_seconds(boundary)
    }

    /// Predicted seconds for the whole model.
    pub fn total_seconds(&self) -> f64 {
        self.prefix_time.last().copied().unwrap_or(0.0)
    }

    /// Predicted seconds for an arbitrary extra kernel (e.g. an exit head,
    /// treated as one fused kernel whose bytes ≈ 4·flops/10 heuristic is
    /// avoided — callers pass real byte counts when they have them).
    pub fn extra_kernel_seconds(&self, flops: u64, bytes: u64) -> f64 {
        self.spec.kernel_time(flops, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn kernel_time_respects_roofline() {
        let p = ProcessorSpec::new("p", 1e9, 1e9, 0.0);
        // compute bound: 2 GFLOP / 1 GFLOPS = 2 s
        assert!((p.kernel_time(2_000_000_000, 1000) - 2.0).abs() < 1e-9);
        // memory bound: 3 GB / 1 GB/s = 3 s
        assert!((p.kernel_time(1000, 3_000_000_000) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_added_per_kernel() {
        let p = ProcessorSpec::new("p", 1e9, 1e9, 0.5);
        assert!((p.kernel_time(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scaled_processor_is_proportionally_slower() {
        let p = ProcessorClass::EdgeXeon.spec();
        let half = p.scaled(0.5);
        assert!((half.flops_per_sec - p.flops_per_sec * 0.5).abs() < 1.0);
    }

    #[test]
    fn devices_are_slower_than_servers_on_every_model() {
        for g in zoo::standard_zoo() {
            let dev = LatencyModel::new(&g, ProcessorClass::RaspberryPi4.spec());
            let srv = LatencyModel::new(&g, ProcessorClass::EdgeGpuT4.spec());
            assert!(
                dev.total_seconds() > 10.0 * srv.total_seconds(),
                "{}: dev {} srv {}",
                g.name(),
                dev.total_seconds(),
                srv.total_seconds()
            );
        }
    }

    #[test]
    fn prefix_suffix_split_is_exact() {
        let g = zoo::alexnet(1000);
        let m = LatencyModel::new(&g, ProcessorClass::JetsonNano.spec());
        for b in 0..=g.len() {
            let sum = m.prefix_seconds(b) + m.suffix_seconds(b);
            assert!((sum - m.total_seconds()).abs() < 1e-9);
        }
    }

    #[test]
    fn energy_presets_are_sane() {
        // Devices cost far more joules per FLOP than datacenter GPUs.
        let rpi = ProcessorClass::RaspberryPi4.spec().joules_per_flop;
        let t4 = ProcessorClass::EdgeGpuT4.spec().joules_per_flop;
        assert!(rpi > 10.0 * t4, "rpi {rpi} vs t4 {t4}");
        // AlexNet on an RPi4 should cost on the order of a joule.
        let g = zoo::alexnet(1000);
        let e = ProcessorClass::RaspberryPi4
            .spec()
            .compute_energy_j(g.total_flops() as f64);
        assert!(e > 0.5 && e < 10.0, "energy {e}");
    }

    #[test]
    fn with_power_watts_divides_by_throughput() {
        let p = ProcessorSpec::new("p", 2e9, 1e9, 0.0).with_power_watts(4.0);
        assert!((p.joules_per_flop - 2e-9).abs() < 1e-18);
        assert!((p.compute_energy_j(1e9) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sanity_absolute_latencies() {
        // AlexNet on an RPi4-class CPU takes on the order of a second;
        // on a T4-class GPU on the order of milliseconds. These wide
        // brackets guard against unit mistakes (ms vs s vs us).
        let g = zoo::alexnet(1000);
        let rpi = LatencyModel::new(&g, ProcessorClass::RaspberryPi4.spec());
        assert!(rpi.total_seconds() > 0.2 && rpi.total_seconds() < 5.0);
        let t4 = LatencyModel::new(&g, ProcessorClass::EdgeGpuT4.spec());
        assert!(t4.total_seconds() > 0.5e-3 && t4.total_seconds() < 50e-3);
    }
}
