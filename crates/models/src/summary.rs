//! Human-readable model summaries and Graphviz export.

use crate::graph::{ModelGraph, INPUT};

/// A per-layer summary table (Keras-style) as a string.
pub fn layer_table(model: &ModelGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} — input {} ({:?} activations, {:?} raw input)\n",
        model.name(),
        model.input_shape(),
        model.dtype(),
        model.input_dtype()
    ));
    out.push_str(&format!(
        "{:<4} {:<22} {:<10} {:>12} {:>14} {:>12}\n",
        "id", "name", "kind", "output", "FLOPs", "params"
    ));
    for node in model.nodes() {
        out.push_str(&format!(
            "{:<4} {:<22} {:<10} {:>12} {:>14} {:>12}\n",
            node.id,
            truncate(&node.name, 22),
            node.kind.tag(),
            model.shape(node.id).to_string(),
            model.node_flops(node.id),
            model.node_params(node.id),
        ));
    }
    out.push_str(&format!(
        "total: {:.3} GFLOPs, {:.3} M params, {} layers\n",
        model.total_flops() as f64 / 1e9,
        model.total_params() as f64 / 1e6,
        model.len()
    ));
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

/// Graphviz DOT representation of the layer DAG. Cut points are drawn as
/// doubled-border nodes so partition candidates are visible at a glance.
pub fn to_dot(model: &ModelGraph) -> String {
    let cut_after: std::collections::HashSet<usize> = model
        .cut_points()
        .iter()
        .filter(|c| c.boundary > 0)
        .map(|c| c.boundary - 1)
        .collect();
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", model.name()));
    out.push_str("  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    out.push_str(&format!(
        "  input [label=\"input\\n{}\", shape=ellipse];\n",
        model.input_shape()
    ));
    for node in model.nodes() {
        let peripheries = if cut_after.contains(&node.id) { 2 } else { 1 };
        out.push_str(&format!(
            "  n{} [label=\"{}\\n{} {}\", peripheries={}];\n",
            node.id,
            node.name.replace('"', "'"),
            node.kind.tag(),
            model.shape(node.id),
            peripheries
        ));
        for &src in &node.inputs {
            if src == INPUT {
                out.push_str(&format!("  input -> n{};\n", node.id));
            } else {
                out.push_str(&format!("  n{} -> n{};\n", src, node.id));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn layer_table_mentions_every_node() {
        let g = zoo::lenet5(10);
        let t = layer_table(&g);
        for node in g.nodes() {
            assert!(t.contains(&node.name), "missing {}", node.name);
        }
        assert!(t.contains("total:"));
    }

    #[test]
    fn dot_is_structurally_well_formed() {
        for name in ["lenet5", "resnet18", "googlenet"] {
            let g = zoo::by_name(name).unwrap();
            let dot = to_dot(&g);
            assert!(dot.starts_with(&format!("digraph \"{name}\"")));
            assert!(dot.trim_end().ends_with('}'));
            // one node statement per layer + input
            let node_count = dot.matches("[label=").count();
            assert_eq!(node_count, g.len() + 1, "{name}");
            // edge count == total input references
            let edges = dot.matches(" -> ").count();
            let refs: usize = g.nodes().iter().map(|n| n.inputs.len()).sum();
            assert_eq!(edges, refs, "{name}");
        }
    }

    #[test]
    fn dot_marks_cut_points_with_double_border() {
        let g = zoo::alexnet(1000);
        let dot = to_dot(&g);
        // chains: every layer is a cut host -> every node doubled
        let doubled = dot.matches("peripheries=2").count();
        assert_eq!(doubled, g.len());
    }

    #[test]
    fn truncate_helper() {
        assert_eq!(truncate("short", 22), "short");
        let long = "a".repeat(40);
        let t = truncate(&long, 22);
        assert!(t.chars().count() <= 22);
        assert!(t.ends_with('…'));
    }
}
