//! Feature-map shapes and datatype accounting.
//!
//! Shapes are batch-1 `C × H × W` feature maps (fully-connected activations
//! are represented as `C × 1 × 1`). All byte accounting in the partition /
//! transmission math flows through [`TensorShape::bytes`].

use serde::{Deserialize, Serialize};

/// Element datatype of a tensor as transmitted / computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DType {
    /// 32-bit IEEE float (default for training-grade inference).
    #[default]
    F32,
    /// 16-bit half precision (common on edge GPUs).
    F16,
    /// 8-bit quantized integer (common after device-side quantization).
    I8,
}

impl DType {
    /// Size of one element in bytes.
    #[inline]
    pub const fn bytes_per_element(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 => 2,
            DType::I8 => 1,
        }
    }
}

/// A batch-1 feature-map shape, channels × height × width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Number of channels (or features for FC activations).
    pub c: usize,
    /// Spatial height (1 for FC activations).
    pub h: usize,
    /// Spatial width (1 for FC activations).
    pub w: usize,
}

impl TensorShape {
    /// A convolutional feature map `c × h × w`.
    #[inline]
    pub const fn chw(c: usize, h: usize, w: usize) -> Self {
        Self { c, h, w }
    }

    /// A flat (fully-connected) activation vector of `n` features.
    #[inline]
    pub const fn flat(n: usize) -> Self {
        Self { c: n, h: 1, w: 1 }
    }

    /// Total number of elements.
    #[inline]
    pub const fn elements(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Serialized size in bytes for the given datatype.
    #[inline]
    pub const fn bytes(&self, dtype: DType) -> usize {
        self.elements() * dtype.bytes_per_element()
    }

    /// Whether this is a flat activation vector.
    #[inline]
    pub const fn is_flat(&self) -> bool {
        self.h == 1 && self.w == 1
    }

    /// Spatial output size after a (kernel, stride, padding) window op,
    /// using floor semantics (PyTorch default).
    #[inline]
    pub fn conv_out(dim: usize, kernel: usize, stride: usize, padding: usize) -> usize {
        debug_assert!(stride > 0, "stride must be positive");
        if dim + 2 * padding < kernel {
            return 0;
        }
        (dim + 2 * padding - kernel) / stride + 1
    }
}

impl std::fmt::Display for TensorShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_and_byte_counts() {
        let s = TensorShape::chw(64, 56, 56);
        assert_eq!(s.elements(), 64 * 56 * 56);
        assert_eq!(s.bytes(DType::F32), 64 * 56 * 56 * 4);
        assert_eq!(s.bytes(DType::F16), 64 * 56 * 56 * 2);
        assert_eq!(s.bytes(DType::I8), 64 * 56 * 56);
    }

    #[test]
    fn flat_vectors() {
        let s = TensorShape::flat(4096);
        assert!(s.is_flat());
        assert_eq!(s.elements(), 4096);
        assert_eq!(s.to_string(), "4096x1x1");
    }

    #[test]
    fn conv_out_matches_pytorch_floor_semantics() {
        // 224x224, k=11, s=4, p=2 -> 55 (AlexNet conv1)
        assert_eq!(TensorShape::conv_out(224, 11, 4, 2), 55);
        // 224, k=3, s=1, p=1 -> 224 (VGG same-conv)
        assert_eq!(TensorShape::conv_out(224, 3, 1, 1), 224);
        // 55, k=3, s=2, p=0 -> 27 (AlexNet pool1)
        assert_eq!(TensorShape::conv_out(55, 3, 2, 0), 27);
        // 7, k=7, s=1, p=0 -> 1 (global pool as conv)
        assert_eq!(TensorShape::conv_out(7, 7, 1, 0), 1);
    }

    #[test]
    fn conv_out_degenerate_window_is_zero() {
        assert_eq!(TensorShape::conv_out(2, 7, 1, 0), 0);
    }
}
