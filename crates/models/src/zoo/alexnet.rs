//! AlexNet (torchvision channel configuration, classic LRN kept).

use crate::graph::{GraphBuilder, ModelGraph, INPUT};
use crate::layer::{conv, linear, relu, LayerKind, PoolKind};
use crate::tensor::{DType, TensorShape};

fn pool3s2() -> LayerKind {
    LayerKind::Pool {
        kind: PoolKind::Max,
        kernel: 3,
        stride: 2,
        padding: 0,
    }
}

/// AlexNet on `3×224×224`.
///
/// Five conv stages (64/192/384/256/256 channels — the torchvision widths,
/// whose 61.1 M parameters match the published model) followed by the
/// 9216→4096→4096→`classes` classifier. The two classic LRN layers are kept
/// so the graph mirrors the original architecture layer-for-layer.
pub fn alexnet(classes: usize) -> ModelGraph {
    let mut g =
        GraphBuilder::new("alexnet", TensorShape::chw(3, 224, 224)).with_input_dtype(DType::I8);
    let c1 = g.chain("conv1", conv(3, 64, 11, 4, 2), INPUT);
    let r1 = g.chain("relu1", relu(), c1);
    let n1 = g.chain("lrn1", LayerKind::Lrn, r1);
    let p1 = g.chain("pool1", pool3s2(), n1);
    let c2 = g.chain("conv2", conv(64, 192, 5, 1, 2), p1);
    let r2 = g.chain("relu2", relu(), c2);
    let n2 = g.chain("lrn2", LayerKind::Lrn, r2);
    let p2 = g.chain("pool2", pool3s2(), n2);
    let c3 = g.chain("conv3", conv(192, 384, 3, 1, 1), p2);
    let r3 = g.chain("relu3", relu(), c3);
    let c4 = g.chain("conv4", conv(384, 256, 3, 1, 1), r3);
    let r4 = g.chain("relu4", relu(), c4);
    let c5 = g.chain("conv5", conv(256, 256, 3, 1, 1), r4);
    let r5 = g.chain("relu5", relu(), c5);
    let p5 = g.chain("pool5", pool3s2(), r5);
    let fl = g.chain("flatten", LayerKind::Flatten, p5);
    let d1 = g.chain("drop1", LayerKind::Dropout, fl);
    let f1 = g.chain("fc1", linear(256 * 6 * 6, 4096), d1);
    let a1 = g.chain("relu6", relu(), f1);
    let d2 = g.chain("drop2", LayerKind::Dropout, a1);
    let f2 = g.chain("fc2", linear(4096, 4096), d2);
    let a2 = g.chain("relu7", relu(), f2);
    g.chain("fc3", linear(4096, classes), a2);
    super::build_static(g, "alexnet")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_feature_map_sizes() {
        let g = alexnet(1000);
        assert_eq!(g.shape(0), TensorShape::chw(64, 55, 55)); // conv1
        assert_eq!(g.shape(3), TensorShape::chw(64, 27, 27)); // pool1
        assert_eq!(g.shape(7), TensorShape::chw(192, 13, 13)); // pool2
        assert_eq!(g.shape(14), TensorShape::chw(256, 6, 6)); // pool5
        assert_eq!(g.output_shape(), TensorShape::flat(1000));
    }

    #[test]
    fn alexnet_exact_param_count() {
        // conv params 3,747,200 + fc params 58,631,144 = 61,100,840 (+ LRN 0)
        assert_eq!(alexnet(1000).total_params(), 61_100_840);
    }

    #[test]
    fn alexnet_is_a_chain_with_many_cuts() {
        let g = alexnet(1000);
        assert_eq!(g.cut_points().len(), g.len() + 1);
    }
}
