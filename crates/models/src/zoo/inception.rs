//! GoogLeNet (Inception-v1) — the multi-branch model in the zoo.
//!
//! Auxiliary classifiers are omitted (they are training-time only); pools
//! use padding 1 so the canonical 56/28/14/7 feature-map sizes are kept
//! under floor semantics.

use crate::graph::{GraphBuilder, ModelGraph, NodeId, INPUT};
use crate::layer::{conv, linear, relu, LayerKind, PoolKind};
use crate::tensor::{DType, TensorShape};

fn maxpool3s2p1() -> LayerKind {
    LayerKind::Pool {
        kind: PoolKind::Max,
        kernel: 3,
        stride: 2,
        padding: 1,
    }
}

fn maxpool3s1p1() -> LayerKind {
    LayerKind::Pool {
        kind: PoolKind::Max,
        kernel: 3,
        stride: 1,
        padding: 1,
    }
}

fn conv_relu(
    g: &mut GraphBuilder,
    name: String,
    in_c: usize,
    out_c: usize,
    k: usize,
    p: usize,
    from: NodeId,
) -> NodeId {
    let c = g.chain(name.clone(), conv(in_c, out_c, k, 1, p), from);
    g.chain(format!("{name}.relu"), relu(), c)
}

/// Channel spec of one inception module:
/// `(1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool proj)`.
type InceptionSpec = (usize, usize, usize, usize, usize, usize);

fn inception(
    g: &mut GraphBuilder,
    tag: &str,
    in_c: usize,
    (c1, c3r, c3, c5r, c5, pp): InceptionSpec,
    from: NodeId,
) -> NodeId {
    let b1 = conv_relu(g, format!("{tag}.b1"), in_c, c1, 1, 0, from);
    let b2r = conv_relu(g, format!("{tag}.b2r"), in_c, c3r, 1, 0, from);
    let b2 = conv_relu(g, format!("{tag}.b2"), c3r, c3, 3, 1, b2r);
    let b3r = conv_relu(g, format!("{tag}.b3r"), in_c, c5r, 1, 0, from);
    let b3 = conv_relu(g, format!("{tag}.b3"), c5r, c5, 5, 2, b3r);
    let bp = g.chain(format!("{tag}.pool"), maxpool3s1p1(), from);
    let b4 = conv_relu(g, format!("{tag}.b4"), in_c, pp, 1, 0, bp);
    g.push(
        format!("{tag}.concat"),
        LayerKind::Concat,
        vec![b1, b2, b3, b4],
    )
}

/// GoogLeNet on `3×224×224` — ~7.0 M parameters (aux heads omitted),
/// ~3 GFLOPs. The nine inception modules make this the zoo's stress test
/// for multi-tensor boundaries: only inter-module cuts are single-tensor.
pub fn googlenet(classes: usize) -> ModelGraph {
    let mut g =
        GraphBuilder::new("googlenet", TensorShape::chw(3, 224, 224)).with_input_dtype(DType::I8);
    let c1 = g.chain("stem.conv7", conv(3, 64, 7, 2, 3), INPUT);
    let r1 = g.chain("stem.relu1", relu(), c1);
    let p1 = g.chain("stem.pool1", maxpool3s2p1(), r1);
    let n1 = g.chain("stem.lrn1", LayerKind::Lrn, p1);
    let c2 = conv_relu(&mut g, "stem.conv1".into(), 64, 64, 1, 0, n1);
    let c3 = conv_relu(&mut g, "stem.conv3".into(), 64, 192, 3, 1, c2);
    let n2 = g.chain("stem.lrn2", LayerKind::Lrn, c3);
    let p2 = g.chain("stem.pool2", maxpool3s2p1(), n2);

    let i3a = inception(&mut g, "3a", 192, (64, 96, 128, 16, 32, 32), p2);
    let i3b = inception(&mut g, "3b", 256, (128, 128, 192, 32, 96, 64), i3a);
    let p3 = g.chain("pool3", maxpool3s2p1(), i3b);
    let i4a = inception(&mut g, "4a", 480, (192, 96, 208, 16, 48, 64), p3);
    let i4b = inception(&mut g, "4b", 512, (160, 112, 224, 24, 64, 64), i4a);
    let i4c = inception(&mut g, "4c", 512, (128, 128, 256, 24, 64, 64), i4b);
    let i4d = inception(&mut g, "4d", 512, (112, 144, 288, 32, 64, 64), i4c);
    let i4e = inception(&mut g, "4e", 528, (256, 160, 320, 32, 128, 128), i4d);
    let p4 = g.chain("pool4", maxpool3s2p1(), i4e);
    let i5a = inception(&mut g, "5a", 832, (256, 160, 320, 32, 128, 128), p4);
    let i5b = inception(&mut g, "5b", 832, (384, 192, 384, 48, 128, 128), i5a);

    let gap = g.chain("gap", LayerKind::GlobalAvgPool, i5b);
    let fl = g.chain("flatten", LayerKind::Flatten, gap);
    let dr = g.chain("drop", LayerKind::Dropout, fl);
    g.chain("fc", linear(1024, classes), dr);
    super::build_static(g, "googlenet")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn googlenet_module_output_channels() {
        let g = googlenet(1000);
        let find = |name: &str| g.nodes().iter().find(|n| n.name == name).unwrap().id;
        assert_eq!(g.shape(find("3a.concat")).c, 256);
        assert_eq!(g.shape(find("3b.concat")).c, 480);
        assert_eq!(g.shape(find("4e.concat")).c, 832);
        assert_eq!(g.shape(find("5b.concat")).c, 1024);
    }

    #[test]
    fn googlenet_spatial_pyramid() {
        let g = googlenet(1000);
        let find = |name: &str| g.nodes().iter().find(|n| n.name == name).unwrap().id;
        assert_eq!(g.shape(find("stem.pool2")).h, 28);
        assert_eq!(g.shape(find("pool3")).h, 14);
        assert_eq!(g.shape(find("pool4")).h, 7);
    }

    #[test]
    fn cuts_only_between_modules() {
        let g = googlenet(1000);
        let cuts = g.cut_points();
        // Branch interiors are multi-tensor, so there are far fewer cuts
        // than boundaries; but every concat output is a valid cut.
        assert!(cuts.len() < g.len() / 2);
        let concat_ids: Vec<_> = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Concat))
            .map(|n| n.id)
            .collect();
        assert_eq!(concat_ids.len(), 9);
        for id in concat_ids {
            assert!(
                g.validate_cut(id + 1).is_ok(),
                "cut after concat {id} should be valid"
            );
        }
    }
}
