//! LeNet-5 — the tiny MNIST-scale network used throughout the test suite.

use crate::graph::{GraphBuilder, ModelGraph, INPUT};
use crate::layer::{conv, linear, maxpool, relu, LayerKind};
use crate::tensor::{DType, TensorShape};

/// LeNet-5 (modernized: ReLU + max-pool) on a `1×28×28` input.
///
/// conv(1→6,k5,p2) → pool2 → conv(6→16,k5) → pool2 → fc120 → fc84 → fc`classes`.
pub fn lenet5(classes: usize) -> ModelGraph {
    let mut g =
        GraphBuilder::new("lenet5", TensorShape::chw(1, 28, 28)).with_input_dtype(DType::I8);
    let c1 = g.chain("conv1", conv(1, 6, 5, 1, 2), INPUT);
    let r1 = g.chain("relu1", relu(), c1);
    let p1 = g.chain("pool1", maxpool(2, 2), r1);
    let c2 = g.chain("conv2", conv(6, 16, 5, 1, 0), p1);
    let r2 = g.chain("relu2", relu(), c2);
    let p2 = g.chain("pool2", maxpool(2, 2), r2);
    let fl = g.chain("flatten", LayerKind::Flatten, p2);
    let f1 = g.chain("fc1", linear(16 * 5 * 5, 120), fl);
    let a1 = g.chain("relu3", relu(), f1);
    let f2 = g.chain("fc2", linear(120, 84), a1);
    let a2 = g.chain("relu4", relu(), f2);
    g.chain("fc3", linear(84, classes), a2);
    super::build_static(g, "lenet5")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_shapes() {
        let g = lenet5(10);
        assert_eq!(g.output_shape(), TensorShape::flat(10));
        // conv2 output is 16x10x10, pooled to 16x5x5.
        assert_eq!(g.shape(5), TensorShape::chw(16, 5, 5));
        // All 13 boundaries are single-tensor cuts on a chain.
        assert_eq!(g.cut_points().len(), g.len() + 1);
    }

    #[test]
    fn lenet_param_count() {
        // 156 + 2416 + 48120 + 10164 + 850 = 61,706 (classic count)
        assert_eq!(lenet5(10).total_params(), 61_706);
    }
}
