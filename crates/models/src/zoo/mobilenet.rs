//! MobileNet-V2 (Sandler et al.) with inverted-residual bottlenecks.

use crate::graph::{GraphBuilder, ModelGraph, NodeId, INPUT};
use crate::layer::{dwconv, linear, Activation, LayerKind};
use crate::tensor::{DType, TensorShape};

fn conv1x1_nb(in_c: usize, out_c: usize) -> LayerKind {
    LayerKind::Conv2d {
        in_c,
        out_c,
        kernel: 1,
        stride: 1,
        padding: 0,
        groups: 1,
        bias: false,
    }
}

fn bn_relu6(g: &mut GraphBuilder, tag: &str, from: NodeId) -> NodeId {
    let b = g.chain(format!("{tag}.bn"), LayerKind::BatchNorm, from);
    g.chain(format!("{tag}.relu6"), LayerKind::Act(Activation::Relu6), b)
}

/// One inverted residual: expand 1×1 (t×) → depthwise 3×3 → project 1×1,
/// with a residual add when stride = 1 and channels match.
fn inverted_residual(
    g: &mut GraphBuilder,
    tag: &str,
    in_c: usize,
    out_c: usize,
    stride: usize,
    expand: usize,
    from: NodeId,
) -> NodeId {
    let hidden = in_c * expand;
    let mut x = from;
    if expand != 1 {
        let e = g.chain(format!("{tag}.expand"), conv1x1_nb(in_c, hidden), x);
        x = bn_relu6(g, &format!("{tag}.expand"), e);
    }
    let d = g.chain(format!("{tag}.dw"), dwconv(hidden, 3, stride, 1), x);
    let x = bn_relu6(g, &format!("{tag}.dw"), d);
    let p = g.chain(format!("{tag}.project"), conv1x1_nb(hidden, out_c), x);
    let x = g.chain(format!("{tag}.project.bn"), LayerKind::BatchNorm, p);
    if stride == 1 && in_c == out_c {
        g.push(format!("{tag}.add"), LayerKind::Add, vec![x, from])
    } else {
        x
    }
}

/// MobileNet-V2 on `3×224×224` — 3.50 M parameters, ~0.6 GFLOPs.
pub fn mobilenet_v2(classes: usize) -> ModelGraph {
    // (expansion t, output channels c, repeats n, first stride s)
    const CFG: &[(usize, usize, usize, usize)] = &[
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut g = GraphBuilder::new("mobilenet_v2", TensorShape::chw(3, 224, 224))
        .with_input_dtype(DType::I8);
    let stem = g.chain(
        "stem.conv",
        LayerKind::Conv2d {
            in_c: 3,
            out_c: 32,
            kernel: 3,
            stride: 2,
            padding: 1,
            groups: 1,
            bias: false,
        },
        INPUT,
    );
    let mut tail = bn_relu6(&mut g, "stem", stem);
    let mut in_c = 32;
    for (bi, &(t, c, n, s)) in CFG.iter().enumerate() {
        for r in 0..n {
            let stride = if r == 0 { s } else { 1 };
            tail = inverted_residual(&mut g, &format!("block{bi}.{r}"), in_c, c, stride, t, tail);
            in_c = c;
        }
    }
    let head = g.chain("head.conv", conv1x1_nb(320, 1280), tail);
    let tail = bn_relu6(&mut g, "head", head);
    let gap = g.chain("gap", LayerKind::GlobalAvgPool, tail);
    let fl = g.chain("flatten", LayerKind::Flatten, gap);
    let dr = g.chain("drop", LayerKind::Dropout, fl);
    g.chain("fc", linear(1280, classes), dr);
    super::build_static(g, "mobilenet_v2")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobilenet_v2_exact_param_count() {
        assert_eq!(mobilenet_v2(1000).total_params(), 3_504_872);
    }

    #[test]
    fn mobilenet_v2_final_feature_map() {
        let g = mobilenet_v2(1000);
        let gap = g.nodes().iter().find(|n| n.name == "gap").unwrap();
        assert_eq!(g.shape(gap.inputs[0]), TensorShape::chw(1280, 7, 7));
        assert_eq!(g.output_shape(), TensorShape::flat(1000));
    }

    #[test]
    fn depthwise_keeps_flops_low() {
        let g = mobilenet_v2(1000);
        // MobileNet-V2 is ~50x cheaper than VGG-16 despite similar depth.
        assert!(g.total_flops() < 700_000_000, "{}", g.total_flops());
    }

    #[test]
    fn residual_adds_only_on_stride1_same_width() {
        let g = mobilenet_v2(1000);
        let adds = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Add))
            .count();
        // repeats beyond the first in each stage with s=1:
        // 24:1, 32:2, 64:3, 96:2, 160:2 => 10 adds.
        assert_eq!(adds, 10);
    }
}
