//! Model zoo: layer-by-layer reconstructions of the classic backbones the
//! paper family evaluates.
//!
//! Shapes and FLOPs match the published architectures (MAC = 2 FLOPs
//! convention); small deviations from framework quirks (e.g. ceil-mode
//! pooling) are handled by explicit padding so canonical feature-map sizes
//! are preserved. Each builder takes the classifier width so experiments can
//! use different label spaces.

mod alexnet;
mod inception;
mod lenet;
mod mobilenet;
mod resnet;
mod squeezenet;
mod vgg;

pub use alexnet::alexnet;
pub use inception::googlenet;
pub use lenet::lenet5;
pub use mobilenet::mobilenet_v2;
pub use resnet::{resnet101, resnet18, resnet34, resnet50};
pub use squeezenet::squeezenet;
pub use vgg::{vgg11, vgg16};

use crate::graph::{GraphBuilder, ModelGraph};

/// Finalize a zoo builder. Every zoo architecture is wired by static code
/// with no external input, so a build failure is a bug in the builder
/// itself — this centralizes the invariant (and the only panic the zoo is
/// allowed) in one place.
pub(crate) fn build_static(g: GraphBuilder, arch: &'static str) -> ModelGraph {
    match g.build() {
        Ok(model) => model,
        Err(e) => panic!("{arch} backbone is statically valid: {e}"),
    }
}

/// Names of every model in the zoo.
pub const ALL_NAMES: &[&str] = &[
    "lenet5",
    "alexnet",
    "vgg11",
    "vgg16",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet101",
    "mobilenet_v2",
    "googlenet",
    "squeezenet",
];

/// Look a model up by name with ImageNet-standard 1000 classes
/// (10 for LeNet-5). Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<ModelGraph> {
    match name {
        "lenet5" => Some(lenet5(10)),
        "alexnet" => Some(alexnet(1000)),
        "vgg11" => Some(vgg11(1000)),
        "vgg16" => Some(vgg16(1000)),
        "resnet18" => Some(resnet18(1000)),
        "resnet34" => Some(resnet34(1000)),
        "resnet50" => Some(resnet50(1000)),
        "resnet101" => Some(resnet101(1000)),
        "mobilenet_v2" => Some(mobilenet_v2(1000)),
        "googlenet" => Some(googlenet(1000)),
        "squeezenet" => Some(squeezenet(1000)),
        _ => None,
    }
}

/// The four backbones used throughout the reconstructed evaluation
/// (DESIGN.md §4): a large CNN (VGG-16), a mid-size classic (AlexNet),
/// a residual network (ResNet-18) and a mobile-efficient one
/// (MobileNet-V2).
pub fn standard_zoo() -> Vec<ModelGraph> {
    vec![
        alexnet(1000),
        vgg16(1000),
        resnet18(1000),
        mobilenet_v2(1000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_zoo_model_builds_and_is_consistent() {
        for name in ALL_NAMES {
            let g = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(!g.is_empty(), "{name} empty");
            assert!(g.total_flops() > 0, "{name} zero flops");
            assert!(g.total_params() > 0, "{name} zero params");
            // Every model ends in a flat classifier output.
            assert!(g.output_shape().is_flat(), "{name} output not flat");
            // At least three single-tensor cut points (offload, interior,
            // device-only) must exist for surgery to have choices.
            assert!(g.cut_points().len() >= 3, "{name} lacks cut points");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("resnet1337").is_none());
    }

    #[test]
    fn standard_zoo_is_the_documented_four() {
        let names: Vec<_> = standard_zoo().iter().map(|g| g.name().to_owned()).collect();
        assert_eq!(names, ["alexnet", "vgg16", "resnet18", "mobilenet_v2"]);
    }

    /// Published parameter counts (±2% tolerance for bias/LRN conventions):
    /// AlexNet 61.1M, VGG-16 138.4M, ResNet-18 11.7M, ResNet-50 25.6M,
    /// MobileNet-V2 3.5M, GoogLeNet 6.6M (no aux heads ~ 6.0M).
    #[test]
    fn parameter_counts_match_published_architectures() {
        let check = |name: &str, expected_m: f64, tol: f64| {
            let g = by_name(name).unwrap();
            let got = g.total_params() as f64 / 1e6;
            assert!(
                (got - expected_m).abs() / expected_m < tol,
                "{name}: got {got:.2}M params, expected ~{expected_m}M"
            );
        };
        check("alexnet", 61.1, 0.02);
        check("vgg16", 138.4, 0.02);
        check("resnet18", 11.69, 0.02);
        check("resnet34", 21.80, 0.02);
        check("resnet50", 25.56, 0.02);
        check("mobilenet_v2", 3.50, 0.03);
        check("googlenet", 7.0, 0.05); // aux classifiers omitted
    }

    /// Published forward GFLOPs (MAC=2 convention, ±5%): AlexNet ~1.43,
    /// VGG-16 ~30.9, ResNet-18 ~3.6, ResNet-50 ~8.2, MobileNet-V2 ~0.6,
    /// GoogLeNet ~3.0.
    #[test]
    fn flop_counts_match_published_architectures() {
        let check = |name: &str, expected_g: f64, tol: f64| {
            let g = by_name(name).unwrap();
            let got = g.total_flops() as f64 / 1e9;
            assert!(
                (got - expected_g).abs() / expected_g < tol,
                "{name}: got {got:.2} GFLOPs, expected ~{expected_g}"
            );
        };
        check("alexnet", 1.43, 0.05);
        check("vgg16", 30.96, 0.05);
        check("resnet18", 3.64, 0.05);
        check("resnet50", 8.21, 0.06);
        check("mobilenet_v2", 0.60, 0.10);
        check("googlenet", 3.0, 0.10);
    }
}
