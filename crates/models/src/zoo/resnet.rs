//! ResNet-18/34 (basic blocks) and ResNet-50 (bottleneck blocks).

use crate::graph::{GraphBuilder, ModelGraph, NodeId, INPUT};
use crate::layer::{conv_nb, linear, relu, LayerKind, PoolKind};
use crate::tensor::{DType, TensorShape};

fn bn(g: &mut GraphBuilder, name: String, from: NodeId) -> NodeId {
    g.chain(name, LayerKind::BatchNorm, from)
}

/// One basic residual block: `conv3-bn-relu-conv3-bn (+shortcut) relu`.
///
/// When `stride > 1` or channel counts change, the shortcut is a projection
/// (`conv1x1` + BN), exactly as in the published architecture.
fn basic_block(
    g: &mut GraphBuilder,
    tag: &str,
    in_c: usize,
    out_c: usize,
    stride: usize,
    from: NodeId,
) -> NodeId {
    let c1 = g.chain(
        format!("{tag}.conv1"),
        conv_nb(in_c, out_c, 3, stride, 1),
        from,
    );
    let b1 = bn(g, format!("{tag}.bn1"), c1);
    let r1 = g.chain(format!("{tag}.relu1"), relu(), b1);
    let c2 = g.chain(format!("{tag}.conv2"), conv_nb(out_c, out_c, 3, 1, 1), r1);
    let b2 = bn(g, format!("{tag}.bn2"), c2);
    let shortcut = if stride != 1 || in_c != out_c {
        let ds = g.chain(
            format!("{tag}.down"),
            conv_nb(in_c, out_c, 1, stride, 0),
            from,
        );
        bn(g, format!("{tag}.down_bn"), ds)
    } else {
        from
    };
    let add = g.push(format!("{tag}.add"), LayerKind::Add, vec![b2, shortcut]);
    g.chain(format!("{tag}.relu2"), relu(), add)
}

/// One bottleneck block: `conv1-bn-relu-conv3-bn-relu-conv1(×4)-bn (+shortcut) relu`.
fn bottleneck_block(
    g: &mut GraphBuilder,
    tag: &str,
    in_c: usize,
    mid_c: usize,
    stride: usize,
    from: NodeId,
) -> NodeId {
    let out_c = mid_c * 4;
    let c1 = g.chain(format!("{tag}.conv1"), conv_nb(in_c, mid_c, 1, 1, 0), from);
    let b1 = bn(g, format!("{tag}.bn1"), c1);
    let r1 = g.chain(format!("{tag}.relu1"), relu(), b1);
    let c2 = g.chain(
        format!("{tag}.conv2"),
        conv_nb(mid_c, mid_c, 3, stride, 1),
        r1,
    );
    let b2 = bn(g, format!("{tag}.bn2"), c2);
    let r2 = g.chain(format!("{tag}.relu2"), relu(), b2);
    let c3 = g.chain(format!("{tag}.conv3"), conv_nb(mid_c, out_c, 1, 1, 0), r2);
    let b3 = bn(g, format!("{tag}.bn3"), c3);
    let shortcut = if stride != 1 || in_c != out_c {
        let ds = g.chain(
            format!("{tag}.down"),
            conv_nb(in_c, out_c, 1, stride, 0),
            from,
        );
        bn(g, format!("{tag}.down_bn"), ds)
    } else {
        from
    };
    let add = g.push(format!("{tag}.add"), LayerKind::Add, vec![b3, shortcut]);
    g.chain(format!("{tag}.relu3"), relu(), add)
}

fn stem(g: &mut GraphBuilder) -> NodeId {
    let c = g.chain("stem.conv", conv_nb(3, 64, 7, 2, 3), INPUT);
    let b = bn(g, "stem.bn".into(), c);
    let r = g.chain("stem.relu", relu(), b);
    g.chain(
        "stem.pool",
        LayerKind::Pool {
            kind: PoolKind::Max,
            kernel: 3,
            stride: 2,
            padding: 1,
        },
        r,
    )
}

fn resnet_basic(name: &str, blocks: [usize; 4], classes: usize) -> ModelGraph {
    let mut g = GraphBuilder::new(name, TensorShape::chw(3, 224, 224)).with_input_dtype(DType::I8);
    let mut tail = stem(&mut g);
    let widths = [64usize, 128, 256, 512];
    let mut in_c = 64;
    for (stage, (&w, &n)) in widths.iter().zip(blocks.iter()).enumerate() {
        for b in 0..n {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            tail = basic_block(
                &mut g,
                &format!("layer{}.{}", stage + 1, b),
                in_c,
                w,
                stride,
                tail,
            );
            in_c = w;
        }
    }
    let gap = g.chain("gap", LayerKind::GlobalAvgPool, tail);
    let fl = g.chain("flatten", LayerKind::Flatten, gap);
    g.chain("fc", linear(512, classes), fl);
    super::build_static(g, "resnet")
}

/// ResNet-18 on `3×224×224` — 11.69 M parameters, ~3.6 GFLOPs.
pub fn resnet18(classes: usize) -> ModelGraph {
    resnet_basic("resnet18", [2, 2, 2, 2], classes)
}

/// ResNet-34 on `3×224×224` — 21.8 M parameters.
pub fn resnet34(classes: usize) -> ModelGraph {
    resnet_basic("resnet34", [3, 4, 6, 3], classes)
}

/// ResNet-50 on `3×224×224` — 25.6 M parameters, ~8.2 GFLOPs.
pub fn resnet50(classes: usize) -> ModelGraph {
    resnet_bottleneck("resnet50", [3, 4, 6, 3], classes)
}

/// ResNet-101 on `3×224×224` — 44.5 M parameters, ~15.7 GFLOPs.
pub fn resnet101(classes: usize) -> ModelGraph {
    resnet_bottleneck("resnet101", [3, 4, 23, 3], classes)
}

fn resnet_bottleneck(name: &str, blocks: [usize; 4], classes: usize) -> ModelGraph {
    let mut g = GraphBuilder::new(name, TensorShape::chw(3, 224, 224)).with_input_dtype(DType::I8);
    let mut tail = stem(&mut g);
    let widths = [64usize, 128, 256, 512];
    let mut in_c = 64;
    for (stage, (&w, &n)) in widths.iter().zip(blocks.iter()).enumerate() {
        for b in 0..n {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            tail = bottleneck_block(
                &mut g,
                &format!("layer{}.{}", stage + 1, b),
                in_c,
                w,
                stride,
                tail,
            );
            in_c = w * 4;
        }
    }
    let gap = g.chain("gap", LayerKind::GlobalAvgPool, tail);
    let fl = g.chain("flatten", LayerKind::Flatten, gap);
    g.chain("fc", linear(2048, classes), fl);
    super::build_static(g, "bottleneck resnet")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_exact_param_count() {
        assert_eq!(resnet18(1000).total_params(), 11_689_512);
    }

    #[test]
    fn resnet50_exact_param_count() {
        assert_eq!(resnet50(1000).total_params(), 25_557_032);
    }

    #[test]
    fn resnet101_exact_param_count() {
        assert_eq!(resnet101(1000).total_params(), 44_549_160);
    }

    #[test]
    fn resnet101_is_deeper_but_same_interface() {
        let g50 = resnet50(1000);
        let g101 = resnet101(1000);
        assert!(g101.len() > g50.len());
        assert!(g101.total_flops() as f64 > 1.8 * g50.total_flops() as f64);
        assert_eq!(g101.output_shape(), g50.output_shape());
    }

    #[test]
    fn resnet18_stage_shapes() {
        let g = resnet18(1000);
        // stem pool -> 64x56x56
        assert_eq!(g.shape(3), TensorShape::chw(64, 56, 56));
        // final block output 512x7x7 (node before gap)
        let gap = g.nodes().iter().find(|n| n.name == "gap").unwrap();
        assert_eq!(g.shape(gap.inputs[0]), TensorShape::chw(512, 7, 7));
    }

    #[test]
    fn resnet_cut_points_land_between_blocks() {
        let g = resnet18(1000);
        let cuts = g.cut_points();
        // The add/relu boundaries between residual blocks are valid cuts;
        // interiors of blocks (two live tensors) are not. 8 blocks -> at
        // least 8 interior cuts plus offload/device-only.
        assert!(cuts.len() >= 10, "got {} cuts", cuts.len());
        // No cut crosses two tensors.
        assert!(cuts.iter().all(|c| c.crossing.len() <= 1));
    }

    #[test]
    fn identity_shortcut_blocks_have_no_downsample() {
        let g = resnet18(1000);
        let downs = g
            .nodes()
            .iter()
            .filter(|n| n.name.ends_with(".down"))
            .count();
        // Exactly 3 projection shortcuts in ResNet-18 (layer2.0, 3.0, 4.0).
        assert_eq!(downs, 3);
    }
}
