//! SqueezeNet 1.1 (Iandola et al.) — fire modules: squeeze 1×1 → parallel
//! expand 1×1 / 3×3 → concat. The second multi-branch model in the zoo.

use crate::graph::{GraphBuilder, ModelGraph, NodeId, INPUT};
use crate::layer::{conv, relu, LayerKind, PoolKind};
use crate::tensor::{DType, TensorShape};

fn maxpool3s2() -> LayerKind {
    LayerKind::Pool {
        kind: PoolKind::Max,
        kernel: 3,
        stride: 2,
        padding: 0,
    }
}

/// One fire module: squeeze(s1x1) → [expand1x1(e1), expand3x3(e3)] → concat.
fn fire(
    g: &mut GraphBuilder,
    tag: &str,
    in_c: usize,
    s1: usize,
    e1: usize,
    e3: usize,
    from: NodeId,
) -> NodeId {
    let sq = g.chain(format!("{tag}.squeeze"), conv(in_c, s1, 1, 1, 0), from);
    let sq = g.chain(format!("{tag}.squeeze.relu"), relu(), sq);
    let x1 = g.chain(format!("{tag}.expand1"), conv(s1, e1, 1, 1, 0), sq);
    let x1 = g.chain(format!("{tag}.expand1.relu"), relu(), x1);
    let x3 = g.chain(format!("{tag}.expand3"), conv(s1, e3, 3, 1, 1), sq);
    let x3 = g.chain(format!("{tag}.expand3.relu"), relu(), x3);
    g.push(format!("{tag}.concat"), LayerKind::Concat, vec![x1, x3])
}

/// SqueezeNet 1.1 on `3×224×224` — ~1.24 M parameters, ~0.7 GFLOPs.
pub fn squeezenet(classes: usize) -> ModelGraph {
    let mut g =
        GraphBuilder::new("squeezenet", TensorShape::chw(3, 224, 224)).with_input_dtype(DType::I8);
    let c1 = g.chain("stem.conv", conv(3, 64, 3, 2, 0), INPUT);
    let r1 = g.chain("stem.relu", relu(), c1);
    let p1 = g.chain("stem.pool", maxpool3s2(), r1);
    let f2 = fire(&mut g, "fire2", 64, 16, 64, 64, p1);
    let f3 = fire(&mut g, "fire3", 128, 16, 64, 64, f2);
    let p3 = g.chain("pool3", maxpool3s2(), f3);
    let f4 = fire(&mut g, "fire4", 128, 32, 128, 128, p3);
    let f5 = fire(&mut g, "fire5", 256, 32, 128, 128, f4);
    let p5 = g.chain("pool5", maxpool3s2(), f5);
    let f6 = fire(&mut g, "fire6", 256, 48, 192, 192, p5);
    let f7 = fire(&mut g, "fire7", 384, 48, 192, 192, f6);
    let f8 = fire(&mut g, "fire8", 384, 64, 256, 256, f7);
    let f9 = fire(&mut g, "fire9", 512, 64, 256, 256, f8);
    let dr = g.chain("drop", LayerKind::Dropout, f9);
    // Classifier: conv1x1 to `classes`, then global average pool.
    let cc = g.chain("classifier.conv", conv(512, classes, 1, 1, 0), dr);
    let cr = g.chain("classifier.relu", relu(), cc);
    let gap = g.chain("gap", LayerKind::GlobalAvgPool, cr);
    g.chain("flatten", LayerKind::Flatten, gap);
    super::build_static(g, "squeezenet")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squeezenet_param_count_matches_published() {
        // torchvision squeezenet1_1: 1,235,496 parameters.
        assert_eq!(squeezenet(1000).total_params(), 1_235_496);
    }

    #[test]
    fn squeezenet_output_and_cuts() {
        let g = squeezenet(1000);
        assert_eq!(g.output_shape(), TensorShape::flat(1000));
        // Fire-module interiors are multi-tensor; concat outputs are cuts.
        let concats = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Concat))
            .count();
        assert_eq!(concats, 8);
        for n in g.nodes() {
            if matches!(n.kind, LayerKind::Concat) {
                assert!(g.validate_cut(n.id + 1).is_ok(), "cut after {}", n.name);
            }
        }
    }

    #[test]
    fn squeezenet_is_light() {
        let g = squeezenet(1000);
        assert!(g.total_flops() < 1_000_000_000, "{}", g.total_flops());
    }
}
