//! VGG-11 / VGG-16 (configuration A / D of Simonyan & Zisserman).

use crate::graph::{GraphBuilder, ModelGraph, NodeId, INPUT};
use crate::layer::{conv, linear, maxpool, relu, LayerKind};
use crate::tensor::{DType, TensorShape};

/// Append one `conv3x3(p1) → relu` pair and return the new tail.
fn conv_relu(
    g: &mut GraphBuilder,
    idx: &mut usize,
    in_c: usize,
    out_c: usize,
    from: NodeId,
) -> NodeId {
    *idx += 1;
    let c = g.chain(format!("conv{idx}"), conv(in_c, out_c, 3, 1, 1), from);
    g.chain(format!("relu{idx}"), relu(), c)
}

fn vgg(name: &str, cfg: &[&[usize]], classes: usize) -> ModelGraph {
    let mut g = GraphBuilder::new(name, TensorShape::chw(3, 224, 224)).with_input_dtype(DType::I8);
    let mut tail = INPUT;
    let mut in_c = 3;
    let mut idx = 0usize;
    for (stage, widths) in cfg.iter().enumerate() {
        for &w in widths.iter() {
            tail = conv_relu(&mut g, &mut idx, in_c, w, tail);
            in_c = w;
        }
        tail = g.chain(format!("pool{}", stage + 1), maxpool(2, 2), tail);
    }
    let fl = g.chain("flatten", LayerKind::Flatten, tail);
    let f1 = g.chain("fc1", linear(512 * 7 * 7, 4096), fl);
    let a1 = g.chain("fc1_relu", relu(), f1);
    let d1 = g.chain("drop1", LayerKind::Dropout, a1);
    let f2 = g.chain("fc2", linear(4096, 4096), d1);
    let a2 = g.chain("fc2_relu", relu(), f2);
    let d2 = g.chain("drop2", LayerKind::Dropout, a2);
    g.chain("fc3", linear(4096, classes), d2);
    super::build_static(g, "vgg")
}

/// VGG-11 (configuration A) on `3×224×224`.
pub fn vgg11(classes: usize) -> ModelGraph {
    vgg(
        "vgg11",
        &[&[64], &[128], &[256, 256], &[512, 512], &[512, 512]],
        classes,
    )
}

/// VGG-16 (configuration D) on `3×224×224` — 138.4 M parameters.
pub fn vgg16(classes: usize) -> ModelGraph {
    vgg(
        "vgg16",
        &[
            &[64, 64],
            &[128, 128],
            &[256, 256, 256],
            &[512, 512, 512],
            &[512, 512, 512],
        ],
        classes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_exact_param_count() {
        assert_eq!(vgg16(1000).total_params(), 138_357_544);
    }

    #[test]
    fn vgg11_exact_param_count() {
        assert_eq!(vgg11(1000).total_params(), 132_863_336);
    }

    #[test]
    fn vgg16_stage_shapes() {
        let g = vgg16(1000);
        // final pool leaves 512x7x7
        let pool5 = g
            .nodes()
            .iter()
            .find(|n| n.name == "pool5")
            .expect("pool5 exists");
        assert_eq!(g.shape(pool5.id), TensorShape::chw(512, 7, 7));
        assert_eq!(g.output_shape(), TensorShape::flat(1000));
    }

    #[test]
    fn vgg16_dominant_cost_is_convolutional() {
        let g = vgg16(1000);
        let fc_flops: u64 = g
            .nodes()
            .iter()
            .filter(|n| n.name.starts_with("fc"))
            .map(|n| g.node_flops(n.id))
            .sum();
        assert!(
            fc_flops * 10 < g.total_flops(),
            "convs must dominate VGG cost"
        );
    }
}
