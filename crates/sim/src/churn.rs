//! Churn-event traces: the typed input stream of a long-lived planning
//! service.
//!
//! Where [`crate::faults`] models *failures* the simulator injects
//! mid-run, this module models the slower **operational churn** a
//! control-plane daemon watches from outside: devices joining and
//! leaving, AP uplinks and server capacities drifting as spectrum and
//! co-tenants come and go, and per-stream offered load following its own
//! random walk. A [`ChurnTrace`] is an absolute-time, sorted schedule of
//! such events — a pure function of its [`ChurnProfile`] seed, so any
//! two replays of the same trace are bit-identical.
//!
//! Traces travel as plain text (one event per line, [`ChurnEvent::to_line`]
//! / [`ChurnEvent::parse_line`]): every `f64` is encoded as its exact bit
//! pattern in hex, so a trace written to a file and read back — or
//! streamed over stdin to `scalpel-serve` — reproduces the original
//! events *bit-for-bit*. That exactness is what makes the service's
//! write-ahead log replayable and its crash/restore path deterministic.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Multiplicative drift factors are clamped into `[FACTOR_FLOOR, ·]` so a
/// random walk can never zero out a resource or a workload.
pub const FACTOR_FLOOR: f64 = 0.05;

/// Load-drift factors may exceed nominal (flash crowds) but are capped so
/// a walk cannot generate an unsimulatable arrival rate.
pub const MAX_LOAD_FACTOR: f64 = 16.0;

/// One churn signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// Device leaves the fleet (powered off, roamed away); its stream
    /// goes quiescent until the matching [`ChurnKind::DeviceUp`].
    DeviceDown {
        /// Device index.
        device: usize,
    },
    /// Device rejoins; its stream resumes at its current load factor.
    DeviceUp {
        /// Device index.
        device: usize,
    },
    /// AP uplink bandwidth drifts to `factor` × nominal, in `(0, 1]`.
    LinkDrift {
        /// Access-point index.
        ap: usize,
        /// New fraction of nominal bandwidth.
        factor: f64,
    },
    /// Server capacity drifts to `factor` × nominal, in `(0, 1]`.
    CapacityDrift {
        /// Server index.
        server: usize,
        /// New fraction of nominal capacity.
        factor: f64,
    },
    /// Stream offered load drifts to `factor` × nominal, in
    /// `(0, MAX_LOAD_FACTOR]`.
    LoadDrift {
        /// Stream index.
        stream: usize,
        /// New fraction of nominal arrival rate.
        factor: f64,
    },
}

/// A timestamped churn event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Absolute event time, seconds.
    pub at_s: f64,
    /// What changed.
    pub kind: ChurnKind,
}

/// Why a trace line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnParseError {
    /// 1-based line number (0 when unknown).
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for ChurnParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "churn trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ChurnParseError {}

/// Exact text encoding of an `f64`: its IEEE-754 bit pattern in hex.
fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_f64_hex(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bits {s:?}: {e}"))
}

impl ChurnEvent {
    /// Canonical one-line encoding. Timestamps and factors are written as
    /// exact `f64` bit patterns; the trailing comment is a human-readable
    /// rendering the parser ignores.
    pub fn to_line(&self) -> String {
        let t = f64_hex(self.at_s);
        match self.kind {
            ChurnKind::DeviceDown { device } => {
                format!(
                    "{t} down {device}  # t={:.3}s device {device} leaves",
                    self.at_s
                )
            }
            ChurnKind::DeviceUp { device } => {
                format!(
                    "{t} up {device}  # t={:.3}s device {device} rejoins",
                    self.at_s
                )
            }
            ChurnKind::LinkDrift { ap, factor } => format!(
                "{t} link {ap} {}  # t={:.3}s ap {ap} -> {:.3}x",
                f64_hex(factor),
                self.at_s,
                factor
            ),
            ChurnKind::CapacityDrift { server, factor } => format!(
                "{t} cap {server} {}  # t={:.3}s server {server} -> {:.3}x",
                f64_hex(factor),
                self.at_s,
                factor
            ),
            ChurnKind::LoadDrift { stream, factor } => format!(
                "{t} load {stream} {}  # t={:.3}s stream {stream} -> {:.3}x",
                f64_hex(factor),
                self.at_s,
                factor
            ),
        }
    }

    /// Parse one line of the canonical encoding. `line_no` is only used
    /// for error messages. Blank lines and `#` comment lines yield
    /// `Ok(None)`.
    pub fn parse_line(line: &str, line_no: usize) -> Result<Option<ChurnEvent>, ChurnParseError> {
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            return Ok(None);
        }
        let err = |reason: String| ChurnParseError {
            line: line_no,
            reason,
        };
        let mut parts = body.split_whitespace();
        let t = parts
            .next()
            .ok_or_else(|| err("missing timestamp".into()))?;
        let at_s = parse_f64_hex(t).map_err(&err)?;
        let kind = parts.next().ok_or_else(|| err("missing kind".into()))?;
        let mut take_idx = |what: &str| -> Result<usize, ChurnParseError> {
            parts
                .next()
                .ok_or_else(|| err(format!("missing {what}")))?
                .parse::<usize>()
                .map_err(|e| err(format!("bad {what}: {e}")))
        };
        let kind = match kind {
            "down" => ChurnKind::DeviceDown {
                device: take_idx("device")?,
            },
            "up" => ChurnKind::DeviceUp {
                device: take_idx("device")?,
            },
            "link" => {
                let ap = take_idx("ap")?;
                let factor =
                    parse_f64_hex(parts.next().ok_or_else(|| err("missing factor".into()))?)
                        .map_err(&err)?;
                ChurnKind::LinkDrift { ap, factor }
            }
            "cap" => {
                let server = take_idx("server")?;
                let factor =
                    parse_f64_hex(parts.next().ok_or_else(|| err("missing factor".into()))?)
                        .map_err(&err)?;
                ChurnKind::CapacityDrift { server, factor }
            }
            "load" => {
                let stream = take_idx("stream")?;
                let factor =
                    parse_f64_hex(parts.next().ok_or_else(|| err("missing factor".into()))?)
                        .map_err(&err)?;
                ChurnKind::LoadDrift { stream, factor }
            }
            other => return Err(err(format!("unknown kind {other:?}"))),
        };
        if parts.next().is_some() {
            return Err(err("trailing tokens".into()));
        }
        Ok(Some(ChurnEvent { at_s, kind }))
    }
}

/// A replayable schedule of churn events, non-decreasing in time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnTrace {
    /// Events in non-decreasing `at_s` order.
    pub events: Vec<ChurnEvent>,
}

impl ChurnTrace {
    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Encode the whole trace as canonical lines.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(self.events.len() * 48 + 64);
        s.push_str("# scalpel churn trace v1 — fields: t(bits-hex) kind idx [factor(bits-hex)]\n");
        for e in &self.events {
            s.push_str(&e.to_line());
            s.push('\n');
        }
        s
    }

    /// Parse a trace from its text encoding, verifying time ordering.
    pub fn from_text(text: &str) -> Result<ChurnTrace, ChurnParseError> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if let Some(ev) = ChurnEvent::parse_line(line, i + 1)? {
                if let Some(prev) = events.last() {
                    let prev: &ChurnEvent = prev;
                    if ev.at_s < prev.at_s {
                        return Err(ChurnParseError {
                            line: i + 1,
                            reason: format!("events out of order: {} after {}", ev.at_s, prev.at_s),
                        });
                    }
                }
                events.push(ev);
            }
        }
        Ok(ChurnTrace { events })
    }
}

/// Seeded churn-trace generator: device up/down cycles plus log-space
/// random walks over AP bandwidth, server capacity, and per-stream load.
/// A pure function of its parameters — `plan` twice, get the same trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnProfile {
    /// Generator seed (independent of simulator seeds).
    pub seed: u64,
    /// Fleet-wide device-leave rate, events/s (0 disables device churn).
    pub device_churn_hz: f64,
    /// Mean absence duration of a departed device, seconds.
    pub mean_down_s: f64,
    /// Interval between drift ticks, seconds (0 disables drift).
    pub drift_every_s: f64,
    /// Per-tick log-normal step for AP bandwidth walks (0 disables).
    pub link_sigma: f64,
    /// Per-tick log-normal step for server capacity walks (0 disables).
    pub cap_sigma: f64,
    /// Per-tick log-normal step for per-stream load walks (0 disables).
    pub load_sigma: f64,
    /// First event no earlier than this, seconds.
    pub start_s: f64,
}

impl Default for ChurnProfile {
    fn default() -> Self {
        Self {
            seed: 13,
            device_churn_hz: 0.2,
            mean_down_s: 8.0,
            drift_every_s: 2.0,
            link_sigma: 0.25,
            cap_sigma: 0.15,
            load_sigma: 0.2,
            start_s: 1.0,
        }
    }
}

impl ChurnProfile {
    /// Generate the trace for a fleet of the given dimensions over
    /// `[0, horizon_s)`.
    pub fn plan(
        &self,
        num_devices: usize,
        num_aps: usize,
        num_servers: usize,
        num_streams: usize,
        horizon_s: f64,
    ) -> ChurnTrace {
        let mut events = Vec::new();
        // Two independent RNG streams so adding drift never perturbs the
        // device-churn schedule and vice versa.
        let mut churn_rng = SimRng::new(self.seed, 101);
        let mut drift_rng = SimRng::new(self.seed, 202);
        if self.device_churn_hz > 0.0 && num_devices > 0 {
            let mut t = self.start_s;
            loop {
                t += churn_rng.exponential(self.device_churn_hz);
                if t >= horizon_s {
                    break;
                }
                let device = churn_rng.index(num_devices);
                events.push(ChurnEvent {
                    at_s: t,
                    kind: ChurnKind::DeviceDown { device },
                });
                let back = t + churn_rng.exponential(1.0 / self.mean_down_s.max(1e-9));
                if back < horizon_s {
                    events.push(ChurnEvent {
                        at_s: back,
                        kind: ChurnKind::DeviceUp { device },
                    });
                }
            }
        }
        if self.drift_every_s > 0.0 {
            // Approximate standard normal from 12 uniforms (Irwin–Hall):
            // cheap, deterministic, and plenty for a drift walk.
            let normal =
                |rng: &mut SimRng| -> f64 { (0..12).map(|_| rng.open01()).sum::<f64>() - 6.0 };
            let mut link = vec![1.0f64; num_aps];
            let mut cap = vec![1.0f64; num_servers];
            let mut load = vec![1.0f64; num_streams];
            let mut t = self.start_s;
            while t < horizon_s {
                if self.link_sigma > 0.0 {
                    for (ap, f) in link.iter_mut().enumerate() {
                        *f = (*f * (self.link_sigma * normal(&mut drift_rng)).exp())
                            .clamp(FACTOR_FLOOR, 1.0);
                        events.push(ChurnEvent {
                            at_s: t,
                            kind: ChurnKind::LinkDrift { ap, factor: *f },
                        });
                    }
                }
                if self.cap_sigma > 0.0 {
                    for (server, f) in cap.iter_mut().enumerate() {
                        *f = (*f * (self.cap_sigma * normal(&mut drift_rng)).exp())
                            .clamp(FACTOR_FLOOR, 1.0);
                        events.push(ChurnEvent {
                            at_s: t,
                            kind: ChurnKind::CapacityDrift { server, factor: *f },
                        });
                    }
                }
                if self.load_sigma > 0.0 {
                    for (stream, f) in load.iter_mut().enumerate() {
                        *f = (*f * (self.load_sigma * normal(&mut drift_rng)).exp())
                            .clamp(FACTOR_FLOOR, MAX_LOAD_FACTOR);
                        events.push(ChurnEvent {
                            at_s: t,
                            kind: ChurnKind::LoadDrift { stream, factor: *f },
                        });
                    }
                }
                t += self.drift_every_s;
            }
        }
        // Deterministic stable order: by time, then by an intrinsic kind
        // rank so equal-time events always serialize identically.
        events.sort_by(|a, b| {
            a.at_s
                .total_cmp(&b.at_s)
                .then_with(|| kind_rank(&a.kind).cmp(&kind_rank(&b.kind)))
        });
        ChurnTrace { events }
    }
}

/// Total order over kinds for equal-timestamp tie-breaks.
fn kind_rank(k: &ChurnKind) -> (u8, usize) {
    match *k {
        ChurnKind::DeviceDown { device } => (0, device),
        ChurnKind::DeviceUp { device } => (1, device),
        ChurnKind::LinkDrift { ap, .. } => (2, ap),
        ChurnKind::CapacityDrift { server, .. } => (3, server),
        ChurnKind::LoadDrift { stream, .. } => (4, stream),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ChurnTrace {
        ChurnProfile::default().plan(8, 2, 3, 8, 20.0)
    }

    #[test]
    fn generator_is_deterministic_and_sorted() {
        let a = sample_trace();
        let b = sample_trace();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for w in a.events.windows(2) {
            assert!(w[0].at_s <= w[1].at_s);
        }
    }

    #[test]
    fn factors_stay_in_range() {
        let t = sample_trace();
        for e in &t.events {
            match e.kind {
                ChurnKind::LinkDrift { factor, .. } | ChurnKind::CapacityDrift { factor, .. } => {
                    assert!((FACTOR_FLOOR..=1.0).contains(&factor), "{factor}");
                }
                ChurnKind::LoadDrift { factor, .. } => {
                    assert!((FACTOR_FLOOR..=MAX_LOAD_FACTOR).contains(&factor));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn text_roundtrip_is_bit_exact() {
        let t = sample_trace();
        let text = t.to_text();
        let back = ChurnTrace::from_text(&text).expect("parses");
        assert_eq!(t.events.len(), back.events.len());
        for (a, b) in t.events.iter().zip(&back.events) {
            assert_eq!(a.at_s.to_bits(), b.at_s.to_bits());
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn parser_rejects_garbage_and_skips_comments() {
        assert!(ChurnEvent::parse_line("# comment", 1).unwrap().is_none());
        assert!(ChurnEvent::parse_line("   ", 2).unwrap().is_none());
        assert!(ChurnEvent::parse_line("zzzz down 0", 3).is_err());
        assert!(ChurnEvent::parse_line("3ff0000000000000 flip 0", 4).is_err());
        assert!(ChurnEvent::parse_line("3ff0000000000000 down", 5).is_err());
        assert!(ChurnEvent::parse_line("3ff0000000000000 down 1 2", 6).is_err());
        let out_of_order = "3ff0000000000000 down 0\n3fe0000000000000 up 0\n";
        assert!(ChurnTrace::from_text(out_of_order).is_err());
    }

    #[test]
    fn seeds_change_the_trace() {
        let a = sample_trace();
        let b = ChurnProfile {
            seed: 99,
            ..ChurnProfile::default()
        }
        .plan(8, 2, 3, 8, 20.0);
        assert_ne!(a, b);
    }
}
