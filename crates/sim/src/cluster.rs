//! Topology of the heterogeneous edge: devices, access points, servers.

use crate::error::SimError;
use crate::net::LinkModel;
use scalpel_models::ProcessorSpec;
use serde::{Deserialize, Serialize};

/// An end device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Index within the cluster.
    pub id: usize,
    /// Compute capability.
    pub proc: ProcessorSpec,
    /// Access point this device uplinks through.
    pub ap: usize,
    /// Distance to its AP in meters.
    pub distance_m: f64,
}

/// A wireless access point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApSpec {
    /// Index within the cluster.
    pub id: usize,
    /// Total uplink spectrum in Hz, divided among devices by shares.
    pub bandwidth_hz: f64,
    /// Round-trip time AP ↔ edge servers, seconds.
    pub rtt_s: f64,
}

/// An edge server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Index within the cluster.
    pub id: usize,
    /// Compute capability (shared across streams by weighted PS).
    pub proc: ProcessorSpec,
}

/// The full topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    /// End devices.
    pub devices: Vec<DeviceSpec>,
    /// Access points.
    pub aps: Vec<ApSpec>,
    /// Edge servers.
    pub servers: Vec<ServerSpec>,
}

impl Cluster {
    /// Validate index integrity (device AP references, contiguous ids).
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |detail: String| SimError::InvalidTopology { detail };
        for (i, d) in self.devices.iter().enumerate() {
            if d.id != i {
                return Err(bad(format!("device {i} has id {}", d.id)));
            }
            if d.ap >= self.aps.len() {
                return Err(bad(format!("device {i} references missing AP {}", d.ap)));
            }
        }
        for (i, a) in self.aps.iter().enumerate() {
            if a.id != i {
                return Err(bad(format!("ap {i} has id {}", a.id)));
            }
            if a.bandwidth_hz <= 0.0 {
                return Err(bad(format!("ap {i} has non-positive bandwidth")));
            }
        }
        for (i, s) in self.servers.iter().enumerate() {
            if s.id != i {
                return Err(bad(format!("server {i} has id {}", s.id)));
            }
        }
        if self.devices.is_empty() {
            return Err(bad("cluster has no devices".into()));
        }
        Ok(())
    }

    /// The uplink model of one device.
    pub fn link(&self, device: usize) -> LinkModel {
        let d = &self.devices[device];
        let ap = &self.aps[d.ap];
        LinkModel::wifi(ap.bandwidth_hz, d.distance_m)
    }

    /// Ids of the devices attached to an AP.
    pub fn devices_on_ap(&self, ap: usize) -> Vec<usize> {
        self.devices
            .iter()
            .filter(|d| d.ap == ap)
            .map(|d| d.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalpel_models::ProcessorClass;

    fn small_cluster() -> Cluster {
        Cluster {
            devices: vec![
                DeviceSpec {
                    id: 0,
                    proc: ProcessorClass::RaspberryPi4.spec(),
                    ap: 0,
                    distance_m: 30.0,
                },
                DeviceSpec {
                    id: 1,
                    proc: ProcessorClass::JetsonNano.spec(),
                    ap: 0,
                    distance_m: 60.0,
                },
            ],
            aps: vec![ApSpec {
                id: 0,
                bandwidth_hz: 20e6,
                rtt_s: 2e-3,
            }],
            servers: vec![ServerSpec {
                id: 0,
                proc: ProcessorClass::EdgeGpuT4.spec(),
            }],
        }
    }

    #[test]
    fn valid_cluster_passes() {
        assert!(small_cluster().validate().is_ok());
    }

    #[test]
    fn bad_ap_reference_fails() {
        let mut c = small_cluster();
        c.devices[1].ap = 9;
        assert!(c.validate().is_err());
    }

    #[test]
    fn misnumbered_ids_fail() {
        let mut c = small_cluster();
        c.servers[0].id = 5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn empty_devices_fail() {
        let mut c = small_cluster();
        c.devices.clear();
        assert!(c.validate().is_err());
    }

    #[test]
    fn link_uses_ap_bandwidth_and_distance() {
        let c = small_cluster();
        let l = c.link(1);
        assert_eq!(l.bandwidth_hz, 20e6);
        assert_eq!(l.distance_m, 60.0);
    }

    #[test]
    fn devices_on_ap_lists_members() {
        let c = small_cluster();
        assert_eq!(c.devices_on_ap(0), vec![0, 1]);
    }
}
