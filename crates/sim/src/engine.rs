//! Generic discrete-event queue with cancellation and compaction.
//!
//! A 4-ary min-heap keyed on `(time, sequence)`: events at equal
//! timestamps pop in insertion order, which makes simulations
//! deterministic without requiring `Ord` on the event payload. Payloads
//! live in a slot slab addressed by index, so heap entries are small
//! `Copy` records and sift operations never move event bodies.
//!
//! [`EventQueue::schedule`] returns an [`EventKey`] that can later be
//! passed to [`EventQueue::cancel`]. Cancelled entries become tombstones
//! in the heap; the queue tracks its tombstone ratio and compacts in
//! place once stale entries exceed half the heap (see
//! [`EventQueue::cancel`]), so superseded timers never accumulate.
//!
//! Time semantics are pinned for reproducibility: popping a tombstone
//! still advances `now` to its timestamp, and draining the queue leaves
//! `now` at the maximum time ever scheduled — exactly where the pre-slab
//! queue (which popped every stale entry) would have left it.

use crate::time::SimTime;

const NIL: u32 = u32::MAX;

/// Handle to a scheduled event, returned by [`EventQueue::schedule`].
///
/// Keys are stamped: once the event fires or is cancelled, the key goes
/// stale and further [`EventQueue::cancel`] calls with it are no-ops.
/// `EventKey::NONE` is a key that never matches anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventKey {
    slot: u32,
    stamp: u32,
}

impl EventKey {
    /// A key that refers to no event; cancelling it is a no-op.
    pub const NONE: EventKey = EventKey {
        slot: NIL,
        stamp: 0,
    };
}

impl Default for EventKey {
    fn default() -> Self {
        EventKey::NONE
    }
}

/// Heap entry: 24 bytes, `Copy`, totally ordered by `(at, seq)` so pop
/// order is independent of heap shape or arity.
#[derive(Clone, Copy)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
    stamp: u32,
}

impl Entry {
    #[inline]
    fn before(&self, other: &Entry) -> bool {
        (self.at, self.seq) < (other.at, other.seq)
    }
}

struct Slot<E> {
    event: Option<E>,
    stamp: u32,
}

/// A future-event list with FIFO tie-breaking, O(1) cancellation, and
/// tombstone compaction.
pub struct EventQueue<E> {
    heap: Vec<Entry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    seq: u64,
    now: SimTime,
    /// Maximum (clamped) time ever scheduled; `now` lands here on drain.
    max_at: SimTime,
    /// Tombstones currently sitting in the heap.
    stale: usize,
    scheduled: u64,
    delivered: u64,
    cancelled: u64,
    compactions: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            max_at: SimTime::ZERO,
            stale: 0,
            scheduled: 0,
            delivered: 0,
            cancelled: 0,
            compactions: 0,
        }
    }

    /// Reset to the empty state at time zero, keeping allocations.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
        self.seq = 0;
        self.now = SimTime::ZERO;
        self.max_at = SimTime::ZERO;
        self.stale = 0;
        self.scheduled = 0;
        self.delivered = 0;
        self.cancelled = 0;
        self.compactions = 0;
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.stale
    }

    /// Whether no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime count of `schedule` calls.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Lifetime count of events delivered by `pop`.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Lifetime count of successful cancellations.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Number of tombstone compaction passes performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error and panics in debug builds; in release it is clamped to
    /// `now` (the event fires immediately, preserving causality). Returns
    /// a key usable with [`cancel`](Self::cancel) until the event fires.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventKey {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        self.max_at = self.max_at.max(at);
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].event = Some(event);
                s
            }
            None => {
                self.slots.push(Slot {
                    event: Some(event),
                    stamp: 0,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let stamp = self.slots[slot as usize].stamp;
        self.heap.push(Entry {
            at,
            seq: self.seq,
            slot,
            stamp,
        });
        self.seq += 1;
        self.scheduled += 1;
        self.sift_up(self.heap.len() - 1);
        EventKey { slot, stamp }
    }

    /// Schedule `event` after `delay_s` seconds of simulated time.
    pub fn schedule_in(&mut self, delay_s: f64, event: E) -> EventKey {
        let at = self.now.after_secs(delay_s);
        self.schedule(at, event)
    }

    /// Cancel a previously scheduled event. Returns `true` if the key was
    /// still live. The heap entry becomes a tombstone; once tombstones
    /// reach half the heap (and the heap is non-trivial) the queue
    /// compacts in place, which preserves pop order because entries are
    /// totally ordered by `(at, seq)`.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if key.slot == NIL {
            return false;
        }
        let slot = &mut self.slots[key.slot as usize];
        if slot.stamp != key.stamp || slot.event.is_none() {
            return false;
        }
        slot.event = None;
        slot.stamp = slot.stamp.wrapping_add(1);
        self.free.push(key.slot);
        self.stale += 1;
        self.cancelled += 1;
        if self.stale >= 64 && self.stale * 2 >= self.heap.len() {
            self.compact();
        }
        true
    }

    /// Drop every tombstone from the heap and re-heapify. O(n).
    fn compact(&mut self) {
        let slots = &self.slots;
        self.heap
            .retain(|e| slots[e.slot as usize].stamp == e.stamp);
        self.stale = 0;
        // Floyd heap construction: sift down from the last parent.
        let n = self.heap.len();
        if n > 1 {
            for i in (0..=(n - 2) / 4).rev() {
                self.sift_down(i);
            }
        }
        self.compactions += 1;
    }

    /// Pop the next live event, advancing `now`. `None` when drained.
    ///
    /// Tombstones encountered on the way still advance `now` to their
    /// timestamps, and draining leaves `now` at the maximum scheduled
    /// time — matching the legacy queue, where stale entries were popped
    /// (advancing the clock) and discarded by the caller.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.pop_entry() {
            debug_assert!(entry.at >= self.now, "time went backwards");
            self.now = entry.at;
            let slot = &mut self.slots[entry.slot as usize];
            if slot.stamp != entry.stamp {
                continue; // tombstone: clock advanced, payload long gone
            }
            let event = slot.event.take().expect("live entry has a payload");
            slot.stamp = slot.stamp.wrapping_add(1);
            self.free.push(entry.slot);
            self.delivered += 1;
            return Some((entry.at, event));
        }
        // Drained: land the clock where the legacy queue would have.
        self.now = self.now.max(self.max_at);
        None
    }

    /// Peek at the next entry's time without popping. Tombstones count:
    /// this is the earliest timestamp the clock could advance to.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    fn pop_entry(&mut self) -> Option<Entry> {
        let n = self.heap.len();
        if n == 0 {
            return None;
        }
        let top = self.heap.swap_remove(0);
        if self.slots[top.slot as usize].stamp != top.stamp {
            self.stale -= 1;
        }
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.heap[parent].before(&entry) {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = entry;
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        let entry = self.heap[i];
        loop {
            let first = 4 * i + 1;
            if first >= n {
                break;
            }
            let mut best = first;
            let last = (first + 4).min(n);
            for c in first + 1..last {
                if self.heap[c].before(&self.heap[best]) {
                    best = c;
                }
            }
            if entry.before(&self.heap[best]) {
                break;
            }
            self.heap[i] = self.heap[best];
            i = best;
        }
        self.heap[i] = entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(1.0, ());
        q.schedule_in(2.0, ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs_f64(1.0));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs_f64(2.0));
        assert!(q.is_empty());
    }

    #[test]
    fn relative_scheduling_stacks_on_now() {
        let mut q = EventQueue::new();
        q.schedule_in(1.0, "first");
        q.pop();
        q.schedule_in(0.5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs_f64(1.5));
    }

    #[test]
    fn next_time_peeks() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(q.len(), 1);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn past_scheduling_clamps_in_release() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), "a");
        q.pop();
        q.schedule(SimTime::from_nanos(50), "late");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "late");
        assert_eq!(t, SimTime::from_nanos(100));
    }

    #[test]
    fn cancel_removes_an_event_and_goes_stale() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "second cancel of the same key is a no-op");
        assert_eq!(q.len(), 1);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["b"]);
    }

    #[test]
    fn cancel_after_fire_is_a_no_op_even_with_slot_reuse() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        // "b" reuses a's slot; the stale key must not kill it.
        q.schedule(SimTime::from_nanos(2), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn cancelled_entries_still_advance_the_clock() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        q.cancel(a);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_nanos(20), "b"));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime::from_nanos(20));
    }

    #[test]
    fn drain_lands_now_on_max_scheduled_even_after_cancellation() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a");
        let late = q.schedule(SimTime::from_nanos(99), "late");
        q.cancel(late);
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert!(q.pop().is_none());
        // The legacy queue would have popped the stale entry at t=99.
        assert_eq!(q.now(), SimTime::from_nanos(99));
    }

    #[test]
    fn compaction_preserves_pop_order() {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for i in 0..400u64 {
            keys.push(q.schedule(SimTime::from_nanos(1000 - i), i));
        }
        // Cancel the odd-indexed events: enough to trip the threshold.
        for (i, k) in keys.iter().enumerate() {
            if i % 2 == 1 {
                q.cancel(*k);
            }
        }
        assert!(q.compactions() > 0, "threshold should have fired");
        assert_eq!(q.len(), 200);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expected: Vec<u64> = (0..400).rev().filter(|i| i % 2 == 0).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn reset_clears_state_and_counters() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_nanos(5), 1);
        q.cancel(k);
        q.schedule(SimTime::from_nanos(7), 2);
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.scheduled(), 0);
        assert_eq!(q.delivered(), 0);
        assert_eq!(q.cancelled(), 0);
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime::ZERO, "max_at must reset too");
    }
}
