//! Generic discrete-event queue.
//!
//! A binary heap keyed on `(time, sequence)`: events at equal timestamps
//! pop in insertion order, which makes simulations deterministic without
//! requiring `Ord` on the event payload.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error and panics in debug builds; in release it is clamped to
    /// `now` (the event fires immediately, preserving causality).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` after `delay_s` seconds of simulated time.
    pub fn schedule_in(&mut self, delay_s: f64, event: E) {
        let at = self.now.after_secs(delay_s);
        self.schedule(at, event);
    }

    /// Pop the next event, advancing `now`. `None` when drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.at >= self.now, "time went backwards");
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Peek at the next event time without popping.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(1.0, ());
        q.schedule_in(2.0, ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs_f64(1.0));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs_f64(2.0));
        assert!(q.is_empty());
    }

    #[test]
    fn relative_scheduling_stacks_on_now() {
        let mut q = EventQueue::new();
        q.schedule_in(1.0, "first");
        q.pop();
        q.schedule_in(0.5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs_f64(1.5));
    }

    #[test]
    fn next_time_peeks() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(q.len(), 1);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn past_scheduling_clamps_in_release() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), "a");
        q.pop();
        q.schedule(SimTime::from_nanos(50), "late");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "late");
        assert_eq!(t, SimTime::from_nanos(100));
    }
}
