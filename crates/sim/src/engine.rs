//! Generic discrete-event queue with cancellation, built on a timing
//! wheel.
//!
//! Events land in fixed-width time buckets (65.536 µs each, 4096
//! buckets ≈ 268 ms of look-ahead); anything beyond the current window
//! waits in an overflow list and is swept in when the wheel rotates.
//! Scheduling is O(1): compute the bucket index and push. Popping scans
//! an occupancy bitmap for the next non-empty bucket (64 buckets per
//! word) and extracts that bucket's minimum `(time, sequence)` entry,
//! so delivery order is *exactly* total order by `(at, seq)` — events
//! at equal timestamps pop in insertion order, which keeps simulations
//! deterministic without requiring `Ord` on the payload. Buckets hold
//! O(1) entries at typical event densities; the per-pop min-scan is
//! linear in bucket occupancy, so pathologically bursty schedules (many
//! thousands of events inside one 65 µs bucket) degrade to the naive
//! sorted-list cost within that bucket only.
//!
//! Payloads are `Copy` and stored inline in bucket entries — a pop or
//! push touches only the bucket vector, no side slab. Cancellable
//! events additionally carry a `(slot, stamp)` ticket into a stamp slab
//! so a cancelled entry can be recognized (and skipped) when the wheel
//! reaches it: [`EventQueue::schedule`] returns an [`EventKey`] for
//! [`EventQueue::cancel`], while [`EventQueue::post`] is the
//! fire-and-forget variant that skips the slab entirely. Cancelled
//! entries become tombstones that are swept, in time order, as the
//! cursor passes them — they occupy memory only until their timestamp.
//!
//! Time semantics are pinned for reproducibility: popping a tombstone
//! still advances `now` to its timestamp, and draining the queue leaves
//! `now` at the maximum time ever scheduled — exactly where the old
//! pop-every-stale-entry heap would have left it.

use crate::time::SimTime;

const NIL: u32 = u32::MAX;

/// log2 of the bucket width in nanoseconds: 2^16 ns ≈ 65.5 µs.
const SHIFT: u32 = 16;
/// Buckets per window (power of two). 4096 × 65.5 µs ≈ 268 ms.
const NB: usize = 4096;
/// Window span in nanoseconds.
const SPAN: u64 = (NB as u64) << SHIFT;
/// Occupancy-bitmap words (64 buckets per word).
const WORDS: usize = NB / 64;
/// Mask that aligns a nanosecond count down to a bucket boundary.
const ALIGN: u64 = !((1u64 << SHIFT) - 1);

/// Handle to a scheduled event, returned by [`EventQueue::schedule`].
///
/// Keys are stamped: once the event fires or is cancelled, the key goes
/// stale and further [`EventQueue::cancel`] calls with it are no-ops.
/// `EventKey::NONE` is a key that never matches anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventKey {
    slot: u32,
    stamp: u32,
}

impl EventKey {
    /// A key that refers to no event; cancelling it is a no-op.
    pub const NONE: EventKey = EventKey {
        slot: NIL,
        stamp: 0,
    };
}

impl Default for EventKey {
    fn default() -> Self {
        EventKey::NONE
    }
}

/// Bucket entry, `Copy`, totally ordered by `(at, seq)`. The payload
/// rides inline; `slot == NIL` marks a fire-and-forget entry with no
/// cancellation ticket.
#[derive(Clone, Copy)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    stamp: u32,
    event: E,
}

/// A future-event list with FIFO tie-breaking, O(1) scheduling and
/// cancellation, and amortized-O(1) pops.
pub struct EventQueue<E> {
    /// The wheel: `buckets[b]` holds (unsorted) entries whose timestamp
    /// falls in `[window_start + b·width, window_start + (b+1)·width)`.
    buckets: Vec<Vec<Entry<E>>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Entries at or beyond the window end, unsorted; re-bucketed when
    /// the wheel rotates.
    overflow: Vec<Entry<E>>,
    /// Nanosecond time of bucket 0, aligned to a bucket boundary.
    window_start: u64,
    /// Lowest bucket index that may still be non-empty; buckets before
    /// the cursor are empty by construction (events cannot be scheduled
    /// before `now`, and `now` is inside the cursor's bucket).
    cursor: usize,
    /// Stamp slab for cancellable entries; an entry is live iff its
    /// stamp matches its slot's.
    stamps: Vec<u32>,
    free: Vec<u32>,
    seq: u64,
    now: SimTime,
    /// Maximum (clamped) time ever scheduled; `now` lands here on drain.
    max_at: SimTime,
    /// Pending non-cancelled entries (tombstones excluded).
    live: usize,
    scheduled: u64,
    delivered: u64,
    cancelled: u64,
    rotations: u64,
}

impl<E: Copy> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Copy> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            buckets: vec![Vec::new(); NB],
            occupied: [0; WORDS],
            overflow: Vec::new(),
            window_start: 0,
            cursor: 0,
            stamps: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            max_at: SimTime::ZERO,
            live: 0,
            scheduled: 0,
            delivered: 0,
            cancelled: 0,
            rotations: 0,
        }
    }

    /// Reset to the empty state at time zero, keeping allocations.
    pub fn reset(&mut self) {
        for w in 0..WORDS {
            let mut word = self.occupied[w];
            while word != 0 {
                let b = (w << 6) + word.trailing_zeros() as usize;
                self.buckets[b].clear();
                word &= word - 1;
            }
            self.occupied[w] = 0;
        }
        self.overflow.clear();
        self.window_start = 0;
        self.cursor = 0;
        self.stamps.clear();
        self.free.clear();
        self.seq = 0;
        self.now = SimTime::ZERO;
        self.max_at = SimTime::ZERO;
        self.live = 0;
        self.scheduled = 0;
        self.delivered = 0;
        self.cancelled = 0;
        self.rotations = 0;
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Lifetime count of `schedule`/`post` calls.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Lifetime count of events delivered by `pop`.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Lifetime count of successful cancellations.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Number of wheel rotations (overflow sweeps) performed.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    #[inline]
    fn push_entry(&mut self, at: SimTime, slot: u32, stamp: u32, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        self.max_at = self.max_at.max(at);
        let entry = Entry {
            at,
            seq: self.seq,
            slot,
            stamp,
            event,
        };
        self.seq += 1;
        self.scheduled += 1;
        self.live += 1;
        // `at ≥ now ≥ window_start` between pops (pop re-establishes it),
        // so the offset cannot underflow.
        let off = at.as_nanos() - self.window_start;
        if off < SPAN {
            let b = (off >> SHIFT) as usize;
            debug_assert!(b >= self.cursor, "scheduled behind the cursor");
            self.buckets[b].push(entry);
            self.occupied[b >> 6] |= 1 << (b & 63);
        } else {
            self.overflow.push(entry);
        }
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error and panics in debug builds; in release it is clamped to
    /// `now` (the event fires immediately, preserving causality). Returns
    /// a key usable with [`cancel`](Self::cancel) until the event fires.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventKey {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.stamps.push(0);
                (self.stamps.len() - 1) as u32
            }
        };
        let stamp = self.stamps[slot as usize];
        self.push_entry(at, slot, stamp, event);
        EventKey { slot, stamp }
    }

    /// Fire-and-forget scheduling: same ordering semantics as
    /// [`schedule`](Self::schedule) but no cancellation ticket is
    /// allocated.
    pub fn post(&mut self, at: SimTime, event: E) {
        self.push_entry(at, NIL, 0, event);
    }

    /// Schedule `event` after `delay_s` seconds of simulated time.
    pub fn schedule_in(&mut self, delay_s: f64, event: E) -> EventKey {
        let at = self.now.after_secs(delay_s);
        self.schedule(at, event)
    }

    /// Cancel a previously scheduled event. Returns `true` if the key was
    /// still live. The entry becomes a tombstone that the wheel sweeps
    /// (advancing the clock, delivering nothing) when its time comes.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if key.slot == NIL {
            return false;
        }
        let stamp = &mut self.stamps[key.slot as usize];
        if *stamp != key.stamp {
            return false;
        }
        *stamp = stamp.wrapping_add(1);
        self.free.push(key.slot);
        self.live -= 1;
        self.cancelled += 1;
        true
    }

    /// First non-empty bucket at or after the cursor, via the bitmap.
    #[inline]
    fn next_occupied(&self) -> Option<usize> {
        let mut w = self.cursor >> 6;
        let mut word = self.occupied[w] & (!0u64 << (self.cursor & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w == WORDS {
                return None;
            }
            word = self.occupied[w];
        }
    }

    /// Advance the window to the earliest pending overflow entry and
    /// re-bucket everything that now falls inside it. Only called when
    /// every bucket has been swept clean, so jumping the window forward
    /// cannot strand an in-window entry. `now` stays put — the very next
    /// delivery (or tombstone sweep) moves it to a timestamp at or past
    /// the new window start, before control returns to code that could
    /// schedule again.
    fn rotate(&mut self) {
        debug_assert!(!self.overflow.is_empty(), "rotating an empty wheel");
        let mut min = u64::MAX;
        for e in &self.overflow {
            min = min.min(e.at.as_nanos());
        }
        self.window_start = min & ALIGN;
        self.cursor = 0;
        self.rotations += 1;
        let ws = self.window_start;
        let mut i = 0;
        while i < self.overflow.len() {
            let off = self.overflow[i].at.as_nanos() - ws;
            if off < SPAN {
                let e = self.overflow.swap_remove(i);
                let b = (off >> SHIFT) as usize;
                self.buckets[b].push(e);
                self.occupied[b >> 6] |= 1 << (b & 63);
            } else {
                i += 1;
            }
        }
    }

    /// Drop every remaining tombstone and realign the (empty) wheel to
    /// `now`, so the next schedule starts from a clean window.
    fn purge(&mut self) {
        for w in 0..WORDS {
            let mut word = self.occupied[w];
            while word != 0 {
                let b = (w << 6) + word.trailing_zeros() as usize;
                self.buckets[b].clear();
                word &= word - 1;
            }
            self.occupied[w] = 0;
        }
        self.overflow.clear();
        self.window_start = self.now.as_nanos() & ALIGN;
        self.cursor = 0;
    }

    /// Pop the next live event, advancing `now`. `None` when drained.
    ///
    /// Tombstones encountered on the way still advance `now` to their
    /// timestamps, and draining leaves `now` at the maximum scheduled
    /// time — matching the legacy queue, where stale entries were popped
    /// (advancing the clock) and discarded by the caller.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if self.live == 0 {
                // Drained: land the clock where the legacy queue would
                // have after popping the trailing tombstones.
                self.now = self.now.max(self.max_at);
                self.purge();
                return None;
            }
            let Some(b) = self.next_occupied() else {
                self.rotate();
                continue;
            };
            self.cursor = b;
            let bucket = &mut self.buckets[b];
            // The bucket's minimum (at, seq) is the global minimum:
            // earlier buckets are empty and later ones hold later times.
            let mut mi = 0;
            for i in 1..bucket.len() {
                if (bucket[i].at, bucket[i].seq) < (bucket[mi].at, bucket[mi].seq) {
                    mi = i;
                }
            }
            let entry = bucket.swap_remove(mi);
            if bucket.is_empty() {
                self.occupied[b >> 6] &= !(1 << (b & 63));
            }
            debug_assert!(entry.at >= self.now, "time went backwards");
            self.now = entry.at;
            if entry.slot != NIL {
                let stamp = &mut self.stamps[entry.slot as usize];
                if *stamp != entry.stamp {
                    continue; // tombstone: clock advanced, payload long gone
                }
                *stamp = stamp.wrapping_add(1);
                self.free.push(entry.slot);
            }
            self.live -= 1;
            self.delivered += 1;
            return Some((entry.at, entry.event));
        }
    }

    /// Peek at the next entry's time without popping. Tombstones count:
    /// this is the earliest timestamp the clock could advance to.
    pub fn next_time(&self) -> Option<SimTime> {
        if let Some(b) = self.next_occupied() {
            // Min over one bucket: entries in later buckets are later.
            return self.buckets[b].iter().map(|e| e.at).min();
        }
        self.overflow.iter().map(|e| e.at).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn posted_events_interleave_with_scheduled_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.schedule(t, 0);
        q.post(t, 1);
        q.schedule(t, 2);
        q.post(t, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn order_holds_across_buckets_and_windows() {
        // Spread entries well past one 268 ms window so both the bucket
        // walk and the overflow rotation paths are exercised.
        let mut q = EventQueue::new();
        let step = 1_000_000u64; // 1 ms: distinct buckets
        for i in 0..1000u64 {
            // Insertion order deliberately scrambled relative to time.
            let t = (997 * i) % 1000;
            q.schedule(SimTime::from_nanos(t * step), t);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..1000).collect::<Vec<_>>());
        assert!(q.rotations() > 0, "1 s of spread must rotate the wheel");
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(1.0, ());
        q.schedule_in(2.0, ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs_f64(1.0));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs_f64(2.0));
        assert!(q.is_empty());
    }

    #[test]
    fn relative_scheduling_stacks_on_now() {
        let mut q = EventQueue::new();
        q.schedule_in(1.0, "first");
        q.pop();
        q.schedule_in(0.5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs_f64(1.5));
    }

    #[test]
    fn next_time_peeks() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(q.len(), 1);
        // Far-future (overflow) entries are visible to peeks too.
        q.pop();
        q.schedule(SimTime::from_secs_f64(5.0), ());
        assert_eq!(q.next_time(), Some(SimTime::from_secs_f64(5.0)));
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn past_scheduling_clamps_in_release() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), "a");
        q.pop();
        q.schedule(SimTime::from_nanos(50), "late");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "late");
        assert_eq!(t, SimTime::from_nanos(100));
    }

    #[test]
    fn cancel_removes_an_event_and_goes_stale() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "second cancel of the same key is a no-op");
        assert_eq!(q.len(), 1);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["b"]);
    }

    #[test]
    fn cancel_after_fire_is_a_no_op_even_with_slot_reuse() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        // "b" reuses a's slot; the stale key must not kill it.
        q.schedule(SimTime::from_nanos(2), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn cancelled_entries_still_advance_the_clock() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        q.cancel(a);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_nanos(20), "b"));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime::from_nanos(20));
    }

    #[test]
    fn drain_lands_now_on_max_scheduled_even_after_cancellation() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a");
        let late = q.schedule(SimTime::from_nanos(99), "late");
        q.cancel(late);
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert!(q.pop().is_none());
        // The legacy queue would have popped the stale entry at t=99.
        assert_eq!(q.now(), SimTime::from_nanos(99));
    }

    #[test]
    fn heavy_cancellation_leaves_survivors_in_order() {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for i in 0..400u64 {
            keys.push(q.schedule(SimTime::from_nanos(1000 - i), i));
        }
        for (i, k) in keys.iter().enumerate() {
            if i % 2 == 1 {
                q.cancel(*k);
            }
        }
        assert_eq!(q.len(), 200);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expected: Vec<u64> = (0..400).rev().filter(|i| i % 2 == 0).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn queue_is_reusable_after_drain() {
        // Tombstones left behind at drain time must not haunt the next
        // use of the same queue (the wheel purges and realigns on drain).
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_secs_f64(1.0), "stale");
        q.schedule(SimTime::from_secs_f64(2.0), "x");
        q.cancel(k);
        assert_eq!(q.pop().map(|(_, e)| e), Some("x"));
        assert!(q.pop().is_none());
        q.schedule_in(1.0, "fresh");
        assert_eq!(q.pop().map(|(_, e)| e), Some("fresh"));
        assert_eq!(q.now(), SimTime::from_secs_f64(3.0));
    }

    #[test]
    fn reset_clears_state_and_counters() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_nanos(5), 1);
        q.cancel(k);
        q.schedule(SimTime::from_nanos(7), 2);
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.scheduled(), 0);
        assert_eq!(q.delivered(), 0);
        assert_eq!(q.cancelled(), 0);
        assert_eq!(q.rotations(), 0);
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime::ZERO, "max_at must reset too");
    }
}
