//! Typed simulation-input errors.
//!
//! Fault plans and recovery policies are validated before a run starts;
//! [`SimError`] names each way that validation can fail so callers can
//! match on the cause instead of parsing strings. The blanket
//! `From<SimError> for String` keeps the simulator's `Result<_, String>`
//! construction paths working unchanged.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Why a fault plan or recovery configuration was rejected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimError {
    /// A fault event targets a device index outside the cluster.
    MissingDevice {
        /// The referenced device index.
        device: usize,
    },
    /// A fault event targets an AP index outside the cluster.
    MissingAp {
        /// The referenced AP index.
        ap: usize,
    },
    /// A fault event targets a server index outside the cluster.
    MissingServer {
        /// The referenced server index.
        server: usize,
    },
    /// A degradation/throttle factor lies outside `(0, 1]`.
    FactorOutOfRange {
        /// The offending factor.
        factor: f64,
    },
    /// A fault event carries a negative or non-finite injection time.
    InvalidEventTime {
        /// Position of the event in the plan.
        index: usize,
        /// The offending time, seconds.
        at_s: f64,
    },
    /// A fault event failed validation; wraps the underlying cause.
    InvalidEvent {
        /// Position of the event in the plan.
        index: usize,
        /// What was wrong with it.
        source: Box<SimError>,
    },
    /// A recovery policy parameter is out of range.
    InvalidRecovery {
        /// Human-readable description of the offending knob.
        detail: String,
    },
    /// The cluster topology is inconsistent.
    InvalidTopology {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A compiled stream failed validation.
    InvalidStream {
        /// The offending stream's index.
        stream: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// Simulation-level configuration is inconsistent.
    InvalidConfig {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// An arrival process carries out-of-range parameters.
    InvalidArrival {
        /// Human-readable description of the offending parameter.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingDevice { device } => {
                write!(f, "fault references missing device {device}")
            }
            SimError::MissingAp { ap } => write!(f, "fault references missing AP {ap}"),
            SimError::MissingServer { server } => {
                write!(f, "fault references missing server {server}")
            }
            SimError::FactorOutOfRange { factor } => {
                write!(f, "fault factor {factor} outside (0, 1]")
            }
            SimError::InvalidEventTime { index, at_s } => {
                write!(f, "fault event {index} has invalid time {at_s}")
            }
            SimError::InvalidEvent { index, source } => {
                write!(f, "fault event {index}: {source}")
            }
            SimError::InvalidRecovery { detail } => {
                write!(f, "invalid recovery config: {detail}")
            }
            SimError::InvalidTopology { detail } => {
                write!(f, "invalid topology: {detail}")
            }
            SimError::InvalidStream { stream, detail } => {
                write!(f, "stream {stream}: {detail}")
            }
            SimError::InvalidConfig { detail } => {
                write!(f, "invalid sim config: {detail}")
            }
            SimError::InvalidArrival { detail } => {
                write!(f, "invalid arrival process: {detail}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidEvent { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<SimError> for String {
    fn from(e: SimError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_messages() {
        assert_eq!(
            SimError::MissingDevice { device: 7 }.to_string(),
            "fault references missing device 7"
        );
        assert_eq!(
            SimError::FactorOutOfRange { factor: 1.5 }.to_string(),
            "fault factor 1.5 outside (0, 1]"
        );
        let wrapped = SimError::InvalidEvent {
            index: 3,
            source: Box::new(SimError::MissingAp { ap: 9 }),
        };
        assert_eq!(
            wrapped.to_string(),
            "fault event 3: fault references missing AP 9"
        );
    }

    #[test]
    fn error_trait_exposes_the_cause_chain() {
        let wrapped = SimError::InvalidEvent {
            index: 0,
            source: Box::new(SimError::MissingServer { server: 2 }),
        };
        let src = wrapped.source().expect("wrapped events carry a source");
        assert_eq!(src.to_string(), "fault references missing server 2");
        assert!(SimError::MissingDevice { device: 0 }.source().is_none());
    }

    #[test]
    fn converts_into_string_for_legacy_callers() {
        let s: String = SimError::InvalidEventTime {
            index: 1,
            at_s: -2.0,
        }
        .into();
        assert_eq!(s, "fault event 1 has invalid time -2");
    }

    #[test]
    fn construction_variants_display_their_context() {
        assert_eq!(
            SimError::InvalidTopology {
                detail: "cluster has no devices".into()
            }
            .to_string(),
            "invalid topology: cluster has no devices"
        );
        assert_eq!(
            SimError::InvalidStream {
                stream: 4,
                detail: "references missing server 9".into()
            }
            .to_string(),
            "stream 4: references missing server 9"
        );
        assert_eq!(
            SimError::InvalidConfig {
                detail: "horizon must exceed warmup".into()
            }
            .to_string(),
            "invalid sim config: horizon must exceed warmup"
        );
        assert_eq!(
            SimError::InvalidArrival {
                detail: "trace has no gaps".into()
            }
            .to_string(),
            "invalid arrival process: trace has no gaps"
        );
    }
}
