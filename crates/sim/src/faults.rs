//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a schedule of disruptions — device churn, AP radio
//! outages, link-bandwidth collapses, server compute throttling — that the
//! simulator executes as first-class events alongside arrivals and
//! completions. Everything is a pure function of its seeds: a plan can be
//! written out explicitly or generated from a [`FaultProfile`], and the
//! same `(scenario seed, sim seed, fault plan)` triple always reproduces
//! the same run bit-for-bit.
//!
//! Semantics (see DESIGN.md §"Fault model" for the rationale):
//!
//! - **Device down** — the device powers off. Requests queued or computing
//!   on it are *stranded* (counted, never silently dropped), its arrival
//!   process stops, and data waiting on its uplink is lost. Requests its
//!   streams already handed to an edge server still complete there.
//!   **Device up** resumes the arrival processes.
//! - **AP down** — the radio goes dark. In-flight transmissions are
//!   re-queued (the data survives on the device) and uplinks stall until
//!   **AP up**, when transmission restarts with a fresh fading draw.
//! - **Link degrade** — the effective uplink rate of every device on the
//!   AP collapses to `factor` of nominal (interference, rain fade);
//!   transmissions already in the air are unaffected. **Link restore**
//!   returns to nominal.
//! - **Server throttle** — the server's processor-sharing capacity drops
//!   to `factor` of nominal (thermal throttling, co-tenant pressure);
//!   in-progress work continues at the degraded rate. **Server restore**
//!   returns to full capacity.

use crate::cluster::Cluster;
use crate::error::SimError;
use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Broad class of an injectable fault — the aggregation key for the
/// robustness metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// Devices leaving and rejoining.
    DeviceChurn,
    /// Access-point radio outages.
    ApOutage,
    /// Sustained uplink-bandwidth degradation.
    LinkDegradation,
    /// Edge-server capacity throttling.
    ComputeThrottle,
}

impl FaultClass {
    /// Every class, in metrics order.
    pub const ALL: &'static [FaultClass] = &[
        FaultClass::DeviceChurn,
        FaultClass::ApOutage,
        FaultClass::LinkDegradation,
        FaultClass::ComputeThrottle,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::DeviceChurn => "device-churn",
            FaultClass::ApOutage => "ap-outage",
            FaultClass::LinkDegradation => "link-degradation",
            FaultClass::ComputeThrottle => "compute-throttle",
        }
    }

    /// Position in [`FaultClass::ALL`] (for per-class accumulators).
    pub fn index(self) -> usize {
        match self {
            FaultClass::DeviceChurn => 0,
            FaultClass::ApOutage => 1,
            FaultClass::LinkDegradation => 2,
            FaultClass::ComputeThrottle => 3,
        }
    }
}

/// One injectable state change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Device powers off: its queued/computing/waiting-to-transmit
    /// requests are stranded and its arrivals stop.
    DeviceDown {
        /// Device index.
        device: usize,
    },
    /// Device returns; arrival processes resume.
    DeviceUp {
        /// Device index.
        device: usize,
    },
    /// AP radio outage: uplinks through it stall (in-flight transmissions
    /// are re-queued, not lost).
    ApDown {
        /// Access-point index.
        ap: usize,
    },
    /// AP radio recovers; stalled uplinks restart.
    ApUp {
        /// Access-point index.
        ap: usize,
    },
    /// Effective uplink rate on the AP collapses to `factor` of nominal.
    LinkDegrade {
        /// Access-point index.
        ap: usize,
        /// Remaining fraction of the nominal rate, in `(0, 1]`.
        factor: f64,
    },
    /// Uplink rate on the AP returns to nominal.
    LinkRestore {
        /// Access-point index.
        ap: usize,
    },
    /// Server processor-sharing capacity drops to `factor` of nominal.
    ServerThrottle {
        /// Server index.
        server: usize,
        /// Remaining fraction of nominal capacity, in `(0, 1]`.
        factor: f64,
    },
    /// Server capacity returns to nominal.
    ServerRestore {
        /// Server index.
        server: usize,
    },
}

impl FaultKind {
    /// The class this event belongs to.
    pub fn class(&self) -> FaultClass {
        match self {
            FaultKind::DeviceDown { .. } | FaultKind::DeviceUp { .. } => FaultClass::DeviceChurn,
            FaultKind::ApDown { .. } | FaultKind::ApUp { .. } => FaultClass::ApOutage,
            FaultKind::LinkDegrade { .. } | FaultKind::LinkRestore { .. } => {
                FaultClass::LinkDegradation
            }
            FaultKind::ServerThrottle { .. } | FaultKind::ServerRestore { .. } => {
                FaultClass::ComputeThrottle
            }
        }
    }

    /// Check target indices and factors against a topology.
    pub fn validate(&self, cluster: &Cluster) -> Result<(), SimError> {
        let check_factor = |f: f64| -> Result<(), SimError> {
            if !f.is_finite() || f <= 0.0 || f > 1.0 {
                return Err(SimError::FactorOutOfRange { factor: f });
            }
            Ok(())
        };
        match *self {
            FaultKind::DeviceDown { device } | FaultKind::DeviceUp { device } => {
                if device >= cluster.devices.len() {
                    return Err(SimError::MissingDevice { device });
                }
            }
            FaultKind::ApDown { ap } | FaultKind::ApUp { ap } | FaultKind::LinkRestore { ap } => {
                if ap >= cluster.aps.len() {
                    return Err(SimError::MissingAp { ap });
                }
            }
            FaultKind::LinkDegrade { ap, factor } => {
                if ap >= cluster.aps.len() {
                    return Err(SimError::MissingAp { ap });
                }
                check_factor(factor)?;
            }
            FaultKind::ServerRestore { server } => {
                if server >= cluster.servers.len() {
                    return Err(SimError::MissingServer { server });
                }
            }
            FaultKind::ServerThrottle { server, factor } => {
                if server >= cluster.servers.len() {
                    return Err(SimError::MissingServer { server });
                }
                check_factor(factor)?;
            }
        }
        Ok(())
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Absolute injection time, seconds.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events.
///
/// Redundant events (downing an already-down device, restoring a nominal
/// link) are executed as no-ops and reported as injected-but-not-applied,
/// so any event sequence is a valid plan.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Events in injection order (sorted by time at construction).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (fault-free run).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check every event against a topology, plus time sanity.
    pub fn validate(&self, cluster: &Cluster) -> Result<(), SimError> {
        for (i, ev) in self.events.iter().enumerate() {
            if !ev.at_s.is_finite() || ev.at_s < 0.0 {
                return Err(SimError::InvalidEventTime {
                    index: i,
                    at_s: ev.at_s,
                });
            }
            ev.kind
                .validate(cluster)
                .map_err(|e| SimError::InvalidEvent {
                    index: i,
                    source: Box::new(e),
                })?;
        }
        Ok(())
    }

    /// Sort events by time, keeping insertion order within a timestamp.
    pub fn sort(&mut self) {
        self.events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
    }
}

/// Seeded random fault-plan generator: the "fault intensity" knob of the
/// resilience experiments. The generated plan is a pure function of the
/// profile and the topology dimensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Seed of the fault stream (independent of scenario and sim seeds).
    pub seed: u64,
    /// Mean fault injections per simulated second.
    pub rate_hz: f64,
    /// Mean duration of each outage/degradation, seconds.
    pub mean_outage_s: f64,
    /// No faults before this time (lets the warm-up window stay clean).
    pub start_s: f64,
    /// Enabled classes; empty means all of [`FaultClass::ALL`].
    pub classes: Vec<FaultClass>,
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self {
            seed: 1,
            rate_hz: 0.2,
            mean_outage_s: 2.0,
            start_s: 0.0,
            classes: Vec::new(),
        }
    }
}

/// Dedicated RNG stream id for fault-plan generation (outside the
/// simulator's arrival/difficulty/fading stream range).
const FAULT_STREAM: u64 = 0xFA_17;

impl FaultProfile {
    /// Generate the plan for a topology of the given dimensions over
    /// `horizon_s` seconds of injections (recoveries may land later, while
    /// the system drains).
    pub fn plan(
        &self,
        n_devices: usize,
        n_aps: usize,
        n_servers: usize,
        horizon_s: f64,
    ) -> FaultPlan {
        let mut plan = FaultPlan::none();
        if self.rate_hz <= 0.0 || n_devices == 0 {
            return plan;
        }
        let enabled: Vec<FaultClass> = if self.classes.is_empty() {
            FaultClass::ALL.to_vec()
        } else {
            self.classes.clone()
        };
        // Drop classes with no possible target in this topology.
        let enabled: Vec<FaultClass> = enabled
            .into_iter()
            .filter(|c| match c {
                FaultClass::DeviceChurn => n_devices > 0,
                FaultClass::ApOutage | FaultClass::LinkDegradation => n_aps > 0,
                FaultClass::ComputeThrottle => n_servers > 0,
            })
            .collect();
        if enabled.is_empty() {
            return plan;
        }
        let mut rng = SimRng::new(self.seed, FAULT_STREAM);
        let mut t = self.start_s.max(0.0);
        loop {
            t += rng.exponential(self.rate_hz);
            if t >= horizon_s {
                break;
            }
            let duration = rng.exponential(1.0 / self.mean_outage_s.max(1e-6));
            let recover_at = t + duration;
            let (down, up) = match enabled[rng.index(enabled.len())] {
                FaultClass::DeviceChurn => {
                    let device = rng.index(n_devices);
                    (
                        FaultKind::DeviceDown { device },
                        FaultKind::DeviceUp { device },
                    )
                }
                FaultClass::ApOutage => {
                    let ap = rng.index(n_aps);
                    (FaultKind::ApDown { ap }, FaultKind::ApUp { ap })
                }
                FaultClass::LinkDegradation => {
                    let ap = rng.index(n_aps);
                    let factor = rng.uniform(0.1, 0.6);
                    (
                        FaultKind::LinkDegrade { ap, factor },
                        FaultKind::LinkRestore { ap },
                    )
                }
                FaultClass::ComputeThrottle => {
                    let server = rng.index(n_servers);
                    let factor = rng.uniform(0.2, 0.7);
                    (
                        FaultKind::ServerThrottle { server, factor },
                        FaultKind::ServerRestore { server },
                    )
                }
            };
            plan.events.push(FaultEvent {
                at_s: t,
                kind: down,
            });
            plan.events.push(FaultEvent {
                at_s: recover_at,
                kind: up,
            });
        }
        plan.sort();
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ApSpec, DeviceSpec, ServerSpec};
    use scalpel_models::ProcessorClass;

    fn cluster() -> Cluster {
        Cluster {
            devices: vec![DeviceSpec {
                id: 0,
                proc: ProcessorClass::JetsonNano.spec(),
                ap: 0,
                distance_m: 30.0,
            }],
            aps: vec![ApSpec {
                id: 0,
                bandwidth_hz: 20e6,
                rtt_s: 2e-3,
            }],
            servers: vec![ServerSpec {
                id: 0,
                proc: ProcessorClass::EdgeGpuT4.spec(),
            }],
        }
    }

    #[test]
    fn profile_plans_are_deterministic_per_seed() {
        let p = FaultProfile::default();
        let a = p.plan(4, 2, 2, 30.0);
        let b = p.plan(4, 2, 2, 30.0);
        assert_eq!(a, b);
        let p2 = FaultProfile {
            seed: 2,
            ..FaultProfile::default()
        };
        assert_ne!(a, p2.plan(4, 2, 2, 30.0));
    }

    #[test]
    fn generated_plans_validate_and_pair_events() {
        let plan = FaultProfile {
            rate_hz: 1.0,
            ..FaultProfile::default()
        }
        .plan(1, 1, 1, 30.0);
        assert!(!plan.is_empty());
        assert!(plan.validate(&cluster()).is_ok());
        // Every injection carries a matching recovery, so counts are even.
        assert_eq!(plan.events.len() % 2, 0);
        // Sorted by time.
        for w in plan.events.windows(2) {
            assert!(w[0].at_s <= w[1].at_s);
        }
    }

    #[test]
    fn zero_rate_gives_empty_plan() {
        let p = FaultProfile {
            rate_hz: 0.0,
            ..FaultProfile::default()
        };
        assert!(p.plan(4, 2, 2, 30.0).is_empty());
    }

    #[test]
    fn start_offset_delays_first_injection() {
        let p = FaultProfile {
            rate_hz: 2.0,
            start_s: 5.0,
            ..FaultProfile::default()
        };
        let plan = p.plan(4, 2, 2, 30.0);
        assert!(plan.events.iter().all(|e| e.at_s >= 5.0));
    }

    #[test]
    fn out_of_range_targets_fail_validation() {
        let c = cluster();
        for kind in [
            FaultKind::DeviceDown { device: 9 },
            FaultKind::ApDown { ap: 9 },
            FaultKind::ServerThrottle {
                server: 9,
                factor: 0.5,
            },
        ] {
            assert!(kind.validate(&c).is_err(), "{kind:?}");
        }
        for bad in [0.0, -0.1, 1.5, f64::NAN] {
            assert!(FaultKind::LinkDegrade { ap: 0, factor: bad }
                .validate(&c)
                .is_err());
        }
    }

    #[test]
    fn validation_errors_are_typed() {
        let c = cluster();
        assert_eq!(
            FaultKind::DeviceDown { device: 9 }.validate(&c),
            Err(SimError::MissingDevice { device: 9 })
        );
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at_s: 1.0,
                kind: FaultKind::LinkDegrade { ap: 0, factor: 2.0 },
            }],
        };
        assert_eq!(
            plan.validate(&c),
            Err(SimError::InvalidEvent {
                index: 0,
                source: Box::new(SimError::FactorOutOfRange { factor: 2.0 }),
            })
        );
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at_s: f64::NAN,
                kind: FaultKind::ApDown { ap: 0 },
            }],
        };
        assert!(matches!(
            plan.validate(&c),
            Err(SimError::InvalidEventTime { index: 0, .. })
        ));
    }

    #[test]
    fn classes_cover_and_name_uniquely() {
        assert_eq!(FaultClass::ALL.len(), 4);
        for (i, c) in FaultClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let mut names: Vec<&str> = FaultClass::ALL.iter().map(|c| c.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn class_filter_restricts_generated_kinds() {
        let p = FaultProfile {
            rate_hz: 2.0,
            classes: vec![FaultClass::ComputeThrottle],
            ..FaultProfile::default()
        };
        let plan = p.plan(4, 2, 2, 30.0);
        assert!(!plan.is_empty());
        assert!(plan
            .events
            .iter()
            .all(|e| e.kind.class() == FaultClass::ComputeThrottle));
    }
}
