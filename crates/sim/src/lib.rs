//! # scalpel-sim — heterogeneous edge, simulated
//!
//! A deterministic discrete-event simulator standing in for the paper's
//! physical testbed (DESIGN.md §3): end devices with FIFO compute, shared
//! wireless uplinks with path-loss + Rayleigh fading, and edge servers doing
//! weighted processor sharing over the streams assigned to them.
//!
//! The simulator executes *compiled streams* ([`task::CompiledStream`]):
//! `scalpel-core` lowers a surgery plan + resource allocation into plain
//! numbers (device time to each exit, bytes on the wire, edge FLOPs,
//! per-exit accuracy), and this crate measures what actually happens —
//! queueing, contention, fading, deadline misses — under a seeded PCG
//! stream so every run is reproducible.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod churn;
pub mod cluster;
pub mod engine;
pub mod error;
pub mod faults;
pub mod metrics;
pub mod net;
pub mod recovery;
pub mod rng;
pub mod sim;
pub mod task;
pub mod time;
pub mod tracelog;
pub mod workload;

pub use churn::{ChurnEvent, ChurnKind, ChurnParseError, ChurnProfile, ChurnTrace};
pub use cluster::{ApSpec, Cluster, DeviceSpec, ServerSpec};
pub use engine::{EventKey, EventQueue};
pub use error::SimError;
pub use faults::{FaultClass, FaultEvent, FaultKind, FaultPlan, FaultProfile};
pub use metrics::{
    FaultClassStats, FaultMetrics, LatencyStats, RecoveryMetrics, SimReport, StreamStats,
};
pub use net::{CachedLink, LinkModel};
pub use recovery::{
    BreakerConfig, BreakerState, CircuitBreaker, HealthSnapshot, RecoveryConfig, RetryPolicy,
};
pub use rng::SimRng;
pub use scalpel_surgery::{DegradeLadder, DegradeRung};
pub use sim::{EdgeSim, SimConfig, SimScratch};
pub use task::{CompiledStream, StreamId};
pub use time::SimTime;
pub use tracelog::{FaultRecord, RunTrace, TaskRecord};
pub use workload::{ArrivalGen, ArrivalProcess, ArrivalState};
