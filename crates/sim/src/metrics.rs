//! Measurement: per-stream and aggregate latency / deadline / accuracy
//! statistics, plus fault-robustness counters for injected-fault runs.

use crate::faults::FaultClass;
use serde::{Deserialize, Serialize};

/// Order statistics over a set of latency samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean, seconds.
    pub mean: f64,
    /// Median, seconds.
    pub p50: f64,
    /// 95th percentile, seconds.
    pub p95: f64,
    /// 99th percentile, seconds.
    pub p99: f64,
    /// Maximum, seconds.
    pub max: f64,
}

impl LatencyStats {
    /// Empty statistics (all zero).
    pub fn empty() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            max: 0.0,
        }
    }

    /// Compute from raw samples (consumed; sorted internally).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        Self::from_mut_slice(&mut samples)
    }

    /// Like [`LatencyStats::from_samples`], but sorting the caller's
    /// buffer in place — no allocation, same bits (the mean is summed
    /// over the sorted order either way).
    pub fn from_mut_slice(samples: &mut [f64]) -> Self {
        if samples.is_empty() {
            return Self::empty();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let q = |p: f64| -> f64 {
            // nearest-rank on the sorted sample
            let idx = ((p * count as f64).ceil() as usize).clamp(1, count) - 1;
            samples[idx]
        };
        Self {
            count,
            mean,
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Per-stream simulation outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamStats {
    /// Stream index.
    pub stream: usize,
    /// Completed requests measured (post-warm-up).
    pub completed: usize,
    /// Requests that met their deadline.
    pub on_time: usize,
    /// Latency distribution.
    pub latency: LatencyStats,
    /// Mean accuracy credited over completions.
    pub mean_accuracy: f64,
    /// Completions that left at a device-side exit.
    pub early_exits: usize,
    /// Mean seconds spent waiting in the device compute queue.
    pub mean_device_wait: f64,
    /// Mean seconds of device compute service.
    pub mean_device_service: f64,
    /// Mean seconds of uplink transmission (offloaded requests only).
    pub mean_tx: f64,
    /// Mean seconds on the edge server (offloaded requests only).
    pub mean_edge: f64,
}

impl StreamStats {
    /// Deadline satisfaction ratio in `[0, 1]`.
    pub fn deadline_ratio(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.on_time as f64 / self.completed as f64
        }
    }
}

/// Robustness counters for one fault class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultClassStats {
    /// The class these counters aggregate.
    pub class: FaultClass,
    /// Events of this class in the plan (including redundant ones).
    pub injected: usize,
    /// Events that actually changed simulator state.
    pub applied: usize,
    /// Measured requests stranded by events of this class.
    pub stranded: usize,
    /// Measured deadline misses completed while a fault of this class was
    /// active (a miss under several concurrent classes counts once per
    /// active class).
    pub misses_during: usize,
}

/// Whole-run robustness outcome of the fault-injection layer. All request
/// counters cover *measured* requests only (arrivals inside the
/// warm-up..horizon window), matching [`SimReport::generated`]; the
/// conservation law `generated == completed + faults.lost()` holds for
/// every run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultMetrics {
    /// Fault events executed (the plan may extend past the horizon).
    pub injected: usize,
    /// Fault events that changed state (e.g. a `DeviceDown` on an
    /// already-down device injects but does not apply).
    pub applied: usize,
    /// Measured requests dropped outright by a fault (device departure
    /// takes its queued/computing/untransmitted requests with it).
    pub stranded: usize,
    /// Measured requests still queued when the run ended — typically stuck
    /// behind an outage that never recovered. Counted so nothing is
    /// silently dropped.
    pub stalled: usize,
    /// Measured completions that finished while ≥1 fault was active.
    pub completions_during_fault: usize,
    /// Measured deadline misses that completed while ≥1 fault was active —
    /// the SLO violations attributable to disruption.
    pub misses_during_fault: usize,
    /// Observed fault→recovery pairs.
    pub recoveries: usize,
    /// Mean seconds from a fault being applied to its recovery being
    /// applied (0 when no recovery was observed).
    pub mean_recovery_s: f64,
    /// Per-class breakdown, in [`FaultClass::ALL`] order.
    pub per_class: Vec<FaultClassStats>,
}

impl FaultMetrics {
    /// Metrics of a fault-free run (all counters zero).
    pub fn empty() -> Self {
        Self {
            injected: 0,
            applied: 0,
            stranded: 0,
            stalled: 0,
            completions_during_fault: 0,
            misses_during_fault: 0,
            recoveries: 0,
            mean_recovery_s: 0.0,
            per_class: FaultClass::ALL
                .iter()
                .map(|&class| FaultClassStats {
                    class,
                    injected: 0,
                    applied: 0,
                    stranded: 0,
                    misses_during: 0,
                })
                .collect(),
        }
    }

    /// Measured requests that never completed because of faults.
    pub fn lost(&self) -> usize {
        self.stranded + self.stalled
    }
}

/// Whole-run outcome of the recovery subsystem (all zero when recovery is
/// disabled). With recovery on, the conservation law extends to
/// `generated == completed + recovery.degraded + recovery.shed +
/// faults.lost()`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryMetrics {
    /// Retry timeouts that fired on live (non-stale) transmissions.
    pub timeouts: usize,
    /// Uplink transmissions cancelled and restarted.
    pub retries: usize,
    /// Requests re-routed to a fallback server by an open primary breaker.
    pub hedges: usize,
    /// Measured requests completed through a degradation rung.
    pub degraded: usize,
    /// Degraded completions that still met their deadline.
    pub degraded_on_time: usize,
    /// Measured requests shed (dropped by policy, not by a fault).
    pub shed: usize,
    /// Mean accuracy credited to degraded completions (0 when none).
    pub mean_degraded_accuracy: f64,
    /// Mean accuracy given up per degraded completion versus what its
    /// nominal path would have credited (0 when none).
    pub accuracy_cost: f64,
    /// Breaker closed→open transitions across all APs and servers.
    pub breaker_opens: usize,
    /// Breaker open→half-open transitions.
    pub breaker_half_opens: usize,
    /// Breaker half-open→closed transitions.
    pub breaker_closes: usize,
}

impl RecoveryMetrics {
    /// Metrics of a run without recovery (all counters zero).
    pub fn empty() -> Self {
        Self {
            timeouts: 0,
            retries: 0,
            hedges: 0,
            degraded: 0,
            degraded_on_time: 0,
            shed: 0,
            mean_degraded_accuracy: 0.0,
            accuracy_cost: 0.0,
            breaker_opens: 0,
            breaker_half_opens: 0,
            breaker_closes: 0,
        }
    }
}

/// Whole-run simulation outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Requests generated during the measured window.
    pub generated: usize,
    /// Requests completed (and measured).
    pub completed: usize,
    /// Aggregate latency distribution.
    pub latency: LatencyStats,
    /// Fraction of measured completions that met their deadline.
    pub deadline_ratio: f64,
    /// Mean accuracy over measured completions.
    pub mean_accuracy: f64,
    /// Fraction of measured completions that took a device-side exit.
    pub early_exit_fraction: f64,
    /// Per-server busy fraction: share of the simulated timeline (up to
    /// the last event) during which the server had ≥1 active request.
    pub server_utilization: Vec<f64>,
    /// Per-stream breakdown.
    pub per_stream: Vec<StreamStats>,
    /// Fault-robustness counters (all zero for fault-free runs).
    pub faults: FaultMetrics,
    /// Recovery-subsystem counters (all zero when recovery is disabled).
    pub recovery: RecoveryMetrics,
}

impl SimReport {
    /// Every measured request, however it ended: completed nominally,
    /// completed degraded, shed by policy, or lost to a fault. Equals
    /// [`SimReport::generated`] for every run — the conservation law the
    /// property tests pin.
    pub fn accounted(&self) -> usize {
        self.completed + self.recovery.degraded + self.recovery.shed + self.faults.lost()
    }
}

/// Accumulates one stream's completions during a run.
#[derive(Debug, Clone, Default)]
pub(crate) struct StreamAccum {
    pub latencies: Vec<f64>,
    pub on_time: usize,
    pub acc_sum: f64,
    pub early_exits: usize,
    pub device_wait_sum: f64,
    pub device_service_sum: f64,
    pub tx_sum: f64,
    pub tx_count: usize,
    pub edge_sum: f64,
}

impl StreamAccum {
    /// Consuming wrapper over [`StreamAccum::finish_mut`].
    #[cfg(test)]
    pub fn finish(mut self, stream: usize) -> StreamStats {
        self.finish_mut(stream)
    }

    /// Seal the accumulator into per-stream stats: sorts the latency buffer in place so
    /// a scratch-held accumulator keeps its capacity across runs.
    pub fn finish_mut(&mut self, stream: usize) -> StreamStats {
        let completed = self.latencies.len();
        let n = completed.max(1) as f64;
        StreamStats {
            stream,
            completed,
            on_time: self.on_time,
            mean_accuracy: self.acc_sum / n,
            early_exits: self.early_exits,
            mean_device_wait: self.device_wait_sum / n,
            mean_device_service: self.device_service_sum / n,
            mean_tx: self.tx_sum / self.tx_count.max(1) as f64,
            mean_edge: self.edge_sum / self.tx_count.max(1) as f64,
            latency: LatencyStats::from_mut_slice(&mut self.latencies),
        }
    }

    /// Zero every counter, keeping the latency buffer's capacity.
    pub fn reset(&mut self) {
        self.latencies.clear();
        self.on_time = 0;
        self.acc_sum = 0.0;
        self.early_exits = 0;
        self.device_wait_sum = 0.0;
        self.device_service_sum = 0.0;
        self.tx_sum = 0.0;
        self.tx_count = 0;
        self.edge_sum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::from_samples(vec![]);
        assert_eq!(s, LatencyStats::empty());
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let s = LatencyStats::from_samples(vec![0.5]);
        assert_eq!(s.count, 1);
        for v in [s.mean, s.p50, s.p95, s.p99, s.max] {
            assert_eq!(v, 0.5);
        }
    }

    #[test]
    fn percentiles_on_uniform_grid() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencyStats::from_samples(samples);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_order_invariant() {
        let a = LatencyStats::from_samples(vec![3.0, 1.0, 2.0]);
        let b = LatencyStats::from_samples(vec![1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn quantiles_are_monotone() {
        let samples: Vec<f64> = (0..999).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        let s = LatencyStats::from_samples(samples);
        assert!(s.p50 <= s.p95);
        assert!(s.p95 <= s.p99);
        assert!(s.p99 <= s.max);
    }

    #[test]
    fn stream_accum_finish_divides_correctly() {
        let a = StreamAccum {
            latencies: vec![0.1, 0.3],
            on_time: 1,
            acc_sum: 1.5,
            early_exits: 1,
            tx_sum: 0.2,
            tx_count: 1,
            ..StreamAccum::default()
        };
        let s = a.finish(7);
        assert_eq!(s.stream, 7);
        assert_eq!(s.completed, 2);
        assert!((s.deadline_ratio() - 0.5).abs() < 1e-12);
        assert!((s.mean_accuracy - 0.75).abs() < 1e-12);
        assert!((s.mean_tx - 0.2).abs() < 1e-12);
    }

    #[test]
    fn deadline_ratio_of_empty_stream_is_one() {
        let s = StreamAccum::default().finish(0);
        assert_eq!(s.deadline_ratio(), 1.0);
    }

    #[test]
    fn empty_fault_metrics_cover_every_class() {
        let f = FaultMetrics::empty();
        assert_eq!(f.per_class.len(), FaultClass::ALL.len());
        for (stats, &class) in f.per_class.iter().zip(FaultClass::ALL) {
            assert_eq!(stats.class, class);
            assert_eq!(stats.injected + stats.applied + stats.stranded, 0);
        }
        assert_eq!(f.lost(), 0);
    }

    #[test]
    fn lost_sums_stranded_and_stalled() {
        let mut f = FaultMetrics::empty();
        f.stranded = 3;
        f.stalled = 2;
        assert_eq!(f.lost(), 5);
    }
}
