//! Wireless uplink model.
//!
//! Each device talks to its access point over a log-distance path-loss
//! channel with Rayleigh fading; APs divide their spectrum among their
//! devices by FDMA shares (the bandwidth-allocation knob). Because thermal
//! noise scales with the allocated band, the SNR is independent of the
//! share and the achievable rate is *linear* in it — which is exactly the
//! property the convex bandwidth allocator in `scalpel-alloc` relies on.

use serde::{Deserialize, Serialize};

/// Thermal noise density at room temperature, dBm/Hz.
const NOISE_DBM_PER_HZ: f64 = -174.0;

/// A device↔AP link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Full AP spectrum in Hz (the share multiplies this).
    pub bandwidth_hz: f64,
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Path-loss at the 1 m reference distance, dB.
    pub ref_loss_db: f64,
    /// Path-loss exponent (≈2 free space, 3–4 indoor).
    pub path_loss_exp: f64,
    /// Device–AP distance in meters.
    pub distance_m: f64,
}

impl LinkModel {
    /// A Wi-Fi-class link: 20 dBm transmit, 40 dB reference loss,
    /// exponent 3.5.
    pub fn wifi(bandwidth_hz: f64, distance_m: f64) -> Self {
        Self {
            bandwidth_hz,
            tx_power_dbm: 20.0,
            ref_loss_db: 40.0,
            path_loss_exp: 3.5,
            distance_m: distance_m.max(1.0),
        }
    }

    /// Mean signal-to-noise ratio (linear) over the allocated band.
    pub fn mean_snr(&self) -> f64 {
        let path_loss_db = self.ref_loss_db + 10.0 * self.path_loss_exp * self.distance_m.log10();
        let rx_dbm = self.tx_power_dbm - path_loss_db;
        let noise_dbm = NOISE_DBM_PER_HZ + 10.0 * self.bandwidth_hz.log10();
        10f64.powf((rx_dbm - noise_dbm) / 10.0)
    }

    /// Shannon rate in bits/s for a bandwidth `share ∈ (0,1]` under the
    /// instantaneous fading power multiplier (unit mean).
    pub fn rate_bps(&self, share: f64, fading_power: f64) -> f64 {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&share));
        if share <= 0.0 {
            return 0.0;
        }
        let snr = self.mean_snr() * fading_power;
        share * self.bandwidth_hz * (1.0 + snr).log2()
    }

    /// Mean rate at unit fading — what the allocator plans with.
    pub fn mean_rate_bps(&self, share: f64) -> f64 {
        self.rate_bps(share, 1.0)
    }

    /// Seconds to move `bytes` at the given share and fading.
    pub fn tx_seconds(&self, bytes: f64, share: f64, fading_power: f64) -> f64 {
        let rate = self.rate_bps(share, fading_power);
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        bytes * 8.0 / rate
    }

    /// Pre-evaluate the static channel math. `mean_snr` depends only on
    /// link constants (power, path loss, distance, spectrum), yet
    /// [`LinkModel::rate_bps`] re-derives it — two `log10`s and a `powf`
    /// — on every call. A [`CachedLink`] pays that once, leaving at most
    /// one `log2` per transmission; the cached values are exactly the
    /// f64s the uncached path would recompute, so rates (and therefore
    /// simulations) are bit-identical.
    pub fn cached(&self) -> CachedLink {
        let snr = self.mean_snr();
        CachedLink {
            bandwidth_hz: self.bandwidth_hz,
            mean_snr: snr,
            unit_eff: (1.0 + snr).log2(),
        }
    }
}

/// A [`LinkModel`] with its static channel math pre-evaluated for the
/// per-transmission hot path. Build with [`LinkModel::cached`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedLink {
    /// Full AP spectrum in Hz (the share multiplies this).
    pub bandwidth_hz: f64,
    /// Mean SNR (linear) over the allocated band — `LinkModel::mean_snr`.
    pub mean_snr: f64,
    /// Spectral efficiency at unit fading: `(1 + mean_snr).log2()`.
    unit_eff: f64,
}

impl CachedLink {
    /// Shannon rate in bits/s; bit-identical to [`LinkModel::rate_bps`].
    pub fn rate_bps(&self, share: f64, fading_power: f64) -> f64 {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&share));
        if share <= 0.0 {
            return 0.0;
        }
        // `snr * 1.0 == snr` bit-for-bit, so the unit-fading shortcut
        // returns exactly what the log2 below would.
        let eff = if fading_power == 1.0 {
            self.unit_eff
        } else {
            (1.0 + self.mean_snr * fading_power).log2()
        };
        share * self.bandwidth_hz * eff
    }

    /// Seconds to move `bytes`; bit-identical to [`LinkModel::tx_seconds`].
    pub fn tx_seconds(&self, bytes: f64, share: f64, fading_power: f64) -> f64 {
        let rate = self.rate_bps(share, fading_power);
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        bytes * 8.0 / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wifi_link_rate_is_realistic() {
        // 10 MHz at 50 m should land in the tens of Mbit/s.
        let l = LinkModel::wifi(10e6, 50.0);
        let r = l.mean_rate_bps(1.0);
        assert!(r > 20e6 && r < 200e6, "rate {r}");
    }

    #[test]
    fn rate_is_linear_in_share() {
        let l = LinkModel::wifi(20e6, 30.0);
        let full = l.mean_rate_bps(1.0);
        let half = l.mean_rate_bps(0.5);
        assert!((half - full / 2.0).abs() < 1e-6 * full);
    }

    #[test]
    fn rate_decreases_with_distance() {
        let near = LinkModel::wifi(10e6, 10.0).mean_rate_bps(1.0);
        let far = LinkModel::wifi(10e6, 100.0).mean_rate_bps(1.0);
        assert!(near > far);
    }

    #[test]
    fn fading_moves_rate_monotonically() {
        let l = LinkModel::wifi(10e6, 50.0);
        assert!(l.rate_bps(1.0, 0.2) < l.rate_bps(1.0, 1.0));
        assert!(l.rate_bps(1.0, 3.0) > l.rate_bps(1.0, 1.0));
    }

    #[test]
    fn zero_share_cannot_transmit() {
        let l = LinkModel::wifi(10e6, 50.0);
        assert_eq!(l.rate_bps(0.0, 1.0), 0.0);
        assert!(l.tx_seconds(1000.0, 0.0, 1.0).is_infinite());
    }

    #[test]
    fn tx_seconds_scale_with_bytes() {
        let l = LinkModel::wifi(10e6, 50.0);
        let one = l.tx_seconds(1e6, 1.0, 1.0);
        let two = l.tx_seconds(2e6, 1.0, 1.0);
        assert!((two - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn distance_clamped_to_reference() {
        let l = LinkModel::wifi(10e6, 0.0);
        assert_eq!(l.distance_m, 1.0);
    }
}
