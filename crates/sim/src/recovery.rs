//! Closed-loop failure recovery: retry policies, circuit breakers, and
//! health telemetry.
//!
//! PR 1's fault layer made the simulator *observe* disruptions; this
//! module makes it *react*. Three policy layers compose (each independently
//! optional, all off by default so a [`RecoveryConfig::none`] run is
//! bit-identical to the pre-recovery simulator):
//!
//! * **Per-request** ([`RetryPolicy`]): an uplink transmission that makes
//!   no progress within a deadline-aware timeout is cancelled and retried
//!   with exponential backoff, up to a bounded budget; when the budget is
//!   exhausted the request falls down its stream's degradation ladder
//!   (see `scalpel_surgery::degrade`) instead of stranding.
//! * **Per-target** ([`BreakerConfig`] / [`CircuitBreaker`]): rolling
//!   health windows on every AP and server drive closed → open →
//!   half-open breakers, so retries stop hammering dead targets and
//!   recovering ones are probed with bounded traffic.
//! * **Control-plane** ([`HealthSnapshot`]): periodic telemetry epochs
//!   summarize timeout rates, SLO misses and breaker states; the
//!   `scalpel-core` fault detector consumes these to trigger warm-started
//!   re-solves.
//!
//! Everything is deterministic: breakers transition only at event times,
//! probe admission is counter-based, and no new RNG draws happen unless a
//! retry actually re-transmits (which re-draws fading exactly like any
//! fresh transmission).

use crate::error::SimError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Bounded-retry policy for uplink transmissions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retransmission attempts allowed beyond the first (0 = timeout only
    /// triggers degradation, never a retry).
    pub max_retries: u32,
    /// Timeout of the first attempt, seconds.
    pub base_timeout_s: f64,
    /// Multiplier applied to the timeout per retry (exponential backoff).
    pub backoff: f64,
    /// Timeout ceiling, seconds.
    pub max_timeout_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            base_timeout_s: 0.25,
            backoff: 2.0,
            max_timeout_s: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Effective timeout for attempt `attempt` (0-based), deadline-aware:
    /// exponential backoff clamped to the ceiling, then to the request's
    /// remaining slack (never below half the base, so a request that is
    /// already late still gets a meaningful watch interval).
    pub fn timeout_s(&self, attempt: u32, slack_s: f64) -> f64 {
        let backed = self.base_timeout_s * self.backoff.powi(attempt.min(30) as i32);
        let t = backed.min(self.max_timeout_s);
        t.min(slack_s.max(self.base_timeout_s * 0.5))
    }

    fn validate(&self) -> Result<(), SimError> {
        let bad = |detail: &str| SimError::InvalidRecovery {
            detail: detail.into(),
        };
        if !(self.base_timeout_s.is_finite() && self.base_timeout_s > 0.0) {
            return Err(bad("base_timeout_s must be positive"));
        }
        if !(self.backoff.is_finite() && self.backoff >= 1.0) {
            return Err(bad("backoff must be >= 1"));
        }
        if !(self.max_timeout_s.is_finite() && self.max_timeout_s >= self.base_timeout_s) {
            return Err(bad("max_timeout_s must be >= base_timeout_s"));
        }
        Ok(())
    }
}

/// Rolling-window circuit-breaker parameters (shared by AP and server
/// breakers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Outcomes kept in the rolling window.
    pub window: usize,
    /// Minimum outcomes before the failure fraction is trusted.
    pub min_samples: usize,
    /// Open when `failures / window_len >= failure_threshold`.
    pub failure_threshold: f64,
    /// Seconds an open breaker waits before admitting half-open probes.
    pub open_cooldown_s: f64,
    /// Consecutive probe successes required to close from half-open.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            window: 8,
            min_samples: 4,
            failure_threshold: 0.5,
            open_cooldown_s: 1.0,
            half_open_probes: 2,
        }
    }
}

impl BreakerConfig {
    fn validate(&self) -> Result<(), SimError> {
        let bad = |detail: &str| SimError::InvalidRecovery {
            detail: detail.into(),
        };
        if self.window == 0 {
            return Err(bad("breaker window must be positive"));
        }
        if self.min_samples == 0 || self.min_samples > self.window {
            return Err(bad("breaker min_samples must be in 1..=window"));
        }
        if !(self.failure_threshold.is_finite()
            && self.failure_threshold > 0.0
            && self.failure_threshold <= 1.0)
        {
            return Err(bad("breaker failure_threshold must be in (0, 1]"));
        }
        if !(self.open_cooldown_s.is_finite() && self.open_cooldown_s > 0.0) {
            return Err(bad("breaker open_cooldown_s must be positive"));
        }
        if self.half_open_probes == 0 {
            return Err(bad("breaker half_open_probes must be positive"));
        }
        Ok(())
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: traffic flows, outcomes are recorded.
    Closed,
    /// Tripped: traffic is refused until the cooldown elapses.
    Open,
    /// Probing: bounded traffic is admitted; successes close, any failure
    /// re-opens.
    HalfOpen,
}

/// One target's breaker. Transitions happen only inside [`try_acquire`],
/// [`record_success`] and [`record_failure`], all driven by event times —
/// no wall clock, no RNG — so identical event sequences produce identical
/// breaker histories.
///
/// [`try_acquire`]: CircuitBreaker::try_acquire
/// [`record_success`]: CircuitBreaker::record_success
/// [`record_failure`]: CircuitBreaker::record_failure
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Rolling outcomes, `true` = failure.
    window: VecDeque<bool>,
    opened_at_s: f64,
    probe_successes: u32,
    probes_admitted: u32,
    /// Closed → open transitions.
    pub opens: usize,
    /// Open → half-open transitions.
    pub half_opens: usize,
    /// Half-open → closed transitions.
    pub closes: usize,
}

impl CircuitBreaker {
    /// A fresh, closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: BreakerState::Closed,
            window: VecDeque::new(),
            opened_at_s: 0.0,
            probe_successes: 0,
            probes_admitted: 0,
            opens: 0,
            half_opens: 0,
            closes: 0,
        }
    }

    /// Return to the fresh, closed state under `cfg`, keeping the rolling
    /// window's buffer so a reused breaker allocates nothing.
    pub fn reset(&mut self, cfg: BreakerConfig) {
        self.cfg = cfg;
        self.state = BreakerState::Closed;
        self.window.clear();
        self.opened_at_s = 0.0;
        self.probe_successes = 0;
        self.probes_admitted = 0;
        self.opens = 0;
        self.half_opens = 0;
        self.closes = 0;
    }

    /// Current state (pure; open breakers stay open here even past the
    /// cooldown — promotion to half-open happens on traffic, in
    /// [`CircuitBreaker::try_acquire`]).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the breaker currently refuses traffic at `now_s`, without
    /// mutating it (an open breaker past its cooldown *would* admit a
    /// probe, so it does not count as refusing).
    pub fn is_refusing(&self, now_s: f64) -> bool {
        self.state == BreakerState::Open && now_s - self.opened_at_s < self.cfg.open_cooldown_s
    }

    /// Ask to route one request through this target. Closed always admits;
    /// open admits nothing until the cooldown elapses, then promotes to
    /// half-open; half-open admits up to `half_open_probes` outstanding
    /// probes.
    pub fn try_acquire(&mut self, now_s: f64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_s - self.opened_at_s >= self.cfg.open_cooldown_s {
                    self.state = BreakerState::HalfOpen;
                    self.half_opens += 1;
                    self.probe_successes = 0;
                    self.probes_admitted = 1;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_admitted < self.cfg.half_open_probes {
                    self.probes_admitted += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful outcome on this target.
    pub fn record_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.push_outcome(false),
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.cfg.half_open_probes {
                    self.state = BreakerState::Closed;
                    self.closes += 1;
                    self.window.clear();
                }
            }
            BreakerState::Open => {} // a straggler from before the trip
        }
    }

    /// Record a failed outcome on this target at `now_s`.
    pub fn record_failure(&mut self, now_s: f64) {
        match self.state {
            BreakerState::Closed => {
                self.push_outcome(true);
                let n = self.window.len();
                if n >= self.cfg.min_samples {
                    let fails = self.window.iter().filter(|&&f| f).count();
                    if fails as f64 / n as f64 >= self.cfg.failure_threshold {
                        self.trip(now_s);
                    }
                }
            }
            BreakerState::HalfOpen => self.trip(now_s),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now_s: f64) {
        self.state = BreakerState::Open;
        self.opens += 1;
        self.opened_at_s = now_s;
        self.window.clear();
    }

    fn push_outcome(&mut self, failure: bool) {
        if self.window.len() == self.cfg.window {
            self.window.pop_front();
        }
        self.window.push_back(failure);
    }
}

/// One control-plane telemetry epoch: what the fault detector sees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Epoch end time, seconds.
    pub at_s: f64,
    /// Measured completions during the epoch.
    pub completions: usize,
    /// Measured deadline misses during the epoch.
    pub slo_misses: usize,
    /// Retry timeouts fired during the epoch.
    pub timeouts: usize,
    /// Degraded completions during the epoch.
    pub degraded: usize,
    /// Requests shed during the epoch.
    pub shed: usize,
    /// Per-server breaker-open flag at epoch end (empty without breakers).
    pub server_open: Vec<bool>,
    /// Per-AP breaker-open flag at epoch end (empty without breakers).
    pub ap_open: Vec<bool>,
}

impl HealthSnapshot {
    /// Fraction of this epoch's completions that missed their deadline
    /// (0 when nothing completed).
    pub fn miss_rate(&self) -> f64 {
        if self.completions == 0 {
            0.0
        } else {
            self.slo_misses as f64 / self.completions as f64
        }
    }
}

/// The whole recovery subsystem's configuration. The default is
/// [`RecoveryConfig::none`]: every layer off, zero extra events, zero
/// extra RNG draws — existing fault experiments and golden snapshots are
/// unchanged unless a policy is switched on.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Uplink retry policy (`None` = never time out).
    pub retry: Option<RetryPolicy>,
    /// Circuit breakers on APs and servers (`None` = no health tracking).
    pub breakers: Option<BreakerConfig>,
    /// Fall down the stream's degradation ladder instead of stranding
    /// when the offload path is unusable or the deadline unreachable.
    pub degrade: bool,
    /// Re-route to the next-best server when the primary's breaker is
    /// open (requires `breakers`).
    pub hedge: bool,
    /// Drop (shed) requests whose every path is breaker-open and whose
    /// stream offers no degradation ladder, instead of letting them queue
    /// into a dead uplink.
    pub shed_on_open: bool,
    /// Emit a [`HealthSnapshot`] every this many seconds (0 = no
    /// telemetry events at all).
    pub telemetry_epoch_s: f64,
}

impl RecoveryConfig {
    /// Recovery fully disabled (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Retries only: timeouts + backoff + degradation on exhaustion, no
    /// breakers.
    pub fn retry_only() -> Self {
        Self {
            retry: Some(RetryPolicy::default()),
            degrade: true,
            ..Self::default()
        }
    }

    /// Retries plus circuit breakers (no hedging or shedding).
    pub fn retry_breaker() -> Self {
        Self {
            retry: Some(RetryPolicy::default()),
            breakers: Some(BreakerConfig::default()),
            degrade: true,
            ..Self::default()
        }
    }

    /// The full ladder: retries, breakers, hedged re-offload, shedding,
    /// and control-plane telemetry.
    pub fn full() -> Self {
        Self {
            retry: Some(RetryPolicy::default()),
            breakers: Some(BreakerConfig::default()),
            degrade: true,
            hedge: true,
            shed_on_open: true,
            telemetry_epoch_s: 1.0,
        }
    }

    /// Whether any recovery layer is active.
    pub fn is_active(&self) -> bool {
        self.retry.is_some()
            || self.breakers.is_some()
            || self.degrade
            || self.hedge
            || self.shed_on_open
            || self.telemetry_epoch_s > 0.0
    }

    /// Check parameter ranges and cross-layer consistency.
    pub fn validate(&self) -> Result<(), SimError> {
        if let Some(r) = &self.retry {
            r.validate()?;
        }
        if let Some(b) = &self.breakers {
            b.validate()?;
        }
        if self.hedge && self.breakers.is_none() {
            return Err(SimError::InvalidRecovery {
                detail: "hedge requires breakers (health signal to hedge on)".into(),
            });
        }
        if !(self.telemetry_epoch_s.is_finite() && self.telemetry_epoch_s >= 0.0) {
            return Err(SimError::InvalidRecovery {
                detail: "telemetry_epoch_s must be finite and >= 0".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_escalate() {
        for cfg in [
            RecoveryConfig::none(),
            RecoveryConfig::retry_only(),
            RecoveryConfig::retry_breaker(),
            RecoveryConfig::full(),
        ] {
            assert!(cfg.validate().is_ok(), "{cfg:?}");
        }
        assert!(!RecoveryConfig::none().is_active());
        assert!(RecoveryConfig::retry_only().is_active());
        assert!(RecoveryConfig::full().hedge);
    }

    #[test]
    fn invalid_knobs_are_rejected_with_typed_errors() {
        let mut cfg = RecoveryConfig::retry_only();
        cfg.retry.as_mut().unwrap().backoff = 0.5;
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidRecovery { .. })
        ));
        let hedge_no_breaker = RecoveryConfig {
            hedge: true,
            ..RecoveryConfig::none()
        };
        assert!(hedge_no_breaker.validate().is_err());
        let mut cfg = RecoveryConfig::retry_breaker();
        cfg.breakers.as_mut().unwrap().failure_threshold = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn timeouts_back_off_and_respect_deadline_slack() {
        let p = RetryPolicy {
            max_retries: 3,
            base_timeout_s: 0.1,
            backoff: 2.0,
            max_timeout_s: 0.5,
        };
        assert!((p.timeout_s(0, 10.0) - 0.1).abs() < 1e-12);
        assert!((p.timeout_s(1, 10.0) - 0.2).abs() < 1e-12);
        // Ceiling binds before backoff runs away.
        assert!((p.timeout_s(4, 10.0) - 0.5).abs() < 1e-12);
        // Tight slack shrinks the timeout, but never below base/2.
        assert!((p.timeout_s(0, 0.08) - 0.08).abs() < 1e-12);
        assert!((p.timeout_s(0, 0.0) - 0.05).abs() < 1e-12);
    }

    fn quick_breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_samples: 2,
            failure_threshold: 0.5,
            open_cooldown_s: 1.0,
            half_open_probes: 2,
        })
    }

    #[test]
    fn breaker_trips_on_failure_rate() {
        let mut b = quick_breaker();
        assert!(b.try_acquire(0.0));
        b.record_failure(0.1);
        assert_eq!(b.state(), BreakerState::Closed); // 1 sample < min
        b.record_failure(0.2);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens, 1);
        assert!(!b.try_acquire(0.5)); // inside cooldown
        assert!(b.is_refusing(0.5));
    }

    #[test]
    fn breaker_recovers_only_through_half_open() {
        let mut b = quick_breaker();
        b.record_failure(0.0);
        b.record_failure(0.0);
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown elapsed: the next acquisition is a probe.
        assert!(b.try_acquire(1.5));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.half_opens, 1);
        // Probe budget is bounded.
        assert!(b.try_acquire(1.6));
        assert!(!b.try_acquire(1.7));
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closes, 1);
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut b = quick_breaker();
        b.record_failure(0.0);
        b.record_failure(0.0);
        assert!(b.try_acquire(2.0));
        b.record_failure(2.1);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens, 2);
        // The cooldown restarts from the re-trip.
        assert!(!b.try_acquire(2.5));
        assert!(b.try_acquire(3.2));
    }

    #[test]
    fn successes_keep_the_window_healthy() {
        let mut b = quick_breaker();
        for _ in 0..10 {
            b.record_success();
        }
        // One failure in a healthy window is below threshold.
        b.record_failure(1.0);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn snapshot_miss_rate() {
        let mut s = HealthSnapshot {
            at_s: 1.0,
            completions: 8,
            slo_misses: 2,
            timeouts: 0,
            degraded: 0,
            shed: 0,
            server_open: vec![],
            ap_open: vec![],
        };
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        s.completions = 0;
        assert_eq!(s.miss_rate(), 0.0);
    }
}
