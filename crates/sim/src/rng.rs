//! Deterministic, splittable random streams.
//!
//! Every stochastic component of the simulator (arrivals, difficulty draws,
//! fading, workload traces) pulls from its own PCG stream derived from
//! `(seed, component id)` via SplitMix64, so adding a component never
//! perturbs the draws of another — experiments stay comparable across code
//! changes and sweep points.

/// SplitMix64 finalizer — decorrelates nearby seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// PCG64-MCG (`mcg_xsl_rr_128_64`): a 128-bit multiplicative congruential
/// state with an XSL-RR output permutation. Implemented inline so the
/// simulator has zero external dependencies; matches the construction of
/// `rand_pcg::Pcg64Mcg`.
#[derive(Debug, Clone)]
struct Pcg64Mcg {
    state: u128,
}

impl Pcg64Mcg {
    /// PCG's default 128-bit MCG multiplier.
    const MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

    /// Seed the stream. MCG state must be odd; the low bit is forced.
    fn new(state: u128) -> Self {
        Self { state: state | 1 }
    }

    /// Next 64-bit output: advance the MCG, then xor-fold and
    /// randomly-rotate the halves (XSL-RR).
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(Self::MULTIPLIER);
        let rot = (self.state >> 122) as u32;
        let xsl = ((self.state >> 64) as u64) ^ (self.state as u64);
        xsl.rotate_right(rot)
    }
}

/// A named deterministic random stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Pcg64Mcg,
}

impl SimRng {
    /// Stream for component `stream_id` of the run seeded with `seed`.
    pub fn new(seed: u64, stream_id: u64) -> Self {
        let s = splitmix64(seed ^ splitmix64(stream_id));
        Self {
            inner: Pcg64Mcg::new(s as u128 | ((splitmix64(s) as u128) << 64)),
        }
    }

    /// Uniform draw in the open interval (0, 1): 53 mantissa bits centered
    /// half a ulp away from both endpoints.
    #[inline]
    pub fn open01(&mut self) -> f64 {
        ((self.inner.next_u64() >> 11) as f64 + 0.5) * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Uniform draw in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.open01()
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        -self.open01().ln() / rate
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Modulo bias is < n / 2^64 — negligible for the simulator's small
        // index domains.
        (self.inner.next_u64() % n as u64) as usize
    }

    /// Rayleigh-fading power multiplier: Exp(1) (unit mean), clamped away
    /// from deep fades so a single draw cannot stall a transmission forever.
    #[inline]
    pub fn fading_power(&mut self) -> f64 {
        self.exponential(1.0).clamp(0.1, 4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42, 7);
        let mut b = SimRng::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.open01(), b.open01());
        }
    }

    #[test]
    fn different_streams_decorrelate() {
        let mut a = SimRng::new(42, 0);
        let mut b = SimRng::new(42, 1);
        let equal = (0..100).filter(|_| a.open01() == b.open01()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn open01_stays_in_range() {
        let mut r = SimRng::new(1, 1);
        for _ in 0..10_000 {
            let x = r.open01();
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut r = SimRng::new(9, 3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fading_power_is_clamped_unit_mean() {
        let mut r = SimRng::new(5, 5);
        let n = 50_000;
        let mut mean = 0.0;
        for _ in 0..n {
            let f = r.fading_power();
            assert!((0.1..=4.0).contains(&f));
            mean += f;
        }
        mean /= n as f64;
        // clamping moves the mean slightly above/below 1; allow 10%.
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn index_covers_domain() {
        let mut r = SimRng::new(3, 3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
