//! The edge simulator: FIFO device compute → fading uplink → weighted
//! processor-sharing edge server, driven by a deterministic event queue.
//!
//! The hot path is allocation-free in steady state: requests live in a
//! slab ([`FlightPool`]) and move between device/uplink queues as index
//! links, events carry [`EventKey`]s so superseded timers are cancelled
//! (and eventually compacted) instead of popped lazily, and all per-run
//! state lives in a reusable [`SimScratch`].

use crate::cluster::Cluster;
use crate::engine::{EventKey, EventQueue};
use crate::error::SimError;
use crate::faults::{FaultClass, FaultKind, FaultPlan};
use crate::metrics::{
    FaultClassStats, FaultMetrics, LatencyStats, RecoveryMetrics, SimReport, StreamAccum,
};
use crate::net::CachedLink;
use crate::recovery::{
    BreakerConfig, BreakerState, CircuitBreaker, HealthSnapshot, RecoveryConfig,
};
use crate::rng::SimRng;
use crate::task::{CompiledStream, RunTask};
use crate::time::SimTime;
use crate::tracelog::{FaultRecord, RunTrace, TaskRecord};
use crate::workload::ArrivalState;
use scalpel_surgery::DegradeRung;
use serde::{Deserialize, Serialize};

/// Simulation horizon and determinism knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Stop generating arrivals after this many simulated seconds
    /// (in-flight requests still drain).
    pub horizon_s: f64,
    /// Ignore requests arriving before this time (transient removal).
    pub warmup_s: f64,
    /// Master seed; all streams derive from it.
    pub seed: u64,
    /// Whether Rayleigh fading perturbs each transmission (off = planner's
    /// mean-rate world, useful for analytic-vs-sim validation).
    pub fading: bool,
    /// Fault schedule executed alongside the workload (empty = clean run).
    pub faults: FaultPlan,
    /// Closed-loop recovery policies (default: all off — a run with
    /// [`RecoveryConfig::none`] is bit-identical to the pre-recovery
    /// simulator: no extra events, no extra RNG draws).
    #[serde(default)]
    pub recovery: RecoveryConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            horizon_s: 30.0,
            warmup_s: 2.0,
            seed: 1,
            fading: true,
            faults: FaultPlan::none(),
            recovery: RecoveryConfig::none(),
        }
    }
}

/// Events of the edge simulation. `Copy` so the event queue can store
/// payloads in a flat slab with no per-event boxing or cloning.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Next request of `stream` arrives.
    Arrive { stream: usize },
    /// The request at the head of `device`'s compute unit finishes.
    /// Stale generations (device went down mid-service) are ignored.
    DeviceDone { device: usize, gen: u64 },
    /// The transmission at the head of `device`'s uplink finishes.
    /// Stale generations (AP outage re-queued the data) are ignored.
    TxDone { device: usize, gen: u64 },
    /// Re-examine server `server`'s processor-sharing state.
    ServerCheck { server: usize, gen: u64 },
    /// Execute fault event `idx` of the plan.
    Fault { idx: usize },
    /// Retry watchdog for request `req` on `device`'s uplink. Stale if the
    /// request has left the uplink or already retried (`attempt` mismatch).
    RetryTimeout {
        device: usize,
        req: u64,
        attempt: u32,
    },
    /// Emit a control-plane health snapshot and reschedule.
    Telemetry,
}

/// Null slab index (`Option<u32>` without the discriminant).
const NIL: u32 = u32::MAX;
/// "Not degrading" sentinel for [`InFlight::degrade_to`].
const NO_RUNG: u32 = u32::MAX;

/// A request with its accumulated timing breakdown. `Copy` (36 × 8-byte
/// words of plain data): queue moves copy an index, never this struct.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    task: RunTask,
    device_wait: f64,
    device_service: f64,
    tx_time: f64,
    /// Unique per-run request id (retry-watchdog addressing).
    req: u64,
    /// Uplink attempts already timed out (0 = first attempt).
    attempts: u32,
    /// Hedged server override; `None` = the stream's primary server.
    target: Option<usize>,
    /// Rung index (into the stream's `degrade.rungs`) this request is
    /// completing through; [`NO_RUNG`] = nominal path.
    degrade_to: u32,
    /// Pending retry watchdog, cancelled when the request leaves the
    /// uplink so stale timers never pile up in the event heap.
    retry_key: EventKey,
}

/// Slot of the [`FlightPool`] slab: a request plus its intrusive link.
#[derive(Debug, Clone, Copy)]
struct FlightSlot {
    flight: InFlight,
    /// Next request in whichever [`FlightList`] holds this slot, or the
    /// next free slot while on the free list.
    next: u32,
}

/// Slab allocator for [`InFlight`] records with an intrusive free list.
/// Capacity is retained across runs, so steady state never reallocates.
#[derive(Debug, Default)]
struct FlightPool {
    slots: Vec<FlightSlot>,
    free_head: u32,
}

impl FlightPool {
    fn alloc(&mut self, flight: InFlight) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            self.free_head = slot.next;
            slot.flight = flight;
            slot.next = NIL;
            idx
        } else {
            let idx = self.slots.len() as u32;
            assert!(idx != NIL, "flight pool overflow");
            self.slots.push(FlightSlot { flight, next: NIL });
            idx
        }
    }

    fn free(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        slot.next = self.free_head;
        self.free_head = idx;
    }

    fn get(&self, idx: u32) -> &InFlight {
        &self.slots[idx as usize].flight
    }

    fn get_mut(&mut self, idx: u32) -> &mut InFlight {
        &mut self.slots[idx as usize].flight
    }

    fn next_of(&self, idx: u32) -> u32 {
        self.slots[idx as usize].next
    }

    /// Forget all flights but keep the slab's capacity.
    fn reset(&mut self) {
        self.slots.clear();
        self.free_head = NIL;
    }
}

/// FIFO of slab indices linked through [`FlightSlot::next`].
#[derive(Debug, Clone, Copy)]
struct FlightList {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for FlightList {
    fn default() -> Self {
        Self {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

impl FlightList {
    fn is_empty(&self) -> bool {
        self.head == NIL
    }

    fn push_back(&mut self, pool: &mut FlightPool, idx: u32) {
        pool.slots[idx as usize].next = NIL;
        if self.tail == NIL {
            self.head = idx;
        } else {
            pool.slots[self.tail as usize].next = idx;
        }
        self.tail = idx;
        self.len += 1;
    }

    fn push_front(&mut self, pool: &mut FlightPool, idx: u32) {
        pool.slots[idx as usize].next = self.head;
        if self.head == NIL {
            self.tail = idx;
        }
        self.head = idx;
        self.len += 1;
    }

    fn pop_front(&mut self, pool: &mut FlightPool) -> Option<u32> {
        if self.head == NIL {
            return None;
        }
        let idx = self.head;
        self.head = pool.slots[idx as usize].next;
        if self.head == NIL {
            self.tail = NIL;
        }
        self.len -= 1;
        Some(idx)
    }

    /// Unlink `idx`, whose predecessor in this list is `prev` ([`NIL`] if
    /// `idx` is the head).
    fn unlink_after(&mut self, pool: &mut FlightPool, prev: u32, idx: u32) {
        let next = pool.slots[idx as usize].next;
        if prev == NIL {
            self.head = next;
        } else {
            pool.slots[prev as usize].next = next;
        }
        if self.tail == idx {
            self.tail = prev;
        }
        self.len -= 1;
    }
}

/// A service station (device compute unit or uplink): its FIFO backlog
/// plus the request currently in service ([`NIL`] = idle).
#[derive(Debug, Clone, Copy)]
struct Lane {
    queue: FlightList,
    current: u32,
}

impl Default for Lane {
    fn default() -> Self {
        Self {
            queue: FlightList::default(),
            current: NIL,
        }
    }
}

/// One request in a server's processor-sharing station, keyed by its
/// *virtual finish tag*. Under weighted PS every active request advances
/// at rate `capacity · w/Σw`; in virtual time (where the station's clock
/// runs at `capacity/Σw` per real second) a request entering with `f`
/// FLOPs and weight `w` finishes exactly when the virtual clock reaches
/// `vclock_at_entry + f/w` — a constant, fixed at admission. Ordering the
/// station by that tag turns the per-event O(active) integration and
/// minimum scans into O(1) clock bumps and heap peeks.
#[derive(Debug, Clone, Copy)]
struct ServedEntry {
    /// Virtual finish tag (`+∞` for weight-0 entries: starved under PS).
    vtag: f64,
    /// Admission sequence number — deterministic tie-break for equal tags.
    seq: u64,
    /// Slab index of the request being served.
    flight: u32,
    weight: f64,
    entered: SimTime,
}

impl PartialEq for ServedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for ServedEntry {}
impl PartialOrd for ServedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ServedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed (other vs self): `BinaryHeap` is a max-heap and we
        // want the smallest tag on top. `total_cmp` keeps a NaN tag (a
        // poisoned workload) sorting *after* +∞ — it parks at the bottom
        // instead of panicking the comparator like the old
        // `partial_cmp().expect("finite")` scan did.
        other
            .vtag
            .total_cmp(&self.vtag)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct ServerState {
    capacity_fps: f64,
    /// Nominal capacity; `capacity_fps` drops below it while throttled.
    base_fps: f64,
    /// Station virtual clock: advances at `capacity/Σw` per real second
    /// while anything is active. Reset to 0 whenever the station drains,
    /// which also bounds floating-point drift in [`Self::total_w`].
    vclock: f64,
    /// Incrementally-maintained Σ weight of the served heap.
    total_w: f64,
    /// Admission counter feeding [`ServedEntry::seq`].
    seq: u64,
    /// Active requests, min-heap by virtual finish tag.
    served: std::collections::BinaryHeap<ServedEntry>,
    last: SimTime,
    gen: u64,
    /// Seconds with ≥1 active request (for the utilization report).
    busy_s: f64,
    /// Scalar PS oracle: the pre-virtual-time per-entry integration, run
    /// beside the heap so completions can be cross-checked.
    #[cfg(feature = "kernel-xcheck")]
    mirror: Vec<(u32, f64, f64)>, // (flight, remaining_flops, weight)
}

impl ServerState {
    /// Account processor sharing between `self.last` and `now`: one
    /// virtual-clock bump, O(1) regardless of how many requests share the
    /// station (the old per-entry `remaining -= dt·rate` sweep averaged
    /// hundreds of elements per event on fleet-scale runs).
    fn advance(&mut self, now: SimTime) {
        let dt = now.secs_since(self.last);
        self.last = now;
        if dt <= 0.0 || self.served.is_empty() {
            return;
        }
        self.busy_s += dt;
        // Σw ≤ 0 with a non-empty station (every weight 0/NaN) starves
        // all of it: virtual time stands still. The old scan divided by
        // the zero total and panicked on the resulting NaN in
        // `time_to_next_completion`; parking the work is the panic-free
        // reading of the same degenerate input.
        if self.total_w > 0.0 {
            self.vclock += dt * self.capacity_fps / self.total_w;
        }
        #[cfg(feature = "kernel-xcheck")]
        {
            let total_w: f64 = self.mirror.iter().map(|m| m.2).sum();
            for m in &mut self.mirror {
                m.1 -= dt * self.capacity_fps * m.2 / total_w;
            }
        }
    }

    /// Admit a request (station must be advanced to `now` first).
    fn admit(&mut self, flight: u32, flops: f64, weight: f64, entered: SimTime) {
        let vtag = if weight > 0.0 {
            self.vclock + flops / weight
        } else {
            f64::INFINITY
        };
        self.seq += 1;
        self.served.push(ServedEntry {
            vtag,
            seq: self.seq,
            flight,
            weight,
            entered,
        });
        self.total_w += weight;
        #[cfg(feature = "kernel-xcheck")]
        self.mirror.push((flight, flops, weight));
    }

    /// Pop every request within `eps` FLOPs of completion (in tag order),
    /// appending `(flight, entered)` to `done`. A remaining-work straggler
    /// deeper in the heap (small weight ⇒ late tag despite little work
    /// left) completes at its own tag instead of piggybacking on this
    /// sweep — a (documented) event-ordering difference from the old
    /// full-vector scan; golden pins were re-recorded over it.
    fn pop_completions(&mut self, eps: f64, done: &mut Vec<(u32, SimTime)>) {
        while let Some(top) = self.served.peek() {
            // Remaining work of the head is (vtag − vclock)·w. NaN/+∞
            // tags fail the test and stay parked.
            if (top.vtag - self.vclock) * top.weight <= eps {
                let e = self.served.pop().unwrap_or_else(|| unreachable!());
                self.total_w -= e.weight;
                done.push((e.flight, e.entered));
                #[cfg(feature = "kernel-xcheck")]
                {
                    let i = self
                        .mirror
                        .iter()
                        .position(|m| m.0 == e.flight)
                        .expect("xcheck: popped flight missing from scalar mirror");
                    let (_, remaining, _) = self.mirror.swap_remove(i);
                    // The scalar integration re-associates differently
                    // (per-entry Σw each step), so agreement is to a
                    // tolerance: a microsecond of full-capacity work.
                    let tol = eps + 1e-6 * self.capacity_fps.max(1.0);
                    assert!(
                        remaining <= tol,
                        "xcheck: completed flight {} still has {remaining} FLOPs (tol {tol})",
                        e.flight
                    );
                }
            } else {
                break;
            }
        }
        if self.served.is_empty() {
            // Draining resets the station clock: bounds vclock growth and
            // zeroes any accumulated ± drift in the incremental Σw.
            self.vclock = 0.0;
            self.total_w = 0.0;
        }
    }

    /// Seconds until the next in-progress request completes: the head
    /// tag's distance in virtual time, converted back to real seconds.
    /// `None` for an empty or fully-starved station (the old scan
    /// panicked on the latter).
    fn time_to_next_completion(&self) -> Option<f64> {
        let top = self.served.peek()?;
        if self.total_w <= 0.0 || self.total_w.is_nan() || top.vtag.is_nan() {
            return None;
        }
        Some(((top.vtag - self.vclock) * self.total_w / self.capacity_fps).max(0.0))
    }

    /// Re-point this station at `spec` capacity and drop run state,
    /// keeping the served heap's storage.
    fn reset(&mut self, fps: f64) {
        self.capacity_fps = fps;
        self.base_fps = fps;
        self.served.clear();
        self.vclock = 0.0;
        self.total_w = 0.0;
        self.seq = 0;
        self.last = SimTime::ZERO;
        self.gen = 0;
        self.busy_s = 0.0;
        #[cfg(feature = "kernel-xcheck")]
        self.mirror.clear();
    }
}

/// The heterogeneous-edge discrete-event simulator.
pub struct EdgeSim {
    cluster: Cluster,
    streams: Vec<CompiledStream>,
    config: SimConfig,
}

impl EdgeSim {
    /// Build a simulator over a validated topology and compiled streams.
    pub fn new(
        cluster: Cluster,
        streams: Vec<CompiledStream>,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        cluster.validate()?;
        for (i, s) in streams.iter().enumerate() {
            let bad = |detail: String| SimError::InvalidStream { stream: i, detail };
            if s.id != i {
                return Err(bad(format!("has id {}", s.id)));
            }
            if s.device >= cluster.devices.len() {
                return Err(bad(format!("references missing device {}", s.device)));
            }
            if let Some(srv) = s.server {
                if srv >= cluster.servers.len() {
                    return Err(bad(format!("references missing server {srv}")));
                }
            }
            for &alt in &s.fallback_servers {
                if alt >= cluster.servers.len() {
                    return Err(bad(format!("references missing fallback server {alt}")));
                }
            }
            s.validate().map_err(bad)?;
            s.arrivals.validate()?;
        }
        if config.horizon_s <= config.warmup_s {
            return Err(SimError::InvalidConfig {
                detail: "horizon must exceed warmup".into(),
            });
        }
        config.faults.validate(&cluster)?;
        config.recovery.validate()?;
        Ok(Self {
            cluster,
            streams,
            config,
        })
    }

    /// Run to completion and report measured statistics.
    pub fn run(&self) -> SimReport {
        let mut scratch = SimScratch::new();
        self.run_with_scratch(&mut scratch)
    }

    /// Run to completion reusing caller-owned scratch state. Semantically
    /// identical to [`EdgeSim::run`] (bit-for-bit, regardless of what the
    /// scratch previously simulated) but allocation-free once the scratch
    /// is warm.
    pub fn run_with_scratch(&self, scratch: &mut SimScratch) -> SimReport {
        self.run_internal(scratch, false).0
    }

    /// Run to completion, additionally returning one [`TaskRecord`] per
    /// measured completion (in completion order).
    pub fn run_traced(&self) -> (SimReport, Vec<TaskRecord>) {
        let (report, trace) = self.run_logged();
        (report, trace.tasks)
    }

    /// Run to completion with full event logging: per-completion timing
    /// records plus one [`FaultRecord`] per executed fault event.
    pub fn run_logged(&self) -> (SimReport, RunTrace) {
        let mut scratch = SimScratch::new();
        self.run_logged_with_scratch(&mut scratch)
    }

    /// [`EdgeSim::run_logged`] reusing caller-owned scratch state.
    pub fn run_logged_with_scratch(&self, scratch: &mut SimScratch) -> (SimReport, RunTrace) {
        self.run_internal(scratch, true)
    }

    fn run_internal(&self, scratch: &mut SimScratch, record: bool) -> (SimReport, RunTrace) {
        scratch.reset(self);
        scratch.record = record;
        Runner {
            sim: self,
            st: scratch,
        }
        .run()
    }
}

/// Robustness counters accumulated while faults execute.
#[derive(Debug, Default)]
struct FaultAccum {
    injected: usize,
    applied: usize,
    stranded: usize,
    stalled: usize,
    completions_during: usize,
    misses_during: usize,
    recovery_sum_s: f64,
    recoveries: usize,
    per_injected: [usize; 4],
    per_applied: [usize; 4],
    per_stranded: [usize; 4],
    per_misses: [usize; 4],
}

impl FaultAccum {
    fn finish(self) -> FaultMetrics {
        FaultMetrics {
            injected: self.injected,
            applied: self.applied,
            stranded: self.stranded,
            stalled: self.stalled,
            completions_during_fault: self.completions_during,
            misses_during_fault: self.misses_during,
            recoveries: self.recoveries,
            mean_recovery_s: if self.recoveries > 0 {
                self.recovery_sum_s / self.recoveries as f64
            } else {
                0.0
            },
            per_class: FaultClass::ALL
                .iter()
                .map(|&class| {
                    let i = class.index();
                    FaultClassStats {
                        class,
                        injected: self.per_injected[i],
                        applied: self.per_applied[i],
                        stranded: self.per_stranded[i],
                        misses_during: self.per_misses[i],
                    }
                })
                .collect(),
        }
    }
}

/// Counter baseline of the previous telemetry epoch.
#[derive(Debug, Default, Clone, Copy)]
struct SnapBase {
    completed: usize,
    misses: usize,
    timeouts: usize,
    degraded: usize,
    shed: usize,
}

/// Recovery counters accumulated during a run.
#[derive(Debug, Default)]
struct RecoveryAccum {
    timeouts: usize,
    retries: usize,
    hedges: usize,
    degraded: usize,
    degraded_on_time: usize,
    shed: usize,
    /// Accuracy the degraded requests' nominal paths would have credited.
    nominal_acc_sum: f64,
    /// Accuracy actually credited to degraded completions.
    degraded_acc_sum: f64,
}

/// Reusable per-run state of the simulator: the event queue, the flight
/// slab, queues, breakers, RNGs and every metrics accumulator.
///
/// A scratch can be reused across seeds, postures, and unrelated
/// [`EdgeSim`] instances — [`EdgeSim::run_with_scratch`] resets it on
/// entry, so the report is bit-identical to a fresh run while the
/// capacity of every buffer (slab slots, heap entries, latency vectors,
/// breaker windows) is amortized across runs. Mirrors the optimizer's
/// `AllocScratch` pattern.
pub struct SimScratch {
    queue: EventQueue<Ev>,
    pool: FlightPool,
    devices: Vec<Lane>,
    uplinks: Vec<Lane>,
    servers: Vec<ServerState>,
    links: Vec<CachedLink>,
    arrival_states: Vec<ArrivalState>,
    arrival_rngs: Vec<SimRng>,
    difficulty_rng: SimRng,
    fading_rng: SimRng,
    accums: Vec<StreamAccum>,
    generated: usize,
    horizon: SimTime,
    warmup: SimTime,
    /// Whether task/fault records are collected this run.
    record: bool,
    trace: Vec<TaskRecord>,
    fault_trace: Vec<FaultRecord>,
    // --- fault-injection state ---
    /// Whether each device is powered on.
    device_up: Vec<bool>,
    /// Generation counter invalidating in-flight `DeviceDone` events.
    dev_gen: Vec<u64>,
    /// Whether each AP's radio is up.
    ap_up: Vec<bool>,
    /// Effective-rate multiplier per AP (1.0 = nominal).
    ap_bw_factor: Vec<f64>,
    /// Generation counter invalidating in-flight `TxDone` events.
    tx_gen: Vec<u64>,
    /// Whether each stream has an `Arrive` event in the queue (suppressed
    /// while its device is down; restarted on `DeviceUp`).
    arrival_pending: Vec<bool>,
    /// Stream ids hosted on each device.
    streams_by_device: Vec<Vec<usize>>,
    /// Device ids attached to each AP (ascending).
    devices_by_ap: Vec<Vec<usize>>,
    /// Currently-active fault count per class (attribution of misses).
    active_faults: [usize; 4],
    /// Outage start times, for recovery-time accounting.
    device_down_at: Vec<Option<SimTime>>,
    ap_down_at: Vec<Option<SimTime>>,
    ap_degraded_at: Vec<Option<SimTime>>,
    server_throttled_at: Vec<Option<SimTime>>,
    fa: FaultAccum,
    // --- recovery state ---
    /// Whether any recovery layer is on (gates every recovery code path).
    recovery_active: bool,
    /// Next unique request id.
    next_req: u64,
    /// Per-server breakers (present iff `recovery.breakers` is set).
    srv_breakers: Option<Vec<CircuitBreaker>>,
    /// Per-AP breakers (present iff `recovery.breakers` is set).
    ap_breakers: Option<Vec<CircuitBreaker>>,
    ra: RecoveryAccum,
    /// Outstanding local-finish degradation work per device, seconds.
    /// The ladder is load-aware: committed-but-unfinished suffix work
    /// shrinks the slack offered to the next faller, so an overloaded
    /// device falls to forced exits (zero extra compute) instead of
    /// queueing unbounded local work that churn would strand wholesale.
    degrade_backlog_s: Vec<f64>,
    /// Telemetry snapshots, in epoch order.
    health: Vec<HealthSnapshot>,
    /// Cumulative measured completions / misses (telemetry deltas).
    meas_completed: usize,
    meas_misses: usize,
    /// Counter values at the previous telemetry snapshot.
    last_snap: SnapBase,
    /// Completion staging buffer for `on_server_check`.
    done_buf: Vec<(u32, SimTime)>,
    /// Pooled latency samples for the aggregate report.
    lat_all: Vec<f64>,
}

impl Default for SimScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl SimScratch {
    /// An empty scratch; buffers grow on first use and are kept after.
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            pool: FlightPool::default(),
            devices: Vec::new(),
            uplinks: Vec::new(),
            servers: Vec::new(),
            links: Vec::new(),
            arrival_states: Vec::new(),
            arrival_rngs: Vec::new(),
            difficulty_rng: SimRng::new(0, 0),
            fading_rng: SimRng::new(0, 0),
            accums: Vec::new(),
            generated: 0,
            horizon: SimTime::ZERO,
            warmup: SimTime::ZERO,
            record: false,
            trace: Vec::new(),
            fault_trace: Vec::new(),
            device_up: Vec::new(),
            dev_gen: Vec::new(),
            ap_up: Vec::new(),
            ap_bw_factor: Vec::new(),
            tx_gen: Vec::new(),
            arrival_pending: Vec::new(),
            streams_by_device: Vec::new(),
            devices_by_ap: Vec::new(),
            active_faults: [0; 4],
            device_down_at: Vec::new(),
            ap_down_at: Vec::new(),
            ap_degraded_at: Vec::new(),
            server_throttled_at: Vec::new(),
            fa: FaultAccum::default(),
            recovery_active: false,
            next_req: 0,
            srv_breakers: None,
            ap_breakers: None,
            ra: RecoveryAccum::default(),
            degrade_backlog_s: Vec::new(),
            health: Vec::new(),
            meas_completed: 0,
            meas_misses: 0,
            last_snap: SnapBase::default(),
            done_buf: Vec::new(),
            lat_all: Vec::new(),
        }
    }

    /// Events scheduled during the last run.
    pub fn events_scheduled(&self) -> u64 {
        self.queue.scheduled()
    }

    /// Events delivered (popped live) during the last run.
    pub fn events_delivered(&self) -> u64 {
        self.queue.delivered()
    }

    /// Timers cancelled before firing during the last run.
    pub fn events_cancelled(&self) -> u64 {
        self.queue.cancelled()
    }

    /// Timing-wheel rotations (overflow sweeps) during the last run.
    pub fn queue_rotations(&self) -> u64 {
        self.queue.rotations()
    }

    /// Rebind every buffer to `sim`'s shape and clear run state, reusing
    /// capacity element-wise. Called on entry by every run, so no state
    /// from a previous run (on any simulator) can leak into this one.
    fn reset(&mut self, sim: &EdgeSim) {
        let n_dev = sim.cluster.devices.len();
        let n_ap = sim.cluster.aps.len();
        let n_srv = sim.cluster.servers.len();
        let n_str = sim.streams.len();
        let seed = sim.config.seed;
        self.queue.reset();
        self.pool.reset();
        self.devices.clear();
        self.devices.resize_with(n_dev, Lane::default);
        self.uplinks.clear();
        self.uplinks.resize_with(n_dev, Lane::default);
        if self.servers.len() == n_srv {
            for (st, spec) in self.servers.iter_mut().zip(&sim.cluster.servers) {
                st.reset(spec.proc.flops_per_sec);
            }
        } else {
            self.servers.clear();
            self.servers.extend(sim.cluster.servers.iter().map(|s| {
                let mut st = ServerState {
                    capacity_fps: 0.0,
                    base_fps: 0.0,
                    vclock: 0.0,
                    total_w: 0.0,
                    seq: 0,
                    served: std::collections::BinaryHeap::new(),
                    last: SimTime::ZERO,
                    gen: 0,
                    busy_s: 0.0,
                    #[cfg(feature = "kernel-xcheck")]
                    mirror: Vec::new(),
                };
                st.reset(s.proc.flops_per_sec);
                st
            }));
        }
        self.links.clear();
        self.links
            .extend((0..n_dev).map(|d| sim.cluster.link(d).cached()));
        self.arrival_states.clear();
        self.arrival_states.resize(n_str, ArrivalState::default());
        self.arrival_rngs.clear();
        self.arrival_rngs
            .extend((0..n_str).map(|i| SimRng::new(seed, 1000 + i as u64)));
        self.difficulty_rng = SimRng::new(seed, 1);
        self.fading_rng = SimRng::new(seed, 2);
        if self.accums.len() == n_str {
            for a in &mut self.accums {
                a.reset();
            }
        } else {
            self.accums.clear();
            self.accums.resize_with(n_str, StreamAccum::default);
        }
        self.generated = 0;
        self.horizon = SimTime::from_secs_f64(sim.config.horizon_s);
        self.warmup = SimTime::from_secs_f64(sim.config.warmup_s);
        self.record = false;
        self.trace.clear();
        self.fault_trace.clear();
        self.device_up.clear();
        self.device_up.resize(n_dev, true);
        self.dev_gen.clear();
        self.dev_gen.resize(n_dev, 0);
        self.ap_up.clear();
        self.ap_up.resize(n_ap, true);
        self.ap_bw_factor.clear();
        self.ap_bw_factor.resize(n_ap, 1.0);
        self.tx_gen.clear();
        self.tx_gen.resize(n_dev, 0);
        self.arrival_pending.clear();
        self.arrival_pending.resize(n_str, false);
        for v in &mut self.streams_by_device {
            v.clear();
        }
        self.streams_by_device.resize_with(n_dev, Vec::new);
        self.streams_by_device.truncate(n_dev);
        for (i, s) in sim.streams.iter().enumerate() {
            self.streams_by_device[s.device].push(i);
        }
        for v in &mut self.devices_by_ap {
            v.clear();
        }
        self.devices_by_ap.resize_with(n_ap, Vec::new);
        self.devices_by_ap.truncate(n_ap);
        for (d, spec) in sim.cluster.devices.iter().enumerate() {
            self.devices_by_ap[spec.ap].push(d);
        }
        self.active_faults = [0; 4];
        self.device_down_at.clear();
        self.device_down_at.resize(n_dev, None);
        self.ap_down_at.clear();
        self.ap_down_at.resize(n_ap, None);
        self.ap_degraded_at.clear();
        self.ap_degraded_at.resize(n_ap, None);
        self.server_throttled_at.clear();
        self.server_throttled_at.resize(n_srv, None);
        self.fa = FaultAccum::default();
        self.recovery_active = sim.config.recovery.is_active();
        self.next_req = 0;
        match &sim.config.recovery.breakers {
            Some(bc) => {
                reset_breakers(&mut self.srv_breakers, n_srv, bc);
                reset_breakers(&mut self.ap_breakers, n_ap, bc);
            }
            None => {
                self.srv_breakers = None;
                self.ap_breakers = None;
            }
        }
        self.ra = RecoveryAccum::default();
        self.degrade_backlog_s.clear();
        self.degrade_backlog_s.resize(n_dev, 0.0);
        self.health.clear();
        self.meas_completed = 0;
        self.meas_misses = 0;
        self.last_snap = SnapBase::default();
        self.done_buf.clear();
        self.lat_all.clear();
    }
}

/// Size `slot` to `n` breakers configured with `cfg`, reusing the window
/// buffers of existing breakers when the count matches.
fn reset_breakers(slot: &mut Option<Vec<CircuitBreaker>>, n: usize, cfg: &BreakerConfig) {
    match slot {
        Some(v) if v.len() == n => {
            for b in v.iter_mut() {
                b.reset(cfg.clone());
            }
        }
        _ => *slot = Some((0..n).map(|_| CircuitBreaker::new(cfg.clone())).collect()),
    }
}

/// First rung whose committed device seconds fit within `avail`
/// (replicates `DegradeLadder::best_within`, by index), else — on an
/// idle device — the cheapest rung (replicates `cheapest`'s tie-break:
/// least extra compute, then highest accuracy).
fn pick_rung(rungs: &[DegradeRung], avail: f64, idle: bool) -> Option<usize> {
    rungs
        .iter()
        .position(|r| r.extra_device_s <= avail)
        .or_else(|| {
            if !idle {
                return None;
            }
            rungs
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.extra_device_s
                        .total_cmp(&b.extra_device_s)
                        .then(b.accuracy.total_cmp(&a.accuracy))
                })
                .map(|(i, _)| i)
        })
}

/// Return a stranded flight's slot to the pool, folding its degrade
/// backlog out and counting it if measured. Flights are freed one at a
/// time (never walked while freeing) because `free` reuses the link.
#[allow(clippy::too_many_arguments)]
fn strand_flight(
    sim: &EdgeSim,
    pool: &mut FlightPool,
    queue: &mut EventQueue<Ev>,
    backlog: &mut f64,
    stranded: &mut usize,
    warmup: SimTime,
    horizon: SimTime,
    idx: u32,
) {
    let f = *pool.get(idx);
    if f.degrade_to != NO_RUNG {
        let extra = sim.streams[f.task.stream].degrade.rungs[f.degrade_to as usize].extra_device_s;
        *backlog = (*backlog - extra).max(0.0);
    }
    if f.task.arrival >= warmup && f.task.arrival < horizon {
        *stranded += 1;
    }
    queue.cancel(f.retry_key);
    pool.free(idx);
}

/// One run of the simulation: an immutable [`EdgeSim`] plus the mutable
/// [`SimScratch`] it writes into.
struct Runner<'a> {
    sim: &'a EdgeSim,
    st: &'a mut SimScratch,
}

impl Runner<'_> {
    fn run(mut self) -> (SimReport, RunTrace) {
        let sim = self.sim;
        {
            let st = &mut *self.st;
            // Seed the first arrival of every stream.
            for i in 0..sim.streams.len() {
                let gap = st.arrival_states[i]
                    .next_gap(&sim.streams[i].arrivals, &mut st.arrival_rngs[i]);
                st.arrival_pending[i] = true;
                st.queue
                    .post(SimTime::from_secs_f64(gap), Ev::Arrive { stream: i });
            }
            // Schedule the fault plan as first-class events.
            for (idx, fe) in sim.config.faults.events.iter().enumerate() {
                st.queue
                    .post(SimTime::from_secs_f64(fe.at_s), Ev::Fault { idx });
            }
            // First control-plane telemetry epoch, if enabled.
            let epoch = sim.config.recovery.telemetry_epoch_s;
            if epoch > 0.0 {
                st.queue.post(SimTime::from_secs_f64(epoch), Ev::Telemetry);
            }
        }
        while let Some((now, ev)) = self.st.queue.pop() {
            match ev {
                Ev::Arrive { stream } => self.on_arrive(now, stream),
                Ev::DeviceDone { device, gen } => self.on_device_done(now, device, gen),
                Ev::TxDone { device, gen } => self.on_tx_done(now, device, gen),
                Ev::ServerCheck { server, gen } => self.on_server_check(now, server, gen),
                Ev::Fault { idx } => self.on_fault(now, idx),
                Ev::RetryTimeout {
                    device,
                    req,
                    attempt,
                } => self.on_retry_timeout(now, device, req, attempt),
                Ev::Telemetry => self.on_telemetry(now),
            }
        }
        self.finish()
    }

    fn measured(&self, arrival: SimTime) -> bool {
        arrival >= self.st.warmup && arrival < self.st.horizon
    }

    fn on_arrive(&mut self, now: SimTime, stream: usize) {
        let sim = self.sim;
        let st = &mut *self.st;
        st.arrival_pending[stream] = false;
        if now >= st.horizon {
            return; // stop generating; the system drains
        }
        let s = &sim.streams[stream];
        if !st.device_up[s.device] {
            // The device is away: its arrival process pauses here and is
            // restarted by the matching DeviceUp event.
            return;
        }
        // Pre-sample the exit decision from the input's latent difficulty.
        let u = st.difficulty_rng.open01();
        let exit = s.behavior.sample_exit(u);
        let accuracy = match exit {
            Some(i) => s.acc_at_exit[i],
            None => s.acc_full,
        };
        if now >= st.warmup && now < st.horizon {
            st.generated += 1;
        }
        let req = st.next_req;
        st.next_req += 1;
        let idx = st.pool.alloc(InFlight {
            task: RunTask {
                stream,
                arrival: now,
                exit,
                accuracy,
            },
            device_wait: 0.0,
            device_service: 0.0,
            tx_time: 0.0,
            req,
            attempts: 0,
            target: None,
            degrade_to: NO_RUNG,
            retry_key: EventKey::NONE,
        });
        let dev = s.device;
        st.devices[dev].queue.push_back(&mut st.pool, idx);
        self.maybe_start_device(now, dev);
        // Schedule the next arrival.
        let st = &mut *self.st;
        let gap = st.arrival_states[stream]
            .next_gap(&sim.streams[stream].arrivals, &mut st.arrival_rngs[stream]);
        st.arrival_pending[stream] = true;
        st.queue.post(now.after_secs(gap), Ev::Arrive { stream });
    }

    fn maybe_start_device(&mut self, now: SimTime, device: usize) {
        let sim = self.sim;
        let st = &mut *self.st;
        if !st.device_up[device] || st.devices[device].current != NIL {
            return;
        }
        let Some(idx) = st.devices[device].queue.pop_front(&mut st.pool) else {
            return;
        };
        let (stream, rung) = {
            let f = st.pool.get(idx);
            (f.task.stream, f.degrade_to)
        };
        let s = &sim.streams[stream];
        let service = if rung != NO_RUNG {
            // Local-finish degradation: the suffix beyond the prefix the
            // device already ran.
            s.degrade.rungs[rung as usize].extra_device_s
        } else {
            match st.pool.get(idx).task.exit {
                Some(i) => s.device_time_to_exit[i],
                None => s.device_full_time,
            }
        };
        {
            let f = st.pool.get_mut(idx);
            if rung != NO_RUNG {
                f.device_service += service;
            } else {
                f.device_wait = now.secs_since(f.task.arrival);
                f.device_service = service;
            }
        }
        st.devices[device].current = idx;
        st.dev_gen[device] += 1;
        let gen = st.dev_gen[device];
        // Fire-and-forget: a stale DeviceDone (device went down, gen
        // bumped) delivers and is discarded by the guard below.
        st.queue
            .post(now.after_secs(service), Ev::DeviceDone { device, gen });
    }

    fn on_device_done(&mut self, now: SimTime, device: usize, gen: u64) {
        if gen != self.st.dev_gen[device] {
            return; // the device went down mid-service; the work is gone
        }
        let idx = self.st.devices[device].current;
        assert!(idx != NIL, "DeviceDone without a running request");
        self.st.devices[device].current = NIL;
        let (stream, rung, exits) = {
            let f = self.st.pool.get(idx);
            (f.task.stream, f.degrade_to, f.task.exit.is_some())
        };
        let s = &self.sim.streams[stream];
        if rung != NO_RUNG {
            // A local-finish degradation just completed its suffix; its
            // committed work leaves the ladder's backlog estimate.
            let extra = s.degrade.rungs[rung as usize].extra_device_s;
            self.st.degrade_backlog_s[device] =
                (self.st.degrade_backlog_s[device] - extra).max(0.0);
            self.complete_degraded(now, idx);
        } else if exits || s.server.is_none() {
            // Completed on the device (early exit, or a device-only plan).
            self.complete(now, idx, 0.0);
        } else if self.st.recovery_active {
            self.route_offload(now, idx, device);
        } else {
            let st = &mut *self.st;
            st.uplinks[device].queue.push_back(&mut st.pool, idx);
            self.maybe_start_tx(now, device);
        }
        self.maybe_start_device(now, device);
    }

    /// Recovery-aware offload admission: check path health (breakers),
    /// hedge to a fallback server, test deadline feasibility, and either
    /// queue on the uplink with a retry watchdog or fall down the
    /// degradation ladder.
    fn route_offload(&mut self, now: SimTime, idx: u32, device: usize) {
        let sim = self.sim;
        let (stream, arrival, req, attempts) = {
            let f = self.st.pool.get(idx);
            (f.task.stream, f.task.arrival, f.req, f.attempts)
        };
        let s = &sim.streams[stream];
        let cfg = &sim.config.recovery;
        let primary = s.server.expect("offloaded stream has a server");
        let ap = sim.cluster.devices[device].ap;
        let now_s = now.as_secs_f64();
        let slack = s.deadline_s - now.secs_since(arrival);

        // The shared uplink is the only path off the device: an open AP
        // breaker fails the request over to the degradation ladder.
        if let Some(ap_brk) = self.st.ap_breakers.as_mut() {
            if !ap_brk[ap].try_acquire(now_s) {
                self.fall_back(now, idx, device);
                return;
            }
        }
        // Pick a server: the primary first, then (when hedging) each
        // fallback in preference order. A candidate is skipped when its
        // breaker refuses traffic, or when even the queue-free nominal
        // path through it cannot meet the deadline (a guaranteed miss —
        // degrading trades doomed network work for a local completion).
        let mut target = None;
        for c in std::iter::once(primary).chain(
            if cfg.hedge {
                s.fallback_servers.as_slice()
            } else {
                &[]
            }
            .iter()
            .copied(),
        ) {
            if cfg.degrade && self.nominal_path_estimate(stream, device, c) > slack {
                continue;
            }
            if let Some(srv_brk) = self.st.srv_breakers.as_mut() {
                if !srv_brk[c].try_acquire(now_s) {
                    continue;
                }
            }
            target = Some(c);
            break;
        }
        let Some(target) = target else {
            self.fall_back(now, idx, device);
            return;
        };
        if target != primary {
            self.st.ra.hedges += 1;
        }
        self.st.pool.get_mut(idx).target = Some(target);
        if let Some(rp) = &cfg.retry {
            let timeout = rp.timeout_s(attempts, slack);
            let key = self.st.queue.schedule(
                now.after_secs(timeout),
                Ev::RetryTimeout {
                    device,
                    req,
                    attempt: attempts,
                },
            );
            self.st.pool.get_mut(idx).retry_key = key;
        }
        let st = &mut *self.st;
        st.uplinks[device].queue.push_back(&mut st.pool, idx);
        self.maybe_start_tx(now, device);
    }

    /// Queue-free best-case seconds for `stream`'s offload path through
    /// `target`, using only device-visible information: the nominal link
    /// rate scaled by the AP's advertised PHY rate (`ap_bw_factor`), and
    /// the server's *catalog* capacity. Deliberately blind to AP outages
    /// and server throttles — detecting those is the job of retry
    /// timeouts and breakers, not an oracle. No fading draw: this
    /// consumes no randomness.
    fn nominal_path_estimate(&self, stream: usize, device: usize, target: usize) -> f64 {
        let s = &self.sim.streams[stream];
        let ap = self.sim.cluster.devices[device].ap;
        let air = self.st.links[device].tx_seconds(s.tx_bytes, s.bandwidth_share, 1.0)
            / self.st.ap_bw_factor[ap];
        air + self.sim.cluster.aps[ap].rtt_s / 2.0
            + s.edge_flops / self.st.servers[target].base_fps.max(1.0)
    }

    /// Last resort once the offload path is given up on: degrade if a rung
    /// exists, shed if policy allows, otherwise park the request back on
    /// the uplink with no further watchdogs (the no-recovery behavior).
    fn fall_back(&mut self, now: SimTime, idx: u32, device: usize) {
        let sim = self.sim;
        let cfg = &sim.config.recovery;
        let (stream, arrival) = {
            let f = self.st.pool.get(idx);
            (f.task.stream, f.task.arrival)
        };
        let s = &sim.streams[stream];
        if cfg.degrade {
            let slack = s.deadline_s - now.secs_since(arrival);
            // Load-aware rung choice. Local-finish suffixes often dwarf
            // the deadline slack (the cheapest-rung last resort exists
            // precisely because completing late beats stranding), so an
            // unconditional ladder turns device queues into piles of
            // slow local work that a later device-churn event strands
            // wholesale — recovery would then lose *more* requests than
            // doing nothing. The ladder therefore only commits device
            // seconds on an *idle* device (empty queue, no outstanding
            // suffix); a busy one gets a zero-cost forced exit when the
            // stream has one, and otherwise falls through to shedding or
            // parking below.
            let idle = self.st.devices[device].queue.is_empty()
                && self.st.degrade_backlog_s[device] <= 0.0;
            let avail = if idle { slack } else { 0.0 };
            if let Some(rung) = pick_rung(&s.degrade.rungs, avail, idle) {
                let extra = s.degrade.rungs[rung].extra_device_s;
                let local = extra > 0.0;
                self.st.pool.get_mut(idx).degrade_to = rung as u32;
                if local {
                    let st = &mut *self.st;
                    st.degrade_backlog_s[device] += extra;
                    st.devices[device].queue.push_back(&mut st.pool, idx);
                    self.maybe_start_device(now, device);
                } else {
                    // Forced exit: the head output already exists.
                    self.complete_degraded(now, idx);
                }
                return;
            }
        }
        if cfg.shed_on_open {
            if self.measured(arrival) {
                self.st.ra.shed += 1;
            }
            self.st.pool.free(idx);
            return;
        }
        let st = &mut *self.st;
        st.uplinks[device].queue.push_back(&mut st.pool, idx);
        self.maybe_start_tx(now, device);
    }

    /// Account a degraded completion (forced exit or local finish).
    fn complete_degraded(&mut self, now: SimTime, idx: u32) {
        let f = *self.st.pool.get(idx);
        self.st.pool.free(idx);
        if !self.measured(f.task.arrival) {
            return;
        }
        assert!(
            f.degrade_to != NO_RUNG,
            "degraded completion carries its rung"
        );
        let s = &self.sim.streams[f.task.stream];
        let rung = &s.degrade.rungs[f.degrade_to as usize];
        let st = &mut *self.st;
        st.ra.degraded += 1;
        if now.secs_since(f.task.arrival) <= s.deadline_s {
            st.ra.degraded_on_time += 1;
        }
        st.ra.nominal_acc_sum += f.task.accuracy;
        st.ra.degraded_acc_sum += rung.accuracy;
    }

    /// Retry watchdog: if the request is still sitting on the uplink with
    /// the same attempt count, the attempt has timed out — cancel it, feed
    /// the AP breaker, and retry or fall back.
    fn on_retry_timeout(&mut self, now: SimTime, device: usize, req: u64, attempt: u32) {
        let sim = self.sim;
        let Some(rp) = sim.config.recovery.retry.as_ref() else {
            return;
        };
        let now_s = now.as_secs_f64();
        let ap = sim.cluster.devices[device].ap;
        let cur = self.st.uplinks[device].current;
        let in_current = cur != NIL && {
            let f = self.st.pool.get(cur);
            f.req == req && f.attempts == attempt
        };
        // Locate the request: transmitting now, or still queued (tracking
        // its predecessor so an exhausted one can be unlinked in place).
        let (idx, prev) = if in_current {
            let st = &mut *self.st;
            st.tx_gen[device] += 1; // invalidate the pending TxDone
            st.uplinks[device].current = NIL;
            st.pool.get_mut(cur).tx_time = 0.0;
            (cur, NIL)
        } else {
            let st = &*self.st;
            let mut prev = NIL;
            let mut cand = st.uplinks[device].queue.head;
            loop {
                if cand == NIL {
                    return; // stale: completed, stranded, or already retried
                }
                let f = st.pool.get(cand);
                if f.req == req && f.attempts == attempt {
                    break;
                }
                prev = cand;
                cand = st.pool.next_of(cand);
            }
            (cand, prev)
        };
        self.st.ra.timeouts += 1;
        if let Some(b) = self.st.ap_breakers.as_mut() {
            b[ap].record_failure(now_s);
        }
        let attempts = {
            let f = self.st.pool.get_mut(idx);
            f.attempts += 1;
            f.attempts
        };
        if attempts > rp.max_retries {
            if !in_current {
                let st = &mut *self.st;
                st.uplinks[device]
                    .queue
                    .unlink_after(&mut st.pool, prev, idx);
            }
            self.fall_back(now, idx, device);
        } else {
            if in_current {
                self.st.ra.retries += 1;
            }
            let (stream, arrival) = {
                let f = self.st.pool.get(idx);
                (f.task.stream, f.task.arrival)
            };
            let s = &sim.streams[stream];
            let slack = s.deadline_s - now.secs_since(arrival);
            let timeout = rp.timeout_s(attempts, slack);
            let key = self.st.queue.schedule(
                now.after_secs(timeout),
                Ev::RetryTimeout {
                    device,
                    req,
                    attempt: attempts,
                },
            );
            self.st.pool.get_mut(idx).retry_key = key;
            // A cancelled transmission restarts at the queue head; a
            // merely-queued request keeps its place (it was never moved).
            if in_current {
                let st = &mut *self.st;
                st.uplinks[device].queue.push_front(&mut st.pool, idx);
            }
        }
        self.maybe_start_tx(now, device);
    }

    /// Emit one control-plane health snapshot and schedule the next epoch.
    fn on_telemetry(&mut self, now: SimTime) {
        let sim = self.sim;
        let st = &mut *self.st;
        let open = |brks: &Option<Vec<CircuitBreaker>>| -> Vec<bool> {
            brks.as_ref()
                .map(|v| v.iter().map(|b| b.state() == BreakerState::Open).collect())
                .unwrap_or_default()
        };
        st.health.push(HealthSnapshot {
            at_s: now.as_secs_f64(),
            completions: st.meas_completed - st.last_snap.completed,
            slo_misses: st.meas_misses - st.last_snap.misses,
            timeouts: st.ra.timeouts - st.last_snap.timeouts,
            degraded: st.ra.degraded - st.last_snap.degraded,
            shed: st.ra.shed - st.last_snap.shed,
            server_open: open(&st.srv_breakers),
            ap_open: open(&st.ap_breakers),
        });
        st.last_snap = SnapBase {
            completed: st.meas_completed,
            misses: st.meas_misses,
            timeouts: st.ra.timeouts,
            degraded: st.ra.degraded,
            shed: st.ra.shed,
        };
        let epoch = sim.config.recovery.telemetry_epoch_s;
        if now < st.horizon {
            st.queue.post(now.after_secs(epoch), Ev::Telemetry);
        }
    }

    fn maybe_start_tx(&mut self, now: SimTime, device: usize) {
        let sim = self.sim;
        let st = &mut *self.st;
        let ap = sim.cluster.devices[device].ap;
        if !st.device_up[device] || !st.ap_up[ap] {
            return; // the radio is dark: data waits in the uplink queue
        }
        if st.uplinks[device].current != NIL {
            return;
        }
        let Some(idx) = st.uplinks[device].queue.pop_front(&mut st.pool) else {
            return;
        };
        let s = &sim.streams[st.pool.get(idx).task.stream];
        let fading = if sim.config.fading {
            st.fading_rng.fading_power()
        } else {
            1.0
        };
        let rtt = sim.cluster.aps[ap].rtt_s;
        // A degraded link stretches airtime by 1/factor (effective-rate
        // collapse); propagation (rtt) is unaffected.
        let air = st.links[device].tx_seconds(s.tx_bytes, s.bandwidth_share, fading)
            / st.ap_bw_factor[ap];
        let tx = air + rtt / 2.0;
        st.pool.get_mut(idx).tx_time = tx;
        st.uplinks[device].current = idx;
        st.tx_gen[device] += 1;
        let gen = st.tx_gen[device];
        // Fire-and-forget: outage paths bump tx_gen, and the guard in
        // on_tx_done discards the superseded delivery.
        st.queue
            .post(now.after_secs(tx), Ev::TxDone { device, gen });
    }

    fn on_tx_done(&mut self, now: SimTime, device: usize, gen: u64) {
        let sim = self.sim;
        if gen != self.st.tx_gen[device] {
            return; // superseded: an AP outage re-queued this transmission
        }
        let idx = self.st.uplinks[device].current;
        assert!(idx != NIL, "TxDone without a transmission");
        {
            let st = &mut *self.st;
            st.uplinks[device].current = NIL;
            // The delivered attempt's watchdog (if any) is now moot.
            let key = st.pool.get(idx).retry_key;
            st.queue.cancel(key);
        }
        if let Some(b) = self.st.ap_breakers.as_mut() {
            // The uplink delivered: the AP is healthy.
            b[sim.cluster.devices[device].ap].record_success();
        }
        let (stream, target) = {
            let f = self.st.pool.get(idx);
            (f.task.stream, f.target)
        };
        let s = &sim.streams[stream];
        let server = target.unwrap_or_else(|| s.server.expect("offloaded request has a server"));
        {
            let srv = &mut self.st.servers[server];
            srv.advance(now);
            srv.admit(idx, s.edge_flops.max(1.0), s.compute_weight, now);
        }
        self.reschedule_server(now, server);
        self.maybe_start_tx(now, device);
    }

    fn reschedule_server(&mut self, now: SimTime, server: usize) {
        let st = &mut *self.st;
        let srv = &mut st.servers[server];
        // Supersede the outstanding check: the gen bump makes any earlier
        // pending ServerCheck a no-op when it delivers, so the stale event
        // needs no cancellation.
        srv.gen += 1;
        if let Some(dt) = srv.time_to_next_completion() {
            let gen = srv.gen;
            // +1 ns: SimTime floors to nanoseconds, so without the nudge the
            // check can fire marginally *early*, leave a sub-nanosecond
            // residue of work, and respawn itself at +0 ns forever.
            let at = now.after_secs(dt) + SimTime::from_nanos(1);
            st.queue.post(at, Ev::ServerCheck { server, gen });
        }
    }

    fn on_server_check(&mut self, now: SimTime, server: usize, gen: u64) {
        {
            let st = &mut *self.st;
            if st.servers[server].gen != gen {
                return; // superseded by a later arrival/departure
            }
            st.servers[server].advance(now);
            // Complete everything at the head of the tag order that has
            // (numerically) finished.
            st.done_buf.clear();
            let srv = &mut st.servers[server];
            // Anything within one nanosecond of work at full capacity counts
            // as finished (floating-point + fixed-point-time slop).
            let eps = (srv.capacity_fps * 1e-9).max(1.0);
            srv.pop_completions(eps, &mut st.done_buf);
        }
        for k in 0..self.st.done_buf.len() {
            let (idx, entered) = self.st.done_buf[k];
            let edge_time = now.secs_since(entered);
            self.complete(now, idx, edge_time);
        }
        self.reschedule_server(now, server);
    }

    /// Execute fault event `idx` of the plan. Redundant events (e.g. a
    /// `DeviceDown` on an already-down device) are counted as injected but
    /// not applied, so arbitrary event sequences stay well-defined.
    fn on_fault(&mut self, now: SimTime, idx: usize) {
        let sim = self.sim;
        let kind = &sim.config.faults.events[idx].kind;
        let class = kind.class();
        let ci = class.index();
        self.st.fa.injected += 1;
        self.st.fa.per_injected[ci] += 1;
        let mut stranded_here = 0usize;
        let applied = match *kind {
            FaultKind::DeviceDown { device } => {
                if self.st.device_up[device] {
                    self.st.device_up[device] = false;
                    self.st.device_down_at[device] = Some(now);
                    self.st.active_faults[ci] += 1;
                    stranded_here = self.strand_device(device, class);
                    true
                } else {
                    false
                }
            }
            FaultKind::DeviceUp { device } => {
                if !self.st.device_up[device] {
                    self.st.device_up[device] = true;
                    if let Some(t) = self.st.device_down_at[device].take() {
                        self.record_recovery(now, t);
                    }
                    self.st.active_faults[ci] -= 1;
                    self.resume_device_arrivals(now, device);
                    true
                } else {
                    false
                }
            }
            FaultKind::ApDown { ap } => {
                if self.st.ap_up[ap] {
                    let st = &mut *self.st;
                    st.ap_up[ap] = false;
                    st.ap_down_at[ap] = Some(now);
                    st.active_faults[ci] += 1;
                    // In-flight transmissions are re-queued, not lost: the
                    // data survives on the device and retransmits on ApUp.
                    // (The retry watchdog, if armed, keeps running — it is
                    // exactly how the outage gets detected.)
                    for k in 0..st.devices_by_ap[ap].len() {
                        let dev = st.devices_by_ap[ap][k];
                        let cur = st.uplinks[dev].current;
                        if cur != NIL {
                            st.tx_gen[dev] += 1; // invalidate the pending TxDone
                            st.uplinks[dev].current = NIL;
                            st.uplinks[dev].queue.push_front(&mut st.pool, cur);
                        }
                    }
                    true
                } else {
                    false
                }
            }
            FaultKind::ApUp { ap } => {
                if !self.st.ap_up[ap] {
                    self.st.ap_up[ap] = true;
                    if let Some(t) = self.st.ap_down_at[ap].take() {
                        self.record_recovery(now, t);
                    }
                    self.st.active_faults[ci] -= 1;
                    for k in 0..self.st.devices_by_ap[ap].len() {
                        let dev = self.st.devices_by_ap[ap][k];
                        self.maybe_start_tx(now, dev);
                    }
                    true
                } else {
                    false
                }
            }
            FaultKind::LinkDegrade { ap, factor } => {
                if (self.st.ap_bw_factor[ap] - factor).abs() > f64::EPSILON {
                    if self.st.ap_bw_factor[ap] >= 1.0 {
                        // Entering the degraded state (vs. re-degrading).
                        self.st.ap_degraded_at[ap] = Some(now);
                        self.st.active_faults[ci] += 1;
                    }
                    self.st.ap_bw_factor[ap] = factor;
                    true
                } else {
                    false
                }
            }
            FaultKind::LinkRestore { ap } => {
                if self.st.ap_bw_factor[ap] < 1.0 {
                    self.st.ap_bw_factor[ap] = 1.0;
                    if let Some(t) = self.st.ap_degraded_at[ap].take() {
                        self.record_recovery(now, t);
                    }
                    self.st.active_faults[ci] -= 1;
                    true
                } else {
                    false
                }
            }
            FaultKind::ServerThrottle { server, factor } => {
                let target = self.st.servers[server].base_fps * factor;
                if (self.st.servers[server].capacity_fps - target).abs() > 1e-9 {
                    if self.st.servers[server].capacity_fps >= self.st.servers[server].base_fps {
                        self.st.server_throttled_at[server] = Some(now);
                        self.st.active_faults[ci] += 1;
                    }
                    // Settle processor sharing at the old rate first, then
                    // continue in-progress work at the degraded one.
                    self.st.servers[server].advance(now);
                    self.st.servers[server].capacity_fps = target;
                    self.reschedule_server(now, server);
                    true
                } else {
                    false
                }
            }
            FaultKind::ServerRestore { server } => {
                if self.st.servers[server].capacity_fps < self.st.servers[server].base_fps {
                    self.st.servers[server].advance(now);
                    self.st.servers[server].capacity_fps = self.st.servers[server].base_fps;
                    if let Some(t) = self.st.server_throttled_at[server].take() {
                        self.record_recovery(now, t);
                    }
                    self.st.active_faults[ci] -= 1;
                    self.reschedule_server(now, server);
                    true
                } else {
                    false
                }
            }
        };
        if applied {
            self.st.fa.applied += 1;
            self.st.fa.per_applied[ci] += 1;
        }
        if self.st.record {
            // The only clone of a fault kind in the simulator: the log
            // record owns its copy; the hot path above matched by
            // reference.
            self.st.fault_trace.push(FaultRecord {
                at_s: now.as_secs_f64(),
                kind: kind.clone(),
                applied,
                stranded: stranded_here,
            });
        }
    }

    /// Drop everything the departing device was holding: queued and
    /// in-service compute, plus data waiting on (or in) its uplink. Work
    /// its streams already handed to an edge server still completes there.
    /// Returns the number of *measured* requests stranded.
    fn strand_device(&mut self, device: usize, class: FaultClass) -> usize {
        let sim = self.sim;
        let st = &mut *self.st;
        let (warmup, horizon) = (st.warmup, st.horizon);
        st.dev_gen[device] += 1; // invalidate any pending DeviceDone
        st.tx_gen[device] += 1; // invalidate any pending TxDone
        let mut stranded = 0usize;
        let mut backlog = st.degrade_backlog_s[device];
        let cur = st.devices[device].current;
        if cur != NIL {
            st.devices[device].current = NIL;
            strand_flight(
                sim,
                &mut st.pool,
                &mut st.queue,
                &mut backlog,
                &mut stranded,
                warmup,
                horizon,
                cur,
            );
        }
        while let Some(i) = st.devices[device].queue.pop_front(&mut st.pool) {
            strand_flight(
                sim,
                &mut st.pool,
                &mut st.queue,
                &mut backlog,
                &mut stranded,
                warmup,
                horizon,
                i,
            );
        }
        let cur = st.uplinks[device].current;
        if cur != NIL {
            st.uplinks[device].current = NIL;
            strand_flight(
                sim,
                &mut st.pool,
                &mut st.queue,
                &mut backlog,
                &mut stranded,
                warmup,
                horizon,
                cur,
            );
        }
        while let Some(i) = st.uplinks[device].queue.pop_front(&mut st.pool) {
            strand_flight(
                sim,
                &mut st.pool,
                &mut st.queue,
                &mut backlog,
                &mut stranded,
                warmup,
                horizon,
                i,
            );
        }
        st.degrade_backlog_s[device] = backlog;
        st.fa.stranded += stranded;
        st.fa.per_stranded[class.index()] += stranded;
        stranded
    }

    /// Restart the arrival process of every stream on a returning device.
    fn resume_device_arrivals(&mut self, now: SimTime, device: usize) {
        let sim = self.sim;
        let st = &mut *self.st;
        if now >= st.horizon {
            return; // past the generation window: nothing to resume
        }
        for k in 0..st.streams_by_device[device].len() {
            let stream = st.streams_by_device[device][k];
            if !st.arrival_pending[stream] {
                let gap = st.arrival_states[stream]
                    .next_gap(&sim.streams[stream].arrivals, &mut st.arrival_rngs[stream]);
                st.arrival_pending[stream] = true;
                st.queue.post(now.after_secs(gap), Ev::Arrive { stream });
            }
        }
    }

    fn record_recovery(&mut self, now: SimTime, since: SimTime) {
        self.st.fa.recovery_sum_s += now.secs_since(since);
        self.st.fa.recoveries += 1;
    }

    fn complete(&mut self, now: SimTime, idx: u32, edge_time: f64) {
        let sim = self.sim;
        let f = *self.st.pool.get(idx);
        self.st.pool.free(idx);
        let s = &sim.streams[f.task.stream];
        let latency = now.secs_since(f.task.arrival);
        if f.tx_time > 0.0 {
            // Offloaded outcome feeds the target server's health window
            // (for all requests, measured or not — runtime health tracking
            // does not know about measurement windows).
            if let Some(brk) = self.st.srv_breakers.as_mut() {
                let target = f
                    .target
                    .unwrap_or_else(|| s.server.expect("offloaded request has a server"));
                if latency <= s.deadline_s {
                    brk[target].record_success();
                } else {
                    brk[target].record_failure(now.as_secs_f64());
                }
            }
        }
        if !self.measured(f.task.arrival) {
            return;
        }
        let st = &mut *self.st;
        st.meas_completed += 1;
        if latency > s.deadline_s {
            st.meas_misses += 1;
        }
        let under_fault = st.active_faults.iter().any(|&c| c > 0);
        if under_fault {
            st.fa.completions_during += 1;
        }
        let acc = &mut st.accums[f.task.stream];
        acc.latencies.push(latency);
        if latency <= s.deadline_s {
            acc.on_time += 1;
        } else if under_fault {
            // Attribute the SLO violation to every currently-active class.
            st.fa.misses_during += 1;
            for (ci, &n) in st.active_faults.iter().enumerate() {
                if n > 0 {
                    st.fa.per_misses[ci] += 1;
                }
            }
        }
        let acc = &mut st.accums[f.task.stream];
        acc.acc_sum += f.task.accuracy;
        if f.task.exit.is_some() {
            acc.early_exits += 1;
        }
        acc.device_wait_sum += f.device_wait;
        acc.device_service_sum += f.device_service;
        if f.tx_time > 0.0 {
            acc.tx_sum += f.tx_time;
            acc.tx_count += 1;
            acc.edge_sum += edge_time;
        }
        if st.record {
            st.trace.push(TaskRecord {
                stream: f.task.stream,
                arrival_s: f.task.arrival.as_secs_f64(),
                device_wait_s: f.device_wait,
                device_service_s: f.device_service,
                tx_s: f.tx_time,
                edge_s: edge_time,
                latency_s: latency,
                exit: f.task.exit,
            });
        }
    }

    fn finish(&mut self) -> (SimReport, RunTrace) {
        let st = &mut *self.st;
        let trace = RunTrace {
            tasks: std::mem::take(&mut st.trace),
            faults: std::mem::take(&mut st.fault_trace),
            health: std::mem::take(&mut st.health),
        };
        let mut recovery = RecoveryMetrics::empty();
        recovery.timeouts = st.ra.timeouts;
        recovery.retries = st.ra.retries;
        recovery.hedges = st.ra.hedges;
        recovery.degraded = st.ra.degraded;
        recovery.degraded_on_time = st.ra.degraded_on_time;
        recovery.shed = st.ra.shed;
        if st.ra.degraded > 0 {
            let n = st.ra.degraded as f64;
            recovery.mean_degraded_accuracy = st.ra.degraded_acc_sum / n;
            recovery.accuracy_cost = (st.ra.nominal_acc_sum - st.ra.degraded_acc_sum) / n;
        }
        for brks in [&st.srv_breakers, &st.ap_breakers].into_iter().flatten() {
            for b in brks {
                recovery.breaker_opens += b.opens;
                recovery.breaker_half_opens += b.half_opens;
                recovery.breaker_closes += b.closes;
            }
        }
        // Requests still queued when the event queue drained are stalled
        // behind an unrecovered fault (a clean run always drains fully).
        // Count them so nothing is silently dropped.
        let (warmup, horizon) = (st.warmup, st.horizon);
        let measured = |t: SimTime| t >= warmup && t < horizon;
        let mut stalled = 0usize;
        for d in 0..st.devices.len() {
            for lane in [st.devices[d], st.uplinks[d]] {
                let mut i = lane.queue.head;
                while i != NIL {
                    if measured(st.pool.get(i).task.arrival) {
                        stalled += 1;
                    }
                    i = st.pool.next_of(i);
                }
                if lane.current != NIL && measured(st.pool.get(lane.current).task.arrival) {
                    stalled += 1;
                }
            }
        }
        for srv in &st.servers {
            // `BinaryHeap::iter` is unordered, which is fine for counting.
            for e in srv.served.iter() {
                if measured(st.pool.get(e.flight).task.arrival) {
                    stalled += 1;
                }
            }
        }
        st.fa.stalled = stalled;
        let end_s = st.queue.now().as_secs_f64().max(1e-12);
        let server_utilization: Vec<f64> = st
            .servers
            .iter()
            .map(|s| (s.busy_s / end_s).clamp(0.0, 1.0))
            .collect();
        st.lat_all.clear();
        let mut on_time = 0usize;
        let mut acc_sum = 0.0;
        let mut early = 0usize;
        let mut per_stream = Vec::with_capacity(st.accums.len());
        for i in 0..st.accums.len() {
            // Pool the raw samples before `finish_mut` sorts them in place
            // (the aggregate's accumulation order must match the legacy
            // per-stream concatenation exactly).
            st.lat_all.extend_from_slice(&st.accums[i].latencies);
            let a = &mut st.accums[i];
            on_time += a.on_time;
            acc_sum += a.acc_sum;
            early += a.early_exits;
            per_stream.push(a.finish_mut(i));
        }
        let completed = st.lat_all.len();
        let n = completed.max(1) as f64;
        let report = SimReport {
            generated: st.generated,
            completed,
            latency: LatencyStats::from_mut_slice(&mut st.lat_all),
            deadline_ratio: on_time as f64 / n,
            mean_accuracy: acc_sum / n,
            early_exit_fraction: early as f64 / n,
            server_utilization,
            per_stream,
            faults: std::mem::take(&mut st.fa).finish(),
            recovery,
        };
        (report, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ApSpec, DeviceSpec, ServerSpec};
    use crate::workload::ArrivalProcess;
    use scalpel_models::{ExitBehavior, ProcessorClass};

    fn one_device_cluster() -> Cluster {
        Cluster {
            devices: vec![DeviceSpec {
                id: 0,
                proc: ProcessorClass::JetsonNano.spec(),
                ap: 0,
                distance_m: 30.0,
            }],
            aps: vec![ApSpec {
                id: 0,
                bandwidth_hz: 20e6,
                rtt_s: 2e-3,
            }],
            servers: vec![ServerSpec {
                id: 0,
                proc: ProcessorClass::EdgeGpuT4.spec(),
            }],
        }
    }

    fn no_exit_stream(rate: f64, device_time: f64, edge_flops: f64) -> CompiledStream {
        CompiledStream {
            id: 0,
            device: 0,
            server: Some(0),
            arrivals: ArrivalProcess::Poisson { rate_hz: rate },
            deadline_s: 0.25,
            device_time_to_exit: vec![],
            device_full_time: device_time,
            tx_bytes: 100_000.0,
            edge_flops,
            behavior: ExitBehavior::no_exits(0.76),
            acc_at_exit: vec![],
            acc_full: 0.76,
            bandwidth_share: 1.0,
            compute_weight: 1.0,
            degrade: scalpel_surgery::DegradeLadder::none(),
            fallback_servers: vec![],
        }
    }

    fn base_config() -> SimConfig {
        SimConfig {
            horizon_s: 20.0,
            warmup_s: 2.0,
            seed: 42,
            fading: false,
            faults: FaultPlan::none(),
            recovery: RecoveryConfig::none(),
        }
    }

    #[test]
    fn light_load_latency_matches_hand_computation() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(1.0, 0.005, 1e9);
        let sim = EdgeSim::new(cluster.clone(), vec![s.clone()], base_config()).unwrap();
        let r = sim.run();
        assert!(r.completed > 10);
        // Expected: device 5ms + tx + edge service (no queueing at 1 rps).
        let link = cluster.link(0);
        let tx = link.tx_seconds(100_000.0, 1.0, 1.0) + 1e-3;
        let edge = 1e9 / ProcessorClass::EdgeGpuT4.spec().flops_per_sec;
        let expect = 0.005 + tx + edge;
        assert!(
            (r.latency.mean - expect).abs() < 0.1 * expect,
            "mean {} expect {}",
            r.latency.mean,
            expect
        );
        assert_eq!(r.early_exit_fraction, 0.0);
        assert!((r.mean_accuracy - 0.76).abs() < 1e-9);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(5.0, 0.01, 2e9);
        let mut cfg = base_config();
        cfg.fading = true;
        let r1 = EdgeSim::new(cluster.clone(), vec![s.clone()], cfg.clone())
            .unwrap()
            .run();
        let r2 = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        assert_eq!(r1.completed, r2.completed);
        assert_eq!(r1.latency.mean, r2.latency.mean);
        assert_eq!(r1.latency.p99, r2.latency.p99);
    }

    #[test]
    fn different_seeds_differ() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(5.0, 0.01, 2e9);
        let mut c1 = base_config();
        c1.seed = 1;
        let mut c2 = base_config();
        c2.seed = 2;
        let r1 = EdgeSim::new(cluster.clone(), vec![s.clone()], c1)
            .unwrap()
            .run();
        let r2 = EdgeSim::new(cluster, vec![s], c2).unwrap().run();
        assert_ne!(r1.latency.mean, r2.latency.mean);
    }

    #[test]
    fn early_exits_complete_on_device() {
        let cluster = one_device_cluster();
        let mut s = no_exit_stream(2.0, 0.02, 1e9);
        // One exit at cumulative 40% coverage.
        s.device_time_to_exit = vec![0.004];
        s.behavior = ExitBehavior {
            exit_probs: vec![0.4],
            cum: vec![0.4],
            remain_prob: 0.6,
            expected_accuracy: 0.75,
        };
        s.acc_at_exit = vec![0.73];
        let r = EdgeSim::new(cluster, vec![s], base_config()).unwrap().run();
        assert!(
            (r.early_exit_fraction - 0.4).abs() < 0.08,
            "early fraction {}",
            r.early_exit_fraction
        );
        // Early-exit requests are much faster than offloaded ones, so p50
        // under light load splits the two bands.
        assert!(r.latency.mean > 0.004);
    }

    #[test]
    fn device_only_plan_never_touches_network() {
        let cluster = one_device_cluster();
        let mut s = no_exit_stream(2.0, 0.03, 0.0);
        s.server = None;
        let r = EdgeSim::new(cluster, vec![s], base_config()).unwrap().run();
        assert!(r.completed > 10);
        assert_eq!(r.per_stream[0].mean_tx, 0.0);
        assert!((r.latency.p50 - 0.03).abs() < 5e-3);
    }

    #[test]
    fn overload_violates_deadlines() {
        let cluster = one_device_cluster();
        // Device service 0.5 s at 10 rps: utterly overloaded.
        let mut s = no_exit_stream(10.0, 0.5, 1e9);
        s.server = None;
        let mut cfg = base_config();
        cfg.horizon_s = 10.0;
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        assert!(r.deadline_ratio < 0.1, "ratio {}", r.deadline_ratio);
        assert!(r.latency.p99 > 1.0);
    }

    #[test]
    fn ps_server_shares_capacity_between_streams() {
        let mut cluster = one_device_cluster();
        cluster.devices.push(DeviceSpec {
            id: 1,
            proc: ProcessorClass::JetsonNano.spec(),
            ap: 0,
            distance_m: 30.0,
        });
        // Two heavy streams on one server: each should see roughly half
        // the capacity under load, i.e. service times stretch.
        let cap = ProcessorClass::EdgeGpuT4.spec().flops_per_sec;
        let flops = cap * 0.03; // 30 ms alone
        let mk = |id: usize, dev: usize| {
            let mut s = no_exit_stream(8.0, 0.001, flops);
            s.id = id;
            s.device = dev;
            s.bandwidth_share = 0.5;
            s
        };
        let r = EdgeSim::new(cluster, vec![mk(0, 0), mk(1, 1)], base_config())
            .unwrap()
            .run();
        // Mean edge time must exceed the isolated 30 ms service time due to
        // sharing, but not blow up (utilization = 2*8*0.03 = 0.48).
        let edge = r.per_stream[0].mean_edge;
        assert!(edge > 0.030, "edge {edge}");
        assert!(edge < 0.30, "edge {edge}");
    }

    #[test]
    fn invalid_stream_is_rejected_up_front() {
        let cluster = one_device_cluster();
        let mut s = no_exit_stream(1.0, 0.01, 1e9);
        s.device = 5;
        assert!(EdgeSim::new(cluster.clone(), vec![s], base_config()).is_err());
        let mut s = no_exit_stream(1.0, 0.01, 1e9);
        s.server = Some(3);
        assert!(EdgeSim::new(cluster.clone(), vec![s], base_config()).is_err());
        let mut s = no_exit_stream(1.0, 0.01, 1e9);
        s.id = 4;
        assert!(EdgeSim::new(cluster, vec![s], base_config()).is_err());
    }

    #[test]
    fn warmup_requests_are_not_measured() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(10.0, 0.001, 1e8);
        let mut cfg = base_config();
        cfg.horizon_s = 12.0;
        cfg.warmup_s = 2.0;
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        // ~10 rps over a 10 s measured window.
        assert!(r.generated > 60 && r.generated < 140, "{}", r.generated);
        assert_eq!(r.completed, r.generated);
    }

    fn two_ap_cluster() -> Cluster {
        Cluster {
            devices: (0..4)
                .map(|id| DeviceSpec {
                    id,
                    proc: ProcessorClass::JetsonNano.spec(),
                    ap: id / 2,
                    distance_m: 30.0,
                })
                .collect(),
            aps: (0..2)
                .map(|id| ApSpec {
                    id,
                    bandwidth_hz: 20e6,
                    rtt_s: 2e-3,
                })
                .collect(),
            servers: (0..2)
                .map(|id| ServerSpec {
                    id,
                    proc: ProcessorClass::EdgeGpuT4.spec(),
                })
                .collect(),
        }
    }

    #[test]
    fn multi_ap_streams_run_independently() {
        let cluster = two_ap_cluster();
        let streams: Vec<CompiledStream> = (0..4)
            .map(|k| {
                let mut s = no_exit_stream(3.0, 0.005, 5e8);
                s.id = k;
                s.device = k;
                s.server = Some(k % 2);
                s.bandwidth_share = 0.5;
                s
            })
            .collect();
        let r = EdgeSim::new(cluster, streams, base_config()).unwrap().run();
        assert_eq!(r.per_stream.len(), 4);
        for ss in &r.per_stream {
            assert!(ss.completed > 10, "stream {} starved", ss.stream);
        }
    }

    #[test]
    fn busier_ap_sees_higher_latency() {
        // AP 0 hosts two heavy transmitters, AP 1 one: same share each, so
        // the AP-0 devices queue more (each share is of its own AP).
        let cluster = two_ap_cluster();
        let mk = |id: usize, dev: usize, share: f64| {
            let mut s = no_exit_stream(4.0, 0.001, 1e8);
            s.id = id;
            s.device = dev;
            s.server = Some(0);
            s.tx_bytes = 1.5e6;
            s.bandwidth_share = share;
            s
        };
        // device 0 & 1 on AP0 with half share each; device 2 on AP1 alone
        // with FULL share.
        let streams = vec![mk(0, 0, 0.5), mk(1, 1, 0.5), mk(2, 2, 1.0)];
        let r = EdgeSim::new(cluster, streams, base_config()).unwrap().run();
        let shared = r.per_stream[0].latency.mean;
        let alone = r.per_stream[2].latency.mean;
        assert!(
            shared > alone * 1.5,
            "shared {shared} not clearly worse than alone {alone}"
        );
    }

    #[test]
    fn trace_arrivals_execute_exactly() {
        let cluster = one_device_cluster();
        let mut s = no_exit_stream(1.0, 0.002, 1e8);
        s.server = None;
        s.arrivals = ArrivalProcess::Trace {
            gaps: vec![1.0, 1.0, 1.0, 1.0],
        };
        let mut cfg = base_config();
        cfg.horizon_s = 10.5;
        cfg.warmup_s = 0.0;
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        // arrivals at t = 1, 2, ..., 10 -> 10 measured requests.
        assert_eq!(r.generated, 10);
        assert_eq!(r.completed, 10);
    }

    #[test]
    fn heavier_weight_gets_faster_edge_service() {
        let mut cluster = one_device_cluster();
        cluster.devices.push(DeviceSpec {
            id: 1,
            proc: ProcessorClass::JetsonNano.spec(),
            ap: 0,
            distance_m: 30.0,
        });
        let cap = ProcessorClass::EdgeGpuT4.spec().flops_per_sec;
        let mk = |id: usize, dev: usize, weight: f64| {
            let mut s = no_exit_stream(6.0, 0.001, cap * 0.05);
            s.id = id;
            s.device = dev;
            s.bandwidth_share = 0.5;
            s.compute_weight = weight;
            s
        };
        let r = EdgeSim::new(cluster, vec![mk(0, 0, 4.0), mk(1, 1, 1.0)], base_config())
            .unwrap()
            .run();
        let heavy = r.per_stream[0].mean_edge;
        let light = r.per_stream[1].mean_edge;
        assert!(
            heavy < light,
            "weight-4 stream ({heavy}) should outpace weight-1 ({light})"
        );
    }

    #[test]
    fn server_utilization_reflects_load() {
        let cluster = one_device_cluster();
        // Unused server in a 2-server variant.
        let mut cluster2 = cluster.clone();
        cluster2.servers.push(ServerSpec {
            id: 1,
            proc: ProcessorClass::EdgeGpuT4.spec(),
        });
        let cap = ProcessorClass::EdgeGpuT4.spec().flops_per_sec;
        // ~60% utilization target: 6 rps × 0.1 s of edge work.
        let s = no_exit_stream(6.0, 0.0005, cap * 0.1);
        let r = EdgeSim::new(cluster2, vec![s], base_config())
            .unwrap()
            .run();
        assert_eq!(r.server_utilization.len(), 2);
        assert!(
            (r.server_utilization[0] - 0.6).abs() < 0.15,
            "util {}",
            r.server_utilization[0]
        );
        assert_eq!(r.server_utilization[1], 0.0);
    }

    #[test]
    fn idle_cluster_reports_zero_utilization() {
        let cluster = one_device_cluster();
        let mut s = no_exit_stream(1.0, 0.001, 0.0);
        s.server = None; // device-only: server never touched
        let r = EdgeSim::new(cluster, vec![s], base_config()).unwrap().run();
        assert_eq!(r.server_utilization, vec![0.0]);
    }

    #[test]
    fn trace_records_are_consistent_with_report() {
        let cluster = one_device_cluster();
        let mut s = no_exit_stream(3.0, 0.004, 1e9);
        s.device_time_to_exit = vec![0.002];
        s.behavior = ExitBehavior {
            exit_probs: vec![0.3],
            cum: vec![0.3],
            remain_prob: 0.7,
            expected_accuracy: 0.75,
        };
        s.acc_at_exit = vec![0.73];
        let sim = EdgeSim::new(cluster, vec![s], base_config()).unwrap();
        let (report, trace) = sim.run_traced();
        assert_eq!(trace.len(), report.completed);
        // Trace mean latency must equal the report's.
        let mean = trace.iter().map(|r| r.latency_s).sum::<f64>() / trace.len() as f64;
        assert!((mean - report.latency.mean).abs() < 1e-9);
        // Exit counts agree.
        let exits = trace.iter().filter(|r| r.exit.is_some()).count();
        assert!((exits as f64 / trace.len() as f64 - report.early_exit_fraction).abs() < 1e-9);
        for r in &trace {
            // Components never exceed the end-to-end latency (uplink
            // queueing is the untracked remainder)...
            assert!(r.component_sum_s() <= r.latency_s + 1e-9, "{r:?}");
            // ...and on-device completions decompose exactly.
            if r.on_device() {
                assert!(
                    (r.device_wait_s + r.device_service_s - r.latency_s).abs() < 1e-9,
                    "{r:?}"
                );
                assert!(r.exit.is_some());
            }
            assert!(r.arrival_s >= base_config().warmup_s);
        }
    }

    #[test]
    fn untraced_run_matches_traced_report() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(4.0, 0.003, 1e9);
        let sim = EdgeSim::new(cluster, vec![s], base_config()).unwrap();
        let plain = sim.run();
        let (traced, _) = sim.run_traced();
        assert_eq!(plain.latency.mean, traced.latency.mean);
        assert_eq!(plain.completed, traced.completed);
    }

    use crate::faults::{FaultEvent, FaultProfile};

    fn fault_cfg(events: Vec<FaultEvent>) -> SimConfig {
        let mut cfg = base_config();
        cfg.faults = FaultPlan { events };
        cfg
    }

    fn at(at_s: f64, kind: FaultKind) -> FaultEvent {
        FaultEvent { at_s, kind }
    }

    #[test]
    fn empty_fault_plan_matches_clean_run_exactly() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(5.0, 0.01, 2e9);
        let clean = EdgeSim::new(cluster.clone(), vec![s.clone()], base_config())
            .unwrap()
            .run();
        let faulted = EdgeSim::new(cluster, vec![s], fault_cfg(vec![]))
            .unwrap()
            .run();
        assert_eq!(clean.completed, faulted.completed);
        assert_eq!(clean.latency.mean, faulted.latency.mean);
        assert_eq!(faulted.faults, FaultMetrics::empty());
    }

    #[test]
    fn device_outage_strands_and_conserves_requests() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(8.0, 0.01, 1e9);
        let cfg = fault_cfg(vec![
            at(6.0, FaultKind::DeviceDown { device: 0 }),
            at(9.0, FaultKind::DeviceUp { device: 0 }),
        ]);
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        // The outage cuts ~3 s out of an ~18 s window; arrivals resume after.
        assert!(r.completed > 0);
        assert_eq!(r.generated, r.completed + r.faults.lost());
        assert_eq!(r.faults.injected, 2);
        assert_eq!(r.faults.applied, 2);
        assert_eq!(r.faults.recoveries, 1);
        assert!((r.faults.mean_recovery_s - 3.0).abs() < 1e-9);
        let churn = &r.faults.per_class[FaultClass::DeviceChurn.index()];
        assert_eq!(churn.applied, 2);
        assert_eq!(churn.stranded, r.faults.stranded);
    }

    #[test]
    fn redundant_fault_events_inject_but_do_not_apply() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(2.0, 0.005, 1e9);
        let cfg = fault_cfg(vec![
            at(3.0, FaultKind::DeviceUp { device: 0 }), // already up
            at(4.0, FaultKind::LinkRestore { ap: 0 }),  // already nominal
            at(5.0, FaultKind::ServerRestore { server: 0 }), // already nominal
        ]);
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        assert_eq!(r.faults.injected, 3);
        assert_eq!(r.faults.applied, 0);
        assert_eq!(r.generated, r.completed);
    }

    #[test]
    fn ap_outage_delays_but_never_drops() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(4.0, 0.002, 5e8);
        let clean = EdgeSim::new(cluster.clone(), vec![s.clone()], base_config())
            .unwrap()
            .run();
        let cfg = fault_cfg(vec![
            at(5.0, FaultKind::ApDown { ap: 0 }),
            at(8.0, FaultKind::ApUp { ap: 0 }),
        ]);
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        // Data queues during the outage and retransmits afterwards: every
        // request still completes, but tail latency grows past the ~3 s gap.
        assert_eq!(r.generated, r.completed);
        assert_eq!(r.faults.stranded, 0);
        assert!(r.latency.max >= 2.0, "max {}", r.latency.max);
        assert!(r.latency.max > clean.latency.max);
        assert!(r.deadline_ratio < clean.deadline_ratio);
    }

    #[test]
    fn unrecovered_ap_outage_stalls_queued_requests() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(4.0, 0.002, 5e8);
        let cfg = fault_cfg(vec![at(5.0, FaultKind::ApDown { ap: 0 })]);
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        // Everything after the outage piles up in the uplink queue forever.
        assert!(r.faults.stalled > 0);
        assert_eq!(r.generated, r.completed + r.faults.lost());
    }

    #[test]
    fn link_degradation_stretches_transmissions() {
        let cluster = one_device_cluster();
        let mut s = no_exit_stream(2.0, 0.001, 1e8);
        s.tx_bytes = 1e6; // transmission-dominated
        let clean = EdgeSim::new(cluster.clone(), vec![s.clone()], base_config())
            .unwrap()
            .run();
        let cfg = fault_cfg(vec![at(
            2.0,
            FaultKind::LinkDegrade {
                ap: 0,
                factor: 0.25,
            },
        )]);
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        assert_eq!(r.generated, r.completed);
        assert!(
            r.per_stream[0].mean_tx > 2.0 * clean.per_stream[0].mean_tx,
            "degraded tx {} vs clean {}",
            r.per_stream[0].mean_tx,
            clean.per_stream[0].mean_tx
        );
    }

    #[test]
    fn server_throttle_slows_edge_service() {
        let cluster = one_device_cluster();
        let cap = ProcessorClass::EdgeGpuT4.spec().flops_per_sec;
        let s = no_exit_stream(2.0, 0.001, cap * 0.02); // 20 ms alone
        let clean = EdgeSim::new(cluster.clone(), vec![s.clone()], base_config())
            .unwrap()
            .run();
        let cfg = fault_cfg(vec![at(
            2.0,
            FaultKind::ServerThrottle {
                server: 0,
                factor: 0.25,
            },
        )]);
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        assert_eq!(r.generated, r.completed);
        assert!(
            r.per_stream[0].mean_edge > 3.0 * clean.per_stream[0].mean_edge,
            "throttled edge {} vs clean {}",
            r.per_stream[0].mean_edge,
            clean.per_stream[0].mean_edge
        );
    }

    #[test]
    fn fault_log_records_every_event() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(4.0, 0.005, 1e9);
        let cfg = fault_cfg(vec![
            at(4.0, FaultKind::DeviceDown { device: 0 }),
            at(5.0, FaultKind::DeviceDown { device: 0 }), // redundant
            at(6.0, FaultKind::DeviceUp { device: 0 }),
        ]);
        let (report, trace) = EdgeSim::new(cluster, vec![s], cfg).unwrap().run_logged();
        assert_eq!(trace.faults.len(), 3);
        assert!(trace.faults[0].applied);
        assert!(!trace.faults[1].applied);
        assert!(trace.faults[2].applied);
        assert_eq!(trace.faults[1].stranded, 0);
        let stranded_logged: usize = trace.faults.iter().map(|f| f.stranded).sum();
        assert_eq!(stranded_logged, report.faults.stranded);
        assert_eq!(trace.tasks.len(), report.completed);
    }

    #[test]
    fn misses_during_fault_are_attributed() {
        let cluster = one_device_cluster();
        let cap = ProcessorClass::EdgeGpuT4.spec().flops_per_sec;
        // Edge-heavy stream with a tight deadline: a deep throttle makes
        // every completion during the fault miss its SLO.
        let mut s = no_exit_stream(4.0, 0.001, cap * 0.05);
        s.deadline_s = 0.1;
        let cfg = fault_cfg(vec![
            at(
                5.0,
                FaultKind::ServerThrottle {
                    server: 0,
                    factor: 0.2,
                },
            ),
            at(12.0, FaultKind::ServerRestore { server: 0 }),
        ]);
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        assert!(r.faults.misses_during_fault > 0);
        assert!(r.faults.completions_during_fault >= r.faults.misses_during_fault);
        let throttle = &r.faults.per_class[FaultClass::ComputeThrottle.index()];
        assert_eq!(throttle.misses_during, r.faults.misses_during_fault);
        assert!((r.faults.mean_recovery_s - 7.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_fault_plan_is_rejected_up_front() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(1.0, 0.01, 1e9);
        let cfg = fault_cfg(vec![at(1.0, FaultKind::DeviceDown { device: 7 })]);
        assert!(EdgeSim::new(cluster.clone(), vec![s.clone()], cfg).is_err());
        let cfg = fault_cfg(vec![at(
            1.0,
            FaultKind::LinkDegrade {
                ap: 0,
                factor: -0.5,
            },
        )]);
        assert!(EdgeSim::new(cluster, vec![s], cfg).is_err());
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let cluster = two_ap_cluster();
        let streams: Vec<CompiledStream> = (0..4)
            .map(|k| {
                let mut s = no_exit_stream(3.0, 0.005, 5e8);
                s.id = k;
                s.device = k;
                s.server = Some(k % 2);
                s.bandwidth_share = 0.5;
                s
            })
            .collect();
        let mut cfg = fault_cfg(
            FaultProfile {
                rate_hz: 0.5,
                ..FaultProfile::default()
            }
            .plan(4, 2, 2, 20.0)
            .events,
        );
        cfg.fading = true;
        let r1 = EdgeSim::new(cluster.clone(), streams.clone(), cfg.clone())
            .unwrap()
            .run();
        let r2 = EdgeSim::new(cluster, streams, cfg).unwrap().run();
        assert!(r1.faults.injected > 0);
        assert_eq!(r1.completed, r2.completed);
        assert_eq!(r1.latency.mean, r2.latency.mean);
        assert_eq!(r1.faults, r2.faults);
    }

    /// A stream with one forced-exit rung and a local-finish rung.
    fn recoverable_stream(rate: f64) -> CompiledStream {
        let mut s = no_exit_stream(rate, 0.002, 5e8);
        s.device_time_to_exit = vec![0.001];
        s.behavior = ExitBehavior {
            exit_probs: vec![0.2],
            cum: vec![0.2],
            remain_prob: 0.8,
            expected_accuracy: 0.75,
        };
        s.acc_at_exit = vec![0.70];
        s.degrade = scalpel_surgery::DegradeLadder::new(vec![
            DegradeRung {
                exit: Some(0),
                extra_device_s: 0.0,
                accuracy: 0.69,
            },
            DegradeRung {
                exit: None,
                extra_device_s: 0.01,
                accuracy: 0.76,
            },
        ]);
        s
    }

    #[test]
    fn disabled_recovery_is_a_bitwise_noop() {
        let cluster = two_ap_cluster();
        let streams: Vec<CompiledStream> = (0..4)
            .map(|k| {
                let mut s = no_exit_stream(3.0, 0.005, 5e8);
                s.id = k;
                s.device = k;
                s.server = Some(k % 2);
                s.bandwidth_share = 0.5;
                s
            })
            .collect();
        let mut cfg = fault_cfg(
            FaultProfile {
                rate_hz: 0.8,
                ..FaultProfile::default()
            }
            .plan(4, 2, 2, 20.0)
            .events,
        );
        cfg.fading = true;
        cfg.recovery = RecoveryConfig::none();
        let legacy = EdgeSim::new(cluster.clone(), streams.clone(), cfg.clone())
            .unwrap()
            .run();
        let r = EdgeSim::new(cluster, streams, cfg).unwrap().run();
        assert_eq!(legacy.completed, r.completed);
        assert_eq!(legacy.latency.p99, r.latency.p99);
        assert_eq!(legacy.faults, r.faults);
        assert_eq!(r.recovery, RecoveryMetrics::empty());
    }

    #[test]
    fn degradation_clears_an_unrecovered_ap_outage() {
        let cluster = one_device_cluster();
        let s = recoverable_stream(4.0);
        // Without recovery this schedule stalls every post-outage request.
        let mut cfg = fault_cfg(vec![at(5.0, FaultKind::ApDown { ap: 0 })]);
        let bare = EdgeSim::new(cluster.clone(), vec![s.clone()], cfg.clone())
            .unwrap()
            .run();
        assert!(bare.faults.stalled > 0);
        cfg.recovery = RecoveryConfig::retry_only();
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        // Retries exhaust against the dead AP and the ladder takes over:
        // nothing is left stuck on the uplink.
        assert_eq!(r.faults.stalled, 0);
        assert!(r.recovery.timeouts > 0);
        assert!(r.recovery.degraded > 0);
        assert!(r.recovery.accuracy_cost >= 0.0);
        assert_eq!(r.generated, r.accounted());
    }

    #[test]
    fn breakers_open_under_ap_outage_and_telemetry_sees_them() {
        let cluster = one_device_cluster();
        let s = recoverable_stream(6.0);
        let mut cfg = fault_cfg(vec![at(4.0, FaultKind::ApDown { ap: 0 })]);
        cfg.recovery = RecoveryConfig::full();
        let (r, trace) = EdgeSim::new(cluster, vec![s], cfg).unwrap().run_logged();
        assert!(r.recovery.breaker_opens > 0);
        assert!(!trace.health.is_empty());
        // Some epoch after the outage reports the AP breaker open.
        assert!(trace.health.iter().any(|h| h.ap_open.iter().any(|&o| o)));
        assert_eq!(r.generated, r.accounted());
    }

    #[test]
    fn hedging_reroutes_around_a_dead_server() {
        let cluster = two_ap_cluster();
        let cap = ProcessorClass::EdgeGpuT4.spec().flops_per_sec;
        let mut s = recoverable_stream(6.0);
        s.edge_flops = cap * 0.01;
        s.deadline_s = 0.1;
        s.server = Some(0);
        s.fallback_servers = vec![1];
        // 10x throttle on the primary: completions still flow but every
        // one misses its 100 ms deadline, so the outcome-driven breaker
        // opens and hedging shifts traffic to server 1.
        let mut cfg = fault_cfg(vec![at(
            4.0,
            FaultKind::ServerThrottle {
                server: 0,
                factor: 0.1,
            },
        )]);
        cfg.recovery = RecoveryConfig::full();
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        assert!(r.recovery.breaker_opens > 0, "{:?}", r.recovery);
        assert!(r.recovery.hedges > 0, "{:?}", r.recovery);
        assert!(r.server_utilization[1] > 0.0);
        assert_eq!(r.generated, r.accounted());
    }

    #[test]
    fn recovery_runs_are_deterministic() {
        let cluster = two_ap_cluster();
        let streams: Vec<CompiledStream> = (0..4)
            .map(|k| {
                let mut s = recoverable_stream(3.0);
                s.id = k;
                s.device = k;
                s.server = Some(k % 2);
                s.fallback_servers = vec![(k + 1) % 2];
                s.bandwidth_share = 0.5;
                s
            })
            .collect();
        let mut cfg = fault_cfg(
            FaultProfile {
                rate_hz: 0.8,
                ..FaultProfile::default()
            }
            .plan(4, 2, 2, 20.0)
            .events,
        );
        cfg.fading = true;
        cfg.recovery = RecoveryConfig::full();
        let r1 = EdgeSim::new(cluster.clone(), streams.clone(), cfg.clone())
            .unwrap()
            .run();
        let r2 = EdgeSim::new(cluster, streams, cfg).unwrap().run();
        assert_eq!(r1.completed, r2.completed);
        assert_eq!(r1.latency.mean, r2.latency.mean);
        assert_eq!(r1.recovery, r2.recovery);
        assert_eq!(r1.faults, r2.faults);
    }

    #[test]
    fn invalid_recovery_config_is_rejected_up_front() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(1.0, 0.01, 1e9);
        let mut cfg = base_config();
        cfg.recovery = RecoveryConfig {
            hedge: true, // hedging needs breakers
            ..RecoveryConfig::none()
        };
        assert!(EdgeSim::new(cluster.clone(), vec![s.clone()], cfg).is_err());
        let mut s2 = s;
        s2.fallback_servers = vec![9];
        assert!(EdgeSim::new(cluster, vec![s2], base_config()).is_err());
    }

    #[test]
    fn fading_increases_latency_variance() {
        let cluster = one_device_cluster();
        // Transmission-dominated stream.
        let mut s = no_exit_stream(2.0, 0.001, 1e8);
        s.tx_bytes = 2e6;
        let mut on = base_config();
        on.fading = true;
        let mut off = base_config();
        off.fading = false;
        let r_on = EdgeSim::new(cluster.clone(), vec![s.clone()], on)
            .unwrap()
            .run();
        let r_off = EdgeSim::new(cluster, vec![s], off).unwrap().run();
        let spread_on = r_on.latency.p99 - r_on.latency.p50;
        let spread_off = r_off.latency.p99 - r_off.latency.p50;
        assert!(spread_on > spread_off, "{spread_on} vs {spread_off}");
    }
}
